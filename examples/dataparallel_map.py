#!/usr/bin/env python3
"""Data-parallel map under the same autonomic manager as the farm.

Section 3 models both the task farm and data-parallel computation as
variants of one functional-replication behavioural skeleton.  This
example proves the claim operationally: a :class:`SimMap` (scatter →
compute → reduce) is driven by the *identical* ``FarmABC`` +
``FarmManager`` + Figure 5 rules that manage the task farm — zero new
policy code — and the manager widens the map until the contract holds.

Run:  python examples/dataparallel_map.py
"""

from repro.core import MinThroughputContract, build_map_bs
from repro.sim import ResourceManager, Simulator, make_cluster
from repro.sim.resources import Node
from repro.sim.trace import ascii_series
from repro.sim.workload import ConstantWork, TaskSource


def main() -> None:
    sim = Simulator()
    pool = ResourceManager(make_cluster(16, prefix="mapnode"))

    # Each "task" is a data collection needing 10 s of total work; the
    # map scatters it across however many workers it currently has.  The
    # builder wires the FARM manager stack over the map mechanism — the
    # paper's point that both are one functional-replication BS.
    bs = build_map_bs(
        sim,
        pool,
        name="dpmap",
        initial_degree=1,
        emitter_node=Node("frontend"),
        scatter_overhead=0.05,
        gather_overhead=0.05,
        worker_setup_time=5.0,
        rate_window=20.0,
    )
    smap, manager = bs.farm, bs.manager

    TaskSource(sim, smap.input, rate=0.5, work_model=ConstantWork(10.0), name="collections")
    bs.assign_contract(MinThroughputContract(0.4))

    trace = manager.trace

    def sample() -> None:
        snap = smap.force_snapshot()
        trace.sample("throughput", sim.now, snap.departure_rate)
        trace.sample("workers", sim.now, snap.num_workers)

    sim.periodic(5.0, sample)
    sim.run(until=400.0)

    print(
        ascii_series(
            trace.series_values("throughput"),
            hlines=[0.4],
            title="collections/s (contract >= 0.4) — map widened autonomically",
            height=10,
        )
    )
    snap = smap.force_snapshot()
    print(f"final width     : {snap.num_workers} workers (started at 1)")
    print(f"throughput      : {snap.departure_rate:.2f} collections/s")
    print(f"contract met    : {manager.contract_satisfied()}")
    print(f"manager actions : {[e.name for e in trace.events_of('AM_dpmap') if e.name == 'addWorker']}")


if __name__ == "__main__":
    main()
