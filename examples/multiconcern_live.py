#!/usr/bin/env python3
"""Live multi-concern coordination — grow, quarantine, secure, admit.

``multiconcern_security.py`` shows the two-phase intent protocol in the
discrete-event simulator.  This example runs the same protocol on a
*live* substrate: a thread farm whose admission gate holds every new
worker in quarantine until the security manager's amendment has been
honoured.  The script

* grows the farm through a :class:`LiveGeneralManager` — each reserved
  node sits in an untrusted domain, so the registered
  :class:`LiveSecurityManager` amends the plan and the commit step
  secures every channel *before* admission;
* proves the gate from the farm's own dispatch counters: zero tasks
  ever travelled to an unsecured worker;
* replays the same growth in ``naive`` coordination mode, where workers
  are admitted immediately and the insecure-dispatch counter measures
  the leak window the paper warns about (§3.2);
* shows a veto: when a domain's trust is revoked outright, a grow
  intent reserving its nodes dies in review and no worker appears.

With ``--serve-telemetry`` the two-phase episode additionally exposes
its telemetry live over HTTP (``/metrics``, ``/traces``,
``/trace/<id>``, ``/healthz``) and pauses at the end so you can point
``curl`` at the intent/commit trace while the store is still warm.

Run:  python examples/multiconcern_live.py [--serve-telemetry [PORT]]
"""

import sys
import time

from repro.core.multiconcern import CoordinationMode
from repro.obs import Telemetry
from repro.rules.beans import ManagerOperation
from repro.runtime import LiveGeneralManager, ThreadFarm, WorkerPlacement
from repro.security import LiveSecurityManager
from repro.sim.resources import Domain, ResourceManager, make_cluster


def render_image(task_id: int) -> int:
    """Stand-in for a blocking processing step (~5 ms each)."""
    time.sleep(0.005)
    return task_id * task_id


class Orchestrator:
    """Stands in for AM_perf: something that *wants* more workers."""

    name = "AM_perf"


def run_mode(mode: CoordinationMode, serve_port: int = None) -> tuple:
    """One growth episode under ``mode``; returns (insecure, total) dispatches."""
    tel = Telemetry()
    server = None
    if serve_port is not None:
        server = tel.serve(port=serve_port)
        print(f"  live telemetry on http://{server.host}:{server.port} "
              "(/metrics, /traces, /trace/<id>, /healthz)")
    farm = ThreadFarm(render_image, initial_workers=2, max_workers=12,
                      name=f"farm-{mode.value}", telemetry=tel)
    farm.secure_all()  # the bootstrap workers' channels are already safe
    pool = make_cluster(8, prefix="u", domain=Domain("edge", trusted=False))
    placement = WorkerPlacement(ResourceManager(pool))
    security = LiveSecurityManager(farm, placement, telemetry=tel)
    gm = LiveGeneralManager(farm, placement, mode=mode, telemetry=tel)
    gm.register(security)

    # interleave feeding with growth so the gate is exercised mid-stream
    total = 120
    for i in range(total):
        farm.submit(i)
        if i in (30, 60):
            gm.execute_intent(Orchestrator(), ManagerOperation.ADD_EXECUTOR,
                              {"count": 2})
        time.sleep(0.001)
    results = farm.drain_results(total, timeout=30.0)
    assert sorted(results) == sorted(i * i for i in range(total))
    final_workers = farm.num_workers
    farm.shutdown()

    metrics = tel.metrics
    insecure = metrics.counter("repro_mc_insecure_dispatch_total", "") \
        .labels(farm=farm.name).value
    dispatched = metrics.counter("repro_mc_dispatch_total", "") \
        .labels(farm=farm.name).value
    print(f"  {mode.value:9s}: {gm.outcomes()} -> {final_workers} workers, "
          f"{insecure:.0f}/{dispatched:.0f} dispatches insecure")
    if server is not None:
        try:
            input("  telemetry still being served — press Enter to continue...")
        except EOFError:
            pass
        server.close()
    return insecure, dispatched


def main() -> None:
    serve_port = None
    if "--serve-telemetry" in sys.argv[1:]:
        rest = [a for a in sys.argv[1:] if a != "--serve-telemetry"]
        serve_port = int(rest[0]) if rest else 0
    print("=== MC-LIVE: two-phase intent protocol on the thread farm ===")
    print()
    print("growth over untrusted nodes, 120 tasks in flight:")
    secure_leaks, _ = run_mode(CoordinationMode.TWO_PHASE, serve_port=serve_port)
    naive_leaks, _ = run_mode(CoordinationMode.NAIVE)
    print()
    print(f"two-phase leak window: {secure_leaks:.0f} tasks "
          f"(quarantine -> secure -> admit closes it)")
    print(f"naive leak window    : {naive_leaks:.0f} tasks "
          f"(admitted before securing)")
    assert secure_leaks == 0

    # --- the veto: revoked trust kills the intent in review -------------
    farm = ThreadFarm(render_image, initial_workers=1, max_workers=4, name="farm-veto")
    farm.secure_all()
    pool = make_cluster(4, prefix="x", domain=Domain("revoked", trusted=False))
    placement = WorkerPlacement(ResourceManager(pool))
    security = LiveSecurityManager(farm, placement, veto_domains=("revoked",))
    gm = LiveGeneralManager(farm, placement)
    gm.register(security)
    ok = gm.execute_intent(Orchestrator(), ManagerOperation.ADD_EXECUTOR, {"count": 2})
    print()
    print(f"veto of a revoked domain: intent ok={ok}, outcomes={gm.outcomes()}, "
          f"workers still {farm.num_workers}")
    assert not ok and farm.num_workers == 1
    farm.shutdown()
    print()
    print("no task ever reached an unsecured worker under two-phase commit")


if __name__ == "__main__":
    main()
