#!/usr/bin/env python3
"""The distributed farm — same rules, workers across a TCP boundary.

``process_farm_crashes.py`` already showed crash recovery, but its
workers still share a host and a multiprocessing pipe with the manager.
The :class:`~repro.runtime.DistFarm` coordinator speaks a plain
length-prefixed JSON protocol over TCP instead, which buys two things:

* the fault model gains the *network* failure a real deployment meets —
  this example severs a worker's connection mid-stream (the worker
  process itself is perfectly healthy) and shows the same replay +
  ``CheckRateLow`` recovery chain;
* workers need not be children of the coordinator at all.  While this
  example runs, it prints the exact ``python -m repro.runtime.dist_worker``
  command that would attach one more worker from any machine that can
  reach the coordinator's port.

One constraint travels with the wire: the task function crosses the
boundary *by name* (``module:qualname``), so it must be importable on
the worker's side — here we reuse the library's ``live_task``.

Run:  python examples/dist_farm.py
"""

import time

from repro.core import MinThroughputContract
from repro.runtime import DistFarm, FarmController

# payload for live_task is (seconds_of_work, value); result is value**2
TASK_FN = "repro.experiments.fig4_live:live_task"
WORK = 0.02


def main() -> None:
    farm = DistFarm(
        TASK_FN,
        initial_workers=3,
        name="dfarm",
        heartbeat_period=0.05,
        heartbeat_timeout=0.5,
        supervise_period=0.02,
        backoff_base=0.02,
        backoff_cap=0.2,
        rate_window=0.5,
    )
    print(f"coordinator listening on {farm.port}; attach more workers with:")
    print(
        f"  python -m repro.runtime.dist_worker "
        f"--host <coordinator-ip> --port {farm.port} --fn {TASK_FN}"
    )
    print()

    # three workers at 20 ms/task sustain ~150 tasks/s; demand 110 so the
    # contract holds — until the severed connection removes a third of it
    controller = FarmController(
        farm,
        MinThroughputContract(110.0),
        control_period=0.15,
        max_workers=6,
    )

    try:
        total = 400
        for i in range(total):
            farm.submit((WORK, i))
            if i == 120:
                # the rate window is full of steady-state throughput now,
                # so the contract reads as satisfied until the fault
                controller.start()
            if i == 180:
                victim = farm.drop_connection()  # cut the TCP link only
                print(f"[t={farm.now():5.2f}s] severed connection of worker {victim}")
            time.sleep(0.005)  # ~200 tasks/s arrival pressure

        results = farm.drain_results(total, timeout=120.0)
        controller.stop()

        snap = farm.snapshot()
        lost = total - len(set(results))
        print()
        print(f"tasks submitted : {total}")
        print(f"results received: {len(results)}  (lost: {lost})")
        print(f"final workers   : {snap.num_workers} (started at 3)")
        print(f"throughput      : {snap.departure_rate:.1f} tasks/s")
        print()
        print("fault accounting:")
        for t, worker_id in farm.crashes:
            print(f"  t={t:5.2f}s  worker {worker_id} declared dead")
        print(f"  task dispatches replayed : {farm.replays}")
        print(f"  duplicate results dropped: {farm.duplicates}")
        print(f"  dead-lettered tasks      : {len(farm.dead_letters)}")
        print()
        print("controller actions (CheckRateLow restoring capacity):")
        for t, action in controller.actions:
            print(f"  t={t:5.2f}s  {action}")
        print()
        ok = lost == 0 and not farm.dead_letters
        print(f"zero loss       : {ok}")
    finally:
        controller.stop()
        farm.shutdown()


if __name__ == "__main__":
    main()
