#!/usr/bin/env python3
"""Quickstart: one behavioural skeleton, one contract, zero tuning.

Builds a task-farm behavioural skeleton on the simulated grid, gives it
a throughput SLA, and lets the autonomic manager do the rest: it starts
from a single worker and recruits resources until the contract holds.

Run:  python examples/quickstart.py
"""

from repro.core import MinThroughputContract, build_farm_bs
from repro.sim import ResourceManager, Simulator, make_cluster
from repro.sim.workload import ConstantWork, TaskSource


def main() -> None:
    sim = Simulator()

    # A pool of 16 identical nodes, managed by the grid's resource broker.
    pool = ResourceManager(make_cluster(16))

    # A farm BS whose workers each need 5 s per task (0.2 tasks/s each).
    bs = build_farm_bs(
        sim,
        pool,
        name="farm",
        worker_work=5.0,
        initial_degree=1,
        control_period=10.0,
    )

    # A stream of tasks arriving at 0.8 tasks/s.
    TaskSource(sim, bs.farm.input, rate=0.8, work_model=ConstantWork(5.0))

    # The user's SLA: at least 0.6 results per second.  Everything that
    # follows — monitoring, rule evaluation, resource recruitment — is
    # the manager's business, not ours.
    bs.assign_contract(MinThroughputContract(0.6))

    sim.run(until=300.0)

    snap = bs.farm.force_snapshot()
    print(f"contract     : {bs.manager.contract}")
    print(f"workers      : started at 1, now {snap.num_workers}")
    print(f"throughput   : {snap.departure_rate:.2f} tasks/s")
    print(f"satisfied    : {bs.manager.contract_satisfied()}")
    print()
    print("manager actions taken:")
    for ev in bs.trace.events_of("AM_farm"):
        if ev.name in ("addWorker", "removeWorker", "rebalance"):
            print(f"  t={ev.time:6.1f}s  {ev.name}  {dict(ev.detail)}")


if __name__ == "__main__":
    main()
