#!/usr/bin/env python3
"""The same autonomic policies on real threads (ProActive analog).

Everything else in this repo runs on the deterministic simulator; this
example runs the *identical* Figure 5 rule set against a live
``threading``-based farm executing a real Python function.  The
wall-clock controller watches the farm's measured throughput and grows
it under load — mechanism/policy separation made concrete.

(Python's GIL caps true parallel speed-up for CPU-bound functions; the
worker function here sleeps to emulate I/O-bound work, where threads do
scale.)

Run:  python examples/live_threads.py
"""

import time

from repro.core import MinThroughputContract
from repro.runtime import ThreadFarm, ThreadFarmController


def filter_image(task_id: int) -> int:
    """Stand-in for an I/O-bound processing step (~50 ms each)."""
    time.sleep(0.05)
    return task_id * task_id


def main() -> None:
    farm = ThreadFarm(filter_image, initial_workers=1, name="livefarm")
    # One worker sustains ~20 tasks/s; demand 60 -> the controller must
    # grow the farm to at least 3 workers.
    controller = ThreadFarmController(
        farm,
        MinThroughputContract(60.0),
        control_period=0.25,
        max_workers=8,
    ).start()

    try:
        total = 600
        for i in range(total):
            farm.submit(i)
            time.sleep(0.01)  # ~100 tasks/s arrival pressure
        results = farm.drain_results(total, timeout=60.0)
        controller.stop()

        snap = farm.snapshot()
        print(f"tasks processed : {len(results)}")
        print(f"final workers   : {snap.num_workers} (started at 1)")
        print(f"throughput      : {snap.departure_rate:.1f} tasks/s")
        print()
        print("controller actions:")
        for t, action in controller.actions:
            print(f"  t={t:5.2f}s  {action}")
        if controller.violations:
            print("violations reported:")
            for t, kind in controller.violations[:5]:
                print(f"  t={t:5.2f}s  {kind}")
    finally:
        controller.stop()
        farm.shutdown()


if __name__ == "__main__":
    main()
