#!/usr/bin/env python3
"""Multi-concern management: performance vs security (paper §3.2).

A farm must grow to hold its throughput SLA, but the only free nodes
live in ``untrusted_ip_domain_A``.  Two concern managers — AM_perf and
AM_sec — are coordinated by a general manager (GM).  We run the same
scenario twice:

* **naive** — AM_perf commits new workers immediately; AM_sec only
  notices at its next control tick.  The network audit log counts every
  plaintext message that crossed untrusted ground in the meantime.
* **two-phase** — AM_perf declares an *intent*; AM_sec amends the plan
  ("these nodes run secured") before the commit.  Zero leaks.

Run:  python examples/multiconcern_security.py
"""

from repro.experiments.multiconcern import MultiConcernConfig, run_multiconcern
from repro.experiments.report import render_multiconcern


def main() -> None:
    naive = run_multiconcern(MultiConcernConfig(mode="naive"))
    two_phase = run_multiconcern(MultiConcernConfig(mode="two-phase"))

    print(render_multiconcern(naive, two_phase))

    print("--- naive mode: the leaked messages ---")
    for rec in naive.network.leaks()[:10]:
        print(
            f"  t={rec.time:6.1f}s  {rec.kind:>6}  {rec.src} -> {rec.dst}  "
            f"(plaintext over a non-private link)"
        )

    print()
    print("--- two-phase mode: the intent reviews ---")
    for rec in two_phase.gm.intents:
        print(
            f"  t={rec.time:6.1f}s  {rec.originator} asked {rec.operation}: "
            f"{rec.outcome} after review by {list(rec.reviewers)} "
            f"({rec.amendments} amendment(s))"
        )


if __name__ == "__main__":
    main()
