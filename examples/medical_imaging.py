#!/usr/bin/env python3
"""The paper's Figure 3 application: medical image processing at 0.6 img/s.

A stream of "images" (synthetic tasks sized so one worker sustains 0.2
images/s) flows through a task-farm behavioural skeleton whose manager
holds the user SLA "0.6 images per second".  The run regenerates the
ramp-up plot of the paper's Figure 3, including a mid-stream *hot spot*
(a stretch of images that are 3x harder to process — §4.1's "temporary
hot spots in image processing") to show the manager compensating.

Run:  python examples/medical_imaging.py
"""

from repro.core import MinThroughputContract, build_farm_bs
from repro.sim import ResourceManager, Simulator, TraceRecorder, make_cluster
from repro.sim.trace import ascii_series
from repro.sim.workload import ConstantWork, HotSpotWork, TaskSource

TARGET = 0.6          # images per second (the paper's SLA)
IMAGE_WORK = 5.0      # seconds of processing per image on one node
HOT_SPOT = (120, 160) # image indices that are 3x harder


def main() -> None:
    sim = Simulator()
    trace = TraceRecorder()
    pool = ResourceManager(make_cluster(16, prefix="imgnode"))

    bs = build_farm_bs(
        sim,
        pool,
        name="imgfarm",
        worker_work=IMAGE_WORK,
        initial_degree=1,
        trace=trace,
        control_period=10.0,
        constants_kwargs={"add_burst": 1, "max_workers": 16},
    )

    work = HotSpotWork(ConstantWork(IMAGE_WORK), *HOT_SPOT, factor=3.0)
    TaskSource(sim, bs.farm.input, rate=0.8, work_model=work, name="scanner")

    bs.assign_contract(MinThroughputContract(TARGET))

    def sample() -> None:
        snap = bs.farm.force_snapshot()
        trace.sample("throughput", sim.now, snap.departure_rate)
        trace.sample("workers", sim.now, snap.num_workers)

    sim.periodic(5.0, sample)
    sim.run(until=700.0)

    print(
        ascii_series(
            trace.series_values("throughput"),
            hlines=[TARGET],
            title=f"images/s processed (contract: >= {TARGET}) — hot spot at "
            f"images {HOT_SPOT[0]}-{HOT_SPOT[1]}",
            height=12,
        )
    )
    print(ascii_series(trace.series_values("workers"), title="workers allocated", height=8))

    adds = trace.events_of(name="addWorker")
    print(f"worker additions: {[round(e.time, 1) for e in adds]}")
    snap = bs.farm.force_snapshot()
    print(f"final: {snap.num_workers} workers, {snap.departure_rate:.2f} img/s, "
          f"{snap.completed} images processed")


if __name__ == "__main__":
    main()
