#!/usr/bin/env python3
"""The paper's nested tree: farm(pipeline(seq, seq)) under one manager.

Section 3.1's canonical composition is a farm whose workers are
pipelines.  Here each farm executor is a two-stage pipeline replica
(pre-process 2 s, then filter 5 s), so adding an "executor" recruits two
nodes at once.  The unchanged farm manager and Figure 5 rules grow the
replica count until the throughput contract holds — behavioural-skeleton
composition at work.

Run:  python examples/nested_skeletons.py
"""

from repro.core import MinThroughputContract
from repro.core.skeleton_manager import FarmManager
from repro.gcm.abc_controller import FarmABC
from repro.sim import ResourceManager, SimFarmOfPipelines, Simulator, make_cluster
from repro.sim.trace import ascii_series
from repro.sim.workload import ConstantWork, TaskSource
from repro.skeletons import Farm, Pipe, Seq, service_time, throughput

STAGE_WORKS = [2.0, 5.0]  # pre-process, filter


def main() -> None:
    sim = Simulator()
    pool = ResourceManager(make_cluster(24, prefix="node"))

    fp = SimFarmOfPipelines(
        sim,
        name="nested",
        stage_works=STAGE_WORKS,
        replica_setup_time=5.0,
        rate_window=20.0,
    )
    abc = FarmABC(fp, pool, nodes_per_executor=len(STAGE_WORKS))
    abc.bootstrap(1)
    manager = FarmManager("AM_nest", sim, abc, control_period=10.0, manage_workers=False)

    TaskSource(sim, fp.input, rate=0.8, work_model=ConstantWork(1.0), name="stream")
    manager.assign_contract(MinThroughputContract(0.6))

    # the analytic prediction from the skeleton cost model
    def predicted(replicas: int) -> float:
        return throughput(Farm(Pipe(*[Seq(w) for w in STAGE_WORKS]), degree=replicas))

    trace = manager.trace

    def sample() -> None:
        snap = fp.force_snapshot()
        trace.sample("throughput", sim.now, snap.departure_rate)
        trace.sample("replicas", sim.now, snap.num_workers)

    sim.periodic(5.0, sample)
    sim.run(until=400.0)

    print(
        ascii_series(
            trace.series_values("throughput"),
            hlines=[0.6],
            title="tasks/s through farm(pipe(seq(2), seq(5))) — contract 0.6",
            height=10,
        )
    )
    snap = fp.force_snapshot()
    n = snap.num_workers
    print(f"replicas        : {n} (each = 2 nodes; {len(abc.nodes_in_use)} nodes in use)")
    print(f"throughput      : {snap.departure_rate:.2f} tasks/s")
    print(f"cost model says : {predicted(n):.2f} tasks/s at {n} replicas "
          f"(slowest stage {max(STAGE_WORKS):g}s)")
    print(f"contract met    : {manager.contract_satisfied()}")


if __name__ == "__main__":
    main()
