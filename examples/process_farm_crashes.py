#!/usr/bin/env python3
"""Crash fault-tolerance on the process farm — kill a worker, lose nothing.

The thread farm (``live_threads.py``) shares one interpreter, so a
worker cannot die without taking the whole program with it.  The
process farm runs each worker as an OS process supervised by
heartbeats, which makes *crash* a real, injectable fault: this example
SIGKILLs a worker mid-stream and shows the recovery chain the paper
frames as contract enforcement —

* the heartbeat supervisor declares the death and **replays** the
  victim's un-acked tasks on the survivors (at-least-once dispatch,
  deduplicated to exactly-once results);
* the drop in measured throughput violates the performance contract,
  so the *unmodified* Figure 5 ``CheckRateLow`` rule fires
  ``addWorker`` and restores capacity — fault recovery and performance
  management through one rule set.

Run:  python examples/process_farm_crashes.py
"""

import time

from repro.core import MinThroughputContract
from repro.runtime import FarmController, ProcessFarm


def filter_image(task_id: int) -> int:
    """Stand-in for a blocking processing step (~20 ms each)."""
    time.sleep(0.02)
    return task_id * task_id


def main() -> None:
    farm = ProcessFarm(
        filter_image,
        initial_workers=3,
        name="pfarm",
        heartbeat_period=0.05,
        heartbeat_timeout=0.5,
        supervise_period=0.02,
        backoff_base=0.02,
        backoff_cap=0.2,
        rate_window=0.5,
    )
    # Three workers at 20 ms/task sustain ~150 tasks/s; demand 110 so the
    # contract holds — until the crash removes a third of the capacity.
    controller = FarmController(
        farm,
        MinThroughputContract(110.0),
        control_period=0.15,
        max_workers=6,
    )

    try:
        total = 400
        victim = None
        for i in range(total):
            farm.submit(i)
            if i == 120:
                # the rate window is full of steady-state throughput now,
                # so the contract reads as satisfied until the crash
                controller.start()
            if i == 180:
                victim = farm.inject_crash()  # SIGKILL, no cleanup
                print(f"[t={farm.now():5.2f}s] SIGKILL -> worker {victim}")
            time.sleep(0.005)  # ~200 tasks/s arrival pressure

        results = farm.drain_results(total, timeout=120.0)
        controller.stop()

        snap = farm.snapshot()
        lost = total - len(set(results))
        print()
        print(f"tasks submitted : {total}")
        print(f"results received: {len(results)}  (lost: {lost})")
        print(f"final workers   : {snap.num_workers} (started at 3)")
        print(f"throughput      : {snap.departure_rate:.1f} tasks/s")
        print()
        print("fault accounting:")
        for t, worker_id in farm.crashes:
            print(f"  t={t:5.2f}s  worker {worker_id} declared dead")
        print(f"  task dispatches replayed : {farm.replays}")
        print(f"  duplicate results dropped: {farm.duplicates}")
        print(f"  dead-lettered tasks      : {len(farm.dead_letters)}")
        print()
        print("controller actions (CheckRateLow restoring capacity):")
        for t, action in controller.actions:
            print(f"  t={t:5.2f}s  {action}")
        print()
        ok = lost == 0 and not farm.dead_letters
        print(f"zero loss       : {ok}")
    finally:
        controller.stop()
        farm.shutdown()


if __name__ == "__main__":
    main()
