#!/usr/bin/env python3
"""The paper's Figure 4 application: hierarchical management of a pipeline.

``pipeline(producer, farm(filter), consumer)`` with four autonomic
managers — AM_A over AM_P / AM_F / AM_C — holding a 0.3–0.7 tasks/s
throughput SLA.  The producer deliberately starts too slow, so the full
§4.2 story plays out: starvation violations, incRate contracts, worker
additions in pairs, an overshoot warning with decRate, end-of-stream and
rebalancing.  Prints the regenerated four-graph figure.

Run:  python examples/pipeline_hierarchy.py
"""

from repro.core import format_hierarchy
from repro.experiments.fig4 import Fig4Config, run_fig4
from repro.experiments.report import render_fig4


def main() -> None:
    result = run_fig4(Fig4Config())

    print(render_fig4(result))
    print("--- final manager hierarchy ---")
    print(format_hierarchy(result.app.am_a))

    print("--- the causal story, step by step ---")
    interesting = {
        "raiseViol", "incRate", "decRate", "addWorker", "rebalance", "endStream",
    }
    shown = 0
    for ev in result.trace.events:
        if ev.name in interesting and shown < 25:
            detail = f"  {dict(ev.detail)}" if ev.detail else ""
            print(f"  t={ev.time:7.1f}s  {ev.actor:>5}  {ev.name}{detail}")
            shown += 1
            if ev.name == "endStream":
                break


if __name__ == "__main__":
    main()
