"""Bench the longitudinal plane: TSDB scraping + SLO evaluation + /query.

The time-series store scrapes the whole metrics registry on a wall
clock interval and the SLO engine re-judges every objective after each
scrape — both ride alongside the hot path, never on it, so their cost
must stay in the noise even at an aggressive 10 ms interval (100x
denser than the 1 s production default).  This bench pins that down in
``benchmarks/out/BENCH_slo.json``:

* **scrape+eval overhead** — wall time of a 1 ms-task thread-farm
  stream with the TSDB scraping at 10 ms and a throughput SLO being
  evaluated on every scrape, over the same stream with plain telemetry
  (tracing on, no TSDB).  The assertion: the longitudinal plane costs
  at most ``OVERHEAD_CEILING``x (5%) on top of tracing.
* **/query latency at full retention** — median and p95 milliseconds
  for a windowed-p95 histogram query and a downsampled gauge query over
  the HTTP surface once every ring buffer is at capacity, i.e. the
  worst case the dashboard's refresh loop ever sees.

Smoke mode shrinks the stream and skips the ceiling assertion while
still writing the artefact; the committed baseline is a smoke-mode
budget enforced by ``check_regression.py`` in the bench-gate CI job.
"""

import statistics
import time
import urllib.request

import pytest

from repro.core.contracts import MinThroughputContract
from repro.obs import Telemetry
from repro.obs.clock import ManualClock
from repro.obs.slo import SLO, BurnWindows, SLOEngine
from repro.runtime.farm_runtime import ThreadFarm

WORKERS = 4
SCRAPE_INTERVAL = 0.01

#: instrumented wall time may be at most this multiple of plain-telemetry
OVERHEAD_CEILING = 1.05


def sleep_task(payload):
    """1 ms of blocking work: the realistic mixed-cost shape."""
    work, value = payload
    time.sleep(work)
    return value


def run_plain(payloads):
    """Seconds to drain the stream with tracing on but no TSDB/SLO."""
    tel = Telemetry()
    farm = ThreadFarm(sleep_task, initial_workers=WORKERS, telemetry=tel)
    try:
        t0 = time.monotonic()
        for p in payloads:
            farm.submit(p)
        farm.drain_results(len(payloads), timeout=600.0)
        return time.monotonic() - t0
    finally:
        farm.shutdown()


def run_instrumented(payloads):
    """Same stream with a 10 ms scraper and a live SLO engine attached.

    Returns (seconds, scrapes, evaluations) so the artefact can prove
    the longitudinal plane was actually running during the measurement.
    """
    tel = Telemetry()
    tel.start_timeseries(
        interval=SCRAPE_INTERVAL, retention=30.0, scraper_thread=True
    )
    farm = ThreadFarm(sleep_task, initial_workers=WORKERS, telemetry=tel)

    def sample(store, now):
        rate = store.window_rate(
            "repro_mc_dispatch_total", 0.5, {"farm": farm.name}
        )
        return {} if rate is None else {"departure_rate": rate}

    engine = SLOEngine(
        tel,
        tel.timeseries,
        [SLO("bench.throughput", MinThroughputContract(1.0), sample)],
        windows=BurnWindows().scaled(1.0 / 150.0),
    )
    try:
        t0 = time.monotonic()
        for p in payloads:
            farm.submit(p)
        farm.drain_results(len(payloads), timeout=600.0)
        elapsed = time.monotonic() - t0
        return elapsed, tel.timeseries.scrapes, engine.evaluations
    finally:
        farm.shutdown()
        tel.stop_timeseries()


def fill_to_retention(samples):
    """A telemetry whose every ring buffer sits at capacity.

    One gauge family with four label sets, one counter and one
    histogram, scraped ``samples`` times on a manual clock — the
    densest store the dashboard ever queries.
    """
    clock = ManualClock()
    tel = Telemetry(clock)
    gauges = [
        tel.metrics.gauge("repro_farm_departure_rate", "r").labels(
            manager=f"AM_b{i}"
        )
        for i in range(4)
    ]
    counter = tel.metrics.counter("repro_bench_total", "c").labels()
    hist = tel.metrics.histogram(
        "repro_farm_latency_seconds", "l"
    ).labels(manager="AM_b0")
    tel.start_timeseries(
        interval=SCRAPE_INTERVAL,
        retention=samples * SCRAPE_INTERVAL,
        scraper_thread=False,
    )
    # overfill by 25% so the rings have demonstrably wrapped
    for step in range(int(samples * 1.25)):
        for k, g in enumerate(gauges):
            g.set(40.0 + (step + k) % 17)
        counter.inc(3)
        hist.observe(0.001 * (1 + step % 9))
        clock.advance(SCRAPE_INTERVAL)
        tel.timeseries.scrape_once()
    return tel


def timed_queries(url, rounds):
    """Median/p95 milliseconds over ``rounds`` HTTP round trips."""
    laps = []
    for _ in range(rounds):
        t0 = time.monotonic()
        with urllib.request.urlopen(url, timeout=10) as resp:
            resp.read()
        laps.append((time.monotonic() - t0) * 1000.0)
    laps.sort()
    return {
        "median_ms": statistics.median(laps),
        "p95_ms": laps[min(len(laps) - 1, int(len(laps) * 0.95))],
    }


@pytest.mark.benchmark(group="slo")
def test_slo_overhead_and_query_latency(benchmark, json_sink, smoke_mode):
    n_tasks = 100 if smoke_mode else 1000
    rounds = 1 if smoke_mode else 3
    retention_samples = 200 if smoke_mode else 1000
    query_rounds = 20 if smoke_mode else 100

    payloads = [(0.001, i) for i in range(n_tasks)]

    def one_round():
        return run_plain(payloads)

    assert benchmark.pedantic(one_round, rounds=rounds, iterations=1) > 0

    plain = min(run_plain(payloads) for _ in range(rounds))
    instrumented, scrapes, evaluations = min(
        (run_instrumented(payloads) for _ in range(rounds)),
        key=lambda r: r[0],
    )

    tel = fill_to_retention(retention_samples)
    with tel.serve(port=0) as srv:
        gauge_q = timed_queries(
            srv.url(
                "/query?metric=repro_farm_departure_rate"
                f"&since=-{retention_samples * SCRAPE_INTERVAL}"
                f"&step={SCRAPE_INTERVAL * 10}&field=avg"
            ),
            query_rounds,
        )
        hist_q = timed_queries(
            srv.url(
                "/query?metric=repro_farm_latency_seconds"
                f"&since=-{retention_samples * SCRAPE_INTERVAL}"
                f"&step={SCRAPE_INTERVAL * 10}&field=p95"
            ),
            query_rounds,
        )
    tel.stop_timeseries()

    payload = {
        "workers": WORKERS,
        "tasks": n_tasks,
        "scrape_interval_s": SCRAPE_INTERVAL,
        "plain_seconds": plain,
        "instrumented_seconds": instrumented,
        "overhead_x": instrumented / plain if plain > 0 else float("inf"),
        "scrapes_during_run": scrapes,
        "slo_evaluations": evaluations,
        "retention_samples": retention_samples,
        "query_gauge_avg": gauge_q,
        "query_histogram_p95": hist_q,
        "overhead_ceiling_x": OVERHEAD_CEILING,
        "smoke_mode": smoke_mode,
    }
    json_sink("slo", payload)

    # the longitudinal plane was demonstrably live during the run
    assert scrapes > 0 and evaluations > 0
    if not smoke_mode:
        assert payload["overhead_x"] < OVERHEAD_CEILING
