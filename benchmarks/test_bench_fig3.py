"""Bench FIG3 — regenerate Figure 3 (single AM, 0.6 task/s contract).

Timing target: a full FIG3 scenario (600 simulated seconds of farm +
manager dynamics).  Shape assertions guard the reproduced behaviour; the
rendered figure goes to ``benchmarks/out/fig3.txt``.
"""

import pytest

from repro.experiments.fig3 import Fig3Config, run_fig3
from repro.experiments.report import render_fig3


@pytest.mark.benchmark(group="fig3")
def test_fig3_scenario(benchmark, report_sink, json_sink):
    result = benchmark.pedantic(run_fig3, rounds=3, iterations=1)

    # paper shape: ramp up from 1 worker until the contract holds
    assert result.contract_met
    assert result.staircase_is_monotone()
    assert result.remove_worker_count == 0
    assert result.final_workers >= 3  # 0.6 t/s at 0.2 t/s per worker
    assert result.time_to_contract is not None

    report_sink("fig3", render_fig3(result))
    json_sink(
        "fig3",
        {
            "steady_state_throughput": result.final_throughput,
            "adaptation_latency": result.time_to_contract,
            "final_workers": result.final_workers,
            "add_worker_times": result.add_worker_times,
            "workers_over_time": result.workers_series,
            "throughput_over_time": result.throughput_series,
        },
    )


@pytest.mark.benchmark(group="fig3")
def test_fig3_time_to_contract_scales_with_target(benchmark):
    """Tighter contracts need more ramp steps (sanity of the dynamics)."""

    def run_pair():
        lo = run_fig3(Fig3Config(target_throughput=0.3, input_rate=0.5, duration=400.0))
        hi = run_fig3(Fig3Config(target_throughput=0.9, input_rate=1.1, duration=400.0))
        return lo, hi

    lo, hi = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert hi.final_workers > lo.final_workers
    assert hi.time_to_contract >= lo.time_to_contract
