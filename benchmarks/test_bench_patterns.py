"""Bench PATTERNS — farm vs data-parallel map trade-off table."""

import pytest

from repro.experiments.patterns import run_patterns
from repro.experiments.report import render_patterns


@pytest.mark.benchmark(group="patterns")
def test_patterns_tradeoff(benchmark, report_sink):
    result = benchmark.pedantic(
        lambda: run_patterns(degrees=(2, 4, 8)), rounds=1, iterations=1
    )
    for d in result.degrees():
        assert result.farm_wins_throughput(d)
        assert result.map_wins_latency(d)
    report_sink("patterns", render_patterns(result))
