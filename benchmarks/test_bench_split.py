"""Bench SPLIT — P_spl heuristics quality and soundness (§3.1)."""

import pytest

from repro.experiments.report import render_split
from repro.experiments.split import run_split, verify_throughput_split_soundness


@pytest.mark.benchmark(group="split")
def test_split_heuristics(benchmark, report_sink):
    result = benchmark.pedantic(
        lambda: run_split(n_cases=100), rounds=3, iterations=1
    )
    soundness = verify_throughput_split_soundness(n_cases=200)

    checked, held = soundness
    assert held == checked                    # the heuristic is sound
    assert result.mean_efficiency >= 0.9      # near-optimal on average
    assert result.beats_or_ties_uniform_fraction >= 0.8

    report_sink("split", render_split(result, soundness))
