"""Bench FIG5 — the rule engine under the paper's farm rule set.

Figure 5 is a code artefact (the AM_F JBoss rule file); its benchmark
counterpart measures our transliterated rule set's evaluation cost: a
manager tick must be orders of magnitude cheaper than the control
period, or the autonomic layer would perturb the computation it manages.
"""

import pytest

from repro.core.policies import ManagersConstants, farm_rules
from repro.rules.beans import (
    ArrivalRateBean,
    DepartureRateBean,
    NumWorkerBean,
    QueueVarianceBean,
    RecordingSink,
)
from repro.rules.dsl import rule
from repro.rules.engine import RuleEngine


def build_engine():
    consts = ManagersConstants(low=0.3, high=0.7)
    return RuleEngine(farm_rules(consts)), RecordingSink()


def one_tick(eng, sink):
    eng.memory.replace(ArrivalRateBean(0.5).bind_sink(sink))
    eng.memory.replace(DepartureRateBean(0.1).bind_sink(sink))
    eng.memory.replace(NumWorkerBean(3).bind_sink(sink))
    eng.memory.replace(QueueVarianceBean(1.0).bind_sink(sink))
    return eng.evaluate()


@pytest.mark.benchmark(group="rules")
def test_fig5_rule_set_tick(benchmark):
    """One full manager tick over the five Figure 5 rules."""
    eng, sink = build_engine()
    fired = benchmark(one_tick, eng, sink)
    assert "CheckRateLow" in fired


@pytest.mark.benchmark(group="rules")
def test_fig5_quiet_tick(benchmark):
    """The common case: everything in contract, no rule fires."""
    eng, sink = build_engine()

    def quiet():
        eng.memory.replace(ArrivalRateBean(0.5).bind_sink(sink))
        eng.memory.replace(DepartureRateBean(0.5).bind_sink(sink))
        eng.memory.replace(NumWorkerBean(3).bind_sink(sink))
        eng.memory.replace(QueueVarianceBean(1.0).bind_sink(sink))
        return eng.evaluate()

    assert benchmark(quiet) == []


@pytest.mark.benchmark(group="rules")
def test_agenda_scaling_100_rules(benchmark):
    """Agenda computation with a rule base 20x the paper's size."""
    eng = RuleEngine()
    for i in range(100):
        eng.add_rule(
            rule(f"r{i}")
            .salience(i % 7)
            .when(ArrivalRateBean, lambda b, i=i: b.value > i / 100.0)
            .then(lambda act: None)
        )
    eng.memory.insert(ArrivalRateBean(0.55))
    fired = benchmark(eng.evaluate)
    assert len(fired) == 55
