"""Shared fixtures for the benchmark harnesses.

Every figure-level bench renders its textual figure/table into
``benchmarks/out/<name>.txt`` (via the ``report_sink`` fixture) so the
regenerated artefacts survive a plain ``pytest benchmarks/
--benchmark-only`` run; pass ``-s`` to also see them inline.
"""

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def report_sink():
    """Write one experiment's rendered report to benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> pathlib.Path:
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text)
        print(f"\n{text}\n[report written to {path}]")
        return path

    return write
