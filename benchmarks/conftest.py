"""Shared fixtures for the benchmark harnesses.

Every figure-level bench renders its textual figure/table into
``benchmarks/out/<name>.txt`` (via the ``report_sink`` fixture) so the
regenerated artefacts survive a plain ``pytest benchmarks/
--benchmark-only`` run; pass ``-s`` to also see them inline.  The
``json_sink`` fixture does the same for machine-readable summaries
(``benchmarks/out/BENCH_<name>.json``), which trend-tracking tooling can
diff across revisions.
"""

import json
import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: CI smoke mode (REPRO_BENCH_SMOKE=1): shrink live-runtime workloads to
#: seconds and skip hardware-dependent perf assertions, so every PR still
#: exercises the bench code paths and uploads fresh artefacts.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


@pytest.fixture(scope="session")
def smoke_mode() -> bool:
    """True when the bench run is a CI smoke pass (tiny workloads)."""
    return SMOKE


@pytest.fixture(scope="session")
def report_sink():
    """Write one experiment's rendered report to benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> pathlib.Path:
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text)
        print(f"\n{text}\n[report written to {path}]")
        return path

    return write


@pytest.fixture(scope="session")
def json_sink():
    """Write one experiment's summary dict to benchmarks/out/BENCH_<name>.json."""
    OUT_DIR.mkdir(exist_ok=True)

    def write(name: str, payload: dict) -> pathlib.Path:
        path = OUT_DIR / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n")
        print(f"\n[summary written to {path}]")
        return path

    return write
