"""Bench the live thread runtime: the cost-of-security measurement.

The paper's conclusions recall [31] ("The cost of security in skeletal
systems"): securing channels costs real throughput.  On the thread farm
the secure channel genuinely encrypts (toy cipher), so this bench
measures that overhead on this machine — and checks it stays within a
sane band rather than dominating.
"""

import pytest

from repro.runtime.farm_runtime import ThreadFarm
from repro.security.crypto import CryptoCostModel, decrypt, encrypt


def run_farm(n_tasks: int, secured: bool) -> float:
    farm = ThreadFarm(lambda x: x + 1, initial_workers=4)
    try:
        if secured:
            farm.secure_all()
        for i in range(n_tasks):
            farm.submit(i)
        farm.drain_results(n_tasks, timeout=60.0)
        return farm.now()
    finally:
        farm.shutdown()


@pytest.mark.benchmark(group="runtime")
def test_thread_farm_plain(benchmark):
    assert benchmark.pedantic(
        lambda: run_farm(500, secured=False), rounds=3, iterations=1
    ) > 0


@pytest.mark.benchmark(group="runtime")
def test_thread_farm_secured(benchmark):
    assert benchmark.pedantic(
        lambda: run_farm(500, secured=True), rounds=3, iterations=1
    ) > 0


@pytest.mark.benchmark(group="runtime")
def test_crypto_throughput(benchmark):
    """Encrypt+decrypt of a 64 KB payload (the simulated task size)."""
    payload = bytes(64 * 1024)
    key = b"bench-key"

    def roundtrip():
        return decrypt(key, encrypt(key, payload))

    assert benchmark(roundtrip) == payload


@pytest.mark.benchmark(group="runtime")
def test_calibrated_cost_model(benchmark, report_sink):
    """Machine-specific secure-channel factor for the simulator."""
    model = benchmark.pedantic(CryptoCostModel.calibrate, rounds=3, iterations=1)
    assert 1.05 <= model.factor <= 5.0
    report_sink(
        "crypto_calibration",
        "=== secure-channel cost model (calibrated on this machine) ===\n\n"
        f"multiplicative factor: {model.factor:.3f}\n"
        f"handshake latency:     {model.handshake * 1000:.1f} ms\n"
        "\n(paper [31] reports 10-40% overheads for skeletal systems;\n"
        "the simulator's default Network(secure_factor=1.3) sits in-band)\n",
    )
