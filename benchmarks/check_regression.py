"""CI bench-regression gate: every budgeted artefact, one verdict.

Compares freshly produced ``benchmarks/out/BENCH_<name>.json`` artefacts
(smoke mode is fine — the committed baselines are smoke-mode budgets)
against ``benchmarks/baselines/BENCH_<name>.baseline.json`` and exits
non-zero — a hard CI failure, not a warning — when:

* any gated key regresses more than ``--max-regression`` (default 25%)
  over its baseline budget — ``per_task_dist_ms`` for the transport,
  ``thread_1ms.overhead_x`` for tracing, ``overhead_x`` and the
  ``/query`` p95 latencies for the TSDB/SLO plane; or
* any run lost tasks (``tasks_lost`` anywhere in an artefact), which
  would make every timing number meaningless.

Usage (what the ``bench-gate`` CI job runs after producing the
artefacts)::

    python benchmarks/check_regression.py            # gate everything
    python benchmarks/check_regression.py --only dist obs

Re-baselining is a deliberate act: edit the baseline JSON in its own
commit with the reasoning in the message, never as a side effect of a
feature PR going red.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from dataclasses import dataclass
from typing import Any, Iterator, Tuple

HERE = pathlib.Path(__file__).parent
OUT = HERE / "out"
BASELINES = HERE / "baselines"


@dataclass(frozen=True)
class Gate:
    """One budgeted number: a dotted path into current and baseline JSON."""

    artefact: str  # BENCH_<artefact>.json / .baseline.json
    key: str  # dotted path, e.g. "thread_1ms.overhead_x"
    unit: str  # printed next to the numbers


#: the full gate set; --only filters by artefact name
GATES = [
    Gate("dist", "per_task_dist_ms", "ms"),
    Gate("obs", "thread_1ms.overhead_x", "x"),
    Gate("slo", "overhead_x", "x"),
    Gate("slo", "query_gauge_avg.p95_ms", "ms"),
    Gate("slo", "query_histogram_p95.p95_ms", "ms"),
]


def dig(node: Any, dotted: str) -> Any:
    """Resolve ``a.b.c`` into nested dicts; None when any hop is absent."""
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def iter_lost(node: Any, path: str = "") -> Iterator[Tuple[str, Any]]:
    """Yield (path, value) for every ``tasks_lost`` entry in an artefact."""
    if isinstance(node, dict):
        for key, value in node.items():
            where = f"{path}.{key}" if path else key
            if key == "tasks_lost":
                yield where, value
            else:
                yield from iter_lost(value, where)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only",
        nargs="*",
        metavar="ARTEFACT",
        help="gate only these artefacts (e.g. dist obs slo); default: all",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="tolerated fractional regression over baseline (default: 0.25)",
    )
    args = parser.parse_args(argv)

    names = {g.artefact for g in GATES}
    selected = set(args.only) if args.only else names
    unknown = selected - names
    if unknown:
        print(f"FAIL: unknown artefact(s) {sorted(unknown)}; know {sorted(names)}")
        return 1

    failures = []
    checked = set()
    for gate in GATES:
        if gate.artefact not in selected:
            continue
        current_path = OUT / f"BENCH_{gate.artefact}.json"
        baseline_path = BASELINES / f"BENCH_{gate.artefact}.baseline.json"
        try:
            current = json.loads(current_path.read_text())
        except FileNotFoundError:
            if gate.artefact not in checked:
                failures.append(
                    f"no bench artefact at {current_path} — did the bench run?"
                )
                checked.add(gate.artefact)
            continue
        baseline = json.loads(baseline_path.read_text())

        if gate.artefact not in checked:
            checked.add(gate.artefact)
            for where, lost in iter_lost(current):
                if lost:
                    failures.append(
                        f"{gate.artefact}: {where} = {lost}: the run lost tasks"
                    )

        budget = dig(baseline, gate.key)
        if budget is None:
            failures.append(
                f"{gate.artefact}: baseline {baseline_path.name} has no "
                f"{gate.key!r} budget"
            )
            continue
        measured = dig(current, gate.key)
        limit = budget * (1.0 + args.max_regression)
        if measured is None:
            failures.append(
                f"{gate.artefact}: {gate.key} missing from the bench artefact"
            )
            continue
        verdict = "ok" if measured <= limit else "REGRESSION"
        print(
            f"{gate.artefact}:{gate.key}: measured {measured:.4f} {gate.unit} "
            f"vs budget {budget:.4f} {gate.unit} (limit {limit:.4f}, "
            f"+{100 * args.max_regression:.0f}%) -> {verdict}"
        )
        if measured > limit:
            failures.append(
                f"{gate.artefact}: {gate.key} {measured:.4f} {gate.unit} "
                f"exceeds the gate {limit:.4f} (budget {budget:.4f} "
                f"+{100 * args.max_regression:.0f}%)"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "bench-gate: "
        + ", ".join(sorted(selected))
        + " within budget, no tasks lost"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
