"""CI bench-regression gate for the distributed transport.

Compares a freshly produced ``benchmarks/out/BENCH_dist.json`` (smoke
mode is fine — the baseline is a smoke-mode budget) against the
committed ``benchmarks/baselines/BENCH_dist.baseline.json`` and exits
non-zero — a hard CI failure, not a warning — when:

* ``per_task_dist_ms`` regresses more than ``--max-regression``
  (default 25%) over the baseline budget, or
* the run lost tasks (``tasks_lost`` anywhere in the artefact), which
  would make any timing number meaningless.

Usage (what the ``bench-gate`` CI job runs)::

    python benchmarks/check_regression.py

Re-baselining is a deliberate act: edit the baseline JSON in its own
commit with the reasoning in the message, never as a side effect of a
feature PR going red.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

HERE = pathlib.Path(__file__).parent
DEFAULT_CURRENT = HERE / "out" / "BENCH_dist.json"
DEFAULT_BASELINE = HERE / "baselines" / "BENCH_dist.baseline.json"


def iter_lost(node, path=""):
    """Yield (path, value) for every ``tasks_lost`` entry in the artefact."""
    if isinstance(node, dict):
        for key, value in node.items():
            where = f"{path}.{key}" if path else key
            if key == "tasks_lost":
                yield where, value
            else:
                yield from iter_lost(value, where)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current",
        type=pathlib.Path,
        default=DEFAULT_CURRENT,
        help="freshly produced bench artefact (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=DEFAULT_BASELINE,
        help="committed baseline budget (default: %(default)s)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="tolerated fractional regression over baseline (default: 0.25)",
    )
    args = parser.parse_args(argv)

    try:
        current = json.loads(args.current.read_text())
    except FileNotFoundError:
        print(f"FAIL: no bench artefact at {args.current} — did the bench run?")
        return 1
    baseline = json.loads(args.baseline.read_text())

    failures = []

    measured = current.get("per_task_dist_ms")
    budget = baseline["per_task_dist_ms"]
    limit = budget * (1.0 + args.max_regression)
    if measured is None:
        failures.append("per_task_dist_ms missing from the bench artefact")
    else:
        verdict = "ok" if measured <= limit else "REGRESSION"
        print(
            f"per_task_dist_ms: measured {measured:.4f} ms vs baseline "
            f"{budget:.4f} ms (limit {limit:.4f} ms, "
            f"+{100 * args.max_regression:.0f}%) -> {verdict}"
        )
        if measured > limit:
            failures.append(
                f"per_task_dist_ms {measured:.4f} ms exceeds the gate "
                f"{limit:.4f} ms (baseline {budget:.4f} ms "
                f"+{100 * args.max_regression:.0f}%)"
            )

    for where, lost in iter_lost(current):
        if lost:
            failures.append(f"{where} = {lost}: the run lost tasks")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("bench-gate: transport within budget, no tasks lost")
    return 0


if __name__ == "__main__":
    sys.exit(main())
