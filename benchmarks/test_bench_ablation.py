"""Bench ABL-RULES — control-period and hysteresis sensitivity sweeps."""

import pytest

from repro.experiments.ablation import sweep_control_period, sweep_hysteresis
from repro.experiments.fig3 import Fig3Config
from repro.experiments.report import render_ablation


@pytest.mark.benchmark(group="ablation")
def test_control_period_sweep(benchmark, report_sink):
    rows = benchmark.pedantic(
        lambda: sweep_control_period(
            periods=(2.0, 5.0, 10.0, 20.0, 40.0),
            base=Fig3Config(duration=600.0),
        ),
        rounds=1,
        iterations=1,
    )
    # every period eventually satisfies the contract...
    assert all(r.time_to_contract is not None for r in rows)
    # ...but the slowest loop cannot beat the fastest to it
    assert rows[-1].time_to_contract >= rows[0].time_to_contract
    report_sink("ablation_control_period", render_ablation(rows, "control period sweep (FIG3 scenario)"))


@pytest.mark.benchmark(group="ablation")
def test_hysteresis_sweep(benchmark, report_sink):
    rows = benchmark.pedantic(
        lambda: sweep_hysteresis(widths=(0.0, 0.1, 0.2, 0.4, 0.8), duration=600.0),
        rounds=1,
        iterations=1,
    )
    degenerate, widest = rows[0], rows[-1]
    # a degenerate stripe (low == high) reconfigures at least as much as
    # the paper's wide 0.3-0.7 stripe
    assert degenerate.reconfigurations >= widest.reconfigurations
    report_sink("ablation_hysteresis", render_ablation(rows, "hysteresis width sweep (0.6-centred stripe)"))


@pytest.mark.benchmark(group="ablation")
def test_initial_deployment_comparison(benchmark, report_sink):
    """§3's model-based initial degree vs FIG3's ramp-from-one."""
    from repro.experiments.ablation import compare_initial_deployment

    rows = benchmark.pedantic(compare_initial_deployment, rounds=1, iterations=1)
    ramp, model = rows
    # the cost model's head start reaches the contract strictly sooner
    assert model.time_to_contract < ramp.time_to_contract
    report_sink(
        "ablation_initial_deployment",
        render_ablation(rows, "initial deployment: ramp-from-1 vs model-initial"),
    )
