"""Bench EXT-LOAD — the §4.2 external-load adaptation claim."""

import pytest

from repro.experiments.loadspike import run_loadspike
from repro.experiments.report import render_loadspike


@pytest.mark.benchmark(group="loadspike")
def test_loadspike_scenario(benchmark, report_sink):
    result = benchmark.pedantic(run_loadspike, rounds=3, iterations=1)

    assert result.dip_visible
    assert result.workers_after > result.workers_before
    assert result.adapted

    report_sink("loadspike", render_loadspike(result))
