"""Bench FIG4 — regenerate Figure 4 (hierarchical AMs, 3-stage pipeline).

Timing target: the full 900-simulated-second hierarchical scenario with
four managers.  Shape assertions pin the paper's phase structure; the
four-graph textual figure goes to ``benchmarks/out/fig4.txt``.
"""

import pytest

from repro.core.events import Events
from repro.experiments.fig4 import run_fig4
from repro.experiments.report import render_fig4


@pytest.mark.benchmark(group="fig4")
def test_fig4_scenario(benchmark, report_sink, json_sink):
    result = benchmark.pedantic(run_fig4, rounds=3, iterations=1)

    # phase 1: starvation -> violations -> incRate ramp
    assert result.first_violation_time is not None
    assert len(result.inc_rate_times) >= 2
    # phase 2: two batches of two workers; cores 5 -> 7 -> 9
    assert len(result.add_worker_times) >= 2
    steps = result.cores_step_values()
    assert steps[0] == 5 and 7 in steps and 9 in steps
    # phase 3: overshoot warning -> decRate
    assert len(result.dec_rate_times) >= 1
    # phase 4: endStream, all tasks delivered
    assert result.end_stream_time is not None
    assert result.app.delivered == result.config.total_tasks
    # figure-level
    assert result.phase_order_holds()
    assert result.in_stripe_at_end()

    report_sink("fig4", render_fig4(result))
    first_inc = min(result.inc_rate_times) if result.inc_rate_times else None
    json_sink(
        "fig4",
        {
            "steady_state_throughput": result.final_throughput(),
            # first corrective action after the first reported violation
            "adaptation_latency": (
                first_inc - result.first_violation_time
                if first_inc is not None and result.first_violation_time is not None
                else None
            ),
            "first_violation_time": result.first_violation_time,
            "inc_rate_times": result.inc_rate_times,
            "add_worker_times": result.add_worker_times,
            "end_stream_time": result.end_stream_time,
            "workers_over_time": result.cores_series,
            "throughput_over_time": result.throughput_series,
        },
    )


@pytest.mark.benchmark(group="fig4")
def test_fig4_event_causality(benchmark):
    """The manager-to-manager causal chain measured end to end."""
    result = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    trace = result.trace
    # every incRate is preceded by a raiseViol from AM_F
    viol_times = [e.time for e in trace.events_of("AM_F", Events.RAISE_VIOL)]
    for t in result.inc_rate_times:
        assert any(v < t for v in viol_times)
    # reaction latency is the violation transport delay + <= 1 tick
    first_viol = min(viol_times)
    first_inc = min(result.inc_rate_times)
    assert 0 < first_inc - first_viol <= result.config.control_period + 1.0 + 1e-6
