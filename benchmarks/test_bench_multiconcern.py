"""Bench MC-2PC — §3.2 naive vs two-phase multi-concern coordination.

The headline comparison of the multi-concern analysis: the two-phase
intent protocol eliminates the plaintext-leak window that naive
commitment opens, at no cost to the performance contract.
"""

import pytest

from repro.experiments.multiconcern import MultiConcernConfig, run_multiconcern
from repro.experiments.report import render_multiconcern


@pytest.mark.benchmark(group="multiconcern")
def test_naive_mode(benchmark):
    result = benchmark.pedantic(
        lambda: run_multiconcern(MultiConcernConfig(mode="naive")),
        rounds=3,
        iterations=1,
    )
    assert result.leaks > 0            # the unsafe window is real
    assert result.exposed_at_end == 0  # reactive securing closes it late
    assert result.perf_contract_met


@pytest.mark.benchmark(group="multiconcern")
def test_two_phase_mode(benchmark):
    result = benchmark.pedantic(
        lambda: run_multiconcern(MultiConcernConfig(mode="two-phase")),
        rounds=3,
        iterations=1,
    )
    assert result.leaks == 0           # the protocol's guarantee
    assert result.amended_intents > 0
    assert result.perf_contract_met


@pytest.mark.benchmark(group="multiconcern")
def test_comparison_report(benchmark, report_sink):
    def run_both():
        return (
            run_multiconcern(MultiConcernConfig(mode="naive")),
            run_multiconcern(MultiConcernConfig(mode="two-phase")),
        )

    naive, two_phase = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert naive.leaks > two_phase.leaks == 0
    assert naive.final_workers == two_phase.final_workers
    report_sink("multiconcern", render_multiconcern(naive, two_phase))
