"""Bench the tracing overhead: the same stream with telemetry on vs off.

The trace-context machinery rides inside every task envelope — root
span, chained dispatch spans, a worker-side execution record shipped
back on the ack — so its cost is paid per task, on the hot path.  This
bench measures that cost where it is most visible (the thread farm,
whose per-task overhead is otherwise tiny) and where it crosses a real
process boundary (the process farm), and lands both in
``benchmarks/out/BENCH_obs.json``:

* **throughput ratio** — tasks/s with a real :class:`Telemetry`
  attached over tasks/s with the no-op ``NullTelemetry``, for two task
  shapes: zero-work tasks (the *worst case*, where the envelope cost is
  all there is — recorded, never asserted) and 1 ms blocking tasks (the
  realistic shape the assertion guards);
* **span accounting** — how many spans one traced stream records, so a
  regression that starts over-recording shows up as a count, not just
  as lost throughput.

The assertion is deliberately loose (tracing may cost, it must not
*multiply*): overhead on 1 ms tasks stays under ``OVERHEAD_CEILING``x
on the thread farm.  Smoke mode shrinks the stream and skips that
assertion while still writing the artefact.
"""

import time

import pytest

from repro.obs import Telemetry
from repro.runtime.farm_runtime import ThreadFarm
from repro.runtime.process_farm import ProcessFarm

WORKERS = 4

#: tracing-on wall time may be at most this multiple of tracing-off
OVERHEAD_CEILING = 1.6


def quick_task(payload):
    """A near-zero-work task: makes the per-task envelope cost dominate."""
    return payload * 2


def sleep_task(payload):
    """1 ms of blocking work: the realistic mixed-cost shape."""
    work, value = payload
    time.sleep(work)
    return value


def run_stream(farm_cls, fn, payloads, telemetry):
    """Wall-clock seconds to drain ``payloads`` through a 4-worker farm."""
    farm = farm_cls(fn, initial_workers=WORKERS, telemetry=telemetry)
    try:
        t0 = time.monotonic()
        for p in payloads:
            farm.submit(p)
        farm.drain_results(len(payloads), timeout=600.0)
        return time.monotonic() - t0
    finally:
        farm.shutdown()


def measure(farm_cls, fn, payloads, rounds):
    """Best-of-``rounds`` seconds for traced and untraced runs, plus the
    span count one traced stream records."""
    traced, untraced = [], []
    spans = 0
    for _ in range(rounds):
        tel = Telemetry()
        traced.append(run_stream(farm_cls, fn, payloads, tel))
        spans = len(tel.spans.spans)
        untraced.append(run_stream(farm_cls, fn, payloads, None))
    return min(traced), min(untraced), spans


@pytest.mark.benchmark(group="obs")
def test_tracing_overhead(benchmark, json_sink, smoke_mode):
    n_tasks = 200 if smoke_mode else 2000
    rounds = 1 if smoke_mode else 3

    zero_payloads = list(range(n_tasks))
    sleep_payloads = [(0.001, i) for i in range(max(100, n_tasks // 2))]
    process_payloads = [(0.001, i) for i in range(max(50, n_tasks // 4))]

    def one_round():
        return measure(ThreadFarm, quick_task, zero_payloads, 1)[0]

    assert benchmark.pedantic(one_round, rounds=rounds, iterations=1) > 0

    z_on, z_off, z_spans = measure(ThreadFarm, quick_task, zero_payloads, rounds)
    s_on, s_off, s_spans = measure(ThreadFarm, sleep_task, sleep_payloads, rounds)
    p_on, p_off, p_spans = measure(ProcessFarm, sleep_task, process_payloads, rounds)

    def shape(tasks, on, off, spans):
        return {
            "tasks": tasks,
            "traced_seconds": on,
            "untraced_seconds": off,
            "overhead_x": on / off if off > 0 else float("inf"),
            "spans_recorded": spans,
        }

    payload = {
        "workers": WORKERS,
        "thread_zero_work": shape(len(zero_payloads), z_on, z_off, z_spans),
        "thread_1ms": shape(len(sleep_payloads), s_on, s_off, s_spans),
        "process_1ms": shape(len(process_payloads), p_on, p_off, p_spans),
        "overhead_ceiling_x": OVERHEAD_CEILING,
        "smoke_mode": smoke_mode,
    }
    json_sink("obs", payload)

    # a traced task records at least root + dispatch + exec
    assert z_spans >= 3 * len(zero_payloads)
    if not smoke_mode:
        assert payload["thread_1ms"]["overhead_x"] < OVERHEAD_CEILING
