"""Bench the distributed farm: wire-protocol overhead and recovery latency.

Two measurements land in ``benchmarks/out/BENCH_dist.json``:

* **serialization overhead** — the same stream of compute-free echo
  tasks (a 64-element JSON payload each) through a 4-worker
  :class:`ProcessFarm` (pickle over multiprocessing pipes) and a
  4-worker :class:`DistFarm` (length-prefixed JSON over TCP).  With no
  real work in the tasks, the wall-clock ratio *is* the price of the
  wire format plus the socket hop — the number a later sharding PR
  trades against multi-host capacity.
* **recovery** — one worker's TCP connection is severed mid-stream (the
  distributed fault: the process is healthy, the link is gone); we
  record how long the coordinator takes to declare the death, how long
  until every task (including replays) is accounted for, and how long
  throughput needs to re-enter the contract stripe under the unmodified
  ``CheckRateLow`` rule.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks both workloads to CI-sized
runs while still writing the artefact.
"""

import time

import pytest

from tests.runtime.waiting import wait_until

from repro.core.contracts import MinThroughputContract
from repro.runtime.controller import FarmController
from repro.runtime.dist_farm import DistFarm
from repro.runtime.process_farm import ProcessFarm

WORKERS = 4
PAYLOAD_ITEMS = 64


def echo_task(payload):
    """Compute-free round trip: the cost measured is pure transport."""
    return sum(payload)


def sleep_task(payload):
    """Blocking task for the recovery measurement (core-count neutral)."""
    work, value = payload
    time.sleep(work)
    return value


def run_echo_farm(farm_cls, n_tasks: int) -> float:
    """Wall-clock seconds to round-trip ``n_tasks`` echo payloads."""
    farm = farm_cls(echo_task, initial_workers=WORKERS)
    try:
        payload = list(range(PAYLOAD_ITEMS))
        t0 = time.monotonic()
        for _ in range(n_tasks):
            farm.submit(payload)
        results = farm.drain_results(n_tasks, timeout=600.0)
        elapsed = time.monotonic() - t0
        assert all(r == sum(payload) for r in results)
        return elapsed
    finally:
        farm.shutdown()


@pytest.mark.benchmark(group="dist")
def test_dist_serialization_overhead(benchmark, json_sink, smoke_mode):
    """JSON-over-TCP vs pickle-over-pipe on an identical echo stream."""
    n_tasks = 60 if smoke_mode else 400
    rounds = 1 if smoke_mode else 3

    process_times, dist_times = [], []

    def one_round():
        process_times.append(run_echo_farm(ProcessFarm, n_tasks))
        dist_times.append(run_echo_farm(DistFarm, n_tasks))
        return dist_times[-1]

    assert benchmark.pedantic(one_round, rounds=rounds, iterations=1) > 0

    process_s, dist_s = min(process_times), min(dist_times)
    overhead = dist_s / process_s if process_s > 0 else float("inf")

    payload = {
        "kernel": "echo (zero compute, transport only)",
        "workers": WORKERS,
        "tasks": n_tasks,
        "payload_items": PAYLOAD_ITEMS,
        "process_seconds": process_s,
        "dist_seconds": dist_s,
        "per_task_process_ms": 1000.0 * process_s / n_tasks,
        "per_task_dist_ms": 1000.0 * dist_s / n_tasks,
        "overhead_dist_over_process": overhead,
        "smoke_mode": smoke_mode,
    }

    recovery = measure_connection_recovery(smoke_mode)
    payload["connection_recovery"] = recovery
    json_sink("dist", payload)

    # the wire may cost, but it must never lose
    assert recovery["tasks_lost"] == 0
    if smoke_mode:
        return
    # EOF on an aborted connection is observed immediately — detection
    # must not wait out a heartbeat window, let alone seconds
    assert recovery["detection_latency_seconds"] is not None
    assert recovery["detection_latency_seconds"] < 2.0


def measure_connection_recovery(smoke_mode: bool) -> dict:
    """Sever one of four workers' connections mid-stream; time recovery."""
    n_tasks = 80 if smoke_mode else 400
    task_work = 0.02
    # 4 workers at 20 ms/task sustain ~200/s; losing one drops capacity
    # to ~150/s, below the stripe -> CheckRateLow must add workers back
    contract_low = 160.0

    farm = DistFarm(
        sleep_task,
        initial_workers=WORKERS,
        heartbeat_period=0.05,
        heartbeat_timeout=0.5,
        backoff_base=0.02,
        backoff_cap=0.2,
        supervise_period=0.02,
        rate_window=0.5,
    )
    controller = FarmController(
        farm,
        MinThroughputContract(contract_low),
        control_period=0.1,
        max_workers=WORKERS + 2,
    ).start()
    try:
        cut_at = n_tasks // 4
        t_cut = None
        for i in range(n_tasks):
            farm.submit((task_work, i))
            if i == cut_at:
                farm.drop_connection()
                t_cut = farm.now()
            time.sleep(task_work / WORKERS)
        results = farm.drain_results(n_tasks, timeout=300.0)
        t_drained = farm.now()

        # first time after the cut at which throughput is back in contract
        def back_in_contract():
            snap = farm.snapshot()
            if snap.departure_rate >= contract_low or snap.pending == 0:
                return farm.now()
            return None

        try:
            t_back = wait_until(
                back_in_contract,
                timeout=30.0,
                interval=0.02,
                message="throughput back in contract after the cut",
            )
        except TimeoutError:
            t_back = None  # recorded as "never recovered", not a failure

        detected = farm.crashes[0][0] if farm.crashes else None
        return {
            "tasks": n_tasks,
            "task_work_seconds": task_work,
            "contract_low": contract_low,
            "cut_at_seconds": t_cut,
            "detection_latency_seconds": (
                detected - t_cut if detected is not None and t_cut is not None else None
            ),
            "drain_complete_seconds_after_cut": (
                t_drained - t_cut if t_cut is not None else None
            ),
            "throughput_recovered_seconds_after_cut": (
                t_back - t_cut if t_back is not None and t_cut is not None else None
            ),
            "tasks_lost": n_tasks - len(set(results)),
            "replays": farm.replays,
            "duplicates_suppressed": farm.duplicates,
            "dead_letters": len(farm.dead_letters),
            "capacity_actions": [a for _, a in controller.actions if "addWorker" in a],
        }
    finally:
        controller.stop()
        farm.shutdown()
