"""Bench the distributed farm: v4 transport overhead, throughput, recovery.

Four measurements land in ``benchmarks/out/BENCH_dist.json``:

* **transport overhead** — the same stream of compute-free echo tasks
  (a 64-element payload each) through a 4-worker :class:`ProcessFarm`
  (pickle over multiprocessing pipes) and a 4-worker :class:`DistFarm`
  on the protocol-v4 wire (binary frame header, negotiated codec,
  ``task_batch``/``result_batch`` frames, a deep pipelined window).
  With no real work in the tasks, the wall-clock ratio *is* the price
  of the wire format plus the socket hop.  ``per_task_dist_ms`` is the
  number the CI regression gate (``benchmarks/check_regression.py``)
  holds against ``benchmarks/baselines/BENCH_dist.baseline.json``.
* **sustained throughput** — a 100k-task echo stream (smoke: 2k)
  through the tuned v4 farm, recorded as tasks/second; the "does the
  batching hold up at volume, with zero loss" run.
* **tracing overhead** — the identical echo stream with live tracing
  (traceparents riding every batch entry, dispatch/execute spans) vs
  tracing off, re-measured on the batched wire.
* **recovery** — one worker's TCP connection is severed mid-stream; we
  record detection latency, drain latency, and how long throughput
  needs to re-enter the contract stripe under the unmodified
  ``CheckRateLow`` rule.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks every workload to CI-sized
runs while still writing the artefact.
"""

import time

import pytest

from tests.runtime.waiting import wait_until

from repro.core.contracts import MinThroughputContract
from repro.obs.telemetry import Telemetry
from repro.runtime.controller import FarmController
from repro.runtime.dist_farm import DistFarm
from repro.runtime.dist_proto import PROTOCOL_VERSION
from repro.runtime.process_farm import ProcessFarm

WORKERS = 4
PAYLOAD_ITEMS = 64

#: The tuned v4 data-plane configuration: a pipelined window deep enough
#: to keep every worker busy between acks, batches that amortize the
#: frame+syscall cost, and the negotiated fast-path codec (pickle for
#: coordinator-spawned workers).
TUNED = dict(max_inflight=64, batch_size=32)


def echo_task(payload):
    """Compute-free round trip: the cost measured is pure transport."""
    return sum(payload)


def sleep_task(payload):
    """Blocking task for the recovery measurement (core-count neutral)."""
    work, value = payload
    time.sleep(work)
    return value


def run_echo_farm(farm_cls, n_tasks: int, **farm_opts) -> float:
    """Wall-clock seconds to round-trip ``n_tasks`` echo payloads."""
    farm = farm_cls(echo_task, initial_workers=WORKERS, **farm_opts)
    try:
        payload = list(range(PAYLOAD_ITEMS))
        t0 = time.monotonic()
        for _ in range(n_tasks):
            farm.submit(payload)
        results = farm.drain_results(n_tasks, timeout=600.0)
        elapsed = time.monotonic() - t0
        assert all(r == sum(payload) for r in results)
        return elapsed
    finally:
        farm.shutdown()


def negotiated_codec() -> str:
    """The codec a coordinator-spawned (trusted) worker negotiates."""
    from repro.runtime.dist_proto import available_codecs, negotiate_codec

    return negotiate_codec(available_codecs(), trusted=True)


@pytest.mark.benchmark(group="dist")
def test_dist_serialization_overhead(benchmark, json_sink, smoke_mode):
    """Batched binary v4 over TCP vs pickle-over-pipe, plus sustained
    throughput, tracing overhead and recovery — one artefact."""
    # the smoke stream is sized so the per-task figure is stable enough
    # for the CI regression gate: 60-task runs jitter ~2x on startup
    # ramp alone, 400-task runs settle within the gate's tolerance
    n_tasks = 400 if smoke_mode else 2000
    rounds = 1 if smoke_mode else 3

    process_times, dist_times = [], []

    def one_round():
        process_times.append(run_echo_farm(ProcessFarm, n_tasks))
        dist_times.append(run_echo_farm(DistFarm, n_tasks, **TUNED))
        return dist_times[-1]

    assert benchmark.pedantic(one_round, rounds=rounds, iterations=1) > 0

    process_s, dist_s = min(process_times), min(dist_times)
    overhead = dist_s / process_s if process_s > 0 else float("inf")

    payload = {
        "kernel": "echo (zero compute, transport only)",
        "protocol": PROTOCOL_VERSION,
        "codec": negotiated_codec(),
        "workers": WORKERS,
        "tasks": n_tasks,
        "payload_items": PAYLOAD_ITEMS,
        "max_inflight": TUNED["max_inflight"],
        "batch_size": TUNED["batch_size"],
        "process_seconds": process_s,
        "dist_seconds": dist_s,
        "per_task_process_ms": 1000.0 * process_s / n_tasks,
        "per_task_dist_ms": 1000.0 * dist_s / n_tasks,
        "overhead_dist_over_process": overhead,
        "smoke_mode": smoke_mode,
    }

    payload["sustained"] = measure_sustained_throughput(smoke_mode)
    payload["tracing_overhead"] = measure_tracing_overhead(smoke_mode)
    recovery = measure_connection_recovery(smoke_mode)
    payload["connection_recovery"] = recovery
    json_sink("dist", payload)

    # the wire may cost, but it must never lose
    assert recovery["tasks_lost"] == 0
    assert payload["sustained"]["tasks_lost"] == 0
    if smoke_mode:
        return
    # EOF on an aborted connection is observed immediately — detection
    # must not wait out a heartbeat window, let alone seconds
    assert recovery["detection_latency_seconds"] is not None
    assert recovery["detection_latency_seconds"] < 2.0


def measure_sustained_throughput(smoke_mode: bool) -> dict:
    """A 100k-task echo stream through the tuned v4 farm (smoke: 2k)."""
    n_tasks = 2_000 if smoke_mode else 100_000
    farm = DistFarm(echo_task, initial_workers=WORKERS, **TUNED)
    try:
        payload = list(range(8))
        expected = sum(payload)
        t0 = time.monotonic()
        for _ in range(n_tasks):
            farm.submit(payload)
        results = farm.drain_results(n_tasks, timeout=600.0)
        elapsed = time.monotonic() - t0
        lost = sum(1 for r in results if r != expected) + (n_tasks - len(results))
        return {
            "tasks": n_tasks,
            "seconds": elapsed,
            "tasks_per_second": n_tasks / elapsed if elapsed > 0 else float("inf"),
            "per_task_ms": 1000.0 * elapsed / n_tasks,
            "tasks_lost": lost,
            "dead_letters": len(farm.dead_letters),
        }
    finally:
        farm.shutdown()


def measure_tracing_overhead(smoke_mode: bool) -> dict:
    """The echo stream with spans + traceparents on vs tracing off."""
    n_tasks = 60 if smoke_mode else 2000
    plain_s = run_echo_farm(DistFarm, n_tasks, **TUNED)
    traced_s = run_echo_farm(DistFarm, n_tasks, telemetry=Telemetry(), **TUNED)
    return {
        "tasks": n_tasks,
        "plain_seconds": plain_s,
        "traced_seconds": traced_s,
        "per_task_plain_ms": 1000.0 * plain_s / n_tasks,
        "per_task_traced_ms": 1000.0 * traced_s / n_tasks,
        "overhead_traced_over_plain": (
            traced_s / plain_s if plain_s > 0 else float("inf")
        ),
    }


def measure_connection_recovery(smoke_mode: bool) -> dict:
    """Sever one of four workers' connections mid-stream; time recovery."""
    n_tasks = 80 if smoke_mode else 400
    task_work = 0.02
    # 4 workers at 20 ms/task sustain ~200/s; losing one drops capacity
    # to ~150/s, below the stripe -> CheckRateLow must add workers back
    contract_low = 160.0

    farm = DistFarm(
        sleep_task,
        initial_workers=WORKERS,
        heartbeat_period=0.05,
        heartbeat_timeout=0.5,
        backoff_base=0.02,
        backoff_cap=0.2,
        supervise_period=0.02,
        rate_window=0.5,
    )
    controller = FarmController(
        farm,
        MinThroughputContract(contract_low),
        control_period=0.1,
        max_workers=WORKERS + 2,
    ).start()
    try:
        cut_at = n_tasks // 4
        t_cut = None
        for i in range(n_tasks):
            farm.submit((task_work, i))
            if i == cut_at:
                farm.drop_connection()
                t_cut = farm.now()
            time.sleep(task_work / WORKERS)
        results = farm.drain_results(n_tasks, timeout=300.0)
        t_drained = farm.now()

        # first time after the cut at which throughput is back in contract
        def back_in_contract():
            snap = farm.snapshot()
            if snap.departure_rate >= contract_low or snap.pending == 0:
                return farm.now()
            return None

        try:
            t_back = wait_until(
                back_in_contract,
                timeout=30.0,
                interval=0.02,
                message="throughput back in contract after the cut",
            )
        except TimeoutError:
            t_back = None  # recorded as "never recovered", not a failure

        detected = farm.crashes[0][0] if farm.crashes else None
        return {
            "tasks": n_tasks,
            "task_work_seconds": task_work,
            "contract_low": contract_low,
            "cut_at_seconds": t_cut,
            "detection_latency_seconds": (
                detected - t_cut if detected is not None and t_cut is not None else None
            ),
            "drain_complete_seconds_after_cut": (
                t_drained - t_cut if t_cut is not None else None
            ),
            "throughput_recovered_seconds_after_cut": (
                t_back - t_cut if t_back is not None and t_cut is not None else None
            ),
            "tasks_lost": n_tasks - len(set(results)),
            "replays": farm.replays,
            "duplicates_suppressed": farm.duplicates,
            "dead_letters": len(farm.dead_letters),
            "capacity_actions": [a for _, a in controller.actions if "addWorker" in a],
        }
    finally:
        controller.stop()
        farm.shutdown()
