"""Bench MIGRATE — migration-first vs growth recovery policy (§3)."""

import pytest

from repro.experiments.migration import run_migration
from repro.experiments.report import render_migration


@pytest.mark.benchmark(group="migration")
def test_migration_vs_growth(benchmark, report_sink):
    result = benchmark.pedantic(run_migration, rounds=1, iterations=1)

    assert result.both_recover
    assert result.migration_first.migrations > 0
    assert result.migration_uses_fewer_nodes

    report_sink("migration", render_migration(result))
