"""Bench SHARD — farm-of-farms scaling, rebalance latency, fair share.

Three measurements of the sharded hierarchy, recorded to
``BENCH_shard.json``:

* **per-shard throughput scaling** — the same workload through one
  shard vs two (each shard keeps the same worker budget), so the
  tree's drain time should roughly halve;
* **rebalance latency** — in the skewed-feed scenario, the wall-clock
  gap between the parent first observing a starving shard and the
  budget transfer that relieves it;
* **tenant fair-share error** — in the 3-tenant scenario, the worst
  relative deviation of a tenant's dispatch count from the mean during
  the contended window (queued backlogs still draining).
"""

import time

import pytest

from repro.core.contracts import ThroughputRangeContract
from repro.experiments.fig4_live import Fig4ShardedConfig, run_fig4_sharded
from repro.runtime.hierarchy import ShardedFarm


def bench_task(payload):
    work, value = payload
    if work:
        time.sleep(work)
    return value * value


def drain_through_shards(shards: int, tasks: int, task_work: float) -> float:
    """Wall-clock seconds to push ``tasks`` through a ``shards``-wide tree.

    The per-shard worker budget is constant (2), so doubling the shard
    count doubles the tree's capacity — the quantity under test.
    """
    farm = ShardedFarm(
        bench_task,
        contract=ThroughputRangeContract(1.0, 100000.0),
        shards=shards,
        backend="thread",
        initial_workers_per_shard=2,
        max_workers_total=2 * shards,
        control_period=0.2,
        autostart=False,
        shard_kwargs={"rate_window": 1.0},
    )
    try:
        t0 = time.monotonic()
        for i in range(tasks):
            farm.submit((task_work, i))
        results = farm.drain_results(tasks, timeout=120.0)
        elapsed = time.monotonic() - t0
        assert sorted(results) == sorted(i * i for i in range(tasks))
        return elapsed
    finally:
        farm.shutdown()


@pytest.mark.benchmark(group="shard")
def test_shard_hierarchy(benchmark, smoke_mode, json_sink):
    tasks = 100 if smoke_mode else 400
    task_work = 0.005

    def run_all():
        one = drain_through_shards(1, tasks, task_work)
        two = drain_through_shards(2, tasks, task_work)
        rebalance = run_fig4_sharded(
            Fig4ShardedConfig(
                total_tasks=120 if smoke_mode else 240,
                drain_timeout=120.0,
            )
        )
        tenants = run_fig4_sharded(
            Fig4ShardedConfig(
                tenants=3,
                contract_low=2.0,
                total_tasks=120 if smoke_mode else 240,
                drain_timeout=120.0,
            )
        )
        return one, two, rebalance, tenants

    one, two, rebalance, tenants = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    # the correctness floor holds even in smoke mode
    assert rebalance.zero_loss()
    assert rebalance.rebalanced()
    assert tenants.zero_loss()
    assert all(row[4] == 0 for row in tenants.tenant_stats), (
        "equal in-quota tenants must not see rejects"
    )
    if not smoke_mode:
        # hardware-dependent: two shards should scale meaningfully
        assert two < one * 0.75
        assert tenants.fair_share_error <= 0.10

    first = rebalance.rebalances[0]
    json_sink(
        "shard",
        {
            "backend": "thread",
            "tasks": tasks,
            "task_work_s": task_work,
            "shard_scaling": {
                "one_shard_s": round(one, 4),
                "two_shards_s": round(two, 4),
                "speedup": round(one / two, 3) if two else None,
                "throughput_one_shard": round(tasks / one, 1),
                "throughput_two_shards": round(tasks / two, 1),
            },
            "rebalance": {
                "moves": len(rebalance.rebalances),
                "first_move_at_s": round(first[0], 3),
                "first_latency_s": round(first[3], 4),
                "root_violations": rebalance.root_violations,
                "final_budgets": rebalance.budgets,
            },
            "tenants": {
                "fair_share_error": round(tenants.fair_share_error, 4),
                "stats": {
                    name: {
                        "submitted": submitted,
                        "admitted": admitted,
                        "queued": queued,
                        "rejected": rejected,
                        "dispatched": dispatched,
                    }
                    for name, submitted, admitted, queued, rejected, dispatched
                    in tenants.tenant_stats
                },
            },
            "smoke": smoke_mode,
        },
    )
