"""Micro-benchmarks of the simulation substrate.

Not a paper figure — these guard the reproduction's own usability: the
DES must push enough events/second that 900-simulated-second scenarios
stay interactive, and the farm mechanism must scale in worker count.
"""

import pytest

from repro.sim.engine import Simulator
from repro.sim.farm import SimFarm
from repro.sim.queues import Store
from repro.sim.resources import make_cluster
from repro.sim.workload import ConstantWork, finite_stream


@pytest.mark.benchmark(group="substrate")
def test_event_dispatch_rate(benchmark):
    """Raw scheduler throughput: 10k trivial timed events."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(i * 0.001, lambda: None)
        sim.run()
        return sim.now

    assert benchmark(run) > 0


@pytest.mark.benchmark(group="substrate")
def test_process_context_switching(benchmark):
    """Two processes ping-ponging through a pair of stores, 2k rounds."""

    def run():
        sim = Simulator()
        a, b = Store(sim), Store(sim)
        count = [0]

        def ping():
            for _ in range(2000):
                a.put_nowait(1)
                yield b.get()
                count[0] += 1

        def pong():
            while True:
                yield a.get()
                b.put_nowait(1)

        sim.process(ping())
        sim.process(pong())
        sim.run(max_events=10_000_000)
        return count[0]

    assert benchmark(run) == 2000


@pytest.mark.benchmark(group="substrate")
@pytest.mark.parametrize("n_workers", [2, 8, 32])
def test_farm_simulation_scaling(benchmark, n_workers):
    """1000 tasks through farms of increasing width."""

    def run():
        sim = Simulator()
        nodes = make_cluster(n_workers + 1)
        farm = SimFarm(sim, emitter_node=nodes[0], worker_setup_time=0.0)
        for n in nodes[1:]:
            farm.add_worker(n)
        for t in finite_stream(1000, ConstantWork(1.0)):
            farm.submit(t)
        sim.run()
        return farm.completed

    assert benchmark(run) == 1000
