"""Bench FAULT — crash recovery (fault-tolerance concern of §2)."""

import pytest

from repro.experiments.failures import run_faults
from repro.experiments.report import render_faults


@pytest.mark.benchmark(group="fault")
def test_fault_scenario(benchmark, report_sink):
    result = benchmark.pedantic(run_faults, rounds=3, iterations=1)

    assert result.no_task_lost           # mechanism: at-least-once replay
    assert result.replacements > 0       # manager: capacity re-recruited
    assert result.capacity_recovered     # contract restored while live

    report_sink("faults", render_faults(result))
