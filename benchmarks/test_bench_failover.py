"""Bench the self-healing coordinator: journal overhead and failover latency.

Two measurements land in ``benchmarks/out/BENCH_failover.json``:

* **journal overhead** — the same zero-work stream through a raw
  :class:`ThreadFarm` and through a :class:`SupervisedFarm` (thread
  incarnation) at ``fsync_batch=32`` (the default, amortised) and
  ``fsync_batch=1`` (fsync-per-event, the paranoid setting).  With no
  compute in the tasks, the wall-clock ratio *is* the price of the
  envelope + append + batched fsync on the dispatch path — the premium
  paid for a coordinator that can die without losing work.
* **failover latency** — the coordinator of a mid-stream farm is killed
  and :meth:`SupervisedFarm.failover` rebuilds it from the journal; we
  record crash→serving latency per backend.  Thread and process rebuild
  their workers from scratch; dist additionally promotes a standby onto
  the same port and adopts the reattaching workers, so its number is the
  full standby-takeover story.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the workloads to CI-sized
runs while still writing the artefact.
"""

import os
import tempfile
import time

import pytest

from tests.runtime.test_supervision import supervised_task
from tests.runtime.waiting import wait_until

from repro.runtime.farm_runtime import ThreadFarm
from repro.runtime.supervision import SupervisedFarm

WORKERS = 4

#: fault-detection tuning for the live process/dist incarnations, kept
#: identical to the chaos conformance tier so the numbers line up
FAULT_TUNING = dict(
    heartbeat_period=0.05,
    heartbeat_timeout=2.0,
    supervise_period=0.02,
    backoff_base=0.02,
    backoff_cap=0.2,
)


def _journal_path() -> str:
    fd, path = tempfile.mkstemp(prefix="bench-failover-", suffix=".jsonl")
    os.close(fd)
    return path


def _supervised(backend: str, *, fsync_batch: int = 32) -> SupervisedFarm:
    options = dict(rate_window=0.5)
    if backend in ("process", "dist"):
        options.update(FAULT_TUNING)
    return SupervisedFarm(
        supervised_task,
        backend=backend,
        journal_path=_journal_path(),
        name=f"bench-{backend}",
        initial_workers=WORKERS,
        max_workers=WORKERS + 2,
        journal_fsync_batch=fsync_batch,
        farm_options=options,
    )


def _cleanup(farm: SupervisedFarm) -> None:
    path = farm.journal.path
    farm.shutdown()
    if os.path.exists(path):
        os.unlink(path)


def run_raw_thread(n_tasks: int) -> float:
    """Baseline: the unsupervised thread farm on a zero-work stream."""
    farm = ThreadFarm(supervised_task, initial_workers=WORKERS)
    try:
        t0 = time.monotonic()
        for i in range(n_tasks):
            farm.submit((0.0, i))
        farm.drain_results(n_tasks, timeout=300.0)
        return time.monotonic() - t0
    finally:
        farm.shutdown()


def run_supervised_thread(n_tasks: int, fsync_batch: int) -> float:
    """The same stream, journaled: envelope + append + batched fsync."""
    farm = _supervised("thread", fsync_batch=fsync_batch)
    try:
        t0 = time.monotonic()
        for i in range(n_tasks):
            farm.submit((0.0, i))
        results = farm.drain_results(n_tasks, timeout=300.0)
        elapsed = time.monotonic() - t0
        assert len(set(results)) == n_tasks
        return elapsed
    finally:
        _cleanup(farm)


def measure_failover(backend: str, smoke_mode: bool) -> dict:
    """Kill the coordinator mid-stream; time crash→serving recovery."""
    n_tasks = 40 if smoke_mode else 120
    task_work = 0.01
    farm = _supervised(backend)
    try:
        for i in range(n_tasks):
            farm.submit((task_work, i))
        wait_until(
            lambda: farm.completed >= max(4, n_tasks // 10),
            timeout=60.0,
            message=f"{backend} stream in flight before the crash",
        )
        farm.crash_coordinator()
        state = farm.failover()
        results = farm.drain_results(n_tasks, timeout=300.0)
        return {
            "backend": backend,
            "tasks": n_tasks,
            "task_work_seconds": task_work,
            "failover_seconds": farm.last_failover_seconds,
            "redispatched": farm.redispatched,
            "pending_at_failover": len(state.pending),
            "duplicates_suppressed": farm.duplicates,
            "tasks_lost": n_tasks - len(set(results)),
            "final_epoch": farm.epoch,
            "standby_takeover": backend == "dist",
        }
    finally:
        _cleanup(farm)


@pytest.mark.benchmark(group="failover")
def test_failover_latency_and_journal_overhead(benchmark, json_sink, smoke_mode):
    """The self-healing premium and the crash→serving latency, measured."""
    n_tasks = 60 if smoke_mode else 400
    rounds = 1 if smoke_mode else 3

    raw_times, batched_times, paranoid_times = [], [], []

    def one_round():
        raw_times.append(run_raw_thread(n_tasks))
        batched_times.append(run_supervised_thread(n_tasks, fsync_batch=32))
        paranoid_times.append(run_supervised_thread(n_tasks, fsync_batch=1))
        return batched_times[-1]

    assert benchmark.pedantic(one_round, rounds=rounds, iterations=1) > 0

    raw_s = min(raw_times)
    batched_s = min(batched_times)
    paranoid_s = min(paranoid_times)

    failovers = [measure_failover(b, smoke_mode) for b in ("thread", "process", "dist")]

    payload = {
        "kernel": "zero-work stream (dispatch-path cost only)",
        "workers": WORKERS,
        "tasks": n_tasks,
        "raw_thread_seconds": raw_s,
        "supervised_batched_seconds": batched_s,
        "supervised_fsync_each_seconds": paranoid_s,
        "per_task_raw_ms": 1000.0 * raw_s / n_tasks,
        "per_task_supervised_ms": 1000.0 * batched_s / n_tasks,
        "journal_overhead_batched": batched_s / raw_s if raw_s > 0 else float("inf"),
        "journal_overhead_fsync_each": (
            paranoid_s / raw_s if raw_s > 0 else float("inf")
        ),
        "failover": {m["backend"]: m for m in failovers},
        "smoke_mode": smoke_mode,
    }
    json_sink("failover", payload)

    # the journal may cost, but failover must never lose or forge work
    for m in failovers:
        assert m["tasks_lost"] == 0, m
        assert m["final_epoch"] == 1, m
        assert m["failover_seconds"] is not None and m["failover_seconds"] > 0.0
    if smoke_mode:
        return
    # recovery is journal replay + worker restart, not a timeout wait:
    # even the dist standby takeover must land in single-digit seconds
    for m in failovers:
        assert m["failover_seconds"] < 10.0, m
