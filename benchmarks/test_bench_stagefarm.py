"""Bench STAGE-FARM — the §4.2 stage-to-farm transformation."""

import pytest

from repro.experiments.report import render_stagefarm
from repro.experiments.stagefarm import run_stagefarm


@pytest.mark.benchmark(group="stagefarm")
def test_stagefarm_scenario(benchmark, report_sink):
    result = benchmark.pedantic(run_stagefarm, rounds=3, iterations=1)

    assert result.dip_visible             # the bottleneck is real
    assert result.promoted                # the transformation fired
    assert result.recovered               # and restored the contract
    assert result.promotion_time > result.config.spike_time

    report_sink("stagefarm", render_stagefarm(result))
