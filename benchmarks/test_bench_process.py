"""Bench the process farm: GIL-free speed-up and crash-recovery latency.

Two measurements land in ``benchmarks/out/BENCH_process.json``:

* **speed-up** — the same CPU-bound kernel through a 4-worker
  :class:`ThreadFarm` (GIL-serialised) and a 4-worker
  :class:`ProcessFarm` (one interpreter per worker).  On a multi-core
  host the process backend must clear 2x; on a single-core host no
  backend can beat the hardware, so the assertion is gated on
  ``cpu_count`` and the count is recorded in the artefact.
* **recovery** — a worker is SIGKILLed mid-stream; we record how long
  the heartbeat supervisor takes to declare the death, how long until
  every task (including replays) is accounted for, and how long the
  throughput needs to re-enter the contract stripe under the unmodified
  ``CheckRateLow`` rule.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks both workloads to CI-sized
runs and skips the hardware assertions while still writing the artefact.
"""

import os
import time

import pytest

from tests.runtime.waiting import wait_until

from repro.core.contracts import MinThroughputContract
from repro.runtime.controller import FarmController
from repro.runtime.farm_runtime import ThreadFarm
from repro.runtime.process_farm import ProcessFarm

WORKERS = 4
SPEEDUP_FLOOR = 2.0


def cpu_task(payload):
    """Pure-Python LCG spin: holds the GIL for the whole task."""
    iters, seed = payload
    acc = seed
    for _ in range(iters):
        acc = (acc * 1103515245 + 12345) % 2147483648
    return acc


def sleep_task(payload):
    """Blocking task for the recovery measurement (core-count neutral)."""
    work, value = payload
    time.sleep(work)
    return value


def run_cpu_farm(farm_cls, n_tasks: int, iters: int) -> float:
    """Wall-clock seconds to push ``n_tasks`` CPU-bound tasks through."""
    farm = farm_cls(cpu_task, initial_workers=WORKERS)
    try:
        t0 = time.monotonic()
        for i in range(n_tasks):
            farm.submit((iters, i))
        farm.drain_results(n_tasks, timeout=600.0)
        return time.monotonic() - t0
    finally:
        farm.shutdown()


@pytest.mark.benchmark(group="process")
def test_process_vs_thread_speedup(benchmark, json_sink, smoke_mode):
    """The tentpole number: real parallelism past the GIL."""
    n_tasks = 24 if smoke_mode else 96
    iters = 20_000 if smoke_mode else 120_000
    rounds = 1 if smoke_mode else 3

    thread_times, process_times = [], []

    def one_round():
        thread_times.append(run_cpu_farm(ThreadFarm, n_tasks, iters))
        process_times.append(run_cpu_farm(ProcessFarm, n_tasks, iters))
        return process_times[-1]

    assert benchmark.pedantic(one_round, rounds=rounds, iterations=1) > 0

    thread_s, process_s = min(thread_times), min(process_times)
    speedup = thread_s / process_s if process_s > 0 else float("inf")
    cpus = os.cpu_count() or 1

    payload = {
        "kernel": "pure-python LCG (GIL-bound)",
        "workers": WORKERS,
        "tasks": n_tasks,
        "iters_per_task": iters,
        "thread_seconds": thread_s,
        "process_seconds": process_s,
        "speedup_process_over_thread": speedup,
        "cpu_count": cpus,
        "speedup_floor_when_multicore": SPEEDUP_FLOOR,
        "smoke_mode": smoke_mode,
    }

    recovery = measure_crash_recovery(smoke_mode)
    payload["crash_recovery"] = recovery
    json_sink("process", payload)

    # replay must never lose tasks, whatever the hardware
    assert recovery["tasks_lost"] == 0
    if smoke_mode:
        return
    # the 2x bar is a statement about parallel hardware: a single-core
    # host serialises both backends, so gate on the cores we can see
    if cpus >= 2:
        assert speedup >= SPEEDUP_FLOOR, (
            f"process backend only {speedup:.2f}x over threads "
            f"({WORKERS} workers, {cpus} cores)"
        )
    else:
        # GIL-free execution must at least not be slower than the
        # thread backend's GIL convoy on the same single core
        assert speedup >= 0.75


def measure_crash_recovery(smoke_mode: bool) -> dict:
    """SIGKILL one of four workers mid-stream; time the recovery chain."""
    n_tasks = 80 if smoke_mode else 400
    task_work = 0.02
    # 4 workers at 20 ms/task sustain ~200/s; losing one drops capacity
    # to ~150/s, below the stripe -> CheckRateLow must add workers back
    contract_low = 160.0

    farm = ProcessFarm(
        sleep_task,
        initial_workers=WORKERS,
        heartbeat_period=0.05,
        heartbeat_timeout=0.5,
        backoff_base=0.02,
        backoff_cap=0.2,
        supervise_period=0.02,
        rate_window=0.5,
    )
    controller = FarmController(
        farm,
        MinThroughputContract(contract_low),
        control_period=0.1,
        max_workers=WORKERS + 2,
    ).start()
    try:
        kill_at = n_tasks // 4
        t_kill = None
        for i in range(n_tasks):
            farm.submit((task_work, i))
            if i == kill_at:
                farm.inject_crash()
                t_kill = farm.now()
            time.sleep(task_work / WORKERS)
        results = farm.drain_results(n_tasks, timeout=300.0)
        t_drained = farm.now()

        # first time after the kill at which throughput is back in contract
        def back_in_contract():
            snap = farm.snapshot()
            if snap.departure_rate >= contract_low or snap.pending == 0:
                return farm.now()
            return None

        try:
            t_back = wait_until(
                back_in_contract,
                timeout=30.0,
                interval=0.02,
                message="throughput back in contract after the kill",
            )
        except TimeoutError:
            t_back = None  # recorded as "never recovered", not a failure

        detected = farm.crashes[0][0] if farm.crashes else None
        return {
            "tasks": n_tasks,
            "task_work_seconds": task_work,
            "contract_low": contract_low,
            "killed_at_seconds": t_kill,
            "detection_latency_seconds": (
                detected - t_kill if detected is not None and t_kill is not None else None
            ),
            "drain_complete_seconds_after_kill": (
                t_drained - t_kill if t_kill is not None else None
            ),
            "throughput_recovered_seconds_after_kill": (
                t_back - t_kill if t_back is not None and t_kill is not None else None
            ),
            "tasks_lost": n_tasks - len(set(results)),
            "replays": farm.replays,
            "duplicates_suppressed": farm.duplicates,
            "dead_letters": len(farm.dead_letters),
            "capacity_actions": [a for _, a in controller.actions if "addWorker" in a],
        }
    finally:
        controller.stop()
        farm.shutdown()
