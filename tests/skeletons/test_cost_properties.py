"""Hypothesis properties of the skeleton cost models (§3.1).

``test_cost.py`` pins the models to the paper's worked numbers; this
file states the *laws* those numbers are instances of, and lets
Hypothesis hunt the tree shapes that would break them:

* a pipeline's service time is exactly the max of its stages' (the
  "bounded by the slowest stage" model, for arbitrary nesting);
* farm throughput is monotone non-decreasing in the parallelism degree
  — the precondition for ``CheckRateLow``'s "add a worker" to ever be
  a sound plan;
* ``optimal_degree`` is both sufficient (the farm it sizes meets the
  target) and minimal (one worker fewer would not);
* stage weights are a probability vector aligned with the bottleneck.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.skeletons.ast import Farm, Pipe, Seq
from repro.skeletons.cost import (
    bottleneck_stage,
    optimal_degree,
    resource_count,
    scalability_limit,
    service_time,
    stage_weights,
    throughput,
)

# work values are short decimals: the laws under test are about tree
# *structure*, so keep float noise below the tolerance of the asserts
works = st.integers(1, 1000).map(lambda i: i / 10)
degrees = st.integers(1, 32)
seqs = st.builds(Seq, work=works)


def skeletons(max_leaves=8):
    return st.recursive(
        seqs,
        lambda children: st.one_of(
            st.builds(Farm, worker=children, degree=degrees),
            st.lists(children, min_size=2, max_size=4).map(lambda xs: Pipe(*xs)),
        ),
        max_leaves=max_leaves,
    )


pipes = st.lists(skeletons(max_leaves=4), min_size=2, max_size=5).map(
    lambda xs: Pipe(*xs)
)


class TestPipelineLaw:
    @settings(max_examples=200, deadline=None)
    @given(pipes)
    def test_pipe_service_time_is_max_of_stages(self, pipe):
        assert service_time(pipe) == max(service_time(s) for s in pipe.stages)

    @settings(max_examples=200, deadline=None)
    @given(pipes)
    def test_bottleneck_stage_attains_the_bound(self, pipe):
        i = bottleneck_stage(pipe)
        assert service_time(pipe.stages[i]) == service_time(pipe)

    @settings(max_examples=200, deadline=None)
    @given(pipes)
    def test_adding_a_stage_never_raises_throughput(self, pipe):
        """A pipeline can only be as fast as its slowest stage, so
        appending any stage can never make it faster."""
        longer = Pipe(*(pipe.stages + (Seq(work=7.7),)))
        assert throughput(longer) <= throughput(pipe)


class TestFarmLaw:
    @settings(max_examples=200, deadline=None)
    @given(skeletons(max_leaves=4), st.integers(1, 31))
    def test_throughput_monotone_in_degree(self, worker, degree):
        """More workers never slow a farm down (in the analytical model
        — the live emitter bound is scalability_limit's business)."""
        lo = Farm(worker=worker, degree=degree)
        hi = Farm(worker=worker, degree=degree + 1)
        assert throughput(hi) >= throughput(lo)

    @settings(max_examples=200, deadline=None)
    @given(skeletons(max_leaves=4), st.integers(1, 64))
    def test_degree_divides_service_time_exactly(self, worker, degree):
        farm = Farm(worker=worker, degree=degree)
        assert service_time(farm) == service_time(worker) / degree

    @settings(max_examples=200, deadline=None)
    @given(skeletons(max_leaves=4), st.integers(1, 64))
    def test_resource_count_scales_with_degree(self, worker, degree):
        farm = Farm(worker=worker, degree=degree)
        assert resource_count(farm) == degree * resource_count(worker)


class TestOptimalDegree:
    # targets with short decimal forms, same rationale as `works`
    targets = st.integers(1, 5000).map(lambda i: i / 100)

    @settings(max_examples=300, deadline=None)
    @given(skeletons(max_leaves=4), targets)
    def test_sized_farm_meets_the_target(self, worker, target):
        d = optimal_degree(worker, target)
        assert d >= 1
        got = throughput(Farm(worker=worker, degree=d))
        assert got >= target * (1 - 1e-9)

    @settings(max_examples=300, deadline=None)
    @given(skeletons(max_leaves=4), targets)
    def test_one_worker_fewer_would_miss(self, worker, target):
        """Minimality: the manager never over-provisions its initial
        degree (resources are the §3 power/cost concern's currency)."""
        d = optimal_degree(worker, target)
        if d > 1:
            under = throughput(Farm(worker=worker, degree=d - 1))
            assert under < target * (1 + 1e-9)


class TestStageWeights:
    @settings(max_examples=200, deadline=None)
    @given(pipes)
    def test_weights_form_a_probability_vector(self, pipe):
        weights = stage_weights(pipe)
        assert len(weights) == len(pipe.stages)
        assert all(w >= 0 for w in weights)
        assert abs(sum(weights) - 1.0) < 1e-9

    @settings(max_examples=200, deadline=None)
    @given(pipes)
    def test_bottleneck_carries_the_largest_weight(self, pipe):
        weights = stage_weights(pipe)
        assert weights[bottleneck_stage(pipe)] == max(weights)


class TestScalabilityLimit:
    @settings(max_examples=200, deadline=None)
    @given(skeletons(max_leaves=4), st.integers(1, 1000))
    def test_limit_is_a_positive_degree(self, worker, overhead_tenths):
        farm = Farm(worker=worker, degree=1)
        limit = scalability_limit(farm, overhead_tenths / 10)
        assert limit >= 1
