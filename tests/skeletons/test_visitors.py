"""Tests for skeleton tree rewrites and their invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.skeletons.ast import Farm, Pipe, Seq, SkeletonError
from repro.skeletons.cost import service_time
from repro.skeletons.visitors import (
    count_type,
    farm_out_stage,
    normalize,
    replace_node,
    scale_farms,
    transform,
)

from .test_ast import skeleton_strategy


class TestTransform:
    def test_identity_returns_same_tree(self):
        tree = Pipe(Seq(), Farm(Seq()))
        assert transform(tree, lambda n: n) is tree

    def test_bottom_up_order(self):
        visited = []
        tree = Pipe(Seq(1.0), Farm(Seq(2.0)))

        def spy(node):
            visited.append(type(node).__name__)
            return node

        transform(tree, spy)
        assert visited == ["Seq", "Seq", "Farm", "Pipe"]

    def test_rebuilds_only_changed_paths(self):
        left = Seq(1.0)
        right = Farm(Seq(2.0))
        tree = Pipe(left, right)

        def bump(node):
            if isinstance(node, Farm):
                return node.with_degree(node.degree + 1)
            return node

        out = transform(tree, bump)
        assert out is not tree
        assert out.stages[0] is left  # untouched subtree shared


class TestScaleFarms:
    def test_doubles_degrees(self):
        tree = Pipe(Seq(), Farm(Seq(), degree=3), Farm(Seq(), degree=2))
        out = scale_farms(tree, 2.0)
        assert [f.degree for f in out.walk() if isinstance(f, Farm)] == [6, 4]

    def test_never_below_one(self):
        out = scale_farms(Farm(Seq(), degree=2), 0.1)
        assert out.degree == 1

    def test_invalid_factor(self):
        with pytest.raises(SkeletonError):
            scale_farms(Seq(), 0.0)

    @given(skeleton_strategy(), st.floats(min_value=0.5, max_value=4.0))
    @settings(max_examples=40, deadline=None)
    def test_structure_preserved(self, tree, factor):
        out = scale_farms(tree, factor)
        assert out.node_count == tree.node_count
        assert len(out.leaves()) == len(tree.leaves())


class TestFarmOutStage:
    def test_replaces_stage_with_farm(self):
        p = Pipe(Seq(1.0), Seq(5.0), Seq(1.0))
        out = farm_out_stage(p, 1, 5)
        assert isinstance(out.stages[1], Farm)
        assert out.stages[1].degree == 5
        assert out.stages[1].worker == Seq(5.0)

    def test_relieves_bottleneck(self):
        """§4.2: farming the slow stage restores pipeline throughput."""
        p = Pipe(Seq(1.0), Seq(5.0), Seq(1.0))
        assert service_time(p) == 5.0
        out = farm_out_stage(p, 1, 5)
        assert service_time(out) == pytest.approx(1.0)

    def test_bad_index(self):
        with pytest.raises(SkeletonError):
            farm_out_stage(Pipe(Seq(), Seq()), 5, 2)

    def test_bad_degree(self):
        with pytest.raises(SkeletonError):
            farm_out_stage(Pipe(Seq(), Seq()), 0, 0)


class TestNormalize:
    def test_flattens_nested_pipes(self):
        p = Pipe(Seq(1.0), Pipe(Seq(2.0), Seq(3.0)), Seq(4.0))
        out = normalize(p)
        assert isinstance(out, Pipe)
        assert len(out.stages) == 4
        assert all(isinstance(s, Seq) for s in out.stages)

    def test_merges_farm_of_farm(self):
        f = Farm(Farm(Seq(2.0), degree=3), degree=2)
        out = normalize(f)
        assert isinstance(out, Farm)
        assert out.degree == 6
        assert out.worker == Seq(2.0)

    def test_deeply_nested(self):
        f = Farm(Farm(Farm(Seq(), degree=2), degree=2), degree=2)
        out = normalize(f)
        assert out.degree == 8

    def test_already_normal_unchanged(self):
        p = Pipe(Seq(), Farm(Seq(), degree=2))
        assert normalize(p) is p

    @given(skeleton_strategy())
    @settings(max_examples=60, deadline=None)
    def test_preserves_service_time(self, tree):
        assert service_time(normalize(tree)) == pytest.approx(service_time(tree))

    @given(skeleton_strategy())
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, tree):
        once = normalize(tree)
        assert normalize(once) == once

    @given(skeleton_strategy())
    @settings(max_examples=60, deadline=None)
    def test_no_nested_pipes_or_farm_of_farm_left(self, tree):
        out = normalize(tree)
        for node in out.walk():
            if isinstance(node, Pipe):
                assert not any(isinstance(s, Pipe) for s in node.stages)
            if isinstance(node, Farm):
                assert not isinstance(node.worker, Farm)


class TestReplaceAndCount:
    def test_replace_by_identity(self):
        slow = Seq(5.0)
        tree = Pipe(Seq(1.0), slow)
        out = replace_node(tree, slow, Farm(slow, 5))
        assert isinstance(out.stages[1], Farm)
        # equal-but-not-identical Seq(5.0) elsewhere would be untouched
        other = Pipe(Seq(5.0), slow)
        out2 = replace_node(other, slow, Seq(9.0))
        assert out2.stages[0] == Seq(5.0)
        assert out2.stages[1] == Seq(9.0)

    def test_count_type(self):
        tree = Farm(Pipe(Seq(), Farm(Seq()), Seq()))
        assert count_type(tree, Farm) == 2
        assert count_type(tree, Seq) == 3
        assert count_type(tree, Pipe) == 1
