"""Tests for the skeleton cost models."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.skeletons.ast import Farm, Pipe, Seq, SkeletonError
from repro.skeletons.cost import (
    bottleneck_stage,
    describe,
    optimal_degree,
    resource_count,
    scalability_limit,
    service_time,
    stage_weights,
    throughput,
)


class TestServiceTime:
    def test_seq(self):
        assert service_time(Seq(2.0)) == 2.0

    def test_farm_divides_by_degree(self):
        assert service_time(Farm(Seq(4.0), degree=4)) == pytest.approx(1.0)

    def test_pipe_bounded_by_slowest(self):
        p = Pipe(Seq(1.0), Seq(5.0), Seq(2.0))
        assert service_time(p) == 5.0

    def test_paper_tree(self):
        """pipe(seq(1), farm(seq(5), n=5), seq(1)): farm stage matches others."""
        p = Pipe(Seq(1.0), Farm(Seq(5.0), degree=5), Seq(1.0))
        assert service_time(p) == pytest.approx(1.0)

    def test_unknown_type_rejected(self):
        class Odd(Seq.__mro__[1]):  # a bare Skeleton subclass
            pass

        with pytest.raises(SkeletonError):
            service_time(Odd())


class TestThroughput:
    def test_inverse_of_service_time(self):
        assert throughput(Seq(2.0)) == pytest.approx(0.5)

    def test_zero_work_is_infinite(self):
        assert throughput(Seq(0.0)) == math.inf

    def test_farm_scales_linearly(self):
        base = throughput(Farm(Seq(2.0), degree=1))
        assert throughput(Farm(Seq(2.0), degree=3)) == pytest.approx(3 * base)


class TestOptimalDegree:
    def test_exact_fit(self):
        # worker takes 5s; 0.6 t/s needs ceil(3.0) = 3 workers
        assert optimal_degree(Seq(5.0), 0.6) == 3

    def test_rounds_up(self):
        assert optimal_degree(Seq(5.0), 0.61) == 4

    def test_minimum_one(self):
        assert optimal_degree(Seq(0.1), 0.5) == 1

    def test_zero_work_worker(self):
        assert optimal_degree(Seq(0.0), 100.0) == 1

    def test_invalid_target(self):
        with pytest.raises(SkeletonError):
            optimal_degree(Seq(1.0), 0.0)

    @given(
        st.floats(min_value=0.1, max_value=20.0),
        st.floats(min_value=0.05, max_value=5.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_degree_is_sufficient_and_minimal(self, work, target):
        """The computed degree meets the target; one fewer would not."""
        n = optimal_degree(Seq(work), target)
        assert throughput(Farm(Seq(work), degree=n)) >= target - 1e-6
        if n > 1:
            assert throughput(Farm(Seq(work), degree=n - 1)) < target + 1e-6


class TestResourceCount:
    def test_seq(self):
        assert resource_count(Seq()) == 1

    def test_farm(self):
        assert resource_count(Farm(Seq(), degree=4)) == 4

    def test_farm_with_overhead(self):
        assert resource_count(Farm(Seq(), degree=4), farm_overhead=2) == 6

    def test_pipe_sums(self):
        p = Pipe(Seq(), Farm(Seq(), degree=4), Seq())
        assert resource_count(p) == 6

    def test_fig4_initial_deployment(self):
        """Producer + consumer + 3 default workers = 5 cores (Fig. 4)."""
        p = Pipe(Seq(1.0), Farm(Seq(5.0), degree=3), Seq(1.0))
        assert resource_count(p) == 5

    def test_nested(self):
        tree = Farm(Pipe(Seq(), Farm(Seq(), degree=2), Seq()), degree=2)
        assert resource_count(tree) == 8


class TestStageWeights:
    def test_proportional(self):
        p = Pipe(Seq(1.0), Seq(3.0))
        assert stage_weights(p) == pytest.approx([0.25, 0.75])

    def test_all_zero_work(self):
        p = Pipe(Seq(0.0), Seq(0.0))
        assert stage_weights(p) == pytest.approx([0.5, 0.5])

    def test_weights_sum_to_one(self):
        p = Pipe(Seq(1.0), Farm(Seq(4.0), degree=2), Seq(0.5))
        assert sum(stage_weights(p)) == pytest.approx(1.0)

    def test_bottleneck(self):
        p = Pipe(Seq(1.0), Seq(5.0), Seq(2.0))
        assert bottleneck_stage(p) == 1


class TestScalabilityLimit:
    def test_basic(self):
        # 10s of work per task; 0.5s dispatch -> 20 useful workers
        assert scalability_limit(Farm(Seq(10.0)), 0.5) == 20

    def test_at_least_one(self):
        assert scalability_limit(Farm(Seq(0.1)), 1.0) == 1

    def test_invalid_overhead(self):
        with pytest.raises(SkeletonError):
            scalability_limit(Farm(Seq(1.0)), 0.0)


class TestDescribe:
    def test_keys(self):
        d = describe(Pipe(Seq(), Seq()))
        assert set(d) == {"service_time", "throughput", "resources", "depth", "nodes"}
