"""Tests for skeleton tree construction, traversal and parsing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.skeletons.ast import Farm, Pipe, Seq, SkeletonError, parse


def skeleton_strategy(max_depth=4):
    """Hypothesis strategy generating random well-formed skeleton trees."""
    # work values with exact short decimal forms, so to_expr() round-trips
    seqs = st.builds(Seq, work=st.integers(1, 100).map(lambda i: i / 10))
    return st.recursive(
        seqs,
        lambda children: st.one_of(
            st.builds(Farm, worker=children, degree=st.integers(1, 8)),
            st.lists(children, min_size=2, max_size=4).map(lambda xs: Pipe(*xs)),
        ),
        max_leaves=8,
    )


class TestSeq:
    def test_defaults(self):
        s = Seq()
        assert s.work == 1.0
        assert s.name == "seq"
        assert s.children == ()
        assert s.depth == 1
        assert s.node_count == 1

    def test_negative_work_rejected(self):
        with pytest.raises(SkeletonError):
            Seq(work=-1.0)

    def test_zero_work_allowed(self):
        assert Seq(work=0.0).work == 0.0

    def test_expr(self):
        assert Seq().to_expr() == "seq"
        assert Seq(2.5).to_expr() == "seq(2.5)"

    def test_equality(self):
        assert Seq(1.0) == Seq(1.0)
        assert Seq(1.0) != Seq(2.0)


class TestFarm:
    def test_defaults(self):
        f = Farm(Seq(2.0), degree=4)
        assert f.degree == 4
        assert f.children == (Seq(2.0),)
        assert f.depth == 2

    def test_degree_validation(self):
        with pytest.raises(SkeletonError):
            Farm(Seq(), degree=0)

    def test_worker_validation(self):
        with pytest.raises(SkeletonError):
            Farm("not a skeleton")  # type: ignore[arg-type]

    def test_policy_validation(self):
        with pytest.raises(SkeletonError):
            Farm(Seq(), dispatch="teleport")
        with pytest.raises(SkeletonError):
            Farm(Seq(), collect="vanish")

    def test_with_degree_is_copy(self):
        f = Farm(Seq(), degree=2)
        g = f.with_degree(5)
        assert g.degree == 5
        assert f.degree == 2
        assert g.worker is f.worker

    def test_expr(self):
        assert Farm(Seq()).to_expr() == "farm(seq)"
        assert Farm(Seq(), degree=3).to_expr() == "farm(seq, n=3)"


class TestPipe:
    def test_requires_two_stages(self):
        with pytest.raises(SkeletonError):
            Pipe(Seq())

    def test_stage_type_validation(self):
        with pytest.raises(SkeletonError):
            Pipe(Seq(), "nope")  # type: ignore[arg-type]

    def test_children(self):
        p = Pipe(Seq(1.0), Seq(2.0), Seq(3.0))
        assert len(p.children) == 3
        assert p.depth == 2

    def test_paper_tree(self):
        """farm(pipeline(seq, farm(seq), seq)) from §3.1."""
        tree = Farm(Pipe(Seq(), Farm(Seq()), Seq()))
        assert tree.depth == 4
        assert tree.node_count == 6
        assert len(tree.leaves()) == 3

    def test_expr(self):
        p = Pipe(Seq(), Farm(Seq(), degree=2), Seq(0.5))
        assert p.to_expr() == "pipe(seq, farm(seq, n=2), seq(0.5))"


class TestTraversal:
    def test_walk_preorder(self):
        inner = Farm(Seq(2.0))
        tree = Pipe(Seq(1.0), inner)
        nodes = list(tree.walk())
        assert nodes[0] is tree
        assert nodes[1] == Seq(1.0)
        assert nodes[2] is inner

    def test_leaves_left_to_right(self):
        tree = Pipe(Seq(1.0), Farm(Seq(2.0)), Seq(3.0))
        assert [l.work for l in tree.leaves()] == [1.0, 2.0, 3.0]

    @given(skeleton_strategy())
    @settings(max_examples=60, deadline=None)
    def test_node_count_matches_walk(self, tree):
        assert tree.node_count == len(list(tree.walk()))

    @given(skeleton_strategy())
    @settings(max_examples=60, deadline=None)
    def test_leaves_are_seqs(self, tree):
        leaves = tree.leaves()
        assert leaves
        assert all(isinstance(l, Seq) for l in leaves)


class TestParser:
    def test_seq(self):
        assert parse("seq") == Seq()
        assert parse("seq(2.5)") == Seq(2.5)

    def test_farm(self):
        assert parse("farm(seq)") == Farm(Seq())
        assert parse("farm(seq, n=4)") == Farm(Seq(), degree=4)

    def test_pipe_and_pipeline_alias(self):
        expected = Pipe(Seq(), Seq(2.0))
        assert parse("pipe(seq, seq(2))") == expected
        assert parse("pipeline(seq, seq(2))") == expected

    def test_paper_expression(self):
        tree = parse("farm(pipeline(seq, farm(seq), seq))")
        assert isinstance(tree, Farm)
        assert isinstance(tree.worker, Pipe)
        assert len(tree.worker.stages) == 3

    def test_whitespace_tolerated(self):
        assert parse("  farm( seq , n=2 )  ") == Farm(Seq(), degree=2)

    def test_errors(self):
        for bad in ("", "unknown", "farm(seq", "seq)", "farm(seq) extra", "pipe(seq)"):
            with pytest.raises(SkeletonError):
                parse(bad)

    @given(skeleton_strategy())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, tree):
        assert parse(tree.to_expr()) == tree
