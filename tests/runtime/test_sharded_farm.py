"""The farm-of-farms acceptance suite, per backend.

The hierarchy's promises, asserted over every live substrate:

* **only the violating shard grows** — a starving root SLA with the
  whole feed skewed onto shard 0 grows shard 0 through its own
  Figure 5 rules while the idle shard stays at its initial size
  (it raises ``notEnoughTasks``, and arrival below the stripe is
  exactly the case where "nothing can usefully be done locally");
* **rebalancing moves budget, not tasks** — the parent shifts one
  unit of capacity from the idle donor to the capped shard, and every
  submitted task still comes back exactly once (zero loss, zero
  duplication), asserted from the drained results *and* the
  ``repro_hier_rebalance_total`` / ``repro_shard_*`` metrics;
* **budget and SLA conservation** — after any number of moves the
  budgets still sum to the total and the sub-contract rates still sum
  exactly to the root's (the exact-split invariant from
  ``repro.core.contracts``);
* **violations propagate** — shard-level violations surface in the
  parent's aggregated record and metrics;
* **the TCP management plane is a real protocol** — with
  ``over_wire=True`` the same parent loop drives ``contract`` /
  ``budget`` / ``poll`` / ``violation`` frames through a live
  :class:`~repro.runtime.hierarchy.ShardAgent`, which refuses
  version-mismatched peers with a clear error.

Run one backend with, e.g.::

    PYTHONPATH=src python -m pytest tests/runtime/test_sharded_farm.py -k thread
"""

import socket
import time

import pytest

from repro.core.contracts import ThroughputRangeContract
from repro.obs.telemetry import Telemetry
from repro.runtime.dist_proto import PROTOCOL_VERSION, encode_frame
from repro.runtime.hierarchy import ShardedFarm, read_frame_blocking

from .waiting import wait_until

pytestmark = pytest.mark.hierarchy

BACKENDS = ("thread", "process", "dist")

#: fast fault detection for the process/dist shards, as in conformance
#: (heartbeat_timeout stays loose: crash detection is exit/EOF-driven,
#: and a tight staleness bound falsely kills idle workers under load)
FAULT_TUNING = dict(
    heartbeat_period=0.05,
    heartbeat_timeout=2.0,
    supervise_period=0.02,
    backoff_base=0.02,
    backoff_cap=0.2,
)


def shard_task(payload):
    """Module-level so it crosses the process/TCP boundary by name."""
    work, value = payload
    if work:
        time.sleep(work)
    return value * value


def make_sharded(backend, *, contract, telemetry=None, **kwargs):
    shard_kwargs = {"rate_window": 0.8}
    if backend in ("process", "dist"):
        shard_kwargs.update(FAULT_TUNING)
    return ShardedFarm(
        shard_task,
        contract=contract,
        backend=backend,
        shards=2,
        max_workers_total=4,
        control_period=0.1,
        rebalance_cooldown=0.3,
        telemetry=telemetry,
        shard_kwargs=shard_kwargs,
        **kwargs,
    )


def counter_value(telemetry, name, **labels):
    return telemetry.metrics.counter(name, "").labels(**labels).value


def gauge_value(telemetry, name, **labels):
    return telemetry.metrics.gauge(name, "").labels(**labels).value


@pytest.mark.parametrize("backend", BACKENDS)
class TestStarvationAndRebalance:
    def test_starving_shard_grows_rebalances_zero_loss(self, backend):
        """The acceptance scenario: skewed feed under a starving root SLA.

        The root floor (120/s over 2 shards -> 60/s each) needs three
        25/s workers on the hot shard, whose budget starts at 2: its own
        rules grow it 1 -> 2, the refused third grow becomes
        ``noLocalPlan``, the parent moves budget from the idle donor,
        and the hot shard grows to 3.  The donor must never grow.
        """
        tel = Telemetry()
        farm = make_sharded(
            backend, contract=ThroughputRangeContract(120.0, 400.0), telemetry=tel
        )
        n = 240
        try:
            for i in range(n):
                farm.shards[0].farm.submit((0.04, i))
                time.sleep(0.01)
            results = farm.drain_results(n, timeout=90.0)

            # zero loss, zero duplication: every task back exactly once
            assert sorted(results) == sorted(i * i for i in range(n))

            # the parent moved capacity toward the violating shard
            assert farm.rebalances, "no rebalance happened"
            move = farm.rebalances[0]
            assert (move.from_shard, move.to_shard) == (1, 0)
            assert move.latency >= 0.0
            assert farm.budgets[0] > farm.budgets[1]
            assert sum(farm.budgets) == farm.max_workers_total

            # only the violating shard grew; the idle donor never did
            assert farm.shards[0].farm.num_workers > 1
            assert farm.shards[1].farm.num_workers == 1

            # the sub-contracts still sum exactly to the root SLA
            lows = [c.low for c in farm.sub_contracts]
            highs = [c.high for c in farm.sub_contracts]
            assert sum(lows) == 120.0
            assert sum(highs) == 400.0

            # ... and the same story is told by the metrics
            assert counter_value(
                tel, "repro_hier_rebalance_total",
                farm=farm.name, source="1", target="0",
            ) >= 1
            assert gauge_value(
                tel, "repro_shard_budget", farm=farm.name, shard="0"
            ) == farm.budgets[0]
            assert gauge_value(
                tel, "repro_shard_workers", farm=farm.name, shard="1"
            ) == 1
            assert counter_value(
                tel, "repro_hier_violations_total",
                farm=farm.name, shard="0", kind="noLocalPlan",
            ) >= 1
        finally:
            farm.shutdown()

    def test_idle_tree_reports_violations_without_growing(self, backend):
        """No load at all: every shard raises ``notEnoughTasks`` into the
        parent's aggregate record, and nothing grows or rebalances —
        the paper's "nothing can usefully be done locally" case."""
        tel = Telemetry()
        farm = make_sharded(
            backend, contract=ThroughputRangeContract(120.0, 400.0), telemetry=tel
        )
        try:
            wait_until(
                lambda: {
                    shard for _, shard, kind in farm.violations
                    if kind == "notEnoughTasks"
                } == {0, 1},
                timeout=30.0,
                message="both idle shards should report notEnoughTasks",
            )
            assert not farm.rebalances
            assert farm.budgets == [2, 2]
            assert all(s.farm.num_workers == 1 for s in farm.shards)
        finally:
            farm.shutdown()


class TestRebalanceMechanics:
    """Thread-backend mechanics that need deterministic driving."""

    def test_shrink_with_queued_tasks_loses_nothing(self):
        """An active shrink poisons a worker *behind* its queue: budget
        revocation mid-stream must never lose a task."""
        farm = make_sharded(
            "thread",
            contract=ThroughputRangeContract(1.0, 1000.0),
            initial_workers_per_shard=2,
            autostart=False,
        )
        try:
            n = 40
            for i in range(n):
                farm.shards[1].farm.submit((0.01, i))
            removed = farm.links[1].set_budget(1)
            assert removed == 1
            assert farm.shards[1].budget == 1
            results = farm.drain_results(n, timeout=30.0)
            assert sorted(results) == sorted(i * i for i in range(n))
            assert farm.shards[1].farm.num_workers == 1
        finally:
            farm.shutdown()

    def test_dispatch_spreads_by_budget(self):
        """The parent's stride dispatcher weights shards by budget."""
        farm = make_sharded(
            "thread",
            contract=ThroughputRangeContract(1.0, 1000.0),
            autostart=False,
        )
        try:
            for i in range(20):
                farm.submit((0.0, i))
            # equal budgets -> an even split
            assert farm._dispatched_per_shard == [10, 10]
            results = farm.drain_results(20, timeout=30.0)
            assert sorted(results) == sorted(i * i for i in range(20))
        finally:
            farm.shutdown()

    def test_duplicate_violations_in_one_cycle_all_aggregate(self):
        """Several violations raised between two polls all reach the
        parent record, each exactly once (no dedup, no loss)."""
        farm = make_sharded(
            "thread",
            contract=ThroughputRangeContract(1.0, 1000.0),
            autostart=False,
        )
        try:
            controller = farm.shards[0].controller
            now = farm.shards[0].farm.now()
            controller.violations.append((now, "notEnoughTasks"))
            controller.violations.append((now, "notEnoughTasks"))
            controller.violations.append((now, "noLocalPlan"))
            farm.parent_step()
            kinds = [k for _, shard, k in farm.violations if shard == 0]
            assert kinds == ["notEnoughTasks", "notEnoughTasks", "noLocalPlan"]
            # the next poll must not replay them
            farm.parent_step()
            assert len([k for _, s, k in farm.violations if s == 0]) == 3
        finally:
            farm.shutdown()


class TestWireManagementPlane:
    """The same parent loop over real TCP frames (over_wire=True)."""

    def test_wire_link_round_trip(self):
        tel = Telemetry()
        farm = make_sharded(
            "thread",
            contract=ThroughputRangeContract(2.0, 1000.0),
            telemetry=tel,
            over_wire=True,
            autostart=False,
        )
        try:
            assert all(agent is not None for agent in farm.agents)
            for i in range(10):
                farm.submit((0.0, i))
            results = farm.drain_results(10, timeout=30.0)
            assert sorted(results) == sorted(i * i for i in range(10))

            farm.parent_step()  # polls every shard over TCP
            assert all(r is not None for r in farm.last_reports)
            # a budget change and a re-contract also cross the wire
            assert farm.links[0].set_budget(1) == 0
            farm.links[0].assign_contract(farm.sub_contracts[0])
            agent = farm.agents[0]
            assert agent.frames_served >= 3  # hello + poll + budget + contract
            assert counter_value(
                tel, "repro_hier_wire_frames_total",
                shard=farm.shards[0].name, type="poll",
            ) >= 1
        finally:
            farm.shutdown()

    def test_agent_refuses_mismatched_protocol_version(self):
        farm = make_sharded(
            "thread",
            contract=ThroughputRangeContract(2.0, 1000.0),
            over_wire=True,
            autostart=False,
        )
        try:
            agent = farm.agents[0]
            with socket.create_connection((agent.host, agent.port), timeout=5.0) as sock:
                sock.sendall(encode_frame({"type": "hello", "proto": 999}))
                reply = read_frame_blocking(sock.makefile("rb"))
            assert reply is not None
            assert reply["type"] == "error"
            assert "protocol version mismatch" in reply["error"]
            assert str(PROTOCOL_VERSION) in reply["error"]
        finally:
            farm.shutdown()
