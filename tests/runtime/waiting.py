"""Event-based waiting for the wall-clock runtime tests.

CI runners are slow and noisy; a fixed ``time.sleep`` is either flaky
(too short) or wasteful (too long).  Every runtime test that used to
sleep now polls its actual postcondition with a generous deadline and
returns the moment it holds — the injectable ``clock`` keeps even the
deadline logic testable.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

#: generous ceiling for anything a loaded CI runner must get done
GENEROUS = 30.0


def wait_until(
    predicate: Callable[[], object],
    *,
    timeout: float = GENEROUS,
    interval: float = 0.01,
    on_tick: Optional[Callable[[], None]] = None,
    message: str = "condition",
    clock: Callable[[], float] = time.monotonic,
) -> object:
    """Poll ``predicate`` until truthy; return its value.

    ``on_tick`` runs before each probe (e.g. keep submitting load or
    drive a controller step).  Raises ``TimeoutError`` with ``message``
    if the deadline passes first.
    """
    deadline = clock() + timeout
    while True:
        if on_tick is not None:
            on_tick()
        value = predicate()
        if value:
            return value
        if clock() >= deadline:
            raise TimeoutError(f"timed out after {timeout}s waiting for {message}")
        time.sleep(interval)
