"""The dispatch journal and supervised failover, pinned down.

Three layers of guarantees:

* **DispatchJournal mechanics** — seq continuation across restarts,
  fsync batching, torn-tail tolerance, closed-journal discipline;
* **replay as a pure fold** — the Hypothesis suite: for *any* valid
  event sequence and *any* crash point, replaying the prefix and then
  applying the suffix equals replaying the whole; the completed/pending
  sid sets partition exactly; quarantined-but-never-admitted workers
  stay on their side of the gate; duplicate completions never win;
* **SupervisedFarm end-to-end (thread)** — an explicit crash + failover
  round-trip delivers every task exactly once with the quarantine
  partition intact.  The full cross-backend story (process/dist standby
  takeover, partitions, faults inside the failover window) lives in the
  chaos tier of ``test_backend_conformance.py``.
"""

import json
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.supervision import (
    DispatchJournal,
    SupervisedFarm,
    read_journal,
    replay_events,
    run_tagged,
    tagged_envelope,
)

from .waiting import wait_until


def supervised_task(payload):
    """Module-level so the tagged runner can resolve it by name."""
    work, value = payload
    if work:
        time.sleep(work)
    return value * value


# ----------------------------------------------------------------------
# DispatchJournal mechanics
# ----------------------------------------------------------------------


class TestDispatchJournal:
    def test_append_replay_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = DispatchJournal(str(path), fsync_batch=4)
        journal.append({"ev": "open", "name": "f", "backend": "thread", "fn": "m:f"})
        journal.append({"ev": "submit", "sid": 0, "p": 7})
        journal.append({"ev": "worker", "wid": 0, "quarantined": True})
        journal.append({"ev": "complete", "sid": 0, "ok": True, "v": 49})
        journal.sync()
        state = journal.replay()
        assert state.name == "f" and state.backend == "thread"
        assert state.pending == {} and state.completed == {0: {"ok": True, "v": 49}}
        assert state.quarantined_wids == [0]
        journal.close()

    def test_seq_continues_across_restart(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = DispatchJournal(str(path))
        s0 = first.append({"ev": "submit", "sid": 0, "p": 1})
        s1 = first.append({"ev": "submit", "sid": 1, "p": 2})
        first.close()
        second = DispatchJournal(str(path))
        s2 = second.append({"ev": "submit", "sid": 2, "p": 3})
        second.close()
        assert (s0, s1, s2) == (0, 1, 2)
        seqs = [e["seq"] for e in read_journal(str(path))]
        assert seqs == sorted(seqs) == [0, 1, 2]

    def test_fsync_batching(self, tmp_path):
        journal = DispatchJournal(str(tmp_path / "j.jsonl"), fsync_batch=8)
        for i in range(20):
            journal.append({"ev": "submit", "sid": i, "p": i})
        assert journal.fsyncs == 2  # two full batches, tail unsynced
        journal.sync()
        assert journal.fsyncs == 3
        journal.close()

    def test_closed_journal_refuses_appends(self, tmp_path):
        journal = DispatchJournal(str(tmp_path / "j.jsonl"))
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(RuntimeError):
            journal.append({"ev": "submit", "sid": 0, "p": 0})

    def test_fsync_batch_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            DispatchJournal(str(tmp_path / "j.jsonl"), fsync_batch=0)

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = [
            json.dumps({"ev": "submit", "sid": 0, "p": 1, "seq": 0}),
            json.dumps({"ev": "submit", "sid": 1, "p": 2, "seq": 1}),
            '{"ev": "compl',  # the line the crash interrupted
        ]
        path.write_text("\n".join(lines))
        events = read_journal(str(path))
        assert [e["sid"] for e in events] == [0, 1]
        # recovery opens the same file and keeps numbering after the tear
        journal = DispatchJournal(str(path))
        assert journal.append({"ev": "submit", "sid": 2, "p": 3}) == 2
        journal.close()

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_journal(str(tmp_path / "absent.jsonl")) == []


# ----------------------------------------------------------------------
# the tagged envelope runner
# ----------------------------------------------------------------------


class TestTaggedRunner:
    def test_roundtrip(self):
        env = tagged_envelope(
            3, "tests.runtime.test_supervision:supervised_task", (0.0, 5)
        )
        out = run_tagged(env)
        assert out == {"sid": 3, "ok": True, "value": 25}

    def test_error_is_captured_not_raised(self):
        env = tagged_envelope(
            1, "tests.runtime.test_supervision:supervised_task", "not-a-pair"
        )
        out = run_tagged(env)
        assert out["sid"] == 1 and out["ok"] is False
        assert "error" in out


# ----------------------------------------------------------------------
# replay as a pure fold (Hypothesis)
# ----------------------------------------------------------------------


@st.composite
def journal_histories(draw):
    """Event sequences shaped like what a real SupervisedFarm appends:
    monotone sids/wids, completes only for submitted sids (duplicates
    allowed — the at-least-once reality), actuators only for known wids.
    """
    events = [
        {"ev": "open", "name": "h", "backend": "thread", "fn": "m:f", "epoch": 0}
    ]
    next_sid = 0
    next_wid = 0
    epoch = 0
    sids = []
    wids = []
    for _ in range(draw(st.integers(min_value=0, max_value=40))):
        kind = draw(
            st.sampled_from(
                [
                    "submit", "submit", "complete", "complete", "worker",
                    "admit", "secure", "secure_all", "remove", "epoch",
                    "contract", "intent",
                ]
            )
        )
        if kind == "submit":
            event = {"ev": "submit", "sid": next_sid, "p": draw(st.integers(0, 99))}
            if draw(st.booleans()):
                event["tenant"] = draw(st.sampled_from(["acme", "globex"]))
            events.append(event)
            sids.append(next_sid)
            next_sid += 1
        elif kind == "complete" and sids:
            sid = draw(st.sampled_from(sids))
            if draw(st.booleans()):
                events.append({"ev": "complete", "sid": sid, "ok": True, "v": sid})
            else:
                events.append({"ev": "complete", "sid": sid, "ok": False, "err": "boom"})
        elif kind == "worker":
            events.append(
                {
                    "ev": "worker",
                    "wid": next_wid,
                    "quarantined": draw(st.booleans()),
                    "secured": draw(st.booleans()),
                }
            )
            wids.append(next_wid)
            next_wid += 1
        elif kind in ("admit", "secure", "remove") and wids:
            events.append({"ev": kind, "wid": draw(st.sampled_from(wids))})
        elif kind == "secure_all":
            events.append({"ev": "secure_all"})
        elif kind == "epoch":
            epoch += 1
            events.append({"ev": "epoch", "epoch": epoch})
        elif kind == "contract":
            events.append({"ev": "contract", "c": {"kind": "best_effort"}})
        elif kind == "intent":
            events.append(
                {
                    "ev": "intent",
                    "originator": "am",
                    "operation": "addWorker",
                    "outcome": draw(st.sampled_from(["committed", "vetoed"])),
                }
            )
    return events


class TestReplayProperties:
    @settings(max_examples=80, deadline=None)
    @given(events=journal_histories(), data=st.data())
    def test_replay_crash_replay_is_idempotent(self, events, data):
        """Replaying any prefix, 'crashing', and folding the suffix into
        the recovered state equals replaying the whole journal — the
        property that makes recovery-of-a-recovery safe."""
        cut = data.draw(st.integers(min_value=0, max_value=len(events)))
        whole = replay_events(events)
        recovered = replay_events(events[:cut])
        for event in events[cut:]:
            recovered.apply(event)
        assert recovered == whole

    @settings(max_examples=80, deadline=None)
    @given(events=journal_histories())
    def test_replay_is_deterministic(self, events):
        assert replay_events(events) == replay_events(list(events))

    @settings(max_examples=80, deadline=None)
    @given(events=journal_histories())
    def test_completed_and_pending_partition_the_sids(self, events):
        """Exactly-once at the state level: every admitted sid is in
        exactly one of pending/completed, never both, never neither."""
        state = replay_events(events)
        completed = set(state.completed)
        pending = set(state.pending)
        assert not (completed & pending)
        assert completed | pending == set(range(state.next_sid))
        # tenants only tracked while pending
        assert set(state.tenants) <= pending

    @settings(max_examples=80, deadline=None)
    @given(events=journal_histories())
    def test_quarantine_partition_is_stable(self, events):
        """A worker journaled quarantined and never admitted replays
        quarantined; admitted/quarantined partition the active set."""
        state = replay_events(events)
        active = {wid for wid, w in state.workers.items() if w["active"]}
        quarantined = set(state.quarantined_wids)
        admitted = set(state.admitted_wids)
        assert not (quarantined & admitted)
        assert quarantined | admitted == active
        # exact oracle: quarantined iff registered quarantined and never admitted
        admits = {e["wid"] for e in events if e.get("ev") == "admit"}
        born_gated = {
            e["wid"]
            for e in events
            if e.get("ev") == "worker" and e.get("quarantined")
        }
        assert quarantined == (born_gated - admits) & active

    @settings(max_examples=80, deadline=None)
    @given(events=journal_histories())
    def test_first_completion_wins(self, events):
        """Duplicate completes (the at-least-once underbelly) never
        overwrite the result that already left the farm."""
        state = replay_events(events)
        first = {}
        for event in events:
            if event.get("ev") == "complete" and event["sid"] not in first:
                first[event["sid"]] = event
        for sid, event in first.items():
            expect = (
                {"ok": True, "v": event.get("v")}
                if event.get("ok")
                else {"ok": False, "err": str(event.get("err", ""))}
            )
            assert state.completed[sid] == expect

    @settings(max_examples=40, deadline=None)
    @given(events=journal_histories(), cut=st.integers(min_value=0, max_value=20))
    def test_torn_tail_replay_equals_intact_prefix(self, tmp_path_factory, events, cut):
        """A journal torn mid-line replays exactly the intact prefix."""
        path = tmp_path_factory.mktemp("journal") / "torn.jsonl"
        keep = events[: min(cut, len(events))]
        text = "".join(
            json.dumps(dict(e, seq=i), separators=(",", ":")) + "\n"
            for i, e in enumerate(keep)
        )
        path.write_text(text + '{"ev":"submit","sid"')
        recovered = replay_events(read_journal(str(path)))
        expected = replay_events(keep)
        assert recovered == expected


# ----------------------------------------------------------------------
# SupervisedFarm end-to-end (thread; cross-backend lives in the chaos tier)
# ----------------------------------------------------------------------


class TestSupervisedFarmFailover:
    def test_explicit_crash_failover_is_exactly_once(self, tmp_path):
        farm = SupervisedFarm(
            supervised_task,
            backend="thread",
            journal_path=str(tmp_path / "j.jsonl"),
            initial_workers=2,
        )
        try:
            gated = farm.add_worker(quarantined=True)
            total = 30
            for i in range(total):
                farm.submit((0.005, i))
            wait_until(
                lambda: farm.completed >= 5,
                message="stream in flight before the crash",
            )
            farm.crash_coordinator()
            # submits during the outage are journaled, not lost
            farm.submit((0.005, total))
            state = farm.failover()
            assert state.epoch == 1 and farm.epoch == 1
            assert state.quarantined_wids, "quarantine lost in replay"
            results = farm.drain_results(total + 1, timeout=60.0)
            assert sorted(results) == [i * i for i in range(total + 1)]
            assert farm.completed == total + 1
            assert farm.quarantined_workers == 1
            assert gated.dispatched == 0
        finally:
            farm.shutdown()

    def test_failover_requires_a_crash(self, tmp_path):
        farm = SupervisedFarm(
            supervised_task,
            backend="thread",
            journal_path=str(tmp_path / "j.jsonl"),
        )
        try:
            with pytest.raises(RuntimeError):
                farm.failover()
        finally:
            farm.shutdown()

    def test_actuators_refused_while_crashed(self, tmp_path):
        farm = SupervisedFarm(
            supervised_task,
            backend="thread",
            journal_path=str(tmp_path / "j.jsonl"),
        )
        try:
            farm.crash_coordinator()
            with pytest.raises(RuntimeError):
                farm.add_worker()
            assert farm.balance_load() == 0
            farm.failover()
            assert farm.add_worker() is not None
        finally:
            farm.shutdown()
