"""Tests for active objects and futures (the ProActive analog)."""

import threading
import time

import pytest

from repro.runtime.active_object import ActiveObject, ActiveObjectError, FutureResult


class Counter(ActiveObject):
    """Test service: unsynchronised state, safe because single-threaded."""

    def __init__(self):
        super().__init__("counter")
        self.value = 0

    def increment(self, by=1):
        self.value += by
        return self.value

    def get(self):
        return self.value

    def boom(self):
        raise ValueError("boom")

    def slow(self, delay):
        time.sleep(delay)
        return "done"

    def which_thread(self):
        return threading.current_thread().name


class TestFutureResult:
    def test_wait_returns_value(self):
        f = FutureResult()
        f._resolve(42)
        assert f.ready
        assert f.wait(0.1) == 42

    def test_wait_reraises_error(self):
        f = FutureResult()
        f._reject(ValueError("x"))
        with pytest.raises(ValueError):
            f.wait(0.1)

    def test_wait_times_out(self):
        f = FutureResult()
        with pytest.raises(TimeoutError):
            f.wait(0.01)


class TestActiveObject:
    def test_invoke_before_start_rejected(self):
        c = Counter()
        with pytest.raises(ActiveObjectError):
            c.invoke("get")

    def test_invoke_returns_future(self):
        c = Counter().start()
        try:
            f = c.invoke("increment", 5)
            assert f.wait(5.0) == 5
        finally:
            c.stop()

    def test_requests_served_in_order(self):
        c = Counter().start()
        try:
            futures = [c.invoke("increment") for _ in range(100)]
            results = [f.wait(5.0) for f in futures]
            assert results == list(range(1, 101))
        finally:
            c.stop()

    def test_all_requests_on_service_thread(self):
        c = Counter().start()
        try:
            names = {c.call("which_thread") for _ in range(5)}
            assert names == {"counter"}
        finally:
            c.stop()

    def test_exception_propagates_through_future(self):
        c = Counter().start()
        try:
            with pytest.raises(ValueError, match="boom"):
                c.call("boom")
            # object survives the failure
            assert c.call("increment") == 1
        finally:
            c.stop()

    def test_unknown_method_rejected(self):
        c = Counter().start()
        try:
            with pytest.raises(ActiveObjectError):
                c.invoke("no_such_method")
        finally:
            c.stop()

    def test_oneway_executes(self):
        c = Counter().start()
        try:
            c.oneway("increment", 3)
            assert c.call("get") == 3
        finally:
            c.stop()

    def test_stop_drains_pending(self):
        c = Counter().start()
        futures = [c.invoke("increment") for _ in range(20)]
        c.stop()
        assert all(f.ready for f in futures)
        assert futures[-1].wait(0.1) == 20

    def test_invoke_after_stop_rejected(self):
        c = Counter().start()
        c.stop()
        with pytest.raises(ActiveObjectError):
            c.invoke("get")

    def test_stop_is_idempotent(self):
        c = Counter().start()
        c.stop()
        c.stop()

    def test_asynchrony(self):
        """invoke() returns before the method completes."""
        c = Counter().start()
        try:
            t0 = time.monotonic()
            f = c.invoke("slow", 1.0)
            # invoke() only enqueues: even a heavily loaded runner gets
            # back well inside the 1 s the method itself blocks for
            assert time.monotonic() - t0 < 0.5
            assert not f.ready
            assert f.wait(10.0) == "done"
        finally:
            c.stop()
