"""E2E regression: a dist worker survives its coordinator.

These tests drive a **real** :func:`repro.runtime.dist_worker.run_worker`
coroutine against a scripted coordinator speaking the raw v3 wire
protocol, pinning the three reattach guarantees the supervised dist
story depends on:

* an EOF with ``reconnect_attempts > 0`` redials the *same* port with
  capped backoff and announces a ``reattach`` frame carrying the id and
  completion count it already earned — a promoted standby answers
  ``takeover`` and work continues;
* the highest epoch ever served is sticky: a session announcing a lower
  epoch is a stale predecessor and every task frame it sends is bounced
  ``refused``/``stale epoch``, never executed;
* when the redial budget runs dry the worker exits 1 instead of spinning.

The full farm-level story (SupervisedFarm standby promotion, journal
replay, partitions) lives in the chaos tier of
``test_backend_conformance.py`` — this file is the protocol-level
regression net that keeps those tests debuggable.
"""

import asyncio

import pytest

from repro.runtime.dist_proto import PROTOCOL_VERSION, encode_frame, read_frame
from repro.runtime.dist_worker import run_worker


def _square(x):
    return x * x


class ScriptedSession:
    """One accepted worker connection, with hb-frames filtered out."""

    def __init__(self, reader, writer, greeting):
        self.reader = reader
        self.writer = writer
        self.greeting = greeting

    def send(self, message):
        self.writer.write(encode_frame(message))

    async def recv(self, timeout=10.0):
        while True:
            frame = await asyncio.wait_for(read_frame(self.reader), timeout)
            if frame is None or frame.get("type") != "hb":
                return frame

    def close(self):
        try:
            self.writer.close()
        except Exception:  # noqa: BLE001 - already torn down
            pass


class ScriptedCoordinator:
    """A hand-rolled coordinator end: accept, script frames, die on cue."""

    def __init__(self, port=0):
        self.port = port
        self._server = None
        self._pending = asyncio.Queue()

    async def start(self):
        self._server = await asyncio.start_server(
            self._on_connection, "127.0.0.1", self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def _on_connection(self, reader, writer):
        await self._pending.put((reader, writer))

    async def accept(self, timeout=10.0):
        reader, writer = await asyncio.wait_for(self._pending.get(), timeout)
        greeting = await asyncio.wait_for(read_frame(reader), timeout)
        return ScriptedSession(reader, writer, greeting)

    async def stop(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


def _start_worker(port, **kwargs):
    return asyncio.ensure_future(
        run_worker(
            "127.0.0.1",
            port,
            _square,
            heartbeat_period=0.05,
            connect_backoff=0.01,
            connect_backoff_cap=0.1,
            **kwargs,
        )
    )


class TestDistWorkerReconnect:
    def test_reattach_to_restarted_coordinator_on_same_port(self):
        """Kill the coordinator mid-service; the worker redials the same
        port, reattaches under its old id with its completion count, and
        keeps serving the promoted successor."""

        async def scenario():
            coord = await ScriptedCoordinator().start()
            port = coord.port
            worker = _start_worker(port, reconnect_attempts=400)
            try:
                first = await coord.accept()
                assert first.greeting["type"] == "hello"
                assert first.greeting["proto"] == PROTOCOL_VERSION
                first.send(
                    {
                        "type": "welcome",
                        "worker_id": 7,
                        "proto": PROTOCOL_VERSION,
                        "epoch": 0,
                    }
                )
                first.send({"type": "task", "task_id": 1, "payload": 3})
                result = await first.recv()
                assert result["type"] == "result" and result["value"] == 9
                assert result["completed"] == 1

                # the coordinator dies: listener gone, connection cut
                await coord.stop()
                first.close()
                await asyncio.sleep(0.05)  # let a few redials bounce

                # the standby rebinds the same port and is reattached to
                standby = await ScriptedCoordinator(port).start()
                second = await standby.accept()
                assert second.greeting["type"] == "reattach"
                assert second.greeting["worker_id"] == 7
                assert second.greeting["completed"] == 1
                second.send(
                    {
                        "type": "takeover",
                        "worker_id": 7,
                        "proto": PROTOCOL_VERSION,
                        "epoch": 1,
                    }
                )
                second.send({"type": "task", "task_id": 2, "payload": 4})
                result = await second.recv()
                assert result["type"] == "result" and result["value"] == 16
                assert result["completed"] == 2

                second.send({"type": "poison"})
                bye = await second.recv()
                assert bye["type"] == "bye" and bye["completed"] == 2
                assert await asyncio.wait_for(worker, 10.0) == 0
                second.close()
                await standby.stop()
            finally:
                worker.cancel()
                await coord.stop()

        asyncio.run(asyncio.wait_for(scenario(), 30.0))

    def test_stale_epoch_sessions_cannot_extract_work(self):
        """The highest epoch served is sticky: a reattach welcomed with a
        *lower* epoch gets every task frame refused, and a later session
        at a higher epoch serves normally again."""

        async def scenario():
            coord = await ScriptedCoordinator().start()
            worker = _start_worker(coord.port, reconnect_attempts=400)
            try:
                first = await coord.accept()
                first.send(
                    {
                        "type": "welcome",
                        "worker_id": 3,
                        "proto": PROTOCOL_VERSION,
                        "epoch": 5,
                    }
                )
                first.send({"type": "task", "task_id": 1, "payload": 2})
                assert (await first.recv())["value"] == 4
                first.close()

                stale = await coord.accept()
                assert stale.greeting["type"] == "reattach"
                stale.send(
                    {
                        "type": "takeover",
                        "worker_id": 3,
                        "proto": PROTOCOL_VERSION,
                        "epoch": 3,  # a zombie predecessor incarnation
                    }
                )
                stale.send({"type": "task", "task_id": 9, "payload": 5})
                refusal = await stale.recv()
                assert refusal["type"] == "refused"
                assert refusal["reason"] == "stale epoch"
                assert refusal["task_id"] == 9
                stale.close()

                current = await coord.accept()
                current.send(
                    {
                        "type": "takeover",
                        "worker_id": 3,
                        "proto": PROTOCOL_VERSION,
                        "epoch": 6,
                    }
                )
                current.send({"type": "task", "task_id": 10, "payload": 5})
                result = await current.recv()
                assert result["type"] == "result" and result["value"] == 25
                # the refused task never executed: completion count says so
                assert result["completed"] == 2

                current.send({"type": "poison"})
                assert (await current.recv())["type"] == "bye"
                assert await asyncio.wait_for(worker, 10.0) == 0
                current.close()
            finally:
                worker.cancel()
                await coord.stop()

        asyncio.run(asyncio.wait_for(scenario(), 30.0))

    def test_redial_budget_exhaustion_exits_instead_of_spinning(self):
        """When the coordinator never comes back, the capped-backoff
        redial loop gives up and the worker reports failure."""

        async def scenario():
            coord = await ScriptedCoordinator().start()
            worker = _start_worker(coord.port, reconnect_attempts=3)
            try:
                first = await coord.accept()
                first.send(
                    {
                        "type": "welcome",
                        "worker_id": 0,
                        "proto": PROTOCOL_VERSION,
                        "epoch": 0,
                    }
                )
                first.send({"type": "task", "task_id": 1, "payload": 6})
                assert (await first.recv())["value"] == 36
                await coord.stop()
                first.close()
                assert await asyncio.wait_for(worker, 10.0) == 1
            finally:
                worker.cancel()
                await coord.stop()

        asyncio.run(asyncio.wait_for(scenario(), 30.0))

    def test_protocol_version_mismatch_is_fatal_not_retried(self):
        """A coordinator announcing a different protocol version is a
        deployment error, not an outage: the worker refuses to serve."""

        async def scenario():
            coord = await ScriptedCoordinator().start()
            worker = _start_worker(coord.port, reconnect_attempts=400)
            try:
                first = await coord.accept()
                first.send(
                    {
                        "type": "welcome",
                        "worker_id": 0,
                        "proto": PROTOCOL_VERSION + 1,
                        "epoch": 0,
                    }
                )
                assert await asyncio.wait_for(worker, 10.0) == 1
                first.close()
            finally:
                worker.cancel()
                await coord.stop()

        asyncio.run(asyncio.wait_for(scenario(), 30.0))


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
