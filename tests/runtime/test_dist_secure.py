"""Wire-level regression: ``dist_worker --require-secure`` enforces the
gate on its own side of the TCP connection.

These tests do NOT use :class:`DistFarm`.  They run a hand-rolled
coordinator speaking the raw frame protocol against a real
``python -m repro.runtime.dist_worker`` subprocess, because the property
under test is exactly that a *coordinator-independent* adversary — any
client that can speak the protocol — cannot push a task onto an
unsecured channel: the worker itself bounces the frame with ``refused``
and never executes it.
"""

import asyncio
import os
import subprocess
import sys

import pytest

from repro.runtime.dist_proto import (
    PROTOCOL_VERSION,
    encode_frame,
    make_challenge,
    read_frame,
    verify_proof,
)

pytestmark = pytest.mark.multiconcern

WORKER_FN = "repro.experiments.fig4_live:live_task"  # (work, value) -> value²


async def start_coordinator():
    """A listening socket that hands the first worker connection back."""
    conn = asyncio.get_running_loop().create_future()

    async def on_connect(reader, writer):
        if not conn.done():
            conn.set_result((reader, writer))

    server = await asyncio.start_server(on_connect, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    return server, port, conn


def spawn_worker(port, *extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.runtime.dist_worker",
            "--host",
            "127.0.0.1",
            "--port",
            str(port),
            "--worker-id",
            "7",
            "--fn",
            WORKER_FN,
            *extra_args,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
    )


async def next_frame(reader, *, skip=("hb",), timeout=15.0):
    """The next non-heartbeat frame, or fail the test on EOF/timeout."""
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        remaining = deadline - asyncio.get_running_loop().time()
        frame = await asyncio.wait_for(read_frame(reader), timeout=max(0.1, remaining))
        assert frame is not None, "worker closed the connection unexpectedly"
        if frame.get("type") not in skip:
            return frame


class TestRequireSecureWire:
    def test_task_before_handshake_is_refused_then_served_after(self):
        async def scenario():
            server, port, conn = await start_coordinator()
            proc = spawn_worker(port, "--require-secure")
            try:
                reader, writer = await asyncio.wait_for(conn, timeout=15.0)
                hello = await next_frame(reader)
                assert hello["type"] == "hello"
                assert hello["worker_id"] == 7
                assert hello["proto"] == PROTOCOL_VERSION
                # v4 workers offer their codecs; json is always among them
                assert "json" in hello["codecs"]
                writer.write(
                    encode_frame(
                        {"type": "welcome", "worker_id": 7, "proto": PROTOCOL_VERSION}
                    )
                )

                # 1. a task racing ahead of the handshake is bounced, not run
                writer.write(
                    encode_frame(
                        {"type": "task", "task_id": 101, "payload": [0.0, 6]}
                    )
                )
                refused = await next_frame(reader)
                assert refused["type"] == "refused"
                assert refused["task_id"] == 101
                assert "handshake" in refused["reason"]

                # 2. the handshake: challenge out, valid proof back
                challenge = make_challenge()
                writer.write(
                    encode_frame({"type": "secure", "challenge": challenge})
                )
                secured = await next_frame(reader)
                assert secured["type"] == "secured"
                assert verify_proof(challenge, secured["proof"])

                # 3. the same task is now executed
                writer.write(
                    encode_frame(
                        {"type": "task", "task_id": 101, "payload": [0.0, 6]}
                    )
                )
                result = await next_frame(reader)
                assert result["type"] == "result"
                assert result["task_id"] == 101
                assert result["value"] == 36

                # 4. graceful retirement
                writer.write(encode_frame({"type": "poison"}))
                bye = await next_frame(reader)
                assert bye["type"] == "bye"
                assert bye["completed"] == 1  # the refused task never ran
                writer.close()
            finally:
                server.close()
                await server.wait_closed()
                assert proc.wait(timeout=15.0) == 0

        asyncio.run(scenario())

    def test_worker_without_flag_accepts_pre_handshake_tasks(self):
        """Control: the gate is opt-in — a plain worker executes a task
        that arrives before any handshake (the PR-3 behaviour)."""

        async def scenario():
            server, port, conn = await start_coordinator()
            proc = spawn_worker(port)
            try:
                reader, writer = await asyncio.wait_for(conn, timeout=15.0)
                await next_frame(reader)  # hello
                writer.write(encode_frame({"type": "welcome", "worker_id": 7}))
                writer.write(
                    encode_frame(
                        {"type": "task", "task_id": 1, "payload": [0.0, 5]}
                    )
                )
                result = await next_frame(reader)
                assert result["type"] == "result"
                assert result["value"] == 25
                writer.write(encode_frame({"type": "poison"}))
                bye = await next_frame(reader)
                assert bye["type"] == "bye"
                writer.close()
            finally:
                server.close()
                await server.wait_closed()
                assert proc.wait(timeout=15.0) == 0

        asyncio.run(scenario())

    def test_bad_proof_is_rejected_coordinator_side(self):
        """verify_proof is the coordinator's half of the gate: garbage,
        truncation and replayed proofs of other challenges all fail."""
        from repro.runtime.dist_proto import prove_challenge

        c1, c2 = make_challenge(), make_challenge()
        assert verify_proof(c1, prove_challenge(c1))
        assert not verify_proof(c1, prove_challenge(c2))  # replayed proof
        assert not verify_proof(c1, "not-base64!!")
        assert not verify_proof(c1, "")
