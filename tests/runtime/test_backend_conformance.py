"""Cross-backend conformance: every FarmBackend keeps the same promises.

The whole point of PR 2's :class:`~repro.runtime.backend.FarmBackend`
protocol is that the unmodified Figure 5 rules can drive *any*
substrate.  That only holds if the substrates are behaviourally
interchangeable, not just structurally typed — so this suite runs one
set of invariant checks across all of them:

* **no result loss across grow/shrink** — actuator calls mid-stream
  never drop a task;
* **exactly-once results after an injected fault** — a crash (SIGKILL
  on the process farm, a severed TCP connection on the dist farm) is
  replayed at-least-once underneath and deduplicated to exactly-once
  outward;
* **monotone completed count** — ``snapshot().completed`` never goes
  backwards, whatever thread observes it;
* **admission gate holds under pressure** — a worker added quarantined
  receives not a single task, through fresh submits, rebalances and
  fault replays alike, until ``admit_worker`` lifts the gate;
* **clean shutdown** — no worker thread, child process or listening
  socket survives ``shutdown()``.

``sim`` appears in the parameter list for completeness but every test
skips it: the simulator shares the *rule* surface, not the wall-clock
``FarmBackend`` one, and its invariants live in ``tests/sim``.  The
``thread`` backend skips the crash test only — its workers share the
interpreter, so there is no injectable crash that would not take the
test process down with it.

Run a single backend with, e.g.::

    PYTHONPATH=src python -m pytest tests/runtime/test_backend_conformance.py -k dist
"""

import socket
import threading
import time

import pytest

from repro.obs import Telemetry, build_trace_tree
from repro.runtime.dist_farm import DistFarm
from repro.runtime.farm_runtime import ThreadFarm
from repro.runtime.process_farm import ProcessFarm
from repro.runtime.supervision import SupervisedFarm, Supervisor

from .waiting import wait_until

pytestmark = pytest.mark.conformance

BACKENDS = ("sim", "thread", "process", "dist")


def conf_task(payload):
    """Module-level so it crosses the process/TCP boundary by name."""
    work, value = payload
    if work:
        time.sleep(work)
    return value * value


def make_farm(
    backend: str,
    *,
    initial_workers: int = 2,
    max_workers: int = 8,
    telemetry: Telemetry = None,
):
    """One farm per backend, tuned for fast fault detection in tests."""
    fault_tuning = dict(
        heartbeat_period=0.05,
        # loose on purpose: the injected faults are detected by process
        # exit / connection EOF, not heartbeat staleness, and a tight
        # staleness bound falsely kills live workers on loaded runners
        heartbeat_timeout=2.0,
        supervise_period=0.02,
        backoff_base=0.02,
        backoff_cap=0.2,
    )
    if backend == "thread":
        return ThreadFarm(
            conf_task,
            initial_workers=initial_workers,
            max_workers=max_workers,
            rate_window=0.5,
            telemetry=telemetry,
        )
    if backend == "process":
        return ProcessFarm(
            conf_task,
            initial_workers=initial_workers,
            max_workers=max_workers,
            rate_window=0.5,
            telemetry=telemetry,
            **fault_tuning,
        )
    if backend == "dist":
        return DistFarm(
            conf_task,
            initial_workers=initial_workers,
            max_workers=max_workers,
            rate_window=0.5,
            telemetry=telemetry,
            **fault_tuning,
        )
    raise ValueError(f"unknown backend {backend!r}")


def inject_fault(farm):
    """The substrate-appropriate worker fault; None where not injectable."""
    if isinstance(farm, DistFarm):
        return farm.drop_connection()
    if isinstance(farm, ProcessFarm):
        return farm.inject_crash()
    return None


@pytest.fixture(params=BACKENDS)
def backend(request):
    if request.param == "sim":
        pytest.skip(
            "simulated substrate: wall-clock FarmBackend invariants do not "
            "apply; the simulator's own invariants live in tests/sim"
        )
    return request.param


class TestNoLossAcrossGrowShrink:
    def test_actuators_mid_stream_lose_nothing(self, backend):
        farm = make_farm(backend)
        try:
            total = 120
            for i in range(total):
                farm.submit((0.003, i))
                if i in (30, 50):
                    farm.add_worker()
                if i == 80:
                    farm.remove_worker()
            results = farm.drain_results(total, timeout=60.0)
            assert sorted(r for r in results if not isinstance(r, Exception)) == [
                i * i for i in range(total)
            ]
            assert farm.snapshot().completed == total
        finally:
            farm.shutdown()

    def test_shrink_to_floor_keeps_serving(self, backend):
        """remove_worker refuses to kill the last worker; the stream
        keeps flowing at degree one."""
        farm = make_farm(backend, initial_workers=2)
        try:
            assert farm.remove_worker() is not None
            assert farm.remove_worker() is None  # never below one
            for i in range(20):
                farm.submit((0.0, i))
            results = farm.drain_results(20, timeout=30.0)
            assert sorted(results) == [i * i for i in range(20)]
        finally:
            farm.shutdown()


class TestExactlyOnceAfterCrash:
    def test_injected_fault_dedupes_to_exactly_once(self, backend):
        if backend == "thread":
            pytest.skip(
                "thread workers share the interpreter: no injectable crash "
                "that would not take the test process down too"
            )
        farm = make_farm(backend, initial_workers=3)
        try:
            total = 90
            for i in range(total):
                farm.submit((0.01, i))
            # fault once the stream is genuinely in flight
            wait_until(
                lambda: farm.snapshot().completed >= 5,
                message="stream in flight before the fault",
            )
            assert inject_fault(farm) is not None
            results = farm.drain_results(total, timeout=120.0)
            assert len(results) == total  # exactly-once: no dup padding
            assert sorted(r for r in results if not isinstance(r, Exception)) == [
                i * i for i in range(total)
            ]
            assert farm.crashes, "the fault must be detected and recorded"
            assert not farm.dead_letters
        finally:
            farm.shutdown()


class TestMonotoneCompleted:
    def test_completed_count_never_decreases(self, backend):
        farm = make_farm(backend)
        samples = []
        try:
            total = 60
            for i in range(total):
                farm.submit((0.002, i))

            def observe():
                samples.append(farm.snapshot().completed)
                return samples[-1] >= total

            wait_until(
                observe, interval=0.005, message="stream completion while sampling"
            )
            farm.drain_results(total, timeout=30.0)
            assert all(b >= a for a, b in zip(samples, samples[1:]))
            assert samples[-1] == total
        finally:
            farm.shutdown()


class TestAdmissionGate:
    def test_quarantined_worker_never_dispatched(self, backend):
        """The multi-concern invariant at substrate level: a quarantined
        worker is live but invisible to every dispatch path — fresh
        submits, rebalancing, and the replay traffic of an injected
        fault — until admit_worker lifts the gate."""
        farm = make_farm(backend, initial_workers=2, max_workers=8)
        try:
            gated = farm.add_worker(quarantined=True)
            assert farm.quarantined_workers == 1
            assert farm.num_workers == 2  # serving capacity excludes the gate
            total = 60
            for i in range(total):
                farm.submit((0.005, i))
                if i == 20 and backend != "thread":
                    wait_until(
                        lambda: farm.snapshot().completed >= 5,
                        message="stream in flight before the fault",
                    )
                    assert inject_fault(farm) is not None
                if i == 40:
                    farm.balance_load()
            results = farm.drain_results(total, timeout=120.0)
            assert sorted(r for r in results if not isinstance(r, Exception)) == [
                i * i for i in range(total)
            ]
            assert gated.dispatched == 0, (
                "a task crossed the admission gate"
            )
            # lifting the gate makes the worker a normal dispatch target
            assert farm.admit_worker(gated.worker_id)
            assert farm.quarantined_workers == 0
            # the dist worker process may still be booting: tasks can
            # only reach it once its TCP link is up, so wait for that
            # before submitting the batch whose distribution we assert on
            if hasattr(gated, "connected"):
                wait_until(
                    lambda: gated.connected,
                    message="admitted worker should connect",
                )
            more = 40
            for i in range(total, total + more):
                farm.submit((0.005, i))
            results = farm.drain_results(more, timeout=60.0)
            assert sorted(r for r in results if not isinstance(r, Exception)) == [
                i * i for i in range(total, total + more)
            ]
            assert gated.dispatched > 0, "admitted worker never served"
            assert not getattr(farm, "dead_letters", [])
        finally:
            farm.shutdown()

    def test_admitted_unknown_worker_is_refused(self, backend):
        farm = make_farm(backend, initial_workers=1)
        try:
            assert farm.admit_worker(999) is False
            assert farm.secure_worker(999) is False
        finally:
            farm.shutdown()


class TestCleanShutdown:
    def test_no_leaked_threads_processes_or_sockets(self, backend):
        before = set(threading.enumerate())
        farm = make_farm(backend)
        for i in range(20):
            farm.submit((0.002, i))
        farm.drain_results(20, timeout=30.0)
        port = getattr(farm, "port", None)
        children = [
            w.process
            for w in getattr(farm, "workers", [])
            if getattr(w, "process", None) is not None
        ]
        farm.shutdown()
        # no child process survives (subprocess.Popen or multiprocessing)
        for proc in children:
            alive = proc.is_alive() if hasattr(proc, "is_alive") else proc.poll() is None
            assert not alive, f"worker pid {proc.pid} still alive"
        # every thread the farm started has retired
        wait_until(
            lambda: all(
                not t.is_alive() for t in set(threading.enumerate()) - before
            ),
            message="farm threads retiring after shutdown",
        )
        # the coordinator socket no longer accepts connections
        if port:
            with pytest.raises(OSError):
                socket.create_connection(("127.0.0.1", port), timeout=0.5)

    def test_shutdown_is_idempotent(self, backend):
        farm = make_farm(backend)
        farm.shutdown()
        farm.shutdown()  # second call must be a clean no-op

    def test_no_open_spans_after_clean_shutdown(self, backend):
        """shutdown() flushes telemetry: every span the farm opened is
        closed afterwards, on every substrate."""
        tel = Telemetry()
        farm = make_farm(backend, telemetry=tel)
        try:
            for i in range(20):
                farm.submit((0.002, i))
            results = farm.drain_results(20, timeout=30.0)
            assert len(results) == 20
        finally:
            farm.shutdown()
        assert tel.spans.open_spans() == []
        assert len(tel.spans.spans) > 0, "telemetry recorded nothing"


class TestTraceTreeAcrossFaults:
    """The tentpole acceptance invariant: a crashed-then-replayed task is
    ONE trace tree — submit, first dispatch, crash, replay dispatch
    (parented under the dispatch it supersedes) and the final execution,
    all under a single root span sharing a single trace id."""

    def _replayed_traces(self, tel):
        """All traces holding more than one dispatch attempt."""
        out = []
        for trace_id in tel.spans.trace_ids():
            spans = tel.spans.trace(trace_id)
            dispatches = [s for s in spans if s.name == "task.dispatch"]
            if len(dispatches) >= 2:
                out.append((trace_id, spans, dispatches))
        return out

    def _assert_single_tree(self, tel, trace_id, spans, dispatches):
        by_id = {s.span_id: s for s in spans}
        roots = [s for s in spans if s.parent_id is None]
        assert len(roots) == 1, f"trace {trace_id} has {len(roots)} roots"
        assert roots[0].name == "task"
        # every span's parent resolves inside the same trace
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in by_id, (
                    f"{span.name} span {span.span_id} has dangling parent "
                    f"{span.parent_id}"
                )
        # the dispatch attempts form a chain: exactly one hangs off the
        # task root, every other one is parented under the dispatch it
        # superseded (the crashed/refused/stolen attempt)
        dispatch_ids = {s.span_id for s in dispatches}
        off_root = [s for s in dispatches if s.parent_id == roots[0].span_id]
        assert len(off_root) == 1, "replay chain must start at the task root"
        for span in dispatches:
            if span is not off_root[0]:
                assert span.parent_id in dispatch_ids, (
                    "replay dispatch must be parented under the attempt "
                    "it supersedes"
                )
        # a superseded attempt is closed with the reason it ended
        outcomes = {s.attributes.get("outcome") for s in dispatches}
        assert outcomes & {"crashed", "refused", "redispatched", "rebalanced"}
        # the winning attempt completed the task
        assert "ok" in outcomes
        assert roots[0].attributes.get("outcome") == "ok"
        # and the whole thing renders as one tree
        tree = build_trace_tree(tel.spans.spans, trace_id)
        assert len(tree) == 1
        assert tree[0]["name"] == "task"

    def test_crashed_task_replay_is_one_tree(self, backend):
        if backend == "thread":
            pytest.skip(
                "thread workers share the interpreter: no injectable "
                "crash; replay chaining is covered by the shrink test"
            )
        tel = Telemetry()
        farm = make_farm(backend, initial_workers=3, telemetry=tel)
        try:
            total = 90
            for i in range(total):
                farm.submit((0.01, i))
            wait_until(
                lambda: farm.snapshot().completed >= 5,
                message="stream in flight before the fault",
            )
            assert inject_fault(farm) is not None
            results = farm.drain_results(total, timeout=120.0)
            assert len(results) == total
        finally:
            farm.shutdown()

        replayed = self._replayed_traces(tel)
        assert replayed, "fault produced no re-dispatched task"
        for trace_id, spans, dispatches in replayed:
            self._assert_single_tree(tel, trace_id, spans, dispatches)
            # the worker-side execution span of the winning attempt was
            # shipped back over the boundary and re-parented in
            execs = [s for s in spans if s.name == "task.exec"]
            assert execs, "no worker-side exec span crossed the boundary"
            dispatch_ids = {s.span_id for s in dispatches}
            assert all(s.parent_id in dispatch_ids for s in execs)

    def test_shrink_redispatch_is_one_tree(self, backend):
        """The fault-free replay path: the thread farm's remove_worker()
        re-queues the retired worker's backlog, and each moved task
        stays one tree.  Process/dist retire gracefully (the poison
        queues *behind* the backlog, which drains in place), so this
        redispatch path exists only on the thread substrate — its crash
        coverage lives in test_crashed_task_replay_is_one_tree."""
        if backend != "thread":
            pytest.skip(
                "graceful retirement drains the backlog in place on this "
                "substrate: nothing is redispatched by remove_worker"
            )
        tel = Telemetry()
        farm = make_farm(backend, initial_workers=2, telemetry=tel)
        try:
            total = 60
            for i in range(total):
                farm.submit((0.01, i))
            wait_until(
                lambda: farm.snapshot().completed >= 3,
                message="stream in flight before the shrink",
            )
            assert farm.remove_worker() is not None
            results = farm.drain_results(total, timeout=120.0)
            assert len(results) == total
        finally:
            farm.shutdown()

        replayed = self._replayed_traces(tel)
        assert replayed, "shrink moved no queued task"
        for trace_id, spans, dispatches in replayed:
            self._assert_single_tree(tel, trace_id, spans, dispatches)


# ----------------------------------------------------------------------
# chaos tier: the coordinator itself is the fault (opt-in: -m chaos)
# ----------------------------------------------------------------------


def make_supervised(backend, journal_path, telemetry=None, *, initial_workers=2):
    """A journaled SupervisedFarm + Supervisor pair tuned for fast chaos.

    The supervisor's heartbeat window is deliberately tight so a crashed
    coordinator is detected and failed over within tens of milliseconds;
    the worker-fault tuning mirrors :func:`make_farm`.
    """
    farm_options = dict(rate_window=0.5)
    if backend in ("process", "dist"):
        farm_options.update(
            heartbeat_period=0.05,
            heartbeat_timeout=2.0,
            supervise_period=0.02,
            backoff_base=0.02,
            backoff_cap=0.2,
        )
    farm = SupervisedFarm(
        conf_task,
        backend=backend,
        journal_path=str(journal_path),
        name=f"chaos-{backend}",
        initial_workers=initial_workers,
        max_workers=8,
        telemetry=telemetry,
        farm_options=farm_options,
    )
    supervisor = Supervisor(
        farm, check_period=0.02, heartbeat_timeout=0.5, telemetry=telemetry
    ).start()
    return farm, supervisor


def assert_supervised_trees(tel, sup_name, total):
    """Every sid is ONE coherent tree across coordinator incarnations.

    Shape: root ``task`` (supervisor-owned, stable sid) → one
    ``task.attempt`` per incarnation that dispatched it → the dispatch
    chain.  Returns how many trees actually crossed a coordinator crash
    (an attempt closed ``coordinator-crashed`` superseded by a later
    winning attempt).
    """
    spans = tel.spans.spans
    roots = [s for s in spans if s.name == "task" and s.actor == sup_name]
    assert len(roots) == total, "one task root per submitted sid"
    crossed = 0
    for root in roots:
        assert root.attributes.get("outcome") == "ok", (
            f"task {root.attributes.get('task_id')} never recovered"
        )
        members = tel.spans.trace(root.trace_id)
        in_trace_roots = [s for s in members if s.parent_id is None]
        assert in_trace_roots == [root], "exactly one root per trace"
        by_id = {s.span_id for s in members}
        for span in members:
            if span.parent_id is not None:
                assert span.parent_id in by_id, (
                    f"{span.name} span has a dangling parent across the crash"
                )
        attempts = [s for s in members if s.name == "task.attempt"]
        assert attempts, "supervised submission must open an attempt layer"
        outcomes = [a.attributes.get("outcome") for a in attempts]
        assert "ok" in outcomes, "no incarnation completed the task"
        if "coordinator-crashed" in outcomes:
            crossed += 1
        tree = build_trace_tree(spans, root.trace_id)
        assert len(tree) == 1 and tree[0]["name"] == "task"
    return crossed


def assert_exactly_once(results, total):
    assert len(results) == total, "lost or duplicated deliveries"
    assert sorted(r for r in results if not isinstance(r, Exception)) == [
        i * i for i in range(total)
    ]


@pytest.mark.chaos
class TestChaosCoordinatorCrash:
    """Kill the whole coordinator stack mid-run, on every backend."""

    def test_kill_coordinator_mid_run(self, backend, tmp_path):
        tel = Telemetry()
        farm, supervisor = make_supervised(backend, tmp_path / "journal.jsonl", tel)
        try:
            gated = farm.add_worker(quarantined=True)
            assert farm.quarantined_workers == 1
            total = 80
            for i in range(total):
                farm.submit((0.01, i))
            wait_until(
                lambda: farm.completed >= 10,
                message="stream in flight before the crash",
            )
            supervisor.crash_coordinator()
            wait_until(
                lambda: supervisor.failovers >= 1,
                message="supervisor restarting the coordinator",
            )
            results = farm.drain_results(total, timeout=120.0)
            assert_exactly_once(results, total)
            assert farm.completed == total
            assert farm.redispatched > 0, "nothing was in flight at the crash"
            # the quarantined-but-unadmitted worker stayed gated through
            # the journal replay: still quarantined, still task-free
            assert farm.quarantined_workers == 1
            assert gated.quarantined
            assert gated.dispatched == 0, "a task crossed the gate via failover"
            # metrics tell the same story as the counters
            failovers_metric = tel.metrics.counter(
                "repro_sup_failovers_total", ""
            ).labels(farm=farm.name).value
            assert failovers_metric >= 1
        finally:
            supervisor.stop()
            farm.shutdown()
        crossed = assert_supervised_trees(tel, farm.name, total)
        assert crossed > 0, "no trace crossed the coordinator crash"
        assert tel.spans.open_spans() == []


@pytest.mark.chaos
class TestChaosPartition:
    """Partition the dist coordinator from half its workers, then kill
    the coordinator too: replay + standby takeover must still deliver
    every task exactly once."""

    def test_partition_then_coordinator_crash(self, tmp_path):
        tel = Telemetry()
        farm, supervisor = make_supervised(
            "dist", tmp_path / "journal.jsonl", tel, initial_workers=4
        )
        try:
            total = 80
            for i in range(total):
                farm.submit((0.01, i))
            wait_until(
                lambda: farm.completed >= 5,
                message="stream in flight before the partition",
            )
            # sever half the farm's connections: the coordinator declares
            # them dead and replays their in-flight tasks on the survivors
            victims = [w.worker_id for w in farm.farm.workers if w.connected][:2]
            assert len(victims) == 2
            dropped = [farm.farm.drop_connection(wid) for wid in victims]
            assert dropped == victims
            wait_until(
                lambda: len(farm.farm.crashes) >= 2,
                message="partitioned workers declared dead",
            )
            # now the coordinator itself dies; the standby adopts the
            # surviving connected workers and replays the journal
            supervisor.crash_coordinator()
            wait_until(
                lambda: supervisor.failovers >= 1,
                message="standby promotion after the partition",
            )
            results = farm.drain_results(total, timeout=120.0)
            assert_exactly_once(results, total)
            assert farm.completed == total
        finally:
            supervisor.stop()
            farm.shutdown()
        crossed = assert_supervised_trees(tel, farm.name, total)
        assert crossed > 0, "no trace crossed the coordinator crash"


@pytest.mark.chaos
class TestChaosWorkerCrashDuringFailover:
    """A worker dies in the failover window, while its peers are still
    reattaching — the replay of the replay must still be exactly-once."""

    def test_worker_crash_in_failover_window(self, backend, tmp_path):
        if backend == "thread":
            pytest.skip(
                "thread workers share the interpreter: no injectable crash "
                "that would not take the test process down too"
            )
        tel = Telemetry()
        farm, supervisor = make_supervised(
            backend, tmp_path / "journal.jsonl", tel, initial_workers=3
        )
        try:
            total = 80
            for i in range(total):
                farm.submit((0.01, i))
            wait_until(
                lambda: farm.completed >= 10,
                message="stream in flight before the crash",
            )
            supervisor.crash_coordinator()
            wait_until(
                lambda: supervisor.failovers >= 1,
                message="supervisor restarting the coordinator",
            )
            # fault the first worker of the fresh incarnation the moment
            # one is live enough to be faulted
            wait_until(
                lambda: inject_fault(farm.farm) is not None,
                message="worker fault in the failover window",
            )
            results = farm.drain_results(total, timeout=120.0)
            assert_exactly_once(results, total)
            assert farm.completed == total
            assert farm.redispatched > 0
        finally:
            supervisor.stop()
            farm.shutdown()
        assert_supervised_trees(tel, farm.name, total)
        assert tel.spans.open_spans() == []
