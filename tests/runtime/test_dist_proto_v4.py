"""Protocol v4: binary framing, codec negotiation, batches, fault edges.

Three layers of coverage:

* pure framing/codec units (no sockets): layout round-trips, sniffing,
  the :class:`ProtocolError` diagnoses — unknown codec names and frame
  types, oversized lengths refused before allocation, empty batches;
* coordinator integration over real sockets with *scripted* peers: a
  malformed frame mid-stream is a worker fault (declared dead, window
  replayed — never a hang), duplicate entries inside a replayed
  ``result_batch`` dedupe to exactly-once, unknown codec offers are
  refused with the offending name in the error frame;
* real-worker integration: the pickle fast path round-trips values JSON
  cannot, ``REPRO_FORCE_PROTO=3`` pins spawned workers to the v3
  dialect against the v4 coordinator, and a stale-epoch session's
  ``task_batch`` bounces whole (``refused``/``task_ids``).
"""

import asyncio
import os
import subprocess
import sys

import pytest

from repro.obs.telemetry import Telemetry
from repro.runtime.dist_farm import DistFarm, fn_spec
from repro.runtime.dist_proto import (
    FLAG_ENC,
    MAGIC_V4,
    MAX_FRAME,
    PROTOCOL_VERSION,
    ProtocolError,
    available_codecs,
    encode_frame,
    encode_frame_v4,
    negotiate_codec,
    read_frame_ex,
)

from .test_dist_farm import dist_task
from .waiting import wait_until


def feed(data, *, allowed=None):
    """Run one read_frame_ex over raw bytes; returns (frame, wire)."""

    async def go():
        reader = asyncio.StreamReader()
        if data:
            reader.feed_data(data)
        reader.feed_eof()
        return await read_frame_ex(reader, allowed=allowed)

    return asyncio.run(go())


def patient_farm(**overrides):
    """A DistFarm with timeouts generous enough for scripted peers."""
    defaults = dict(
        initial_workers=0,
        heartbeat_timeout=30.0,
        supervise_period=0.02,
        backoff_base=0.02,
        backoff_cap=0.2,
    )
    defaults.update(overrides)
    return DistFarm(dist_task, **defaults)


class TestFraming:
    @pytest.mark.parametrize("codec", available_codecs())
    def test_v4_roundtrip_every_codec(self, codec):
        msg = {"type": "task", "task_id": 7, "payload": [0.5, [1, 2]]}
        frame, wire = feed(encode_frame_v4(msg, codec=codec))
        assert wire == 4 and frame == msg

    def test_sniffing_distinguishes_both_layouts(self):
        msg = {"type": "hb", "completed": 3}
        assert feed(encode_frame(msg)) == (msg, 3)
        assert feed(encode_frame_v4(msg)) == (msg, 4)
        # the magic byte can never open a legal v3 frame: as a length
        # prefix it would announce a body far beyond MAX_FRAME
        assert int.from_bytes(bytes([MAGIC_V4, 0, 0, 0]), "big") > MAX_FRAME

    def test_secured_frame_is_opaque_and_roundtrips(self):
        msg = {"type": "task", "task_id": 1, "payload": {"k": "secret-value"}}
        data = encode_frame_v4(msg, codec="json", secured=True)
        assert b"secret-value" not in data  # body actually encrypted
        assert data[2] & FLAG_ENC
        frame, wire = feed(data)
        assert wire == 4 and frame == msg
        # a tampered body is a protocol error, not garbage results
        with pytest.raises(ProtocolError):
            feed(data[:-3] + bytes(3))

    def test_unknown_frame_type_is_a_named_protocol_error(self):
        data = bytes([MAGIC_V4, 0xEE, 0, 0, 0, 0, 0])
        with pytest.raises(ProtocolError, match="frame type id 238"):
            feed(data)
        with pytest.raises(ProtocolError, match="no_such_type"):
            encode_frame_v4({"type": "no_such_type"})

    def test_unknown_codec_id_is_a_named_protocol_error(self):
        data = bytes([MAGIC_V4, 4, 0x0F, 0, 0, 0, 0])
        with pytest.raises(ProtocolError, match="codec id 15"):
            feed(data)
        with pytest.raises(ProtocolError, match="rot13"):
            encode_frame_v4({"type": "hb"}, codec="rot13")

    def test_unnegotiated_codec_refused_at_the_read_boundary(self):
        # codec smuggling: a pickle-flagged frame on a json session must
        # die at the frame reader, before any unpickling can happen
        data = encode_frame_v4({"type": "result", "task_id": 1}, codec="pickle")
        with pytest.raises(ProtocolError, match="not negotiated"):
            feed(data, allowed=("json",))

    def test_oversized_v4_length_rejected_before_allocation(self):
        # header only, no body: the reader must refuse from the length
        # field alone instead of waiting to buffer 64 MiB
        header = bytes([MAGIC_V4, 4, 0]) + (MAX_FRAME + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError, match="exceeds MAX_FRAME"):
            feed(header)

    def test_torn_frame_reads_as_peer_gone(self):
        whole = encode_frame_v4({"type": "task", "task_id": 5, "payload": "x" * 64})
        frame, _ = feed(whole[: len(whole) // 2])
        assert frame is None  # EOF mid-body: the peer died, not a hang

    def test_empty_batch_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="empty task_batch"):
            encode_frame_v4({"type": "task_batch", "tasks": []})
        with pytest.raises(ProtocolError, match="empty result_batch"):
            encode_frame_v4({"type": "result_batch", "results": []})
        # and on decode, for a peer that crafts one by hand
        import json as _json

        body = _json.dumps({"tasks": []}).encode()
        data = bytes([MAGIC_V4, 14, 0]) + len(body).to_bytes(4, "big") + body
        with pytest.raises(ProtocolError, match="empty task_batch"):
            feed(data)


class TestNegotiation:
    def test_trusted_workers_get_the_pickle_fast_path(self):
        assert negotiate_codec(["pickle", "json"], trusted=True) == "pickle"
        assert negotiate_codec(["json"], trusted=True) == "json"

    def test_untrusted_peers_never_negotiate_pickle(self):
        assert negotiate_codec(["pickle", "json"], trusted=False) == "json"
        with pytest.raises(ProtocolError, match="coordinator-spawned"):
            negotiate_codec(["pickle"], trusted=False)

    def test_unknown_codec_names_are_diagnosed_by_name(self):
        with pytest.raises(ProtocolError, match="rot13"):
            negotiate_codec(["rot13"], trusted=True)
        with pytest.raises(ProtocolError, match="nothing"):
            negotiate_codec([], trusted=True)

    def test_allowed_pins_the_session_codec(self):
        assert negotiate_codec(["pickle", "json"], trusted=True, allowed="json") == "json"
        with pytest.raises(ProtocolError):
            negotiate_codec(["json"], trusted=True, allowed="pickle")


async def attach_v4(port, hello):
    """Open one scripted v4 peer connection; returns (reader, writer, reply)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(encode_frame_v4(hello))
    reply, _ = await read_frame_ex(reader)
    return reader, writer, reply


class TestCoordinatorEdges:
    def test_unknown_codec_offer_refused_with_named_diagnosis(self):
        farm = patient_farm()
        try:

            async def go():
                _, writer, reply = await attach_v4(
                    farm.port,
                    {"type": "hello", "worker_id": -1, "proto": PROTOCOL_VERSION,
                     "codecs": ["rot13"]},
                )
                writer.close()
                return reply

            reply = asyncio.run(go())
            assert reply["type"] == "error"
            assert "rot13" in reply["error"]
            assert farm.num_workers == 0  # nothing half-registered
        finally:
            farm.shutdown()

    def test_remote_attacher_negotiates_down_the_safe_list(self):
        farm = patient_farm()
        try:

            async def go():
                _, writer, reply = await attach_v4(
                    farm.port,
                    {"type": "hello", "worker_id": -1, "proto": PROTOCOL_VERSION,
                     "codecs": list(available_codecs())},
                )
                writer.close()
                return reply

            reply = asyncio.run(go())
            assert reply["type"] == "welcome"
            assert reply["proto"] == PROTOCOL_VERSION
            assert reply["codec"] != "pickle"  # unpickling runs code
        finally:
            farm.shutdown()

    @pytest.mark.parametrize(
        "garbage",
        [
            pytest.param(bytes([MAGIC_V4, 0xEE, 0, 0, 0, 0, 0]), id="unknown-type"),
            pytest.param(
                encode_frame_v4({"type": "result", "task_id": 0}, codec="pickle"),
                id="codec-smuggle",
            ),
            pytest.param(
                bytes([MAGIC_V4, 15, 0])
                + len(b'{"results":[]}').to_bytes(4, "big")
                + b'{"results":[]}',
                id="empty-result-batch",
            ),
        ],
    )
    def test_malformed_frame_mid_stream_is_a_worker_fault(self, garbage):
        """A peer that sends protocol garbage after taking tasks is
        declared dead and its window replayed elsewhere — never waited
        out.  The task still completes, on a healthy worker."""
        farm = patient_farm(max_inflight=8, batch_size=8)
        try:

            async def go():
                reader, writer, reply = await attach_v4(
                    farm.port,
                    {"type": "hello", "worker_id": -1, "proto": PROTOCOL_VERSION,
                     "codecs": ["json"]},
                )
                assert reply["type"] == "welcome"
                farm.submit((0.0, 4))
                # wait for the dispatch, then answer with garbage
                frame, _ = await read_frame_ex(reader)
                assert frame["type"] in ("task", "task_batch")
                writer.write(garbage)
                await writer.drain()
                # the coordinator hangs up on protocol garbage
                await asyncio.wait_for(reader.read(), 15.0)
                writer.close()
                return reply["worker_id"]

            bad_id = asyncio.run(go())
            wait_until(
                lambda: any(wid == bad_id for _, wid in farm.crashes),
                message="scripted peer to be declared dead",
            )
            farm.add_worker()  # healthy capacity; the replay lands here
            (result,) = farm.drain_results(1, timeout=30.0)
            assert result == 16
        finally:
            farm.shutdown()

    def test_result_batch_duplicates_dedupe_to_exactly_once(self):
        """A replayed batch can re-ack tasks that already completed; the
        coordinator must dedupe per entry, exactly as it does for
        duplicate singleton results."""
        farm = patient_farm(max_inflight=8, batch_size=8)
        try:

            async def go():
                reader, writer, reply = await attach_v4(
                    farm.port,
                    {"type": "hello", "worker_id": -1, "proto": PROTOCOL_VERSION,
                     "codecs": ["json"]},
                )
                for i in range(3):
                    farm.submit((0.0, i))
                # a fill pass may race the submit burst, so the three
                # tasks can arrive as one batch or as batch+singleton
                tasks = []
                while len(tasks) < 3:
                    frame, _ = await read_frame_ex(reader)
                    assert frame["type"] in ("task", "task_batch")
                    tasks.extend(frame.get("tasks") or [frame])
                results = [
                    {"task_id": t["task_id"], "value": t["payload"][1] ** 2}
                    for t in tasks
                ]
                # first entry acked twice inside one batch
                writer.write(
                    encode_frame_v4(
                        {"type": "result_batch",
                         "results": [results[0]] + results,
                         "completed": 3},
                        codec="json",
                    )
                )
                await writer.drain()
                writer.close()

            asyncio.run(go())
            out = farm.drain_results(3, timeout=30.0)
            assert sorted(out) == [0, 1, 4]
            assert farm.completed == 3
            assert farm.duplicates == 1
        finally:
            farm.shutdown()


class TestRealWorkers:
    def test_pickle_fast_path_roundtrips_what_json_cannot(self):
        """Spawned workers are trusted, negotiate pickle by default, and
        a set — which the JSON wire must degrade to an error result —
        crosses intact."""
        tel = Telemetry()
        farm = DistFarm(
            dist_task, initial_workers=1, telemetry=tel, supervise_period=0.02
        )
        try:
            wait_until(
                lambda: any(w.connected for w in farm.workers),
                message="spawned worker to connect",
            )
            handle = farm.workers[0]
            assert handle.proto == PROTOCOL_VERSION and handle.wire == 4
            assert handle.codec == "pickle"
            farm.submit((0.0, "unserializable"))
            (result,) = farm.drain_results(1, timeout=30.0)
            assert result == {1, 2, 3}
        finally:
            farm.shutdown()

    def test_batched_dispatch_serves_a_burst(self):
        tel = Telemetry()
        farm = DistFarm(
            dist_task,
            initial_workers=2,
            max_inflight=16,
            batch_size=8,
            telemetry=tel,
            supervise_period=0.02,
        )
        try:
            total = 60
            for i in range(total):
                farm.submit((0.0, i))
            results = farm.drain_results(total, timeout=30.0)
            assert sorted(results) == sorted(i * i for i in range(total))
            batched = tel.metrics.get("repro_dist_batched_tasks_total")
            assert batched is not None
            assert batched.labels(farm=farm.name).value > 0
        finally:
            farm.shutdown()

    def test_forced_v3_workers_serve_a_v4_coordinator(self, monkeypatch):
        """REPRO_FORCE_PROTO=3 pins spawned workers to the v3 dialect —
        the wire-compat guarantee CI runs the whole conformance story
        under."""
        monkeypatch.setenv("REPRO_FORCE_PROTO", "3")
        farm = DistFarm(dist_task, initial_workers=2, supervise_period=0.02)
        try:
            wait_until(
                lambda: sum(1 for w in farm.workers if w.connected) == 2,
                message="forced-v3 workers to connect",
            )
            assert all(w.proto == 3 and w.wire == 3 for w in farm.workers)
            total = 20
            for i in range(total):
                farm.submit((0.0, i))
            results = farm.drain_results(total, timeout=30.0)
            assert sorted(results) == [i * i for i in range(total)]
        finally:
            farm.shutdown()

    def test_stale_epoch_session_bounces_a_whole_batch(self):
        """Epoch fencing sees through batches: a superseded coordinator
        incarnation sending ``task_batch`` gets every id back in one
        ``refused``/``task_ids`` frame, and nothing executes."""

        async def scenario():
            conns: "asyncio.Queue" = asyncio.Queue()

            async def on_connect(reader, writer):
                await conns.put((reader, writer))

            server = await asyncio.start_server(on_connect, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            env = dict(os.environ)
            env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.runtime.dist_worker",
                 "--host", "127.0.0.1", "--port", str(port),
                 "--worker-id", "3", "--fn", fn_spec(dist_task),
                 "--reconnect-attempts", "5"],
                env=env,
                stdout=subprocess.DEVNULL,
            )
            try:
                # session 1: a high-epoch coordinator, then gone
                reader, writer = await asyncio.wait_for(conns.get(), 15.0)
                hello, wire = await read_frame_ex(reader)
                assert hello["type"] == "hello" and wire == 4
                writer.write(
                    encode_frame_v4(
                        {"type": "welcome", "worker_id": 3,
                         "proto": PROTOCOL_VERSION, "epoch": 5, "codec": "json"}
                    )
                )
                await writer.drain()
                writer.close()
                # session 2: a stale incarnation (lower epoch) redials
                reader, writer = await asyncio.wait_for(conns.get(), 15.0)
                reattach, _ = await read_frame_ex(reader)
                assert reattach["type"] == "reattach"
                writer.write(
                    encode_frame_v4(
                        {"type": "takeover", "worker_id": 3,
                         "proto": PROTOCOL_VERSION, "epoch": 2, "codec": "json"}
                    )
                )
                writer.write(
                    encode_frame_v4(
                        {"type": "task_batch",
                         "tasks": [{"task_id": 11, "payload": [0.0, 1]},
                                   {"task_id": 12, "payload": [0.0, 2]}]},
                        codec="json",
                    )
                )
                await writer.drain()
                while True:
                    frame, _ = await read_frame_ex(reader)
                    assert frame is not None, "worker hung up instead of refusing"
                    if frame["type"] != "hb":
                        break
                assert frame["type"] == "refused"
                assert sorted(frame["task_ids"]) == [11, 12]
                assert frame["reason"] == "stale epoch"
                writer.write(encode_frame_v4({"type": "poison"}))
                await writer.drain()
                writer.close()
            finally:
                server.close()
                await server.wait_closed()
                assert proc.wait(15.0) == 0

        asyncio.run(scenario())
