"""Tests for the process farm: real parallelism, real crash recovery.

The headline assertions mirror the paper's §2 fault-tolerance framing:
a SIGKILLed worker loses zero tasks (at-least-once replay, deduped to
exactly-once outward) and the *unmodified* Figure 5 ``CheckRateLow``
rule restores capacity through the shared controller.
"""

import time

import pytest

from repro.core.contracts import MinThroughputContract
from repro.obs.telemetry import Telemetry
from repro.runtime.backend import FarmBackend
from repro.runtime.controller import FarmController
from repro.runtime.farm_runtime import ThreadFarm
from repro.runtime.process_farm import ProcessFarm

from .waiting import wait_until


def square(x):
    return x * x


def slow_square(x):
    time.sleep(0.01)
    return x * x


def very_slow_square(x):
    time.sleep(5.0)
    return x * x


def maybe_fail(x):
    if x == 2:
        raise RuntimeError("task failed")
    return x


@pytest.fixture
def farm():
    """A quiescent-supervisor farm: tests drive supervise_once() by hand
    where determinism matters; background supervision stays fast enough
    for the end-to-end cases."""
    f = ProcessFarm(
        square,
        initial_workers=2,
        heartbeat_period=0.05,
        heartbeat_timeout=1.0,
        backoff_base=0.01,
        backoff_cap=0.1,
        supervise_period=0.02,
    )
    yield f
    f.shutdown()


class TestProcessFarmBasics:
    def test_needs_workers(self):
        with pytest.raises(ValueError):
            ProcessFarm(square, initial_workers=0)

    def test_satisfies_farm_backend_protocol(self, farm):
        assert isinstance(farm, FarmBackend)
        assert isinstance(ThreadFarm(square, initial_workers=1), FarmBackend)

    def test_all_results_arrive(self, farm):
        for i in range(30):
            farm.submit(i)
        results = farm.drain_results(30, timeout=30.0)
        assert sorted(results) == sorted(i * i for i in range(30))

    def test_exceptions_become_results(self):
        f = ProcessFarm(maybe_fail, initial_workers=2)
        try:
            for i in range(4):
                f.submit(i)
            results = f.drain_results(4, timeout=30.0)
            errors = [r for r in results if isinstance(r, RuntimeError)]
            assert len(errors) == 1
        finally:
            f.shutdown()

    def test_snapshot_counts(self, farm):
        for i in range(10):
            farm.submit(i)
        farm.drain_results(10, timeout=30.0)
        snap = farm.snapshot()
        assert snap.completed == 10
        assert snap.num_workers == 2
        assert snap.pending == 0
        assert snap.mean_latency >= 0.0

    def test_secured_worker_roundtrip(self, farm):
        """Encrypted channels decrypt inside a different process."""
        farm.secure_all()
        for i in range(5):
            farm.submit(i)
        assert sorted(farm.drain_results(5, timeout=30.0)) == [0, 1, 4, 9, 16]


class TestProcessFarmActuators:
    def test_add_worker(self, farm):
        farm.add_worker()
        assert farm.num_workers == 3

    def test_worker_limit(self):
        f = ProcessFarm(square, initial_workers=1, max_workers=1)
        try:
            with pytest.raises(RuntimeError):
                f.add_worker()
        finally:
            f.shutdown()

    def test_remove_worker_drains_its_backlog(self):
        f = ProcessFarm(slow_square, initial_workers=3)
        try:
            for i in range(30):
                f.submit(i)
            assert f.remove_worker() is not None
            results = f.drain_results(30, timeout=60.0)
            assert sorted(results) == sorted(i * i for i in range(30))
            # the retiree eventually leaves the live set
            wait_until(lambda: f.num_workers == 2, message="worker retirement")
        finally:
            f.shutdown()

    def test_remove_never_below_one(self):
        f = ProcessFarm(square, initial_workers=1)
        try:
            assert f.remove_worker() is None
        finally:
            f.shutdown()

    def test_balance_load_moves_queued_tasks(self):
        f = ProcessFarm(very_slow_square, initial_workers=2, supervise_period=60.0)
        try:
            # pile everything onto worker 0 by dispatching before worker 1
            # gets any: submit() round-robins, so stuff the queue directly
            w0 = f.workers[0]
            for i in range(10):
                f.submit(i)
            # rebalance moves from the longest to the shortest queue
            lengths = sorted(len(w.outstanding) for w in f.workers)
            moved = f.balance_load()
            after = sorted(len(w.outstanding) for w in f.workers)
            assert moved >= 0  # approximate under concurrency
            assert sum(after) == sum(lengths)
            assert w0 is f.workers[0]
        finally:
            f.shutdown()


class TestCrashFaultTolerance:
    def test_sigkill_loses_zero_tasks(self):
        """The acceptance bar: a killed worker's tasks are all replayed."""
        f = ProcessFarm(
            slow_square,
            initial_workers=3,
            heartbeat_period=0.05,
            heartbeat_timeout=0.5,
            backoff_base=0.01,
            backoff_cap=0.05,
            supervise_period=0.02,
        )
        try:
            n = 60
            for i in range(n):
                f.submit(i)
            assert f.inject_crash() is not None
            results = f.drain_results(n, timeout=60.0)
            assert sorted(results) == sorted(i * i for i in range(n))
            assert f.crashes, "the supervisor must have recorded the death"
            assert f.replays > 0, "the victim's un-acked tasks were replayed"
            assert not f.dead_letters
        finally:
            f.shutdown()

    def test_detection_via_supervise_once(self):
        f = ProcessFarm(square, initial_workers=2, supervise_period=60.0)
        try:
            killed = f.inject_crash()
            assert killed is not None
            wait_until(
                lambda: not f._find_worker(killed).process.is_alive(),
                message="SIGKILL to land",
            )
            dead = f.supervise_once()
            assert killed in dead
            assert f.num_workers == 1
        finally:
            f.shutdown()

    def test_replay_backoff_is_capped_exponential(self):
        f = ProcessFarm(
            very_slow_square,
            initial_workers=1,
            supervise_period=60.0,
            backoff_base=0.1,
            backoff_cap=0.3,
            max_attempts=10,
        )
        try:
            for i in range(3):
                f.submit(i)
            killed = f.inject_crash()
            wait_until(
                lambda: not f._find_worker(killed).process.is_alive(),
                message="SIGKILL to land",
            )
            f.supervise_once()
            now = f.now()
            with f._lock:
                delays = sorted(r.next_retry_at - now for r in f._tasks.values())
            # first replay of a once-dispatched task: base * 2**0
            assert delays, "un-acked tasks must be scheduled for replay"
            assert all(0.0 < d <= 0.3 + 1e-6 for d in delays)
            # attempts=1 -> delay == backoff_base (within scheduling slop)
            assert min(delays) <= 0.1 + 0.05
        finally:
            f.shutdown()

    def test_exhausted_replay_budget_dead_letters(self):
        f = ProcessFarm(
            very_slow_square,
            initial_workers=1,
            supervise_period=60.0,
            max_attempts=1,
        )
        try:
            f.submit(7)
            killed = f.inject_crash()
            wait_until(
                lambda: not f._find_worker(killed).process.is_alive(),
                message="SIGKILL to land",
            )
            f.supervise_once()
            assert len(f.dead_letters) == 1
            dl = f.dead_letters[0]
            assert dl.payload == 7 and dl.attempts == 1
            assert f.replays == 0
            assert f.snapshot().pending == 0  # dead letters are accounted out
        finally:
            f.shutdown()

    def test_crash_of_every_worker_recovers_after_add(self):
        """Tasks outlive a total wipe-out: they wait for fresh capacity."""
        f = ProcessFarm(
            slow_square,
            initial_workers=1,
            heartbeat_period=0.05,
            heartbeat_timeout=0.5,
            backoff_base=0.01,
            supervise_period=0.02,
            max_attempts=5,
        )
        try:
            for i in range(10):
                f.submit(i)
            f.inject_crash()
            wait_until(lambda: f.num_workers == 0, message="lone worker death")
            f.add_worker()
            results = f.drain_results(10, timeout=60.0)
            assert sorted(results) == sorted(i * i for i in range(10))
        finally:
            f.shutdown()

    def test_checkratelow_restores_capacity_after_crash(self):
        """Fault recovery as contract enforcement: the unmodified Figure 5
        rules grow the farm back after a SIGKILL."""
        f = ProcessFarm(
            slow_square,
            initial_workers=2,
            heartbeat_period=0.05,
            heartbeat_timeout=0.5,
            backoff_base=0.01,
            supervise_period=0.02,
        )
        ctl = FarmController(
            f, MinThroughputContract(500.0), control_period=0.05, max_workers=6
        )
        try:
            f.inject_crash()
            wait_until(lambda: f.num_workers == 1, message="crash detection")

            def pressure():
                for i in range(40):
                    f.submit(i)
                ctl.control_step()

            wait_until(
                lambda: f.num_workers >= 2,
                on_tick=pressure,
                interval=0.02,
                message="CheckRateLow to restore capacity",
            )
            assert any("addWorker" in a for _, a in ctl.actions)
        finally:
            f.shutdown()


class TestProcessTelemetry:
    def test_counters_aggregate_into_registry(self):
        tel = Telemetry()
        f = ProcessFarm(
            slow_square,
            initial_workers=2,
            heartbeat_period=0.05,
            heartbeat_timeout=0.5,
            backoff_base=0.01,
            supervise_period=0.02,
            telemetry=tel,
        )
        try:
            for i in range(20):
                f.submit(i)
            f.inject_crash()
            f.drain_results(20, timeout=60.0)
            wait_until(
                lambda: "repro_process_worker_crashes_total" in tel.metrics,
                message="crash counter to be registered",
            )
            crashes = tel.metrics.get("repro_process_worker_crashes_total")
            assert crashes.labels(farm=f.name).value >= 1
            replayed = tel.metrics.get("repro_process_tasks_replayed_total")
            assert replayed is None or replayed.labels(farm=f.name).value >= 0
            completed = tel.metrics.get("repro_process_worker_completed_tasks")
            assert completed is not None and completed.samples()
        finally:
            f.shutdown()
