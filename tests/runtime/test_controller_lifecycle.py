"""Shutdown and contract-swap paths of the live farm controller.

These are the paths a long-running deployment exercises constantly —
stopping a controller whose rules are mid-cycle, re-assigning a
contract while the loop is live, and violations arriving while the
stream drains — but that the happy-path tests never touch.
"""

import threading
import time

import pytest

from repro.core.contracts import (
    BestEffortContract,
    CompositeContract,
    MaxLatencyContract,
    MinThroughputContract,
    RateContract,
    ThroughputRangeContract,
)
from repro.runtime.backend import RuntimeFarmSnapshot
from repro.runtime.controller import FarmController, ThreadFarmController
from repro.runtime.farm_runtime import ThreadFarm

from .waiting import wait_until


def square(x):
    return x * x


def slow_square(x):
    time.sleep(0.01)
    return x * x


class TestAlias:
    def test_thread_farm_controller_is_farm_controller(self):
        assert ThreadFarmController is FarmController


class TestShutdownPaths:
    def test_stop_while_rules_mid_cycle(self):
        """stop() called from another thread while control_step is busy
        firing rules must join cleanly, not deadlock on the farm lock."""
        farm = ThreadFarm(slow_square, initial_workers=1)
        ctl = FarmController(
            farm, MinThroughputContract(500.0), control_period=0.01, max_workers=4
        ).start()
        try:
            # guarantee at least one full cycle has rules to chew on
            for i in range(100):
                farm.submit(i)
            wait_until(
                lambda: ctl.actions or ctl.violations,
                message="a mid-cycle rule firing",
            )
            ctl.stop(timeout=10.0)
            assert ctl._thread is not None and not ctl._thread.is_alive()
        finally:
            farm.shutdown()

    def test_stop_is_idempotent_and_restartable(self):
        farm = ThreadFarm(square, initial_workers=1)
        ctl = FarmController(farm, MinThroughputContract(10.0), control_period=0.02)
        try:
            ctl.start()
            ctl.stop()
            ctl.stop()  # second stop is a no-op
            ctl.start()  # the loop may be restarted after a stop
            wait_until(lambda: ctl.violations, message="post-restart starvation")
            ctl.stop()
        finally:
            farm.shutdown()

    def test_start_twice_keeps_single_loop(self):
        farm = ThreadFarm(square, initial_workers=1)
        ctl = FarmController(farm, MinThroughputContract(10.0), control_period=0.02)
        try:
            assert ctl.start() is ctl
            first = ctl._thread
            assert ctl.start() is ctl
            assert ctl._thread is first  # no second loop thread spawned
        finally:
            ctl.stop()
            farm.shutdown()

    def test_stop_after_farm_shutdown_is_clean(self):
        """Stopping the controller after its farm is gone must not raise:
        the loop only snapshots, and snapshots survive a dead farm."""
        farm = ThreadFarm(square, initial_workers=1)
        ctl = FarmController(
            farm, MinThroughputContract(10.0), control_period=0.02
        ).start()
        farm.shutdown()
        ctl.stop(timeout=10.0)
        assert not ctl._thread.is_alive()


class TestContractSwap:
    def test_swap_updates_thresholds_in_place(self):
        farm = ThreadFarm(square, initial_workers=1)
        try:
            ctl = FarmController(farm, ThroughputRangeContract(2.0, 5.0))
            assert ctl.constants.FARM_LOW_PERF_LEVEL == 2.0
            ctl.assign_contract(ThroughputRangeContract(10.0, 20.0))
            assert ctl.constants.FARM_LOW_PERF_LEVEL == 10.0
            assert ctl.constants.FARM_HIGH_PERF_LEVEL == 20.0
            # the live rule closures read the same constants object
            assert ctl.engine.rules  # unchanged rule objects
        finally:
            farm.shutdown()

    def test_swap_to_best_effort_silences_growth(self):
        """After swapping to best-effort mid-run, the rules stop firing:
        the same engine, re-tuned without redeployment."""
        farm = ThreadFarm(slow_square, initial_workers=1)
        ctl = FarmController(
            farm, MinThroughputContract(500.0), control_period=0.05, max_workers=8
        )
        try:
            def pressure():
                for i in range(40):
                    farm.submit(i)
                ctl.control_step()

            wait_until(
                lambda: farm.num_workers > 1,
                on_tick=pressure,
                interval=0.02,
                message="growth under the strict contract",
            )
            ctl.assign_contract(BestEffortContract())
            before = len(ctl.actions)
            for _ in range(5):
                for i in range(40):
                    farm.submit(i)
                fired = ctl.control_step()
                assert "CheckRateLow" not in fired
            assert all("addWorker" not in a for _, a in ctl.actions[before:])
        finally:
            farm.shutdown()

    def test_swap_while_loop_running_is_safe(self):
        farm = ThreadFarm(square, initial_workers=1)
        ctl = FarmController(
            farm, MinThroughputContract(10.0), control_period=0.005
        ).start()
        try:
            stop = threading.Event()
            errors = []

            def swapper():
                contracts = [
                    ThroughputRangeContract(1.0, 2.0),
                    CompositeContract(
                        [ThroughputRangeContract(3.0, 6.0), MaxLatencyContract(0.5)]
                    ),
                    BestEffortContract(),
                    MinThroughputContract(10.0),
                ]
                i = 0
                while not stop.is_set():
                    try:
                        ctl.assign_contract(contracts[i % len(contracts)])
                    except Exception as exc:  # noqa: BLE001
                        errors.append(exc)
                        return
                    i += 1
                    time.sleep(0.002)

            t = threading.Thread(target=swapper)
            t.start()
            wait_until(lambda: ctl.violations, message="violations under swapping")
            stop.set()
            t.join(10.0)
            assert not errors
            ctl.stop()
        finally:
            farm.shutdown()

    def test_unsupported_contract_rejected(self):
        farm = ThreadFarm(square, initial_workers=1)
        try:
            ctl = FarmController(farm, BestEffortContract())
            with pytest.raises(ValueError):
                ctl.assign_contract(object())  # type: ignore[arg-type]
        finally:
            farm.shutdown()

    def test_failed_swap_leaves_old_contract_fully_in_force(self):
        """A composite with one unsupported part must be rejected *before*
        any threshold mutates — not half-applied up to the bad part."""
        farm = ThreadFarm(square, initial_workers=1)
        try:
            ctl = FarmController(farm, ThroughputRangeContract(2.0, 5.0))
            bad = CompositeContract(
                [ThroughputRangeContract(7.0, 9.0), RateContract(rate=5.0)]
            )
            with pytest.raises(ValueError):
                ctl.assign_contract(bad)
            assert ctl.constants.FARM_LOW_PERF_LEVEL == 2.0
            assert ctl.constants.FARM_HIGH_PERF_LEVEL == 5.0
            assert isinstance(ctl.contract, ThroughputRangeContract)
        finally:
            farm.shutdown()


class _GatedFarm:
    """FarmBackend stub whose snapshot() blocks until released.

    Holding the monitor phase open gives the test a deterministic window
    that is *guaranteed* to be mid-cycle — no sleeps, no racing.
    The numbers it reports (arrival 1000/s, departure 1/s, one worker)
    make CheckRateLow eligible under a min-throughput contract of up to
    1000 tasks/s: plenty of input, output far below the floor.
    """

    name = "gated"

    def __init__(self):
        self.in_monitor = threading.Event()
        self.release = threading.Event()
        self.added = 0
        self._t0 = time.monotonic()

    def now(self):
        return time.monotonic() - self._t0

    def submit(self, payload):  # pragma: no cover - unused by the controller
        pass

    def drain_results(self, count, timeout=30.0):  # pragma: no cover - unused
        return []

    def snapshot(self):
        self.in_monitor.set()
        self.release.wait(10.0)
        return RuntimeFarmSnapshot(
            time=self.now(),
            arrival_rate=1000.0,
            departure_rate=1.0,
            num_workers=self.num_workers,
            queue_lengths=(0,),
            queue_variance=0.0,
            completed=0,
            pending=0,
            mean_latency=0.0,
        )

    @property
    def num_workers(self):
        return 1 + self.added

    def add_worker(self, secured=False):
        self.added += 1

    def remove_worker(self):
        return None

    def balance_load(self):
        return 0

    def secure_all(self):  # pragma: no cover - unused by the controller
        pass

    def shutdown(self, timeout=10.0):  # pragma: no cover - unused
        pass


class TestContractSwapMidCycle:
    def test_swap_mid_cycle_lands_on_next_cycle(self):
        """Regression: a contract swap arriving while a MAPE cycle is in
        flight must not retune the thresholds that cycle is already
        acting on.  The in-flight cycle completes under the *old*
        contract (so CheckRateLow still fires); the swap lands before
        the next cycle (which then stays silent under best-effort).

        Before the fix, assign_contract mutated the shared constants
        immediately, so the in-flight cycle planned against the new
        thresholds and the growth action was silently lost.
        """
        farm = _GatedFarm()
        ctl = FarmController(farm, MinThroughputContract(500.0), max_workers=8)
        fired_in_flight = []
        cycle = threading.Thread(
            target=lambda: fired_in_flight.extend(ctl.control_step())
        )
        cycle.start()
        assert farm.in_monitor.wait(10.0), "cycle never reached monitor"
        # swap arrives mid-cycle from another thread...
        swapper = threading.Thread(
            target=ctl.assign_contract, args=(BestEffortContract(),)
        )
        swapper.start()
        # ...and the held-open cycle finishes against the old contract
        farm.release.set()
        cycle.join(10.0)
        swapper.join(10.0)
        assert not cycle.is_alive() and not swapper.is_alive()
        assert "CheckRateLow" in fired_in_flight
        assert farm.added == ctl.constants.FARM_ADD_WORKERS
        # the swap has landed now: the next cycle sees best-effort
        assert ctl.constants.FARM_LOW_PERF_LEVEL == 0.0
        assert "CheckRateLow" not in ctl.control_step()
        assert farm.added == ctl.constants.FARM_ADD_WORKERS  # no further growth


class TestViolationDuringDrain:
    def test_starvation_reported_while_stream_drains(self):
        """End of stream: arrivals cease, the controller keeps ticking and
        reports notEnoughTasks while the backlog drains — then stops
        cleanly with the violations on record (the paper's drain phase)."""
        farm = ThreadFarm(slow_square, initial_workers=2, rate_window=0.2)
        ctl = FarmController(
            farm, MinThroughputContract(20.0), control_period=0.02
        ).start()
        try:
            for i in range(50):
                farm.submit(i)
            results = farm.drain_results(50, timeout=30.0)
            assert len(results) == 50
            # stream over: the loop itself must flag starvation
            wait_until(
                lambda: any(v == "notEnoughTasks" for _, v in ctl.violations),
                message="starvation during drain",
            )
            ctl.stop(timeout=10.0)
            assert not ctl._thread.is_alive()
        finally:
            farm.shutdown()

    @pytest.mark.timing
    def test_violation_mid_drain_does_not_block_stop(self):
        """stop() racing the very tick that appends a violation: the join
        must win, and the violation list stays consistent.

        Marked ``timing``: the "no tick after stop()" property is an
        absence claim — it can only be checked by waiting a grace period
        and observing nothing happened, which is inherently
        load-sensitive.  CI excludes it via ``-m "not timing"``."""
        farm = ThreadFarm(square, initial_workers=1, rate_window=0.1)
        for _ in range(20):
            ctl = FarmController(
                farm, MinThroughputContract(50.0), control_period=0.001
            ).start()
            wait_until(lambda: ctl.violations, timeout=10.0, message="first violation")
            ctl.stop(timeout=10.0)
            count = len(ctl.violations)
            # no tick may land after stop() returned
            time.sleep(0.01)
            assert len(ctl.violations) == count
        farm.shutdown()
