"""Multi-tenant SLA layer: admission, fair share, per-tenant tracing.

Three layers of assertion:

* **unit** — the token-bucket admission gate (accept inside quota,
  queue over quota, reject past the backlog bound) and the stride
  scheduler's weighted ordering, driven with explicit clocks;
* **integration** — a 3-tenant run on a live sharded farm where every
  tenant ends within 10% of its fair share, asserted from the
  ``repro_tenant_*`` metrics (the same counters an operator would
  watch), with zero loss across admission + fair-share dispatch;
* **observability** — the tenant name rides the task's root trace
  span, so ``python -m repro.obs.explain --tenant NAME`` narrates one
  tenant's story from a real export.
"""

import time

import pytest

from repro.core.contracts import ThroughputRangeContract
from repro.obs.telemetry import Telemetry
from repro.runtime.hierarchy import (
    Admission,
    FairShareScheduler,
    ShardedFarm,
    TenantRegistry,
)

from .waiting import wait_until

pytestmark = pytest.mark.hierarchy


def tenant_task(payload):
    work, value = payload
    if work:
        time.sleep(work)
    return value * value


def counter_value(telemetry, name, **labels):
    return telemetry.metrics.counter(name, "").labels(**labels).value


# ----------------------------------------------------------------------
# unit: the admission gate
# ----------------------------------------------------------------------


class TestAdmission:
    def test_accept_queue_reject_ladder(self):
        reg = TenantRegistry()
        reg.register("a", rate=10.0, burst=2.0, max_backlog=3)
        # two tokens -> two accepts
        assert reg.admit("a", "t0", now=0.0) == Admission.ACCEPT
        assert reg.admit("a", "t1", now=0.0) == Admission.ACCEPT
        # bucket empty -> bounded queueing
        for i in range(3):
            assert reg.admit("a", f"q{i}", now=0.0) == Admission.QUEUE
        # backlog full -> reject
        assert reg.admit("a", "overflow", now=0.0) == Admission.REJECT
        tenant = reg.get("a")
        assert (tenant.submitted, tenant.admitted, tenant.queued, tenant.rejected) == (
            6, 2, 3, 1,
        )

    def test_tokens_refill_at_contracted_rate(self):
        reg = TenantRegistry()
        reg.register("a", rate=5.0, burst=1.0)
        assert reg.admit("a", "t0", now=0.0) == Admission.ACCEPT
        # 0.2 s at 5 tasks/s earns exactly the one token back
        assert reg.admit("a", "t1", now=0.2) == Admission.ACCEPT
        # but no further: the bucket never exceeds its burst
        assert reg.admit("a", "t2", now=0.2) == Admission.QUEUE

    def test_backlogged_tenant_cannot_jump_its_own_queue(self):
        """A fresh submission never overtakes the tenant's own backlog."""
        reg = TenantRegistry()
        reg.register("a", rate=10.0, burst=1.0)
        assert reg.admit("a", "t0", now=0.0) == Admission.ACCEPT
        assert reg.admit("a", "t1", now=0.0) == Admission.QUEUE
        # tokens are back, but t2 must queue behind t1
        assert reg.admit("a", "t2", now=10.0) == Admission.QUEUE
        # one token -> the scheduler releases t1 first; t2 keeps waiting
        released = FairShareScheduler(reg).pump(now=10.0)
        assert [payload for _, payload in released] == ["t1"]
        assert list(reg.get("a").backlog) == ["t2"]

    def test_duplicate_and_unknown_tenants(self):
        reg = TenantRegistry()
        reg.register("a", rate=1.0)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("a", rate=2.0)
        with pytest.raises(KeyError, match="unknown tenant"):
            reg.get("nobody")
        with pytest.raises(ValueError, match="weight must be positive"):
            reg.register("b", rate=1.0, weight=-1.0)

    def test_metrics_count_every_verdict(self):
        tel = Telemetry()
        reg = TenantRegistry(telemetry=tel)
        reg.register("a", rate=10.0, burst=1.0, max_backlog=1)
        reg.admit("a", "t0", now=0.0)   # accept
        reg.admit("a", "t1", now=0.0)   # queue
        reg.admit("a", "t2", now=0.0)   # reject
        assert counter_value(tel, "repro_tenant_submitted_total", tenant="a") == 3
        assert counter_value(tel, "repro_tenant_admitted_total", tenant="a") == 1
        assert counter_value(tel, "repro_tenant_queued_total", tenant="a") == 1
        assert counter_value(tel, "repro_tenant_rejected_total", tenant="a") == 1


# ----------------------------------------------------------------------
# unit: stride fair share
# ----------------------------------------------------------------------


class TestFairShareScheduler:
    def test_release_order_is_weight_proportional(self):
        """Weights 3:1 -> the release sequence interleaves 3 a's per b."""
        reg = TenantRegistry()
        a = reg.register("a", rate=30.0, burst=20.0)
        b = reg.register("b", rate=10.0, burst=20.0)
        a.backlog.extend(f"a{i}" for i in range(30))
        b.backlog.extend(f"b{i}" for i in range(30))
        released = FairShareScheduler(reg).pump(now=0.0)
        # every window of the contended prefix honours the 3:1 weights
        prefix = [tenant.name for tenant, _ in released][:12]
        assert prefix.count("a") == 9
        assert prefix.count("b") == 3
        # within one tenant, FIFO order is preserved
        assert [p for t, p in released if t.name == "a"][:3] == ["a0", "a1", "a2"]

    def test_returning_tenant_does_not_starve_the_incumbent(self):
        """A tenant back from idling joins at the scheduler's current
        virtual time instead of replaying its unused past share."""
        reg = TenantRegistry()
        a = reg.register("a", rate=10.0, burst=50.0)
        b = reg.register("b", rate=10.0, burst=50.0)
        scheduler = FairShareScheduler(reg)
        # phase 1: only a is backlogged; its virtual time advances
        a.backlog.extend(f"a{i}" for i in range(50))
        assert len(scheduler.pump(now=0.0)) == 50
        assert a.virtual_time == pytest.approx(5.0)
        # phase 2: b returns from idling with virtual time still 0
        a.backlog.extend(f"a{i}" for i in range(50, 54))
        b.backlog.extend(f"b{i}" for i in range(4))
        a.tokens = b.tokens = 4.0
        a.last_refill = b.last_refill = 0.0
        released = scheduler.pump(now=0.0)
        names = [t.name for t, _ in released]
        # b synced up to the global virtual time, so releases alternate
        # instead of b draining its whole backlog first
        assert names[:4].count("a") == 2
        assert names[:4].count("b") == 2


# ----------------------------------------------------------------------
# integration: three tenants on a live sharded farm
# ----------------------------------------------------------------------


class TestLiveFairShare:
    def test_three_tenants_within_ten_percent_of_fair_share(self):
        """The acceptance run: equal SLAs, saturated quotas, and every
        tenant's dispatch count within 10% of its fair share — read
        from the ``repro_tenant_dispatched_total`` counters."""
        tel = Telemetry()
        reg = TenantRegistry(telemetry=tel)
        names = ("alpha", "beta", "gamma")
        for name in names:
            reg.register(name, rate=20.0, burst=1.0)
        farm = ShardedFarm(
            tenant_task,
            contract=ThroughputRangeContract(2.0, 1000.0),
            shards=2,
            backend="thread",
            max_workers_total=4,
            control_period=0.05,
            registry=reg,
            telemetry=tel,
            shard_kwargs={"rate_window": 0.8},
        )
        try:
            # saturate every quota instantly: backlogs form and drain
            # against the token rate through the fair-share scheduler
            per_tenant = 60
            verdicts = {name: [] for name in names}
            for i in range(per_tenant):
                for name in names:
                    verdicts[name].append(
                        farm.submit((0.0, i), tenant=name)
                    )
            assert all(
                v[0] == Admission.ACCEPT for v in verdicts.values()
            ), "first submission inside quota must be admitted"
            assert all(
                Admission.QUEUE in v for v in verdicts.values()
            ), "saturation must push every tenant into its backlog"

            # the contended window: sample dispatch counters while every
            # tenant still has backlog, i.e. while fair share is being
            # arbitrated rather than trivially satisfied
            wait_until(
                lambda: all(
                    counter_value(
                        tel, "repro_tenant_dispatched_total", tenant=name
                    ) >= 30
                    for name in names
                ),
                timeout=30.0,
                message="tenants should be dispatching from their backlogs",
            )
            assert all(reg.get(name).backlog for name in names), (
                "sampled after the contended window — lower the sample point"
            )
            dispatched = {
                name: counter_value(
                    tel, "repro_tenant_dispatched_total", tenant=name
                )
                for name in names
            }
            fair = sum(dispatched.values()) / len(names)
            for name, count in dispatched.items():
                assert abs(count - fair) / fair <= 0.10, (
                    f"{name} got {count}, fair share {fair}: {dispatched}"
                )

            # zero loss across the gate: everything admitted or queued
            # eventually comes back exactly once
            expected = 3 * per_tenant
            results = farm.drain_results(expected, timeout=60.0)
            assert len(results) == expected
            assert sorted(results) == sorted(
                i * i for i in range(per_tenant) for _ in names
            )
        finally:
            farm.shutdown()


# ----------------------------------------------------------------------
# observability: the tenant rides the trace
# ----------------------------------------------------------------------


class TestTenantTracing:
    def test_tenant_attribute_on_task_root_spans(self, tmp_path):
        tel = Telemetry()
        reg = TenantRegistry(telemetry=tel)
        reg.register("acme", rate=100.0)
        reg.register("globex", rate=100.0)
        farm = ShardedFarm(
            tenant_task,
            contract=ThroughputRangeContract(2.0, 1000.0),
            shards=2,
            backend="thread",
            max_workers_total=4,
            control_period=0.1,
            registry=reg,
            telemetry=tel,
        )
        try:
            for i in range(10):
                farm.submit((0.0, i), tenant="acme" if i % 2 == 0 else "globex")
            results = farm.drain_results(10, timeout=30.0)
            assert len(results) == 10
        finally:
            farm.shutdown()

        spans = tel.spans.spans
        acme_tasks = [
            s for s in spans
            if s.name == "task" and s.attributes.get("tenant") == "acme"
        ]
        assert len(acme_tasks) == 5
        assert {s.attributes.get("tenant")
                for s in spans if s.name == "task"} == {"acme", "globex"}

    def test_explain_tenant_narrates_from_real_export(self, tmp_path):
        from repro.obs.explain import main as explain_main

        tel = Telemetry()
        reg = TenantRegistry(telemetry=tel)
        reg.register("acme", rate=100.0)
        farm = ShardedFarm(
            tenant_task,
            contract=ThroughputRangeContract(2.0, 1000.0),
            shards=2,
            backend="thread",
            max_workers_total=4,
            control_period=0.1,
            registry=reg,
            telemetry=tel,
        )
        try:
            for i in range(6):
                farm.submit((0.0, i), tenant="acme")
            farm.drain_results(6, timeout=30.0)
        finally:
            farm.shutdown()

        from repro.obs.export import write_trace_jsonl

        trace_file = tmp_path / "trace.jsonl"
        write_trace_jsonl(str(trace_file), tel)

        import io

        out = io.StringIO()
        assert explain_main([str(trace_file), "--tenant", "acme"], out=out) == 0
        text = out.getvalue()
        assert "tenant 'acme' — 6 task(s)" in text
        assert "6/6 completed" in text

        out = io.StringIO()
        assert explain_main([str(trace_file), "--tenant", "nobody"], out=out) == 2
        assert "tenants in this export: acme" in out.getvalue()
