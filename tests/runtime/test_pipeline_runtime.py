"""Tests for the thread pipeline."""

import time

import pytest

from repro.runtime.pipeline_runtime import ThreadPipeline, ThreadStage


class TestThreadStage:
    def test_processes_and_counts(self):
        stage = ThreadStage(lambda x: x + 1, name="inc")
        import queue

        out = queue.Queue()
        stage.output = out
        for i in range(5):
            stage.input.put(i)
        got = [out.get(timeout=5.0) for _ in range(5)]
        assert got == [1, 2, 3, 4, 5]
        assert stage.completed == 5


class TestThreadPipeline:
    def test_needs_two_stages(self):
        with pytest.raises(ValueError):
            ThreadPipeline([lambda x: x])

    def test_order_preserved_end_to_end(self):
        pipe = ThreadPipeline([lambda x: x + 1, lambda x: x * 2, lambda x: x - 3])
        results = pipe.run_to_completion(list(range(20)))
        assert results == [(i + 1) * 2 - 3 for i in range(20)]

    def test_stages_overlap_in_time(self):
        """Pipelining: total time ~ max-stage * n, not sum-stages * n."""
        delay = 0.05
        n = 10

        def work(x):
            time.sleep(delay)
            return x

        pipe = ThreadPipeline([work, work, work])
        t0 = time.monotonic()
        pipe.run_to_completion(list(range(n)))
        elapsed = time.monotonic() - t0
        # ideal pipelined time ~= delay * (n + 2) = 0.6s vs 1.5s
        # sequential; the 0.8 factor leaves slack for slow CI runners
        sequential = 3 * delay * n
        assert elapsed < sequential * 0.8  # clearly overlapped

    def test_close_propagates_shutdown(self):
        pipe = ThreadPipeline([lambda x: x, lambda x: x])
        pipe.submit(1)
        pipe.close()
        pipe.collect(1, timeout=5.0)
        pipe.join(timeout=5.0)
        assert all(not s.alive for s in pipe.stages)

    def test_collect_timeout(self):
        pipe = ThreadPipeline([lambda x: x, lambda x: x])
        with pytest.raises(TimeoutError):
            pipe.collect(1, timeout=0.05)
        pipe.close()

    def test_throughput_measured(self):
        pipe = ThreadPipeline([lambda x: x, lambda x: x])
        pipe.run_to_completion(list(range(50)))
        assert pipe.throughput() > 0.0
