"""Live multi-concern coordination: GM + security over real backends.

The §3.2 story, asserted rather than narrated, on every wall-clock
substrate:

* a grow intent expressed by a performance manager routes through the
  :class:`~repro.runtime.multiconcern.LiveGeneralManager`, the security
  manager amends it, and the commit runs quarantine → secure → admit —
  with the farm's own dispatch counters proving that **zero** tasks
  ever travelled to an unsecured worker;
* the naive ablation on the same pool leaks, measurably;
* a veto arriving mid-grow (trust revoked between two intents) kills
  the later intent cleanly: no worker appears, nodes are returned;
* a Hypothesis property drives arbitrary interleavings of grow /
  trust-revocation / reactive ticks through the GM and checks the
  committed-plan ⊆ secured-workers invariant after every step;
* the ``fig4 --with-security`` experiment completes its phase story
  end to end.
"""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multiconcern import CoordinationMode
from repro.obs.telemetry import Telemetry
from repro.rules.beans import ManagerOperation
from repro.runtime.dist_farm import DistFarm
from repro.runtime.farm_runtime import ThreadFarm
from repro.runtime.multiconcern import LiveGeneralManager, WorkerPlacement
from repro.runtime.process_farm import ProcessFarm
from repro.security.domains import SecurityPolicy, TrustRegistry
from repro.security.manager import LiveSecurityManager
from repro.sim.resources import Domain, ResourceManager, make_cluster

pytestmark = pytest.mark.multiconcern

BACKENDS = ("thread", "process", "dist")

UNTRUSTED = Domain("untrusted_ip_domain_A", trusted=False)


def mc_task(payload):
    """Module-level so it crosses the process/TCP boundary by name."""
    work, value = payload
    if work:
        time.sleep(work)
    return value * value


def make_farm(backend, telemetry, *, initial_workers=2, max_workers=8):
    tuning = dict(
        heartbeat_period=0.05,
        heartbeat_timeout=0.5,
        supervise_period=0.02,
        backoff_base=0.02,
        backoff_cap=0.2,
    )
    if backend == "thread":
        return ThreadFarm(
            mc_task,
            initial_workers=initial_workers,
            max_workers=max_workers,
            rate_window=0.5,
            telemetry=telemetry,
        )
    if backend == "process":
        return ProcessFarm(
            mc_task,
            initial_workers=initial_workers,
            max_workers=max_workers,
            rate_window=0.5,
            telemetry=telemetry,
            **tuning,
        )
    if backend == "dist":
        return DistFarm(
            mc_task,
            initial_workers=initial_workers,
            max_workers=max_workers,
            rate_window=0.5,
            telemetry=telemetry,
            **tuning,
        )
    raise ValueError(backend)


class Originator:
    """Stands in for AM_perf when tests drive intents by hand."""

    name = "AM_perf"


def build_coordination(farm, telemetry, *, pool_size=8, veto_domains=(),
                       mode=CoordinationMode.TWO_PHASE, registry=None):
    pool = make_cluster(pool_size, prefix="u", domain=UNTRUSTED)
    placement = WorkerPlacement(ResourceManager(pool))
    policy = SecurityPolicy(registry) if registry is not None else SecurityPolicy()
    security = LiveSecurityManager(
        farm, placement, policy=policy, veto_domains=veto_domains,
        telemetry=telemetry,
    )
    gm = LiveGeneralManager(farm, placement, mode=mode, telemetry=telemetry)
    gm.register(security)
    return gm, security, placement


def insecure_dispatches(telemetry, farm):
    return telemetry.metrics.counter(
        "repro_mc_insecure_dispatch_total", ""
    ).labels(farm=farm.name).value


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


class TestLiveGrowStory:
    def test_grow_secure_admit_zero_insecure_dispatch(self, backend):
        """The tentpole invariant on every backend: growth over untrusted
        nodes mid-stream, and not one task crosses an unsecured channel."""
        tel = Telemetry()
        farm = make_farm(backend, tel)
        try:
            farm.secure_all()
            gm, security, placement = build_coordination(farm, tel)
            total = 80
            for i in range(total):
                farm.submit((0.004, i))
                if i in (20, 45):
                    assert gm.execute_intent(
                        Originator(), ManagerOperation.ADD_EXECUTOR, {"count": 2}
                    )
            results = farm.drain_results(total, timeout=120.0)
            assert sorted(r for r in results if not isinstance(r, Exception)) == [
                i * i for i in range(total)
            ]
            assert insecure_dispatches(tel, farm) == 0
            assert farm.quarantined_workers == 0
            assert farm.num_workers == 6
            # every grown worker was amended to secure and ended secured
            assert sum(r.amendments for r in gm.intents) == 2
            for worker_id in placement.bound():
                w = next(w for w in farm.workers if w.worker_id == worker_id)
                assert w.secured
        finally:
            farm.shutdown()

    def test_naive_mode_leaks_on_thread(self):
        """The ablation: same pool, no intent protocol — the window
        between instantiation and (never-arriving) securing leaks."""
        tel = Telemetry()
        farm = make_farm("thread", tel)
        try:
            farm.secure_all()
            gm, security, _ = build_coordination(
                farm, tel, mode=CoordinationMode.NAIVE
            )
            total = 80
            for i in range(total):
                farm.submit((0.002, i))
                if i == 10:
                    assert gm.execute_intent(
                        Originator(), ManagerOperation.ADD_EXECUTOR, {"count": 3}
                    )
            farm.drain_results(total, timeout=60.0)
            assert insecure_dispatches(tel, farm) > 0
        finally:
            farm.shutdown()

    def test_controller_routes_intents_through_gm(self):
        """A FarmController registered with the GM grows via intents:
        its ADD_EXECUTOR actuations produce quarantine→secure→admit."""
        from repro.core.contracts import MinThroughputContract
        from repro.runtime.controller import FarmController

        tel = Telemetry()
        farm = make_farm("thread", tel, initial_workers=1)
        try:
            farm.secure_all()
            gm, security, _ = build_coordination(farm, tel)
            controller = FarmController(
                farm,
                MinThroughputContract(500.0),  # unreachable: always wants more
                control_period=0.05,
                max_workers=8,
                telemetry=tel,
            )
            gm.register(controller, priority=0)
            assert controller.coordinator is gm
            for i in range(60):
                farm.submit((0.004, i))
                if i == 20:
                    controller.control_step()
            farm.drain_results(60, timeout=60.0)
            assert any("(intent)" in a for _, a in controller.actions)
            assert gm.outcomes().get("committed", 0) >= 1
            assert insecure_dispatches(tel, farm) == 0
        finally:
            farm.shutdown()


class TestVetoMidGrow:
    def test_trust_revocation_between_intents_vetoes_later_grow(self):
        """Deterministic regression: the first grow commits; trust of the
        pool's domain is then revoked and listed for veto; the second
        grow dies in review with no worker instantiated and its nodes
        returned to the pool."""
        tel = Telemetry()
        farm = make_farm("thread", tel, max_workers=12)
        try:
            farm.secure_all()
            registry = TrustRegistry()
            gm, security, placement = build_coordination(
                farm, tel, registry=registry,
                veto_domains=(UNTRUSTED.name,),
            )
            # while the domain is trusted (override), growth is clean
            registry.set_trust(UNTRUSTED.name, True)
            security_veto_free = LiveSecurityManager(
                farm, placement, policy=SecurityPolicy(registry), telemetry=tel
            )
            gm_open = LiveGeneralManager(farm, placement, telemetry=tel, name="GM_open")
            gm_open.register(security_veto_free)
            assert gm_open.execute_intent(
                Originator(), ManagerOperation.ADD_EXECUTOR, {"count": 2}
            )
            workers_before = farm.num_workers
            free_before = len(placement.resources.available())
            # mid-run revocation: the veto-configured manager now rejects
            assert not gm.execute_intent(
                Originator(), ManagerOperation.ADD_EXECUTOR, {"count": 2}
            )
            assert gm.outcomes() == {"vetoed": 1}
            assert security.vetoes == 1
            assert farm.num_workers == workers_before
            assert farm.quarantined_workers == 0
            # the vetoed plan's nodes went back to the pool
            assert len(placement.resources.available()) == free_before
        finally:
            farm.shutdown()


# ----------------------------------------------------------------------
# Hypothesis: committed plan ⊆ secured workers under any interleaving
# ----------------------------------------------------------------------


class FakeWorker:
    def __init__(self, worker_id, secured, quarantined):
        self.worker_id = worker_id
        self.secured = secured
        self.quarantined = quarantined
        self.active = True
        self.retiring = False
        self.dispatched = 0


class FakeFarm:
    """Synchronous in-memory FarmBackend surface for property tests.

    Implements exactly the slice of the protocol the GM and security
    manager touch, so Hypothesis can run thousands of interleavings
    without threads or sockets.
    """

    name = "fake"

    def __init__(self, initial_workers=1, max_workers=64):
        self.workers = []
        self.max_workers = max_workers
        self._next_id = 0
        self._clock = 0.0
        for _ in range(initial_workers):
            self.add_worker(secured=True)

    def now(self):
        self._clock += 0.001
        return self._clock

    def add_worker(self, *, secured=False, quarantined=False):
        if sum(1 for w in self.workers if w.active) >= self.max_workers:
            raise RuntimeError("worker limit reached")
        w = FakeWorker(self._next_id, secured, quarantined)
        self._next_id += 1
        self.workers.append(w)
        return w

    def secure_worker(self, worker_id):
        for w in self.workers:
            if w.worker_id == worker_id and w.active:
                w.secured = True
                return True
        return False

    def admit_worker(self, worker_id):
        for w in self.workers:
            if w.worker_id == worker_id and w.active:
                w.quarantined = False
                return True
        return False

    @property
    def num_workers(self):
        return sum(1 for w in self.workers if w.active and not w.quarantined)

    @property
    def quarantined_workers(self):
        return sum(1 for w in self.workers if w.active and w.quarantined)

    def dispatch_round(self):
        """One round-robin sweep over the admitted workers."""
        for w in self.workers:
            if w.active and not w.quarantined:
                w.dispatched += 1


OPS = st.lists(
    st.sampled_from(["grow", "grow2", "revoke", "restore", "tick", "dispatch"]),
    min_size=1,
    max_size=30,
)


class TestIntentInterleavingProperty:
    @given(ops=OPS)
    @settings(max_examples=60, deadline=None)
    def test_committed_workers_are_secured_under_any_interleaving(self, ops):
        """Whatever order grow intents, trust flips, reactive ticks and
        dispatch rounds arrive in, every worker the GM ever admitted is
        secured, and no quarantined worker is ever dispatched to."""
        farm = FakeFarm()
        registry = TrustRegistry()
        pool = make_cluster(64, prefix="u", domain=UNTRUSTED)
        placement = WorkerPlacement(ResourceManager(pool))
        policy = SecurityPolicy(registry)
        security = LiveSecurityManager(farm, placement, policy=policy)
        gm = LiveGeneralManager(farm, placement)
        gm.register(security)
        origin = Originator()
        admitted_ids = set()
        for op in ops:
            if op == "grow":
                gm.execute_intent(origin, ManagerOperation.ADD_EXECUTOR, {"count": 1})
            elif op == "grow2":
                gm.execute_intent(origin, ManagerOperation.ADD_EXECUTOR, {"count": 2})
            elif op == "revoke":
                registry.set_trust(UNTRUSTED.name, False)
            elif op == "restore":
                registry.set_trust(UNTRUSTED.name, True)
            elif op == "tick":
                security.control_step()
            elif op == "dispatch":
                farm.dispatch_round()
            # the invariant holds after EVERY step, not just at the end
            for w in farm.workers:
                if w.quarantined:
                    assert w.dispatched == 0
            admitted_ids |= {
                w.worker_id
                for w in farm.workers
                if w.active and not w.quarantined and w.worker_id in placement.bound()
            }
        # every worker the GM committed through the gate ended secured:
        # amendments run against live trust, so a worker admitted while
        # the domain was *trusted* may legitimately be unsecured — but
        # then a reactive tick under revoked trust must close it, which
        # is what the final sweep asserts
        registry.set_trust(UNTRUSTED.name, False)
        security.control_step()
        for w in farm.workers:
            if w.worker_id in admitted_ids and w.active:
                assert w.secured, f"admitted worker {w.worker_id} left unsecured"


class TestFig4SecurityAcceptance:
    @pytest.fixture()
    def quick_cfg(self):
        from repro.experiments.fig4_live import Fig4LiveConfig

        return Fig4LiveConfig(
            backend="dist",
            with_security=True,
            total_tasks=80,
            starve_duration=0.4,
            crash_after=30,
            feed_rate=80.0,
            max_workers=6,
        )

    def test_fig4_dist_with_security_completes_the_story(self, quick_cfg):
        """ISSUE acceptance: the dist fig4 security story ends with zero
        tasks lost and zero insecure dispatches, straight from the
        repro_mc_* metrics."""
        from repro.experiments.fig4_live import run_fig4_live

        tel = Telemetry()
        r = run_fig4_live(quick_cfg, telemetry=tel)
        assert r.zero_loss()
        assert r.insecure_dispatches == 0
        assert (
            tel.metrics.counter("repro_mc_insecure_dispatch_total", "")
            .labels(farm="fig4-dist").value == 0
        )
        assert r.mc_committed >= 1
        assert r.mc_admitted >= 1
        assert r.quarantined_at_end == 0
        assert r.security_story_ok()

    def test_fig4_cli_with_security_on_thread(self, capsys):
        from repro.experiments.fig4 import main as fig4_main

        assert fig4_main(["--backend", "thread", "--with-security"]) == 0
        out = capsys.readouterr().out
        assert "security story holds" in out
        assert "insecure dispatches" in out

    def test_fig4_cli_rejects_security_on_sim(self):
        from repro.experiments.fig4 import main as fig4_main

        with pytest.raises(SystemExit):
            fig4_main(["--with-security"])
