"""Tests for the live thread farm and its wall-clock controller."""

import time

import pytest

from repro.core.contracts import MinThroughputContract, ThroughputRangeContract
from repro.runtime.controller import ThreadFarmController
from repro.runtime.farm_runtime import ThreadFarm

from .waiting import wait_until


def square(x):
    return x * x


def slow_square(x):
    time.sleep(0.01)
    return x * x


class TestThreadFarmBasics:
    def test_needs_workers(self):
        with pytest.raises(ValueError):
            ThreadFarm(square, initial_workers=0)

    def test_all_results_arrive(self):
        farm = ThreadFarm(square, initial_workers=3)
        try:
            for i in range(30):
                farm.submit(i)
            results = farm.drain_results(30, timeout=10.0)
            assert sorted(results) == sorted(i * i for i in range(30))
        finally:
            farm.shutdown()

    def test_exceptions_become_results(self):
        def maybe_fail(x):
            if x == 2:
                raise RuntimeError("task failed")
            return x

        farm = ThreadFarm(maybe_fail, initial_workers=2)
        try:
            for i in range(4):
                farm.submit(i)
            results = farm.drain_results(4, timeout=10.0)
            errors = [r for r in results if isinstance(r, RuntimeError)]
            assert len(errors) == 1
        finally:
            farm.shutdown()

    def test_snapshot_counts(self):
        farm = ThreadFarm(square, initial_workers=2)
        try:
            for i in range(10):
                farm.submit(i)
            farm.drain_results(10, timeout=10.0)
            snap = farm.snapshot()
            assert snap.completed == 10
            assert snap.num_workers == 2
            assert snap.pending == 0
        finally:
            farm.shutdown()

    def test_secured_worker_roundtrip(self):
        """Encrypted channels still deliver correct results."""
        farm = ThreadFarm(square, initial_workers=1)
        try:
            farm.secure_all()
            for i in range(5):
                farm.submit(i)
            results = farm.drain_results(5, timeout=10.0)
            assert sorted(results) == [0, 1, 4, 9, 16]
        finally:
            farm.shutdown()


class TestThreadFarmActuators:
    def test_add_worker(self):
        farm = ThreadFarm(square, initial_workers=1)
        try:
            farm.add_worker()
            assert farm.num_workers == 2
        finally:
            farm.shutdown()

    def test_worker_limit(self):
        farm = ThreadFarm(square, initial_workers=1, max_workers=1)
        try:
            with pytest.raises(RuntimeError):
                farm.add_worker()
        finally:
            farm.shutdown()

    def test_remove_worker_preserves_tasks(self):
        farm = ThreadFarm(slow_square, initial_workers=3)
        try:
            for i in range(30):
                farm.submit(i)
            removed = farm.remove_worker()
            assert removed is not None
            results = farm.drain_results(30, timeout=30.0)
            assert len(results) == 30
        finally:
            farm.shutdown()

    def test_remove_never_below_one(self):
        farm = ThreadFarm(square, initial_workers=1)
        try:
            assert farm.remove_worker() is None
        finally:
            farm.shutdown()

    def test_balance_load(self):
        farm = ThreadFarm(slow_square, initial_workers=2)
        try:
            # stuff one queue directly (payload, encrypted?, submit time, trace)
            for i in range(10):
                farm.workers[0].queue.put((i, False, 0.0, None))
            moved = farm.balance_load()
            assert moved > 0
        finally:
            farm.shutdown()


class TestThreadFarmController:
    def test_invalid_period(self):
        farm = ThreadFarm(square, initial_workers=1)
        try:
            with pytest.raises(ValueError):
                ThreadFarmController(farm, MinThroughputContract(1.0), control_period=0)
        finally:
            farm.shutdown()

    def test_contract_sets_thresholds(self):
        farm = ThreadFarm(square, initial_workers=1)
        try:
            ctl = ThreadFarmController(farm, ThroughputRangeContract(2.0, 5.0))
            assert ctl.constants.FARM_LOW_PERF_LEVEL == 2.0
            assert ctl.constants.FARM_HIGH_PERF_LEVEL == 5.0
        finally:
            farm.shutdown()

    def test_controller_grows_underperforming_farm(self):
        """Same Figure 5 rules, real threads: sustained pressure with one
        slow worker forces ADD_EXECUTOR."""
        farm = ThreadFarm(slow_square, initial_workers=1)
        ctl = ThreadFarmController(
            farm, MinThroughputContract(500.0), control_period=0.05, max_workers=8
        )
        try:
            # keep arrival pressure high while ticking the controller
            def pressure():
                for i in range(60):
                    farm.submit(i)
                ctl.control_step()

            wait_until(
                lambda: farm.num_workers > 1,
                on_tick=pressure,
                interval=0.02,
                message="controller to grow the farm",
            )
            assert any("addWorker" in a for _, a in ctl.actions)
        finally:
            farm.shutdown()

    def test_controller_reports_starvation(self):
        farm = ThreadFarm(square, initial_workers=1)
        ctl = ThreadFarmController(farm, MinThroughputContract(10.0))
        try:
            # no arrivals at all -> notEnoughTasks, as soon as any wall
            # time has elapsed for the rate estimator to measure over
            wait_until(
                lambda: ctl.violations,
                on_tick=ctl.control_step,
                message="starvation violation",
            )
            assert ctl.violations[0][1] == "notEnoughTasks"
        finally:
            farm.shutdown()

    def test_background_loop_runs(self):
        farm = ThreadFarm(square, initial_workers=1)
        ctl = ThreadFarmController(
            farm, MinThroughputContract(10.0), control_period=0.02
        ).start()
        try:
            # starvation must be detected by the loop itself, no manual steps
            wait_until(lambda: ctl.violations, message="loop-detected starvation")
            ctl.stop()
            assert ctl.violations
        finally:
            farm.shutdown()


class TestLatencyMonitoring:
    def test_snapshot_reports_latency(self):
        farm = ThreadFarm(slow_square, initial_workers=2, rate_window=30.0)
        try:
            for i in range(10):
                farm.submit(i)
            farm.drain_results(10, timeout=10.0)
            snap = farm.snapshot()
            assert snap.mean_latency > 0.0
            # each task takes >= 10ms of service
            assert snap.mean_latency >= 0.009
        finally:
            farm.shutdown()

    def test_latency_window_expires(self):
        farm = ThreadFarm(square, initial_workers=1, rate_window=0.05)
        try:
            farm.submit(1)
            farm.drain_results(1, timeout=5.0)
            # the sample ages out of the 50 ms window on its own clock
            wait_until(
                lambda: farm.snapshot().mean_latency == 0.0,
                message="latency sample to expire",
            )
        finally:
            farm.shutdown()


class TestControllerLatencyContract:
    def test_composite_contract_sets_all_thresholds(self):
        from repro.core.contracts import (
            CompositeContract,
            MaxLatencyContract,
            ThroughputRangeContract,
        )

        farm = ThreadFarm(square, initial_workers=1)
        try:
            ctl = ThreadFarmController(
                farm,
                CompositeContract(
                    [ThroughputRangeContract(2.0, 5.0), MaxLatencyContract(0.25)]
                ),
            )
            assert ctl.constants.FARM_LOW_PERF_LEVEL == 2.0
            assert ctl.constants.FARM_MAX_LATENCY == 0.25
            assert any(r.name == "CheckLatencyHigh" for r in ctl.engine.rules)
        finally:
            farm.shutdown()

    def test_latency_breach_grows_live_farm(self):
        from repro.core.contracts import MaxLatencyContract

        farm = ThreadFarm(slow_square, initial_workers=1, rate_window=30.0)
        ctl = ThreadFarmController(
            farm, MaxLatencyContract(0.02), control_period=0.05, max_workers=8
        )
        try:
            # one worker at ~10ms/task with a deep backlog: latency >> 20ms
            for i in range(80):
                farm.submit(i)
            wait_until(
                lambda: farm.num_workers > 1,
                on_tick=ctl.control_step,
                interval=0.02,
                message="latency breach to grow the farm",
            )
            assert any("addWorker" in a for _, a in ctl.actions)
        finally:
            farm.shutdown()
