"""Unit tests for the distributed farm: wire protocol, faults, telemetry.

The cross-backend invariants (no loss, exactly-once, monotone counts,
clean shutdown) live in ``test_backend_conformance.py``; this file
covers what is *specific* to the TCP substrate — the framing module,
the ``module:qualname`` function hand-off, remotely attached workers,
secured payloads on the wire, dead-lettering, error results, and the
``repro_dist_*`` telemetry surface.
"""

import asyncio
import importlib.util
import subprocess
import sys
import time

import pytest

from repro.obs.telemetry import Telemetry
from repro.runtime.dist_farm import DistFarm, fn_spec
from repro.runtime.dist_proto import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_payload,
    encode_frame,
    encode_payload,
    read_frame,
)
from repro.runtime.dist_worker import resolve_fn

from .waiting import wait_until


def dist_task(payload):
    """(work, value) -> value**2, with optional failure modes baked in."""
    work, value = payload
    if value == "boom":
        raise ValueError("task asked to fail")
    if value == "unserializable":
        return {1, 2, 3}  # a set cannot cross the JSON wire
    if work:
        time.sleep(work)
    return value * value


def quick_farm(**overrides):
    defaults = dict(
        initial_workers=2,
        heartbeat_period=0.05,
        heartbeat_timeout=0.5,
        supervise_period=0.02,
        backoff_base=0.02,
        backoff_cap=0.2,
        rate_window=0.5,
    )
    defaults.update(overrides)
    return DistFarm(dist_task, **defaults)


def roundtrip(frame_bytes):
    """Feed raw bytes through an asyncio StreamReader into read_frame."""

    async def go():
        reader = asyncio.StreamReader()
        if frame_bytes:
            reader.feed_data(frame_bytes)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(go())


class TestWireProtocol:
    def test_frame_roundtrip(self):
        msg = {"type": "task", "task_id": 7, "payload": [0.1, 42], "enc": False}
        assert roundtrip(encode_frame(msg)) == msg

    def test_eof_and_garbage_return_none(self):
        assert roundtrip(b"") is None
        assert roundtrip(b"\x00\x00") is None  # truncated header
        assert roundtrip(b"\x00\x00\x00\x05notjs") is None  # bad JSON body
        # a non-dict JSON body is protocol noise, not a frame
        import json

        body = json.dumps([1, 2]).encode()
        header = len(body).to_bytes(4, "big")
        assert roundtrip(header + body) is None

    def test_oversize_length_prefix_rejected(self):
        # rejected from the header alone — before the reader ever tries
        # to buffer (or allocate) the announced body — with a diagnosis
        # naming the limit, on both frame layouts
        header = (MAX_FRAME + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError, match="exceeds MAX_FRAME"):
            roundtrip(header + b"x")
        with pytest.raises(ValueError):
            encode_frame({"pad": "x" * (MAX_FRAME + 10)})

    def test_mismatched_protocol_version_refused_with_clear_error(self):
        farm = quick_farm(initial_workers=1)

        async def attach(proto):
            reader, writer = await asyncio.open_connection("127.0.0.1", farm.port)
            hello = {"type": "hello", "worker_id": -1}
            if proto is not None:
                hello["proto"] = proto
            writer.write(encode_frame(hello))
            reply = await read_frame(reader)
            writer.close()
            return reply

        try:
            for bad in (999, None):
                reply = asyncio.run(attach(bad))
                assert reply is not None and reply["type"] == "error"
                assert "protocol version mismatch" in reply["error"]
                assert str(PROTOCOL_VERSION) in reply["error"]
                assert reply["proto"] == PROTOCOL_VERSION
            # the refusals registered nobody beyond the spawned worker
            assert farm.num_workers == 1
            # a matching version is welcomed as usual
            reply = asyncio.run(attach(PROTOCOL_VERSION))
            assert reply is not None and reply["type"] == "welcome"
            assert reply["proto"] == PROTOCOL_VERSION
        finally:
            farm.shutdown()

    def test_secured_payload_roundtrip(self):
        payload = {"work": 0.1, "values": [1, 2, 3]}
        wire = encode_payload(payload, secured=True)
        assert wire != payload  # actually transformed
        assert isinstance(wire, str)  # base64 text, JSON-safe
        assert decode_payload(wire, secured=True) == payload
        # unsecured is pass-through
        assert encode_payload(payload, secured=False) is payload


class TestFnSpec:
    def test_roundtrips_module_level_callable(self):
        spec = fn_spec(dist_task)
        assert resolve_fn(spec) is dist_task

    def test_accepts_explicit_spec_string(self):
        assert fn_spec("pkg.mod:fn") == "pkg.mod:fn"
        with pytest.raises(ValueError):
            fn_spec("no-colon")

    def test_rejects_unimportable_callables(self):
        with pytest.raises(ValueError):
            fn_spec(lambda x: x)  # <locals> cannot be imported remotely

    def test_resolve_rejects_non_callable(self):
        with pytest.raises(TypeError):
            resolve_fn("time:altzone")


class TestRemoteAttach:
    def test_worker_started_by_hand_joins_the_farm(self):
        """The coordinator accepts workers it did not spawn — the
        distributed story: capacity can come from anywhere on the net."""
        farm = quick_farm(initial_workers=1)
        proc = None
        try:
            before = farm.num_workers
            proc = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.runtime.dist_worker",
                    "--host",
                    "127.0.0.1",
                    "--port",
                    str(farm.port),
                    "--fn",
                    fn_spec(dist_task),
                    "--heartbeat-period",
                    "0.05",
                ],
            )
            wait_until(
                lambda: farm.num_workers == before + 1,
                message="hand-started worker to attach",
            )
            total = 30
            for i in range(total):
                farm.submit((0.005, i))
            results = farm.drain_results(total, timeout=30.0)
            assert sorted(results) == [i * i for i in range(total)]
            # the attached worker genuinely served part of the stream
            attached = [w for w in farm.workers if w.process is None]
            assert attached and attached[0].reported_completed > 0
        finally:
            farm.shutdown()
            if proc is not None:
                proc.wait(10.0)

    def test_attach_beyond_max_workers_is_refused(self):
        farm = quick_farm(initial_workers=1, max_workers=1)
        proc = None
        try:
            proc = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.runtime.dist_worker",
                    "--host",
                    "127.0.0.1",
                    "--port",
                    str(farm.port),
                    "--fn",
                    fn_spec(dist_task),
                    "--connect-attempts",
                    "3",
                ],
            )
            # the coordinator closes the connection instead of welcoming
            assert proc.wait(30.0) != 0
            assert farm.num_workers == 1
        finally:
            farm.shutdown()
            if proc is not None and proc.poll() is None:
                proc.kill()


class TestCodecPinning:
    def test_env_var_pins_an_auto_session(self, monkeypatch):
        """``REPRO_DIST_CODEC`` forces the negotiated codec fleet-wide —
        the hook the CI msgpack conformance leg rides. Pinning to json is
        observable because spawned (trusted) workers would otherwise
        negotiate pickle."""
        monkeypatch.setenv("REPRO_DIST_CODEC", "json")
        farm = quick_farm(initial_workers=1)
        try:
            assert farm.codec == "json"
            farm.submit((0.0, 5))
            assert farm.drain_results(1, timeout=30.0) == [25]
            assert all(w.codec == "json" for w in farm.workers)
        finally:
            farm.shutdown()

    def test_explicit_codec_beats_the_env(self, monkeypatch):
        """The env var only resolves ``codec="auto"``; a call site that
        pinned a codec keeps it."""
        monkeypatch.setenv("REPRO_DIST_CODEC", "json")
        farm = quick_farm(initial_workers=1, codec="pickle")
        try:
            assert farm.codec == "pickle"
            farm.submit((0.0, 4))
            assert farm.drain_results(1, timeout=30.0) == [16]
            assert all(w.codec == "pickle" for w in farm.workers)
        finally:
            farm.shutdown()

    @pytest.mark.skipif(
        importlib.util.find_spec("msgpack") is None,
        reason="msgpack not installed (CI installs it via the codecs extra)",
    )
    def test_msgpack_session_end_to_end(self):
        farm = quick_farm(initial_workers=1, codec="msgpack")
        try:
            farm.submit((0.0, 6))
            assert farm.drain_results(1, timeout=30.0) == [36]
            assert all(w.codec == "msgpack" for w in farm.workers)
        finally:
            farm.shutdown()


class TestSecuredChannel:
    def test_secure_all_mid_stream_keeps_results_correct(self):
        farm = quick_farm()
        try:
            for i in range(10):
                farm.submit((0.0, i))
            farm.secure_all()
            for i in range(10, 20):
                farm.submit((0.0, i))
            results = farm.drain_results(20, timeout=30.0)
            assert sorted(results) == [i * i for i in range(20)]
            assert all(w.secured for w in farm.workers)
        finally:
            farm.shutdown()


class TestFaultEdges:
    def test_replay_budget_exhaustion_dead_letters(self):
        """max_attempts=1: the first crash a task is caught in consigns
        it to the dead-letter list instead of replaying forever."""
        farm = quick_farm(initial_workers=1, max_attempts=1)
        try:
            farm.submit((5.0, 1))
            farm.submit((5.0, 2))  # both fit the default dispatch window
            wait_until(
                lambda: any(w.outstanding for w in farm.workers),
                message="tasks in flight on the victim",
            )
            assert farm.drop_connection() is not None
            wait_until(
                lambda: len(farm.dead_letters) == 2,
                message="exhausted tasks to dead-letter",
            )
            assert sorted(d.payload[1] for d in farm.dead_letters) == [1, 2]
            assert all(d.attempts == 1 for d in farm.dead_letters)
            assert farm.completed == 0
        finally:
            farm.shutdown()

    def test_task_exception_surfaces_as_error_result(self):
        farm = quick_farm(initial_workers=1)
        try:
            farm.submit((0.0, "boom"))
            (result,) = farm.drain_results(1, timeout=30.0)
            assert isinstance(result, RuntimeError)
            assert "ValueError: task asked to fail" in str(result)
        finally:
            farm.shutdown()

    def test_unserializable_result_surfaces_as_error_result(self):
        """A value that cannot cross the JSON wire is an *error result*,
        not a lost task or a dead worker (pinned to the json codec: the
        pickle fast path would happily serialize a set)."""
        farm = quick_farm(initial_workers=1, codec="json")
        try:
            farm.submit((0.0, "unserializable"))
            farm.submit((0.0, 3))  # the worker must survive to serve this
            results = farm.drain_results(2, timeout=30.0)
            errors = [r for r in results if isinstance(r, RuntimeError)]
            values = [r for r in results if not isinstance(r, RuntimeError)]
            assert len(errors) == 1 and "TypeError" in str(errors[0])
            assert values == [9]
        finally:
            farm.shutdown()

    def test_retiring_worker_drains_window_before_exit(self):
        farm = quick_farm(initial_workers=2)
        try:
            total = 40
            for i in range(total):
                farm.submit((0.005, i))
            farm.remove_worker()
            results = farm.drain_results(total, timeout=30.0)
            assert sorted(results) == [i * i for i in range(total)]
            wait_until(
                lambda: farm.num_workers == 1,
                message="victim to retire after draining",
            )
            # a graceful retirement is not a crash
            assert not farm.crashes and not farm.dead_letters
        finally:
            farm.shutdown()


class TestDistTelemetry:
    def test_counters_and_spans_reach_the_registry(self):
        tel = Telemetry()
        farm = quick_farm(telemetry=tel)
        try:
            for i in range(20):
                farm.submit((0.01, i))
            wait_until(
                lambda: farm.snapshot().completed >= 5,
                message="stream in flight before the fault",
            )
            assert farm.drop_connection() is not None
            farm.drain_results(20, timeout=60.0)
            wait_until(
                lambda: "repro_dist_worker_crashes_total" in tel.metrics,
                message="crash counter to be registered",
            )
            crashes = tel.metrics.get("repro_dist_worker_crashes_total")
            assert crashes.labels(farm=farm.name).value >= 1
            replayed = tel.metrics.get("repro_dist_tasks_replayed_total")
            assert replayed is None or replayed.labels(farm=farm.name).value >= 0
            completed = tel.metrics.get("repro_dist_worker_completed_tasks")
            assert completed is not None and completed.samples()
            frames = tel.metrics.get("repro_dist_frames_total")
            assert frames is not None
            assert frames.labels(farm=farm.name, direction="rx").value > 0
        finally:
            farm.shutdown()
        spans = tel.spans.named("dist.worker", farm.name)
        assert spans, "every worker lifetime is a dist.worker span"
        assert any(s.attributes.get("outcome") == "crashed" for s in spans)
