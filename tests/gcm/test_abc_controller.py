"""Tests for the ABC controllers: monitoring, actuators, plan/commit."""

import pytest

from repro.gcm.abc_controller import ABCError, FarmABC, ProducerABC, StageABC
from repro.rules.beans import ManagerOperation
from repro.sim.engine import Simulator
from repro.sim.farm import SimFarm
from repro.sim.pipeline import SeqStage
from repro.sim.queues import Store
from repro.sim.resources import Domain, Node, ResourceManager, make_cluster, trusted_only
from repro.sim.workload import ConstantWork, TaskSource, finite_stream


def farm_setup(n_pool=6, setup_time=0.0):
    sim = Simulator()
    nodes = make_cluster(n_pool)
    rm = ResourceManager(nodes)
    emitter = Node("emitter")
    farm = SimFarm(sim, emitter_node=emitter, worker_setup_time=setup_time)
    abc = FarmABC(farm, rm)
    return sim, farm, rm, abc


class TestFarmABCMonitoring:
    def test_monitor_fields(self):
        sim, farm, rm, abc = farm_setup()
        abc.bootstrap(2)
        data = abc.monitor()
        assert data["num_workers"] == 2
        for key in (
            "arrival_rate",
            "departure_rate",
            "queue_variance",
            "utilization",
            "completed",
            "pending",
            "end_of_stream",
        ):
            assert key in data

    def test_monitor_none_during_blackout(self):
        sim, farm, rm, abc = farm_setup(setup_time=5.0)
        abc.bootstrap(1)
        assert abc.monitor() is None
        sim.run(until=6.0)
        assert abc.monitor() is not None

    def test_nodes_in_use_tracking(self):
        sim, farm, rm, abc = farm_setup()
        abc.bootstrap(3)
        assert len(abc.nodes_in_use) == 3
        abc.execute(ManagerOperation.REMOVE_EXECUTOR)
        assert len(abc.nodes_in_use) == 2


class TestFarmABCActuators:
    def test_add_executor(self):
        sim, farm, rm, abc = farm_setup()
        abc.bootstrap(1)
        assert abc.execute(ManagerOperation.ADD_EXECUTOR)
        assert farm.num_workers == 2
        assert rm.allocated_count == 2

    def test_add_executor_with_count(self):
        sim, farm, rm, abc = farm_setup()
        abc.bootstrap(1)
        assert abc.execute(ManagerOperation.ADD_EXECUTOR, {"count": 2})
        assert farm.num_workers == 3

    def test_add_executor_fails_without_resources(self):
        sim, farm, rm, abc = farm_setup(n_pool=1)
        abc.bootstrap(1)
        assert not abc.execute(ManagerOperation.ADD_EXECUTOR)
        assert farm.num_workers == 1

    def test_remove_executor_releases_node(self):
        sim, farm, rm, abc = farm_setup()
        abc.bootstrap(2)
        assert abc.execute(ManagerOperation.REMOVE_EXECUTOR)
        assert farm.num_workers == 1
        assert rm.allocated_count == 1

    def test_remove_last_executor_refused(self):
        sim, farm, rm, abc = farm_setup()
        abc.bootstrap(1)
        assert not abc.execute(ManagerOperation.REMOVE_EXECUTOR)

    def test_balance_load(self):
        sim, farm, rm, abc = farm_setup()
        abc.bootstrap(2)
        for t in finite_stream(10, ConstantWork(100.0)):
            farm.workers[0].queue.put_nowait(t)
        assert abc.execute(ManagerOperation.BALANCE_LOAD)
        lens = [len(w.queue) for w in farm.workers]
        assert max(lens) - min(lens) <= 1

    def test_secure_channel_all(self):
        sim, farm, rm, abc = farm_setup()
        abc.bootstrap(2)
        assert abc.execute(ManagerOperation.SECURE_CHANNEL)
        assert all(w.secured for w in farm.workers)

    def test_secure_channel_single_worker(self):
        sim, farm, rm, abc = farm_setup()
        abc.bootstrap(2)
        target = farm.workers[0]
        assert abc.execute(ManagerOperation.SECURE_CHANNEL, target)
        assert target.secured
        assert not farm.workers[1].secured

    def test_unknown_op_rejected(self):
        sim, farm, rm, abc = farm_setup()
        with pytest.raises(ABCError):
            abc.execute(ManagerOperation.SET_RATE, 1.0)

    def test_supported_operations(self):
        _, _, _, abc = farm_setup()
        ops = abc.supported_operations()
        assert ManagerOperation.ADD_EXECUTOR in ops
        assert abc.can_execute(ManagerOperation.BALANCE_LOAD)
        assert not abc.can_execute(ManagerOperation.SET_RATE)


class TestPlanCommitAbort:
    def test_plan_reserves_nodes(self):
        sim, farm, rm, abc = farm_setup()
        plan = abc.plan_add_workers(2)
        assert plan is not None
        assert len(plan.nodes) == 2
        assert rm.allocated_count == 2
        assert farm.num_workers == 0  # nothing instantiated yet

    def test_commit_instantiates(self):
        sim, farm, rm, abc = farm_setup()
        plan = abc.plan_add_workers(2)
        workers = abc.commit_plan(plan)
        assert len(workers) == 2
        assert farm.num_workers == 2
        assert plan.committed

    def test_abort_releases(self):
        sim, farm, rm, abc = farm_setup()
        plan = abc.plan_add_workers(2)
        abc.abort_plan(plan)
        assert rm.allocated_count == 0
        assert plan.aborted

    def test_double_commit_rejected(self):
        sim, farm, rm, abc = farm_setup()
        plan = abc.plan_add_workers(1)
        abc.commit_plan(plan)
        with pytest.raises(ABCError):
            abc.commit_plan(plan)
        with pytest.raises(ABCError):
            abc.abort_plan(plan)

    def test_plan_none_when_pool_exhausted(self):
        sim, farm, rm, abc = farm_setup(n_pool=1)
        abc.bootstrap(1)
        assert abc.plan_add_workers(1) is None

    def test_require_secure_applies_at_commit(self):
        sim, farm, rm, abc = farm_setup()
        plan = abc.plan_add_workers(2)
        plan.require_secure(plan.nodes[0])
        workers = abc.commit_plan(plan)
        secured = {w.node.name: w.secured for w in workers}
        assert secured[plan.nodes[0].name] is True
        assert secured[plan.nodes[1].name] is False

    def test_node_predicate_restricts_recruitment(self):
        sim = Simulator()
        lan = Domain("lan")
        wan = Domain("wan", trusted=False)
        rm = ResourceManager([Node("t", domain=lan), Node("u", domain=wan)])
        farm = SimFarm(sim, emitter_node=Node("e"), worker_setup_time=0.0)
        abc = FarmABC(farm, rm, node_predicate=trusted_only)
        plan = abc.plan_add_workers(1)
        assert plan.nodes[0].name == "t"
        abc.commit_plan(plan)
        assert abc.plan_add_workers(1) is None  # only untrusted left


class TestProducerABC:
    def _producer(self, max_rate=None):
        sim = Simulator()
        out = Store(sim)
        src = TaskSource(
            sim, out, rate=0.5, work_model=ConstantWork(1.0), total=100, max_rate=max_rate
        )
        return sim, src, ProducerABC(src)

    def test_monitor(self):
        sim, src, abc = self._producer()
        data = abc.monitor()
        assert data["rate"] == 0.5
        assert data["emitted"] == 0
        assert data["finished"] is False

    def test_set_rate(self):
        sim, src, abc = self._producer()
        assert abc.execute(ManagerOperation.SET_RATE, 2.0)
        assert src.rate == 2.0
        assert abc.execute(ManagerOperation.SET_RATE, {"rate": 3.0})
        assert src.rate == 3.0

    def test_set_rate_at_physical_limit_reports_failure(self):
        sim, src, abc = self._producer(max_rate=1.0)
        assert not abc.execute(ManagerOperation.SET_RATE, 5.0)
        assert src.rate == 1.0

    def test_bad_data_rejected(self):
        sim, src, abc = self._producer()
        with pytest.raises(ABCError):
            abc.execute(ManagerOperation.SET_RATE, "fast")

    def test_unsupported_op(self):
        sim, src, abc = self._producer()
        with pytest.raises(ABCError):
            abc.execute(ManagerOperation.ADD_EXECUTOR)


class TestStageABC:
    def test_monitor_only(self):
        sim = Simulator()
        stage = SeqStage(
            sim,
            name="s",
            node=Node("n"),
            input_store=Store(sim),
            output_store=None,
            service_work=1.0,
        )
        abc = StageABC(stage)
        data = abc.monitor()
        assert data["completed"] == 0
        assert abc.supported_operations() == frozenset()
        with pytest.raises(ABCError):
            abc.execute(ManagerOperation.BALANCE_LOAD)


class TestNodesPerExecutor:
    def test_validation(self):
        sim, farm, rm, _ = farm_setup()
        with pytest.raises(ABCError):
            FarmABC(farm, rm, nodes_per_executor=0)

    def test_plan_reserves_group_per_executor(self):
        sim, farm, rm, _ = farm_setup(n_pool=6)
        abc = FarmABC(farm, rm, nodes_per_executor=3)
        plan = abc.plan_add_workers(2)
        assert plan is not None
        assert len(plan.nodes) == 6

    def test_plan_fails_when_group_unavailable(self):
        sim, farm, rm, _ = farm_setup(n_pool=2)
        abc = FarmABC(farm, rm, nodes_per_executor=3)
        assert abc.plan_add_workers(1) is None
