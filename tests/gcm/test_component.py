"""Tests for components, interfaces and standard controllers."""

import pytest

from repro.gcm.component import (
    Component,
    ComponentError,
    CompositeComponent,
    LifecycleState,
)
from repro.gcm.controllers import (
    BindingController,
    ContentController,
    LifecycleController,
    install_standard_controllers,
)
from repro.gcm.interfaces import Binding, Interface, InterfaceError, Role


class TestInterfaces:
    def test_server_needs_implementation(self):
        with pytest.raises(InterfaceError):
            Interface("svc", Role.SERVER)

    def test_needs_name(self):
        with pytest.raises(InterfaceError):
            Interface("", Role.CLIENT)

    def test_invoke_server(self):
        itf = Interface("double", Role.SERVER, implementation=lambda x: 2 * x)
        assert itf.invoke(21) == 42

    def test_invoke_client_rejected(self):
        itf = Interface("need", Role.CLIENT)
        with pytest.raises(InterfaceError):
            itf.invoke()

    def test_binding_role_validation(self):
        client = Interface("c", Role.CLIENT)
        server = Interface("s", Role.SERVER, implementation=lambda: "ok")
        Binding(client, server)  # fine
        with pytest.raises(InterfaceError):
            Binding(server, server)
        with pytest.raises(InterfaceError):
            Binding(client, client)

    def test_binding_call_and_secure(self):
        client = Interface("c", Role.CLIENT)
        server = Interface("s", Role.SERVER, implementation=lambda: "ok")
        b = Binding(client, server)
        assert b.call() == "ok"
        assert not b.secured
        b.secure()
        assert b.secured


class TestComponent:
    def test_needs_name(self):
        with pytest.raises(ComponentError):
            Component("")

    def test_add_and_get_interface(self):
        c = Component("c")
        c.add_server_interface("svc", lambda: 1)
        c.add_client_interface("need")
        assert c.interface("svc").role is Role.SERVER
        assert c.interface("need").role is Role.CLIENT
        with pytest.raises(ComponentError):
            c.interface("missing")

    def test_duplicate_interface_rejected(self):
        c = Component("c")
        c.add_client_interface("x")
        with pytest.raises(ComponentError):
            c.add_client_interface("x")

    def test_interface_filters(self):
        c = Component("c")
        c.add_server_interface("svc", lambda: 1)
        c.add_client_interface("need")
        c.add_server_interface("ctl", lambda: 2, functional=False)
        assert len(c.interfaces(role=Role.SERVER)) == 2
        assert len(c.interfaces(functional=True)) == 2
        assert len(c.interfaces(role=Role.SERVER, functional=False)) == 1

    def test_controllers(self):
        c = Component("c")
        ctl = object()
        c.add_controller("x", ctl)
        assert c.controller("x") is ctl
        assert c.has_controller("x")
        with pytest.raises(ComponentError):
            c.add_controller("x", object())
        with pytest.raises(ComponentError):
            c.controller("missing")


class TestLifecycle:
    def test_start_stop(self):
        c = install_standard_controllers(Component("c"))
        lc = c.controller(LifecycleController.NAME)
        assert c.state is LifecycleState.STOPPED
        lc.start()
        assert c.started
        lc.stop()
        assert not c.started

    def test_start_is_idempotent(self):
        events = []

        class Spy(Component):
            def on_start(self):
                events.append("start")

        c = install_standard_controllers(Spy("c"))
        lc = c.controller(LifecycleController.NAME)
        lc.start()
        lc.start()
        assert events == ["start"]

    def test_recursive_start_children_first(self):
        order = []

        class Spy(Component):
            def on_start(self):
                order.append(self.name)

        class SpyComposite(CompositeComponent):
            def on_start(self):
                order.append(self.name)

        parent = install_standard_controllers(SpyComposite("parent"))
        child = Spy("child")
        parent.controller(ContentController.NAME).add(child)
        parent.controller(LifecycleController.NAME).start()
        assert order == ["child", "parent"]

    def test_recursive_stop_parent_first(self):
        order = []

        class Spy(Component):
            def on_stop(self):
                order.append(self.name)

        class SpyComposite(CompositeComponent):
            def on_stop(self):
                order.append(self.name)

        parent = install_standard_controllers(SpyComposite("parent"))
        child = Spy("child")
        parent.controller(ContentController.NAME).add(child)
        lc = parent.controller(LifecycleController.NAME)
        lc.start()
        lc.stop()
        assert order == ["parent", "child"]


class TestContentController:
    def _composite(self):
        comp = install_standard_controllers(CompositeComponent("comp"))
        return comp, comp.controller(ContentController.NAME)

    def test_requires_composite(self):
        with pytest.raises(ComponentError):
            ContentController(Component("c"))  # type: ignore[arg-type]

    def test_add_and_child_lookup(self):
        comp, cc = self._composite()
        child = Component("child")
        cc.add(child)
        assert comp.child("child") is child
        assert child.parent is comp

    def test_duplicate_child_rejected(self):
        comp, cc = self._composite()
        cc.add(Component("child"))
        with pytest.raises(ComponentError):
            cc.add(Component("child"))

    def test_child_cannot_have_two_parents(self):
        _, cc1 = self._composite()
        comp2 = install_standard_controllers(CompositeComponent("other"))
        cc2 = comp2.controller(ContentController.NAME)
        child = Component("child")
        cc1.add(child)
        with pytest.raises(ComponentError):
            cc2.add(child)

    def test_content_frozen_while_started_unless_live(self):
        comp, cc = self._composite()
        comp.controller(LifecycleController.NAME).start()
        with pytest.raises(ComponentError):
            cc.add(Component("late"))
        late = cc.add(Component("late"), live=True)
        assert late.started  # live-added child is started automatically

    def test_remove(self):
        comp, cc = self._composite()
        child = cc.add(Component("child"))
        cc.remove(child)
        assert child.parent is None
        with pytest.raises(ComponentError):
            comp.child("child")

    def test_remove_started_child_requires_live(self):
        comp, cc = self._composite()
        child = cc.add(Component("child"))
        comp.controller(LifecycleController.NAME).start()
        with pytest.raises(ComponentError):
            cc.remove(child)
        cc.remove(child, live=True)
        assert not child.started

    def test_remove_child_with_bindings_rejected(self):
        comp, cc = self._composite()
        a = cc.add(Component("a"))
        b = cc.add(Component("b"))
        need = a.add_client_interface("need")
        svc = b.add_server_interface("svc", lambda: 1)
        bc = comp.controller(BindingController.NAME)
        bc.bind(need, svc)
        with pytest.raises(ComponentError, match="binding"):
            cc.remove(b)


class TestBindingController:
    def _setup(self):
        comp = install_standard_controllers(CompositeComponent("comp"))
        cc = comp.controller(ContentController.NAME)
        a = cc.add(Component("a"))
        b = cc.add(Component("b"))
        need = a.add_client_interface("need")
        svc = b.add_server_interface("svc", lambda: "pong")
        return comp, comp.controller(BindingController.NAME), need, svc

    def test_bind_and_call(self):
        comp, bc, need, svc = self._setup()
        binding = bc.bind(need, svc)
        assert binding.call() == "pong"
        assert comp.binding_of(need) is binding

    def test_client_single_binding(self):
        comp, bc, need, svc = self._setup()
        bc.bind(need, svc)
        with pytest.raises(ComponentError):
            bc.bind(need, svc)

    def test_unbind(self):
        comp, bc, need, svc = self._setup()
        binding = bc.bind(need, svc)
        bc.unbind(binding)
        assert comp.binding_of(need) is None
        with pytest.raises(ComponentError):
            bc.unbind(binding)

    def test_secure_all_and_unsecured(self):
        comp, bc, need, svc = self._setup()
        binding = bc.bind(need, svc)
        assert bc.unsecured() == [binding]
        assert bc.secure_all() == 1
        assert bc.unsecured() == []
        assert bc.secure_all() == 0
