"""Tests for the rule engine: matching, agenda ordering, firing modes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rules.beans import ArrivalRateBean, DepartureRateBean, NumWorkerBean
from repro.rules.dsl import rule, value_ge, value_lt
from repro.rules.engine import (
    Activation,
    Condition,
    Rule,
    RuleEngine,
    RuleEngineError,
    WorkingMemory,
)


def noop(_activation):
    pass


class TestWorkingMemory:
    def test_insert_and_facts(self):
        wm = WorkingMemory()
        b = wm.insert(ArrivalRateBean(1.0))
        assert wm.facts() == [b]
        assert wm.facts(ArrivalRateBean) == [b]
        assert wm.facts(DepartureRateBean) == []

    def test_retract(self):
        wm = WorkingMemory()
        b = wm.insert(ArrivalRateBean(1.0))
        assert wm.retract(b)
        assert not wm.retract(b)
        assert len(wm) == 0

    def test_retract_type(self):
        wm = WorkingMemory()
        wm.insert(ArrivalRateBean(1.0))
        wm.insert(ArrivalRateBean(2.0))
        wm.insert(DepartureRateBean(3.0))
        assert wm.retract_type(ArrivalRateBean) == 2
        assert len(wm) == 1

    def test_replace_keeps_single_instance(self):
        wm = WorkingMemory()
        wm.insert(ArrivalRateBean(1.0))
        newer = wm.replace(ArrivalRateBean(2.0))
        assert wm.facts(ArrivalRateBean) == [newer]

    def test_first(self):
        wm = WorkingMemory()
        assert wm.first(ArrivalRateBean) is None
        a = wm.insert(ArrivalRateBean(1.0))
        wm.insert(ArrivalRateBean(2.0))
        assert wm.first(ArrivalRateBean) is a

    def test_contains_and_clear(self):
        wm = WorkingMemory()
        b = wm.insert(ArrivalRateBean(1.0))
        assert b in wm
        wm.clear()
        assert b not in wm


class TestRuleValidation:
    def test_needs_name(self):
        with pytest.raises(RuleEngineError):
            Rule("", [Condition(ArrivalRateBean)], noop)

    def test_needs_conditions(self):
        with pytest.raises(RuleEngineError):
            Rule("r", [], noop)

    def test_conditions_must_be_typed(self):
        with pytest.raises(RuleEngineError):
            Rule("r", ["not a condition"], noop)

    def test_duplicate_rule_name_rejected(self):
        eng = RuleEngine()
        eng.add_rule(rule("r").when(ArrivalRateBean).then(noop))
        with pytest.raises(RuleEngineError):
            eng.add_rule(rule("r").when(ArrivalRateBean).then(noop))


class TestMatching:
    def test_simple_predicate_match(self):
        eng = RuleEngine()
        fired = []
        eng.add_rule(
            rule("low")
            .when(ArrivalRateBean, value_lt(0.5), bind="a")
            .then(lambda act: fired.append(act["a"].value))
        )
        eng.memory.insert(ArrivalRateBean(0.3))
        assert eng.evaluate() == ["low"]
        assert fired == [0.3]

    def test_no_match_no_fire(self):
        eng = RuleEngine()
        eng.add_rule(rule("low").when(ArrivalRateBean, value_lt(0.5)).then(noop))
        eng.memory.insert(ArrivalRateBean(0.9))
        assert eng.evaluate() == []

    def test_conjunction_requires_all_conditions(self):
        eng = RuleEngine()
        eng.add_rule(
            rule("both")
            .when(ArrivalRateBean, value_ge(0.5))
            .when(DepartureRateBean, value_lt(0.5))
            .then(noop)
        )
        eng.memory.insert(ArrivalRateBean(0.9))
        assert eng.evaluate() == []
        eng.memory.insert(DepartureRateBean(0.2))
        assert eng.evaluate() == ["both"]

    def test_binds_first_matching_fact(self):
        eng = RuleEngine()
        got = []
        eng.add_rule(
            rule("r")
            .when(ArrivalRateBean, value_lt(1.0), bind="a")
            .then(lambda act: got.append(act["a"]))
        )
        first = eng.memory.insert(ArrivalRateBean(0.1))
        eng.memory.insert(ArrivalRateBean(0.2))
        eng.evaluate()
        assert got == [first]

    def test_not_exists_blocks_when_present(self):
        eng = RuleEngine()
        eng.add_rule(
            rule("quiet")
            .when(ArrivalRateBean)
            .when_not(DepartureRateBean, value_lt(0.1))
            .then(noop)
        )
        eng.memory.insert(ArrivalRateBean(1.0))
        assert eng.evaluate() == ["quiet"]
        eng.memory.insert(DepartureRateBean(0.05))
        assert eng.evaluate() == []

    def test_condition_without_predicate_matches_any(self):
        eng = RuleEngine()
        eng.add_rule(rule("any").when(ArrivalRateBean).then(noop))
        eng.memory.insert(ArrivalRateBean(123.0))
        assert eng.evaluate() == ["any"]

    def test_disabled_rule_does_not_fire(self):
        eng = RuleEngine()
        eng.add_rule(rule("r").when(ArrivalRateBean).then(noop))
        eng.memory.insert(ArrivalRateBean(1.0))
        eng.enable("r", False)
        assert eng.evaluate() == []
        eng.enable("r")
        assert eng.evaluate() == ["r"]

    def test_activation_contains_and_memory(self):
        eng = RuleEngine()
        seen = {}

        def action(act: Activation):
            seen["has_a"] = "a" in act
            seen["has_b"] = "b" in act
            seen["mem"] = act.memory is eng.memory

        eng.add_rule(rule("r").when(ArrivalRateBean, bind="a").then(action))
        eng.memory.insert(ArrivalRateBean(1.0))
        eng.evaluate()
        assert seen == {"has_a": True, "has_b": False, "mem": True}


class TestAgendaOrdering:
    def test_salience_orders_firing(self):
        eng = RuleEngine()
        order = []
        eng.add_rule(
            rule("low-prio").when(ArrivalRateBean).salience(1).then(lambda a: order.append("low"))
        )
        eng.add_rule(
            rule("high-prio").when(ArrivalRateBean).salience(10).then(lambda a: order.append("high"))
        )
        eng.memory.insert(ArrivalRateBean(1.0))
        eng.evaluate()
        assert order == ["high", "low"]

    def test_declaration_order_breaks_salience_ties(self):
        eng = RuleEngine()
        order = []
        for name in ("first", "second", "third"):
            eng.add_rule(
                rule(name).when(ArrivalRateBean).then(lambda a, n=name: order.append(n))
            )
        eng.memory.insert(ArrivalRateBean(1.0))
        eng.evaluate()
        assert order == ["first", "second", "third"]

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_agenda_is_sorted_by_salience(self, saliences):
        eng = RuleEngine()
        for i, s in enumerate(saliences):
            eng.add_rule(rule(f"r{i}").when(ArrivalRateBean).salience(s).then(noop))
        eng.memory.insert(ArrivalRateBean(1.0))
        agenda = eng.agenda()
        got = [a.rule.salience for a in agenda]
        assert got == sorted(saliences, reverse=True)


class TestFiringModes:
    def test_evaluate_is_single_pass(self):
        """A rule whose action enables another match does NOT re-fire
        within the same evaluate() call (periodic invocation model)."""
        eng = RuleEngine()
        fired = []

        def action(act):
            fired.append("a")
            act.memory.insert(DepartureRateBean(0.1))

        eng.add_rule(rule("a").when(ArrivalRateBean).then(action))
        eng.add_rule(rule("b").when(DepartureRateBean).then(lambda a: fired.append("b")))
        eng.memory.insert(ArrivalRateBean(1.0))
        eng.evaluate()
        assert fired == ["a"]
        eng.evaluate()
        assert fired == ["a", "a", "b"]

    def test_fire_until_quiescent_chains(self):
        eng = RuleEngine()
        fired = []

        def seed(act):
            fired.append("seed")
            act.memory.retract(act["a"])
            act.memory.insert(DepartureRateBean(0.1))

        def chained(act):
            fired.append("chained")
            act.memory.retract(act["d"])

        eng.add_rule(rule("seed").when(ArrivalRateBean, bind="a").then(seed))
        eng.add_rule(rule("chained").when(DepartureRateBean, bind="d").then(chained))
        eng.memory.insert(ArrivalRateBean(1.0))
        all_fired = eng.fire_until_quiescent()
        assert all_fired == ["seed", "chained"]

    def test_fire_until_quiescent_guards_against_livelock(self):
        eng = RuleEngine()
        eng.add_rule(rule("always").when(ArrivalRateBean).then(noop))
        eng.memory.insert(ArrivalRateBean(1.0))
        with pytest.raises(RuleEngineError, match="quiesce"):
            eng.fire_until_quiescent(max_cycles=5)

    def test_history_records_firings(self):
        eng = RuleEngine()
        eng.add_rule(rule("r").when(ArrivalRateBean, bind="x").then(noop))
        eng.memory.insert(ArrivalRateBean(1.0))
        eng.evaluate()
        eng.evaluate()
        assert eng.fired_names() == ["r", "r"]
        assert eng.history[0].bound == ("x",)

    def test_remove_rule(self):
        eng = RuleEngine()
        eng.add_rule(rule("r").when(ArrivalRateBean).then(noop))
        assert eng.remove_rule("r")
        assert not eng.remove_rule("r")
        eng.memory.insert(ArrivalRateBean(1.0))
        assert eng.evaluate() == []

    def test_rule_lookup(self):
        eng = RuleEngine()
        r = rule("r").when(ArrivalRateBean).then(noop)
        eng.add_rule(r)
        assert eng.rule("r") is r
        with pytest.raises(KeyError):
            eng.rule("missing")


class TestNumWorkerScenario:
    """Mini integration: the CheckRateLow/High pair with hysteresis."""

    def _engine(self, actions):
        LOW, HIGH, MAXW, MINW = 0.3, 0.7, 10, 1
        eng = RuleEngine()
        eng.add_rule(
            rule("CheckRateLow")
            .when(DepartureRateBean, value_lt(LOW), bind="dep")
            .when(ArrivalRateBean, value_ge(LOW), bind="arr")
            .when(NumWorkerBean, lambda b: b.value <= MAXW, bind="par")
            .then(lambda a: actions.append("add"))
        )
        eng.add_rule(
            rule("CheckRateHigh")
            .when(DepartureRateBean, lambda b: b.value > HIGH, bind="dep")
            .when(NumWorkerBean, lambda b: b.value > MINW, bind="par")
            .then(lambda a: actions.append("remove"))
        )
        return eng

    def _tick(self, eng, arrival, departure, workers):
        eng.memory.replace(ArrivalRateBean(arrival))
        eng.memory.replace(DepartureRateBean(departure))
        eng.memory.replace(NumWorkerBean(workers))
        return eng.evaluate()

    def test_underperformance_adds_worker(self):
        actions = []
        eng = self._engine(actions)
        self._tick(eng, arrival=0.5, departure=0.2, workers=2)
        assert actions == ["add"]

    def test_low_input_pressure_does_not_add(self):
        actions = []
        eng = self._engine(actions)
        self._tick(eng, arrival=0.1, departure=0.1, workers=2)
        assert actions == []

    def test_overperformance_removes_worker(self):
        actions = []
        eng = self._engine(actions)
        self._tick(eng, arrival=1.0, departure=0.9, workers=3)
        assert actions == ["remove"]

    def test_in_contract_band_is_stable(self):
        actions = []
        eng = self._engine(actions)
        self._tick(eng, arrival=0.5, departure=0.5, workers=3)
        assert actions == []

    def test_single_worker_never_removed(self):
        actions = []
        eng = self._engine(actions)
        self._tick(eng, arrival=1.0, departure=0.9, workers=1)
        assert actions == []
