"""Tests for working-memory beans and operation dispatch."""

import pytest

from repro.rules.beans import (
    ArrivalRateBean,
    Bean,
    ContractBean,
    DepartureRateBean,
    EndOfStreamBean,
    ManagerOperation,
    NumWorkerBean,
    QueueVarianceBean,
    RecordingSink,
    UtilizationBean,
    ViolationBean,
)


class TestBean:
    def test_value_stored(self):
        assert ArrivalRateBean(0.5).value == 0.5

    def test_fire_without_sink_raises(self):
        with pytest.raises(RuntimeError, match="no operation sink"):
            Bean(1.0).fire_operation(ManagerOperation.NOOP)

    def test_fire_dispatches_with_data(self):
        sink = RecordingSink()
        bean = ArrivalRateBean(0.2).bind_sink(sink)
        bean.set_data("notEnoughTasks")
        bean.fire_operation(ManagerOperation.RAISE_VIOLATION)
        assert sink.fired == [(ManagerOperation.RAISE_VIOLATION, "notEnoughTasks")]

    def test_data_cleared_after_fire(self):
        sink = RecordingSink()
        bean = Bean(1.0).bind_sink(sink)
        bean.set_data("x")
        bean.fire_operation(ManagerOperation.NOOP)
        bean.fire_operation(ManagerOperation.NOOP)
        assert sink.fired == [
            (ManagerOperation.NOOP, "x"),
            (ManagerOperation.NOOP, None),
        ]

    def test_multiple_operations_in_one_action(self):
        """Figure 5's CheckRateLow fires ADD_EXECUTOR then BALANCE_LOAD."""
        sink = RecordingSink()
        bean = DepartureRateBean(0.1).bind_sink(sink)
        bean.set_data("FARM_ADD_WORKERS")
        bean.fire_operation(ManagerOperation.ADD_EXECUTOR)
        bean.fire_operation(ManagerOperation.BALANCE_LOAD)
        assert sink.ops() == [
            ManagerOperation.ADD_EXECUTOR,
            ManagerOperation.BALANCE_LOAD,
        ]

    def test_repr_mentions_type_and_value(self):
        r = repr(NumWorkerBean(4))
        assert "NumWorkerBean" in r and "4" in r

    def test_bean_taxonomy(self):
        """All paper bean types are distinct Bean subclasses."""
        kinds = [
            ArrivalRateBean,
            DepartureRateBean,
            NumWorkerBean,
            QueueVarianceBean,
            UtilizationBean,
            ContractBean,
            ViolationBean,
            EndOfStreamBean,
        ]
        for k in kinds:
            assert issubclass(k, Bean)
        assert len(set(kinds)) == len(kinds)


class TestRecordingSink:
    def test_clear(self):
        sink = RecordingSink()
        Bean(1).bind_sink(sink).fire_operation(ManagerOperation.NOOP)
        sink.clear()
        assert sink.fired == []
