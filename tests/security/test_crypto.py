"""Tests for the toy cipher and its cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security.crypto import (
    CryptoCostModel,
    CryptoError,
    decrypt,
    encrypt,
    keystream_xor,
)

KEY = b"test-key"


class TestKeystream:
    def test_xor_is_involution(self):
        data = b"hello world" * 10
        once = keystream_xor(KEY, data)
        assert keystream_xor(KEY, once) == data

    def test_different_keys_differ(self):
        data = b"payload"
        assert keystream_xor(b"k1", data) != keystream_xor(b"k2", data)

    def test_empty_data(self):
        assert keystream_xor(KEY, b"") == b""

    def test_ciphertext_differs_from_plaintext(self):
        data = b"x" * 100
        assert keystream_xor(KEY, data) != data


class TestEncryptDecrypt:
    def test_roundtrip(self):
        msg = b"the quick brown fox"
        assert decrypt(KEY, encrypt(KEY, msg)) == msg

    def test_tampering_detected(self):
        blob = bytearray(encrypt(KEY, b"important"))
        blob[0] ^= 0xFF
        with pytest.raises(CryptoError, match="authentication"):
            decrypt(KEY, bytes(blob))

    def test_tag_tampering_detected(self):
        blob = bytearray(encrypt(KEY, b"important"))
        blob[-1] ^= 0xFF
        with pytest.raises(CryptoError):
            decrypt(KEY, bytes(blob))

    def test_wrong_key_rejected(self):
        blob = encrypt(KEY, b"secret")
        with pytest.raises(CryptoError):
            decrypt(b"other-key", blob)

    def test_too_short_message(self):
        with pytest.raises(CryptoError, match="short"):
            decrypt(KEY, b"tiny")

    @given(st.binary(min_size=0, max_size=2000))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, payload):
        assert decrypt(KEY, encrypt(KEY, payload)) == payload

    @given(st.binary(min_size=1, max_size=500))
    @settings(max_examples=30, deadline=None)
    def test_ciphertext_longer_by_tag(self, payload):
        assert len(encrypt(KEY, payload)) == len(payload) + 16


class TestCostModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            CryptoCostModel(factor=0.9)
        with pytest.raises(ValueError):
            CryptoCostModel(handshake=-1.0)

    def test_secured_time(self):
        m = CryptoCostModel(factor=2.0, handshake=0.01)
        assert m.secured_time(1.0) == pytest.approx(2.01)

    def test_overhead_fraction(self):
        m = CryptoCostModel(factor=1.3, handshake=0.0)
        assert m.overhead_fraction(1.0) == pytest.approx(0.3)
        assert m.overhead_fraction(0.0) == 0.0

    def test_calibrate_produces_sane_factor(self):
        m = CryptoCostModel.calibrate(payload_kb=16.0)
        assert 1.05 <= m.factor <= 5.0
        assert m.handshake >= 0.0
