"""Tests for the security manager: reactive securing and intent review."""

import pytest

from repro.core.contracts import MinThroughputContract, SecurityContract
from repro.core.events import Events
from repro.gcm.abc_controller import FarmABC
from repro.rules.beans import ManagerOperation
from repro.security.domains import SecurityPolicy
from repro.security.manager import SecurityABC, SecurityManager
from repro.sim.engine import Simulator
from repro.sim.farm import SimFarm
from repro.sim.network import Network
from repro.sim.resources import Domain, Node, ResourceManager
from repro.sim.workload import ConstantWork, finite_stream

LAN = Domain("lan", trusted=True)
WAN = Domain("wan", trusted=False)


def setup(sec_period=15.0):
    sim = Simulator()
    network = Network()
    rm = ResourceManager(
        [Node("t0", domain=LAN), Node("u0", domain=WAN), Node("u1", domain=WAN)]
    )
    farm = SimFarm(
        sim, emitter_node=Node("e", domain=LAN), network=network, worker_setup_time=0.0
    )
    fabc = FarmABC(farm, rm)
    policy = SecurityPolicy()
    sec_abc = SecurityABC([fabc], network, policy)
    mgr = SecurityManager("AM_sec", sim, sec_abc, control_period=sec_period)
    return sim, farm, fabc, sec_abc, mgr, network


class TestSecurityABC:
    def test_no_exposure_initially(self):
        sim, farm, fabc, sec_abc, mgr, net = setup()
        fabc.bootstrap(1)  # trusted node preferred
        assert sec_abc.exposed_workers() == []
        assert sec_abc.monitor()["insecure_untrusted_workers"] == 0

    def test_detects_exposed_worker(self):
        sim, farm, fabc, sec_abc, mgr, net = setup()
        fabc.bootstrap(2)  # t0 + u0 (unsecured!)
        exposed = sec_abc.exposed_workers()
        assert len(exposed) == 1
        assert exposed[0].node.name == "u0"

    def test_secure_channel_closes_exposure(self):
        sim, farm, fabc, sec_abc, mgr, net = setup()
        fabc.bootstrap(2)
        assert sec_abc.execute(ManagerOperation.SECURE_CHANNEL)
        assert sec_abc.exposed_workers() == []
        assert sec_abc.secured_actions == 1

    def test_unsupported_op(self):
        sim, farm, fabc, sec_abc, mgr, net = setup()
        with pytest.raises(ValueError):
            sec_abc.execute(ManagerOperation.ADD_EXECUTOR)


class TestSecurityManagerLoop:
    def test_requires_security_contract(self):
        sim, farm, fabc, sec_abc, mgr, net = setup()
        with pytest.raises(ValueError):
            mgr.assign_contract(MinThroughputContract(0.5))

    def test_reactively_secures_exposed_worker(self):
        sim, farm, fabc, sec_abc, mgr, net = setup(sec_period=15.0)
        mgr.assign_contract(SecurityContract())
        fabc.bootstrap(2)  # exposes u0
        sim.run(until=14.0)
        assert len(sec_abc.exposed_workers()) == 1  # window still open
        sim.run(until=16.0)
        assert sec_abc.exposed_workers() == []  # first tick closed it
        assert mgr.trace.count(Events.SECURE_WORKER) == 1

    def test_contract_satisfied_after_securing(self):
        sim, farm, fabc, sec_abc, mgr, net = setup()
        mgr.assign_contract(SecurityContract())
        fabc.bootstrap(2)
        sim.run(until=30.0)
        assert mgr.contract_satisfied() is True

    def test_leak_counter_in_monitor(self):
        sim, farm, fabc, sec_abc, mgr, net = setup()
        mgr.assign_contract(SecurityContract())
        fabc.bootstrap(3)  # t0, u0, u1 all unsecured except none
        for t in finite_stream(6, ConstantWork(0.1)):
            farm.submit(t)
        sim.run(until=5.0)
        data = sec_abc.monitor()
        assert data["leak_count"] > 0

    def test_trust_revocation_detected(self):
        """Revoking a domain's trust mid-run exposes its workers."""
        sim, farm, fabc, sec_abc, mgr, net = setup()
        mgr.assign_contract(SecurityContract())
        fabc.bootstrap(1)  # trusted t0 only
        sim.run(until=20.0)
        assert sec_abc.exposed_workers() == []
        sec_abc.policy.registry.set_trust("lan", False)
        assert len(sec_abc.exposed_workers()) == 1
        sim.run(until=40.0)  # next tick secures it
        assert sec_abc.exposed_workers() == []


class TestIntentReview:
    def test_amends_untrusted_nodes_only(self):
        sim, farm, fabc, sec_abc, mgr, net = setup()
        plan = fabc.plan_add_workers(3)  # t0, u0, u1
        assert mgr.review_intent(None, plan) is True
        secured = plan.secured
        assert secured.get("u0") and secured.get("u1")
        assert "t0" not in secured

    def test_never_vetoes(self):
        sim, farm, fabc, sec_abc, mgr, net = setup()
        plan = fabc.plan_add_workers(1)
        assert mgr.review_intent(None, plan) is True
