"""Tests for trust metadata and the channel-securing policy."""

from repro.security.domains import SecurityPolicy, TrustRegistry
from repro.sim.resources import Domain, Node

LAN = Domain("lan", trusted=True)
LAN2 = Domain("lan2", trusted=True)
WAN = Domain("wan", trusted=False)


class TestTrustRegistry:
    def test_defaults_to_domain_flag(self):
        reg = TrustRegistry()
        assert reg.is_trusted(LAN)
        assert not reg.is_trusted(WAN)

    def test_override_revokes_trust(self):
        reg = TrustRegistry()
        reg.set_trust("lan", False)
        assert not reg.is_trusted(LAN)

    def test_override_grants_trust(self):
        reg = TrustRegistry()
        reg.set_trust("wan", True)
        assert reg.is_trusted(WAN)

    def test_clear_restores_default(self):
        reg = TrustRegistry()
        reg.set_trust("lan", False)
        reg.clear("lan")
        assert reg.is_trusted(LAN)
        reg.clear("never-set")  # no-op

    def test_untrusted_names(self):
        reg = TrustRegistry()
        assert reg.untrusted_names([LAN, WAN, LAN2]) == {"wan"}


class TestSecurityPolicy:
    def test_same_node_never_needs_secure(self):
        p = SecurityPolicy()
        u = Node("u", domain=WAN)
        assert not p.needs_secure(u, u)

    def test_trusted_to_trusted_plain_ok(self):
        p = SecurityPolicy()
        assert not p.needs_secure(Node("a", domain=LAN), Node("b", domain=LAN2))

    def test_any_untrusted_endpoint_taints(self):
        p = SecurityPolicy()
        a = Node("a", domain=LAN)
        u = Node("u", domain=WAN)
        assert p.needs_secure(a, u)
        assert p.needs_secure(u, a)

    def test_registry_override_flows_through(self):
        p = SecurityPolicy()
        a = Node("a", domain=LAN)
        b = Node("b", domain=LAN2)
        assert not p.needs_secure(a, b)
        p.registry.set_trust("lan2", False)
        assert p.needs_secure(a, b)

    def test_worker_exposed(self):
        p = SecurityPolicy()
        emitter = Node("e", domain=LAN)
        worker = Node("w", domain=WAN)
        assert p.worker_exposed(emitter, worker, secured=False)
        assert not p.worker_exposed(emitter, worker, secured=True)
        assert not p.worker_exposed(emitter, Node("t", domain=LAN), secured=False)
