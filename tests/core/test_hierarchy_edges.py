"""Violation-propagation edge cases in the §3.1 manager hierarchy.

The happy path — contract down, violation up, re-contract — is covered
by ``test_manager.py``; the live farm-of-farms mirror lives in
``tests/runtime/test_sharded_farm.py``.  This file pins the edges the
sharded hierarchy leans on:

* a root with an **empty child set** is a degenerate-but-legal
  hierarchy: contracts assign, violations land unhandled at the root,
  and the root never goes passive (there is nobody to re-contract it);
* **duplicate violations raised within one control cycle** each reach
  the parent exactly once — aggregation must not dedup or drop them;
* a **child reporting after the parent swapped its contract** still
  delivers: the report was in flight when the swap happened (the
  paper's "a little bit after" network delay), and the new contract
  then reactivates the passive child.
"""

from repro.core.contracts import MinThroughputContract, ThroughputRangeContract
from repro.core.events import ViolationKind
from repro.core.hierarchy import (
    check_hierarchy,
    hierarchy_states,
    passive_managers,
    propagate_contract,
)
from repro.core.manager import AutonomicManager, ManagerState
from repro.sim.engine import Simulator


class TestEmptyChildSet:
    def test_degenerate_hierarchy_is_legal(self):
        sim = Simulator()
        root = AutonomicManager("root", sim, autostart=False)
        check_hierarchy(root)
        propagate_contract(root, MinThroughputContract(1.0))
        assert hierarchy_states(root) == {"root": "active"}
        assert root.descendants() == []

    def test_root_violation_stays_local_and_root_stays_active(self):
        sim = Simulator()
        root = AutonomicManager("root", sim, autostart=False)
        propagate_contract(root, MinThroughputContract(1.0))
        violation = root.raise_violation(ViolationKind.NO_LOCAL_PLAN)
        sim.run(until=10.0)
        # nobody above: the report lands in the root's own unhandled
        # list, and the root keeps retrying rather than deadlocking the
        # whole hierarchy in passive mode
        assert root.unhandled_violations == [violation]
        assert root.state is ManagerState.ACTIVE
        assert passive_managers(root) == []


class TestDuplicateViolationsInOneCycle:
    def test_each_duplicate_reaches_the_parent_exactly_once(self):
        sim = Simulator()
        parent = AutonomicManager("parent", sim, autostart=False)
        child = AutonomicManager(
            "child", sim, autostart=False, violation_delay=1.0
        )
        parent.add_child(child)
        propagate_contract(parent, ThroughputRangeContract(2.0, 8.0))
        child.assign_contract(ThroughputRangeContract(1.0, 4.0))

        # two identical reports raised back-to-back in the same cycle
        child.raise_violation(ViolationKind.NOT_ENOUGH_TASKS)
        child.raise_violation(ViolationKind.NOT_ENOUGH_TASKS)
        # the first fatal report already dropped the child to passive
        assert child.state is ManagerState.PASSIVE
        assert parent.unhandled_violations == []  # still in flight

        sim.run(until=5.0)
        kinds = [v.kind for v in parent.unhandled_violations]
        assert kinds == [
            ViolationKind.NOT_ENOUGH_TASKS,
            ViolationKind.NOT_ENOUGH_TASKS,
        ]
        assert all(v.source == "child" for v in parent.unhandled_violations)

    def test_warning_and_fatal_in_one_cycle_keep_their_severities(self):
        sim = Simulator()
        parent = AutonomicManager("parent", sim, autostart=False)
        child = AutonomicManager(
            "child", sim, autostart=False, violation_delay=1.0
        )
        parent.add_child(child)
        child.assign_contract(ThroughputRangeContract(1.0, 4.0))

        child.raise_violation(ViolationKind.TOO_MUCH_TASKS, severity="warning")
        assert child.state is ManagerState.ACTIVE  # warnings never demote
        child.raise_violation(ViolationKind.NO_LOCAL_PLAN)
        assert child.state is ManagerState.PASSIVE

        sim.run(until=5.0)
        received = [(v.kind, v.severity) for v in parent.unhandled_violations]
        assert received == [
            (ViolationKind.TOO_MUCH_TASKS, "warning"),
            (ViolationKind.NO_LOCAL_PLAN, "fatal"),
        ]


class TestReportAfterContractSwap:
    def test_in_flight_report_survives_the_parent_swap(self):
        """The child's report and the parent's re-contract cross on the
        wire: the delivery must still land, attributed to the child,
        and the swap must not resurrect the passive child by itself."""
        sim = Simulator()
        parent = AutonomicManager("parent", sim, autostart=False)
        child = AutonomicManager(
            "child", sim, autostart=False, violation_delay=2.0
        )
        parent.add_child(child)
        propagate_contract(parent, ThroughputRangeContract(2.0, 8.0))
        child.assign_contract(ThroughputRangeContract(1.0, 4.0))

        sim.schedule(0.0, child.raise_violation, ViolationKind.NOT_ENOUGH_TASKS)
        # the parent swaps its own contract while the report is in flight
        sim.schedule(1.0, parent.assign_contract, ThroughputRangeContract(3.0, 9.0))
        sim.run(until=1.5)
        assert parent.contract.low == 3.0
        assert parent.unhandled_violations == []  # still in flight
        assert child.state is ManagerState.PASSIVE

        sim.run(until=5.0)
        assert [v.kind for v in parent.unhandled_violations] == [
            ViolationKind.NOT_ENOUGH_TASKS
        ]
        # only a new contract for the *child* reactivates it
        assert child.state is ManagerState.PASSIVE
        child.assign_contract(ThroughputRangeContract(2.0, 5.0))
        assert child.state is ManagerState.ACTIVE
        assert passive_managers(parent) == []
