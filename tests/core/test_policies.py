"""Tests for the Figure 5 rule transliteration and the AM_A policy set."""

from repro.core.events import ViolationKind
from repro.core.policies import ManagersConstants, farm_rules
from repro.rules.beans import (
    ArrivalRateBean,
    DepartureRateBean,
    ManagerOperation,
    NumWorkerBean,
    QueueVarianceBean,
    RecordingSink,
)
from repro.rules.engine import RuleEngine


def make_engine(consts=None):
    consts = consts or ManagersConstants(low=0.3, high=0.7, max_workers=10)
    sink = RecordingSink()
    eng = RuleEngine(farm_rules(consts))
    return eng, sink, consts


def tick(eng, sink, *, arrival, departure, workers=3, variance=0.0):
    eng.memory.replace(ArrivalRateBean(arrival).bind_sink(sink))
    eng.memory.replace(DepartureRateBean(departure).bind_sink(sink))
    eng.memory.replace(NumWorkerBean(workers).bind_sink(sink))
    eng.memory.replace(QueueVarianceBean(variance).bind_sink(sink))
    return eng.evaluate()


class TestFig5Rules:
    """The five rules of Figure 5, precondition for precondition."""

    def test_rule_names_match_paper(self):
        eng, _, _ = make_engine()
        names = [r.name for r in eng.rules]
        assert names == [
            "CheckInterArrivalRateLow",
            "CheckInterArrivalRateHigh",
            "CheckRateLow",
            "CheckRateHigh",
            "CheckLoadBalance",
        ]

    def test_check_inter_arrival_rate_low(self):
        """arrival < LOW -> setData(notEnoughTasks); RAISE_VIOLATION."""
        eng, sink, _ = make_engine()
        fired = tick(eng, sink, arrival=0.1, departure=0.1)
        assert "CheckInterArrivalRateLow" in fired
        assert (
            ManagerOperation.RAISE_VIOLATION,
            ViolationKind.NOT_ENOUGH_TASKS,
        ) in sink.fired

    def test_check_inter_arrival_rate_high(self):
        """arrival > HIGH -> setData(tooMuchTasks); RAISE_VIOLATION."""
        eng, sink, _ = make_engine()
        fired = tick(eng, sink, arrival=0.9, departure=0.5)
        assert "CheckInterArrivalRateHigh" in fired
        assert (
            ManagerOperation.RAISE_VIOLATION,
            ViolationKind.TOO_MUCH_TASKS,
        ) in sink.fired

    def test_check_rate_low_fires_add_and_balance(self):
        """departure < LOW, arrival >= LOW, workers <= MAX ->
        ADD_EXECUTOR then BALANCE_LOAD (in that order, as in the file)."""
        eng, sink, consts = make_engine()
        fired = tick(eng, sink, arrival=0.5, departure=0.1, workers=3)
        assert "CheckRateLow" in fired
        ops = sink.ops()
        add_idx = ops.index(ManagerOperation.ADD_EXECUTOR)
        bal_idx = ops.index(ManagerOperation.BALANCE_LOAD)
        assert add_idx < bal_idx
        # the setData payload carries the worker batch size
        add_data = sink.fired[add_idx][1]
        assert add_data == {"count": consts.FARM_ADD_WORKERS}

    def test_check_rate_low_blocked_by_starvation(self):
        """arrival < LOW blocks CheckRateLow (no point adding workers)."""
        eng, sink, _ = make_engine()
        fired = tick(eng, sink, arrival=0.1, departure=0.1, workers=3)
        assert "CheckRateLow" not in fired
        assert ManagerOperation.ADD_EXECUTOR not in sink.ops()

    def test_check_rate_low_blocked_by_max_workers(self):
        eng, sink, _ = make_engine()
        fired = tick(eng, sink, arrival=0.5, departure=0.1, workers=11)
        assert "CheckRateLow" not in fired

    def test_check_rate_high_fires_remove_and_balance(self):
        eng, sink, _ = make_engine()
        fired = tick(eng, sink, arrival=0.5, departure=0.9, workers=4)
        assert "CheckRateHigh" in fired
        assert ManagerOperation.REMOVE_EXECUTOR in sink.ops()
        assert ManagerOperation.BALANCE_LOAD in sink.ops()

    def test_check_rate_high_blocked_at_min_workers(self):
        eng, sink, _ = make_engine()
        fired = tick(eng, sink, arrival=0.5, departure=0.9, workers=1)
        assert "CheckRateHigh" not in fired

    def test_check_load_balance(self):
        eng, sink, _ = make_engine()
        fired = tick(eng, sink, arrival=0.5, departure=0.5, variance=10.0)
        assert fired == ["CheckLoadBalance"]
        assert sink.ops() == [ManagerOperation.BALANCE_LOAD]

    def test_in_contract_band_no_rule_fires(self):
        eng, sink, _ = make_engine()
        fired = tick(eng, sink, arrival=0.5, departure=0.5, variance=1.0)
        assert fired == []
        assert sink.fired == []

    def test_violations_prioritised_over_reconfiguration(self):
        """Salience: arrival checks (20) fire before rate checks (10)."""
        eng, sink, _ = make_engine()
        fired = tick(eng, sink, arrival=0.9, departure=0.1, workers=3)
        assert fired.index("CheckInterArrivalRateHigh") < fired.index("CheckRateLow")

    def test_thresholds_update_live(self):
        """Mutating the constants re-tunes rules without rebuilding."""
        eng, sink, consts = make_engine()
        assert tick(eng, sink, arrival=0.5, departure=0.5) == []
        consts.FARM_LOW_PERF_LEVEL = 0.6  # contract tightened
        fired = tick(eng, sink, arrival=0.65, departure=0.5)
        assert "CheckRateLow" in fired


class TestManagersConstants:
    def test_defaults(self):
        c = ManagersConstants()
        assert c.FARM_MIN_NUM_WORKERS == 1
        assert c.FARM_ADD_WORKERS == 2
        assert c.FARM_LOW_PERF_LEVEL == 0.0
        assert c.FARM_HIGH_PERF_LEVEL == float("inf")

    def test_violation_payload_names(self):
        assert ManagersConstants.notEnoughTasks_VIOL == ViolationKind.NOT_ENOUGH_TASKS
        assert ManagersConstants.tooMuchTasks_VIOL == ViolationKind.TOO_MUCH_TASKS
