"""Tests for the latency SLA extension (MaxLatencyContract end to end)."""

import pytest

from repro.core.contracts import (
    CompositeContract,
    ContractError,
    MaxLatencyContract,
    ThroughputRangeContract,
)
from repro.core.skeleton_manager import FarmManager
from repro.gcm.abc_controller import FarmABC
from repro.sim.engine import Simulator
from repro.sim.farm import SimFarm
from repro.sim.resources import Node, ResourceManager, make_cluster
from repro.sim.workload import ConstantWork, TaskSource, finite_stream


class TestMaxLatencyContract:
    def test_validation(self):
        with pytest.raises(ContractError):
            MaxLatencyContract(0.0)

    def test_check(self):
        c = MaxLatencyContract(5.0)
        assert c.check({"mean_latency": 4.0}) is True
        assert c.check({"mean_latency": 6.0}) is False
        assert c.check({"mean_latency": 0.0}) is None  # no completions yet
        assert c.check({}) is None

    def test_satisfaction(self):
        c = MaxLatencyContract(5.0)
        assert c.satisfaction({"mean_latency": 5.0}) == pytest.approx(1.0)
        assert c.satisfaction({"mean_latency": 10.0}) == pytest.approx(0.5)
        assert c.satisfaction({"mean_latency": 1.0}) == pytest.approx(1.0)


class TestFarmLatencyMonitoring:
    def test_snapshot_reports_windowed_mean(self):
        sim = Simulator()
        farm = SimFarm(sim, emitter_node=Node("e"), worker_setup_time=0.0, rate_window=50.0)
        farm.add_worker(Node("w"))
        for t in finite_stream(4, ConstantWork(2.0)):
            farm.submit(t)
        sim.run()
        snap = farm.force_snapshot()
        # sequential service: latencies 2, 4, 6, 8 -> mean 5
        assert snap.mean_latency == pytest.approx(5.0, rel=0.05)

    def test_latencies_expire_outside_window(self):
        sim = Simulator()
        farm = SimFarm(sim, emitter_node=Node("e"), worker_setup_time=0.0, rate_window=10.0)
        farm.add_worker(Node("w"))
        farm.submit(finite_stream(1, ConstantWork(1.0))[0])
        sim.run(until=50.0)
        assert farm.force_snapshot().mean_latency == 0.0

    def test_abc_exposes_mean_latency(self):
        sim = Simulator()
        rm = ResourceManager(make_cluster(2))
        farm = SimFarm(sim, emitter_node=Node("e"), worker_setup_time=0.0)
        abc = FarmABC(farm, rm)
        abc.bootstrap(1)
        assert "mean_latency" in abc.monitor()


class TestLatencyDrivenGrowth:
    def _manager(self, contract, pool=12):
        sim = Simulator()
        rm = ResourceManager(make_cluster(pool))
        farm = SimFarm(
            sim, emitter_node=Node("e"), worker_setup_time=2.0, rate_window=20.0
        )
        abc = FarmABC(farm, rm)
        abc.bootstrap(1)
        mgr = FarmManager("AM", sim, abc, control_period=10.0, manage_workers=False)
        mgr.assign_contract(contract)
        return sim, farm, mgr

    def test_contract_sets_latency_threshold(self):
        _, _, mgr = self._manager(MaxLatencyContract(8.0))
        assert mgr.constants.FARM_MAX_LATENCY == 8.0

    def test_composite_contract_sets_both_thresholds(self):
        _, _, mgr = self._manager(
            CompositeContract([ThroughputRangeContract(0.3, 0.7), MaxLatencyContract(8.0)])
        )
        assert mgr.constants.FARM_LOW_PERF_LEVEL == 0.3
        assert mgr.constants.FARM_MAX_LATENCY == 8.0

    def test_latency_breach_grows_farm(self):
        """Queueing delay beyond the bound triggers CheckLatencyHigh even
        when no throughput contract is in force."""
        sim, farm, mgr = self._manager(MaxLatencyContract(6.0))
        # one worker at 0.5 t/s vs arrivals at 1/s: queues (and thus
        # latency) grow without bound until workers are added
        TaskSource(sim, farm.input, rate=1.0, work_model=ConstantWork(2.0))
        sim.run(until=300.0)
        assert farm.num_workers > 1
        assert mgr.trace.count("addWorker") >= 1
        snap = farm.force_snapshot()
        assert snap.mean_latency <= 6.0 * 1.5  # recovered to near the bound

    def test_no_breach_no_growth(self):
        sim, farm, mgr = self._manager(MaxLatencyContract(60.0))
        TaskSource(sim, farm.input, rate=0.3, work_model=ConstantWork(2.0))
        sim.run(until=200.0)
        assert farm.num_workers == 1
        assert mgr.trace.count("addWorker") == 0

    def test_rule_set_contains_latency_extension(self):
        _, _, mgr = self._manager(MaxLatencyContract(5.0))
        names = [r.name for r in mgr.engine.rules]
        assert "CheckLatencyHigh" in names
        # Figure 5's five rules still present and first
        assert names[:5] == [
            "CheckInterArrivalRateLow",
            "CheckInterArrivalRateHigh",
            "CheckRateLow",
            "CheckRateHigh",
            "CheckLoadBalance",
        ]
