"""Tests for the GM, priorities and the two-phase intent protocol."""

from repro.core.behavioural import build_farm_bs
from repro.core.contracts import SecurityContract
from repro.core.manager import AutonomicManager
from repro.core.multiconcern import (
    ConcernReview,
    CoordinationMode,
    GeneralManager,
)
from repro.rules.beans import ManagerOperation
from repro.security.domains import SecurityPolicy
from repro.security.manager import SecurityABC, SecurityManager
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.resources import Domain, Node, ResourceManager
from repro.sim.workload import ConstantWork, TaskSource

LAN = Domain("lan", trusted=True)
WAN = Domain("wan", trusted=False)


def setup(mode=CoordinationMode.TWO_PHASE, trusted=1, untrusted=4):
    sim = Simulator()
    network = Network()
    nodes = [Node(f"t{i}", domain=LAN) for i in range(trusted)] + [
        Node(f"u{i}", domain=WAN) for i in range(untrusted)
    ]
    rm = ResourceManager(nodes)
    bs = build_farm_bs(
        sim,
        rm,
        worker_work=5.0,
        initial_degree=trusted,
        worker_setup_time=0.0,
        network=network,
        spawn_worker_managers=False,
        emitter_node=Node("frontend", domain=LAN),
    )
    policy = SecurityPolicy()
    sec_abc = SecurityABC([bs.abc], network, policy)
    sec = SecurityManager("AM_sec", sim, sec_abc, control_period=15.0)
    sec.assign_contract(SecurityContract())
    gm = GeneralManager(mode=mode)
    gm.register(sec)
    gm.register(bs.manager, priority=0)
    return sim, bs, sec, gm, network, rm


class TestRegistration:
    def test_boolean_concern_gets_priority(self):
        sim, bs, sec, gm, *_ = setup()
        assert gm.managers[0] is sec  # security reviews first

    def test_coordinator_installed(self):
        sim, bs, sec, gm, *_ = setup()
        assert bs.manager.coordinator is gm
        assert sec.coordinator is gm

    def test_managers_of(self):
        sim, bs, sec, gm, *_ = setup()
        assert gm.managers_of("security") == [sec]
        assert gm.managers_of("performance") == [bs.manager]

    def test_explicit_priority_override(self):
        gm = GeneralManager()
        sim = Simulator()
        a = AutonomicManager("a", sim, autostart=False)
        b = AutonomicManager("b", sim, autostart=False)
        gm.register(a, priority=1)
        gm.register(b, priority=5)
        assert gm.managers == [b, a]


class TestTwoPhaseProtocol:
    def test_untrusted_plan_amended_to_secure(self):
        sim, bs, sec, gm, network, rm = setup()
        ok = gm.execute_intent(
            bs.manager, ManagerOperation.ADD_EXECUTOR, {"count": 2}
        )
        assert ok
        new_workers = [w for w in bs.farm.workers if not w.node.trusted]
        assert len(new_workers) == 2
        assert all(w.secured for w in new_workers)
        assert gm.committed_intents()
        assert gm.intents[-1].amendments == 1

    def test_trusted_plan_not_amended(self):
        sim, bs, sec, gm, network, rm = setup(trusted=3, untrusted=0)
        # one trusted node left after bootstrap? bootstrap used all 3;
        # release one to make room
        rm.release(rm.get("t2"))
        bs.farm.remove_worker()
        ok = gm.execute_intent(bs.manager, ManagerOperation.ADD_EXECUTOR, {"count": 1})
        assert ok
        assert gm.intents[-1].amendments == 0

    def test_no_plan_when_pool_empty(self):
        sim, bs, sec, gm, network, rm = setup(trusted=1, untrusted=0)
        ok = gm.execute_intent(bs.manager, ManagerOperation.ADD_EXECUTOR, {"count": 1})
        assert not ok
        assert gm.intents[-1].outcome == "no-plan"

    def test_veto_aborts_and_releases(self):
        sim, bs, sec, gm, network, rm = setup()

        class Veto(AutonomicManager, ConcernReview):
            def review_intent(self, originator, plan):
                return False

        veto = Veto("AM_veto", sim, autostart=False)
        gm.register(veto, priority=100)
        allocated_before = rm.allocated_count
        ok = gm.execute_intent(bs.manager, ManagerOperation.ADD_EXECUTOR, {"count": 1})
        assert not ok
        assert rm.allocated_count == allocated_before  # reservation released
        assert gm.vetoed_intents()

    def test_non_add_operations_pass_through(self):
        sim, bs, sec, gm, network, rm = setup()
        ok = gm.execute_intent(bs.manager, ManagerOperation.BALANCE_LOAD, None)
        assert ok  # executed directly on the ABC

    def test_originator_not_asked_to_review_itself(self):
        sim, bs, sec, gm, network, rm = setup()
        gm.execute_intent(bs.manager, ManagerOperation.ADD_EXECUTOR, {"count": 1})
        assert bs.manager.name not in gm.intents[-1].reviewers
        assert sec.name in gm.intents[-1].reviewers


class TestNaiveMode:
    def test_commits_without_review(self):
        sim, bs, sec, gm, network, rm = setup(mode=CoordinationMode.NAIVE)
        ok = gm.execute_intent(bs.manager, ManagerOperation.ADD_EXECUTOR, {"count": 1})
        assert ok
        new_worker = bs.farm.workers[-1]
        assert not new_worker.node.trusted
        assert not new_worker.secured  # the unsafe window is open
        assert gm.intents[-1].reviewers == ()

    def test_naive_leaks_until_security_tick(self):
        sim, bs, sec, gm, network, rm = setup(mode=CoordinationMode.NAIVE)
        gm.execute_intent(bs.manager, ManagerOperation.ADD_EXECUTOR, {"count": 1})
        TaskSource(sim, bs.farm.input, rate=2.0, work_model=ConstantWork(1.0))
        sim.run(until=14.9)  # before the security manager's first tick
        assert network.leak_count > 0
        sim.run(until=30.0)  # security tick at t=15 secures the worker
        leaks_at_tick = network.leak_count
        sim.run(until=100.0)
        # a couple of straggler results from pre-securing tasks may still
        # leak, but the flow must be stanched
        assert network.leak_count <= leaks_at_tick + 2

    def test_two_phase_never_leaks(self):
        sim, bs, sec, gm, network, rm = setup(mode=CoordinationMode.TWO_PHASE)
        gm.execute_intent(bs.manager, ManagerOperation.ADD_EXECUTOR, {"count": 2})
        TaskSource(sim, bs.farm.input, rate=2.0, work_model=ConstantWork(1.0))
        sim.run(until=120.0)
        assert network.leak_count == 0


class TestIntentAudit:
    def test_records_have_metadata(self):
        sim, bs, sec, gm, network, rm = setup()
        gm.execute_intent(bs.manager, ManagerOperation.ADD_EXECUTOR, {"count": 1})
        rec = gm.intents[-1]
        assert rec.originator == bs.manager.name
        assert rec.operation == "add_executor"
        assert rec.outcome == "committed"

    def test_gm_trace_marks_reviews(self):
        sim, bs, sec, gm, network, rm = setup()
        gm.execute_intent(bs.manager, ManagerOperation.ADD_EXECUTOR, {"count": 1})
        assert gm.trace.count("intentReview") == 1
