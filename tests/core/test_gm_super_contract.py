"""Tests for the GM's super-contract derivation and combined monitoring."""

import pytest

from repro.core.contracts import (
    MinThroughputContract,
    SecurityContract,
    WeightedCompositeContract,
)
from repro.core.manager import AutonomicManager, ManagerError
from repro.core.multiconcern import GeneralManager
from repro.sim.engine import Simulator


def make_gm():
    sim = Simulator()
    gm = GeneralManager()
    perf = AutonomicManager("AM_perf", sim, concern="performance", autostart=False)
    sec = AutonomicManager("AM_sec", sim, concern="security", autostart=False)
    gm.register(sec)
    gm.register(perf, priority=0)
    return sim, gm, perf, sec


class TestSuperContractDerivation:
    def test_requires_contracts(self):
        _, gm, perf, sec = make_gm()
        with pytest.raises(ManagerError):
            gm.super_contract()

    def test_assembles_all_held_contracts(self):
        _, gm, perf, sec = make_gm()
        perf.assign_contract(MinThroughputContract(0.6))
        sec.assign_contract(SecurityContract())
        sc = gm.super_contract()
        assert isinstance(sc, WeightedCompositeContract)
        assert len(sc.parts) == 2

    def test_partial_contracts_ok(self):
        _, gm, perf, sec = make_gm()
        perf.assign_contract(MinThroughputContract(0.6))
        sc = gm.super_contract()
        assert len(sc.parts) == 1

    def test_custom_weights(self):
        _, gm, perf, sec = make_gm()
        perf.assign_contract(MinThroughputContract(0.6))
        sec.assign_contract(SecurityContract())
        sc = gm.super_contract(weights=[1.0, 3.0])
        assert sc.weights == pytest.approx([0.25, 0.75])


class TestCombinedMonitor:
    def test_merges_samples(self):
        _, gm, perf, sec = make_gm()
        sec.last_monitor = {"leak_count": 0, "insecure_untrusted_workers": 0}
        perf.last_monitor = {"departure_rate": 0.8}
        merged = gm.combined_monitor()
        assert merged["departure_rate"] == 0.8
        assert merged["leak_count"] == 0

    def test_priority_wins_key_collisions(self):
        _, gm, perf, sec = make_gm()
        sec.last_monitor = {"shared": "from-sec"}
        perf.last_monitor = {"shared": "from-perf"}
        assert gm.combined_monitor()["shared"] == "from-sec"

    def test_empty_until_monitored(self):
        _, gm, perf, sec = make_gm()
        assert gm.combined_monitor() == {}


class TestSuperContractScore:
    def _scored_gm(self, rate, leaks):
        _, gm, perf, sec = make_gm()
        perf.assign_contract(MinThroughputContract(0.6))
        sec.assign_contract(SecurityContract())
        perf.last_monitor = {"departure_rate": rate}
        sec.last_monitor = {"leak_count": leaks, "insecure_untrusted_workers": 0}
        return gm

    def test_all_good_scores_one(self):
        gm = self._scored_gm(rate=0.8, leaks=0)
        assert gm.super_contract_score() == pytest.approx(1.0)

    def test_security_breach_zeroes(self):
        gm = self._scored_gm(rate=0.8, leaks=3)
        assert gm.super_contract_score() == 0.0

    def test_perf_degradation_scales_linearly(self):
        gm = self._scored_gm(rate=0.3, leaks=0)
        # sec part satisfied (weight 0.5) + perf at 0.5 satisfaction
        assert gm.super_contract_score() == pytest.approx(0.75)
