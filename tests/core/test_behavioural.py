"""Tests for BS assembly and the hierarchy utilities."""

import pytest

from repro.core.behavioural import (
    AM_CONTROLLER,
    build_farm_bs,
    build_three_stage_pipeline,
)
from repro.core.contracts import MinThroughputContract, ThroughputRangeContract
from repro.core.hierarchy import (
    check_hierarchy,
    format_hierarchy,
    hierarchy_states,
    managers_preorder,
    passive_managers,
    propagate_contract,
)
from repro.core.manager import AutonomicManager, ManagerError
from repro.gcm.abc_controller import AutonomicBehaviourController
from repro.skeletons.ast import Farm, Pipe
from repro.sim.engine import Simulator
from repro.sim.resources import ResourceManager, make_cluster
from repro.sim.workload import ConstantWork, TaskSource


class TestBuildFarmBS:
    def _build(self, **kwargs):
        sim = Simulator()
        rm = ResourceManager(make_cluster(8))
        bs = build_farm_bs(
            sim, rm, worker_work=5.0, initial_degree=2, worker_setup_time=0.0, **kwargs
        )
        return sim, rm, bs

    def test_mechanism_bootstrapped(self):
        sim, rm, bs = self._build()
        assert bs.farm.num_workers == 2
        assert rm.allocated_count == 2

    def test_pattern_reflects_configuration(self):
        sim, rm, bs = self._build()
        assert isinstance(bs.pattern, Farm)
        assert bs.pattern.degree == 2
        assert bs.pattern.worker.work == 5.0

    def test_component_membrane(self):
        sim, rm, bs = self._build()
        assert bs.component.controller(AM_CONTROLLER) is bs.manager
        assert bs.component.controller(AutonomicBehaviourController.NAME) is bs.abc
        assert bs.component.has_controller("lifecycle-controller")

    def test_contract_interface_on_component(self):
        sim, rm, bs = self._build()
        itf = bs.component.interface("contract")
        itf.invoke(MinThroughputContract(0.5))
        assert bs.manager.contract == MinThroughputContract(0.5)

    def test_worker_managers_spawned_when_asked(self):
        sim, rm, bs = self._build(spawn_worker_managers=True)
        assert len(bs.manager.children) == 2

    def test_no_worker_managers_by_flag(self):
        sim, rm, bs = self._build(spawn_worker_managers=False)
        assert bs.manager.children == []

    def test_end_to_end_contract_enforcement(self):
        sim, rm, bs = self._build()
        TaskSource(sim, bs.farm.input, rate=0.9, work_model=ConstantWork(5.0))
        bs.assign_contract(MinThroughputContract(0.6))
        sim.run(until=400.0)
        assert bs.farm.force_snapshot().departure_rate >= 0.55


class TestBuildPipeline:
    def _build(self, **kwargs):
        sim = Simulator()
        rm = ResourceManager(make_cluster(12))
        defaults = dict(
            work_model=ConstantWork(10.0),
            worker_work=10.0,
            initial_rate=0.3,
            total_tasks=50,
            initial_degree=3,
            worker_setup_time=2.0,
        )
        defaults.update(kwargs)
        app = build_three_stage_pipeline(sim, rm, **defaults)
        return sim, app

    def test_manager_hierarchy_shape(self):
        sim, app = self._build()
        assert [c.name for c in app.am_a.children] == ["AM_P", "AM_F", "AM_C"]
        check_hierarchy(app.am_a)

    def test_pattern_is_paper_tree(self):
        sim, app = self._build()
        assert isinstance(app.pattern, Pipe)
        assert len(app.pattern.stages) == 3
        assert isinstance(app.pattern.stages[1], Farm)
        assert app.pattern.stages[1].degree == 3

    def test_cores_in_use_initial(self):
        sim, app = self._build()
        assert app.cores_in_use() == 5  # producer + consumer + 3 workers

    def test_tasks_flow_end_to_end(self):
        sim, app = self._build()
        app.assign_contract(ThroughputRangeContract(0.2, 2.0))
        # the manager control loops run forever; bound the run instead of
        # draining the event queue
        sim.run(until=600.0)
        assert app.delivered == 50
        assert len(app.pipeline.sink) == 50

    def test_end_of_stream_reaches_both_farm_and_am_a(self):
        sim, app = self._build(total_tasks=5, initial_rate=1.0)
        app.assign_contract(ThroughputRangeContract(0.2, 2.0))
        sim.run(until=60.0)
        assert app.farm.end_of_stream
        assert app.am_a.stream_ended


class TestHierarchyUtilities:
    def _tree(self):
        sim = Simulator()
        root = AutonomicManager("root", sim, autostart=False)
        a = AutonomicManager("a", sim, autostart=False)
        b = AutonomicManager("b", sim, autostart=False)
        leaf = AutonomicManager("leaf", sim, autostart=False)
        root.add_child(a)
        root.add_child(b)
        a.add_child(leaf)
        return sim, root, a, b, leaf

    def test_preorder(self):
        _, root, a, b, leaf = self._tree()
        assert [m.name for m in managers_preorder(root)] == ["root", "a", "leaf", "b"]

    def test_states_snapshot(self):
        _, root, a, b, leaf = self._tree()
        from repro.core.contracts import BestEffortContract

        a.assign_contract(BestEffortContract())
        states = hierarchy_states(root)
        assert states["a"] == "active"
        assert states["root"] == "passive"

    def test_passive_managers(self):
        _, root, a, b, leaf = self._tree()
        from repro.core.contracts import BestEffortContract

        for m in (root, a, b, leaf):
            m.assign_contract(BestEffortContract())
        b.raise_violation("x")
        assert passive_managers(root) == [b]

    def test_propagate_contract_alias(self):
        _, root, *_ = self._tree()
        from repro.core.contracts import BestEffortContract

        propagate_contract(root, BestEffortContract())
        assert root.active

    def test_check_hierarchy_accepts_valid(self):
        _, root, *_ = self._tree()
        check_hierarchy(root)

    def test_check_hierarchy_rejects_rooted_subtree(self):
        _, root, a, *_ = self._tree()
        with pytest.raises(ManagerError):
            check_hierarchy(a)  # a has a parent

    def test_check_hierarchy_rejects_bad_backlink(self):
        _, root, a, b, leaf = self._tree()
        leaf.parent = b  # corrupt the backlink
        with pytest.raises(ManagerError):
            check_hierarchy(root)

    def test_check_hierarchy_rejects_duplicates(self):
        sim = Simulator()
        root = AutonomicManager("root", sim, autostart=False)
        shared = AutonomicManager("shared", sim, autostart=False)
        root.add_child(shared)
        root.children.append(shared)  # bypass add_child's guard
        with pytest.raises(ManagerError):
            check_hierarchy(root)

    def test_format_hierarchy(self):
        _, root, a, b, leaf = self._tree()
        from repro.core.contracts import BestEffortContract

        a.assign_contract(BestEffortContract())
        text = format_hierarchy(root)
        assert "root" in text and "leaf" in text
        assert "best effort" in text
        assert "(no contract)" in text


class TestPipelineComponentStructure:
    """The Figure 2 (right) GCM shape: composite + stage children + bindings."""

    def _app(self):
        sim = Simulator()
        rm = ResourceManager(make_cluster(12))
        app = build_three_stage_pipeline(
            sim, rm,
            work_model=ConstantWork(10.0), worker_work=10.0,
            initial_rate=0.3, total_tasks=20, initial_degree=2,
            worker_setup_time=0.0,
        )
        return sim, app

    def test_children_are_the_three_stages(self):
        sim, app = self._app()
        names = {c.name for c in app.component.children}
        assert names == {"app.producer", "app.filter", "app.consumer"}

    def test_stage_membranes_hold_managers_and_abcs(self):
        from repro.core.behavioural import AM_CONTROLLER
        from repro.gcm.abc_controller import AutonomicBehaviourController

        sim, app = self._app()
        filt = app.component.child("app.filter")
        assert filt.controller(AM_CONTROLLER) is app.am_f
        assert filt.controller(AutonomicBehaviourController.NAME) is app.am_f.abc

    def test_bindings_wire_the_stages(self):
        sim, app = self._app()
        assert len(app.component.bindings) == 2
        srcs = {b.client.owner.name for b in app.component.bindings}
        assert srcs == {"app.producer", "app.filter"}

    def test_binding_call_reaches_the_mechanism(self):
        from repro.sim.workload import finite_stream as fs

        sim, app = self._app()
        producer_out = app.component.child("app.producer").interface("out")
        binding = app.component.binding_of(producer_out)
        task = fs(1, ConstantWork(1.0))[0]
        binding.call(task)  # producer -> filter wire delivers into the farm
        assert len(app.farm.input) >= 1

    def test_components_started(self):
        sim, app = self._app()
        assert app.component.started
        assert all(c.started for c in app.component.children)

    def test_secure_all_bindings(self):
        from repro.gcm.controllers import BindingController

        sim, app = self._app()
        bc = app.component.controller(BindingController.NAME)
        assert bc.secure_all() == 2
        assert bc.unsecured() == []


class TestBuildMapBS:
    def _build(self, **kwargs):
        from repro.core.behavioural import build_map_bs

        sim = Simulator()
        rm = ResourceManager(make_cluster(10))
        bs = build_map_bs(sim, rm, initial_degree=2, worker_setup_time=0.0, **kwargs)
        return sim, rm, bs

    def test_bootstrap(self):
        sim, rm, bs = self._build()
        assert bs.farm.num_workers == 2
        assert rm.allocated_count == 2

    def test_pattern_is_scatter_reduce_farm(self):
        sim, rm, bs = self._build()
        assert isinstance(bs.pattern, Farm)
        assert bs.pattern.dispatch == "scatter"
        assert bs.pattern.collect == "reduce"

    def test_manager_enforces_contract_on_map(self):
        sim, rm, bs = self._build(rate_window=20.0)
        TaskSource(sim, bs.farm.input, rate=0.5, work_model=ConstantWork(10.0))
        bs.assign_contract(MinThroughputContract(0.4))
        sim.run(until=300.0)
        snap = bs.farm.force_snapshot()
        assert snap.departure_rate >= 0.36
        assert snap.num_workers > 2

    def test_current_pattern_tracks_live_degree(self):
        sim, rm, bs = self._build()
        assert bs.current_pattern().degree == 2
        from repro.rules.beans import ManagerOperation

        bs.abc.execute(ManagerOperation.ADD_EXECUTOR)
        assert bs.current_pattern().degree == 3
