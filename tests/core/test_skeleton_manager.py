"""Tests for the pattern-specific managers (AM_F, AM_A, AM_P, AM_C, AM_W)."""

import pytest

from repro.core.behavioural import build_farm_bs, build_three_stage_pipeline
from repro.core.contracts import (
    BestEffortContract,
    MinThroughputContract,
    ParallelismDegreeContract,
    RateContract,
    ThroughputRangeContract,
)
from repro.core.events import Events, ViolationKind
from repro.core.manager import ManagerError, ManagerState
from repro.core.skeleton_manager import (
    FarmManager,
    PipelineManager,
    ProducerManager,
    WorkerManager,
)
from repro.gcm.abc_controller import FarmABC, ProducerABC
from repro.sim.engine import Simulator
from repro.sim.farm import SimFarm
from repro.sim.queues import Store
from repro.sim.resources import Node, ResourceManager, make_cluster
from repro.sim.workload import ConstantWork, TaskSource, finite_stream


from repro.core.manager import AutonomicManager


def AutonomicManagerStub(sim):
    """A minimal parent manager for passive-mode tests."""
    return AutonomicManager("parent", sim, autostart=False)


def farm_manager_setup(pool=10, control_period=10.0, setup_time=0.0, degree=2):
    sim = Simulator()
    rm = ResourceManager(make_cluster(pool))
    farm = SimFarm(sim, emitter_node=Node("e"), worker_setup_time=setup_time)
    abc = FarmABC(farm, rm)
    mgr = FarmManager("AM_F", sim, abc, control_period=control_period, manage_workers=False)
    if degree:
        abc.bootstrap(degree)
    return sim, farm, abc, mgr


class TestFarmManagerContracts:
    def test_range_contract_sets_thresholds(self):
        _, _, _, mgr = farm_manager_setup()
        mgr.assign_contract(ThroughputRangeContract(0.3, 0.7))
        assert mgr.constants.FARM_LOW_PERF_LEVEL == 0.3
        assert mgr.constants.FARM_HIGH_PERF_LEVEL == 0.7

    def test_min_contract_sets_thresholds(self):
        _, _, _, mgr = farm_manager_setup()
        mgr.assign_contract(MinThroughputContract(0.6))
        assert mgr.constants.FARM_LOW_PERF_LEVEL == 0.6
        assert mgr.constants.FARM_HIGH_PERF_LEVEL == float("inf")

    def test_best_effort_disables_thresholds(self):
        _, _, _, mgr = farm_manager_setup()
        mgr.assign_contract(BestEffortContract())
        assert mgr.constants.FARM_LOW_PERF_LEVEL == 0.0

    def test_unsupported_contract_rejected(self):
        _, _, _, mgr = farm_manager_setup()
        with pytest.raises(ManagerError):
            mgr.assign_contract(ParallelismDegreeContract(1, 4))

    def test_children_receive_best_effort(self):
        sim, farm, abc, mgr = farm_manager_setup()
        mgr.manage_workers = True
        mgr.spawn_worker_managers()
        mgr.assign_contract(MinThroughputContract(0.5))
        assert len(mgr.children) == 2
        assert all(isinstance(c.contract, BestEffortContract) for c in mgr.children)


class TestFarmManagerLoop:
    def test_starvation_raises_violation_and_goes_passive(self):
        sim, farm, abc, mgr = farm_manager_setup()
        parent = AutonomicManagerStub(sim)
        parent.add_child(mgr)
        mgr.assign_contract(ThroughputRangeContract(0.3, 0.7))
        # no input stream at all -> arrival 0 < 0.3
        sim.run(until=10.0)
        assert mgr.violations_raised
        assert mgr.violations_raised[0].kind == ViolationKind.NOT_ENOUGH_TASKS
        assert mgr.state is ManagerState.PASSIVE

    def test_starvation_on_root_manager_stays_active(self):
        sim, farm, abc, mgr = farm_manager_setup()
        mgr.assign_contract(ThroughputRangeContract(0.3, 0.7))
        sim.run(until=10.0)
        assert mgr.violations_raised
        assert mgr.state is ManagerState.ACTIVE
        assert mgr.unhandled_violations

    def test_passive_manager_keeps_reporting(self):
        sim, farm, abc, mgr = farm_manager_setup()
        mgr.assign_contract(ThroughputRangeContract(0.3, 0.7))
        sim.run(until=40.0)
        assert len(mgr.violations_raised) >= 3  # one per tick while starving

    def test_underperformance_adds_workers(self):
        sim, farm, abc, mgr = farm_manager_setup(degree=1)
        mgr.assign_contract(MinThroughputContract(0.6))
        TaskSource(sim, farm.input, rate=0.8, work_model=ConstantWork(5.0))
        sim.run(until=300.0)
        assert farm.num_workers >= 3  # needs >= 3 to reach 0.6 at 0.2/worker
        assert mgr.trace.count(Events.ADD_WORKER) >= 1
        snap = farm.force_snapshot()
        assert snap.departure_rate >= 0.55

    def test_overprovision_removes_workers(self):
        sim, farm, abc, mgr = farm_manager_setup(degree=6)
        mgr.assign_contract(ThroughputRangeContract(0.2, 0.4))
        TaskSource(sim, farm.input, rate=1.2, work_model=ConstantWork(1.0))
        sim.run(until=60.0)
        # departure would be 1.2 >> 0.4 with 6 fast workers: rule removes
        assert mgr.trace.count(Events.REMOVE_WORKER) >= 1
        assert farm.num_workers < 6

    def test_exhausted_pool_escalates(self):
        sim, farm, abc, mgr = farm_manager_setup(pool=2, degree=2)
        mgr.assign_contract(MinThroughputContract(0.9))
        TaskSource(sim, farm.input, rate=1.0, work_model=ConstantWork(5.0))
        sim.run(until=60.0)
        kinds = [v.kind for v in mgr.violations_raised]
        assert ViolationKind.NO_LOCAL_PLAN in kinds

    def test_blackout_skips_control_tick(self):
        sim, farm, abc, mgr = farm_manager_setup(setup_time=25.0, degree=0)
        abc.bootstrap(1)  # blackout until t=25
        mgr.assign_contract(ThroughputRangeContract(0.3, 0.7))
        sim.run(until=20.0)
        # two ticks elapsed inside blackout: no observation, no violation
        assert mgr.last_monitor is None
        assert mgr.violations_raised == []

    def test_rebalance_marked_when_effective(self):
        sim, farm, abc, mgr = farm_manager_setup(degree=2)
        mgr.assign_contract(ThroughputRangeContract(0.3, 0.7))
        # load one queue heavily so variance > FARM_MAX_UNBALANCE
        for t in finite_stream(12, ConstantWork(100.0)):
            farm.workers[0].queue.put_nowait(t)
        # arrival must be inside the stripe so only CheckLoadBalance fires:
        TaskSource(sim, farm.input, rate=0.5, work_model=ConstantWork(100.0))
        sim.run(until=10.5)
        assert mgr.trace.count(Events.REBALANCE) >= 1


class TestProducerManager:
    def _setup(self, max_rate=None):
        sim = Simulator()
        out = Store(sim)
        src = TaskSource(
            sim, out, rate=0.2, work_model=ConstantWork(1.0), max_rate=max_rate
        )
        mgr = ProducerManager("AM_P", sim, ProducerABC(src))
        return sim, src, mgr

    def test_rate_contract_applied(self):
        sim, src, mgr = self._setup()
        mgr.assign_contract(RateContract(0.5))
        assert src.rate == 0.5
        assert mgr.active

    def test_best_effort_keeps_configured_rate(self):
        sim, src, mgr = self._setup()
        mgr.assign_contract(BestEffortContract())
        assert src.rate == 0.2

    def test_unachievable_rate_reports_warning(self):
        sim, src, mgr = self._setup(max_rate=0.4)
        mgr.assign_contract(RateContract(1.0))
        assert src.rate == 0.4  # clamped: best locally achievable
        assert mgr.violations_raised
        v = mgr.violations_raised[0]
        assert v.kind == ViolationKind.CONTRACT_UNSATISFIABLE
        assert v.is_warning
        assert mgr.active  # warning: stays active

    def test_wrong_contract_type_rejected(self):
        sim, src, mgr = self._setup()
        with pytest.raises(ManagerError):
            mgr.assign_contract(MinThroughputContract(0.5))

    def test_current_rate(self):
        sim, src, mgr = self._setup()
        assert mgr.current_rate() == 0.2


class TestPipelineManagerPolicies:
    def _pipeline(self):
        sim = Simulator()
        rm = ResourceManager(make_cluster(12))
        app = build_three_stage_pipeline(
            sim,
            rm,
            work_model=ConstantWork(10.0),
            worker_work=10.0,
            initial_rate=0.2,
            max_rate=2.0,
            total_tasks=None,
            initial_degree=2,
            control_period=10.0,
            worker_setup_time=5.0,
        )
        return sim, app

    def test_contract_forwarded_to_stages(self):
        sim, app = self._pipeline()
        contract = ThroughputRangeContract(0.3, 0.7)
        app.assign_contract(contract)
        assert app.am_f.contract == contract
        assert app.am_c.contract == contract
        assert isinstance(app.am_p.contract, BestEffortContract)

    def test_not_enough_triggers_inc_rate(self):
        sim, app = self._pipeline()
        app.assign_contract(ThroughputRangeContract(0.3, 0.7))
        sim.run(until=60.0)
        assert app.trace.count(Events.INC_RATE, actor="AM_A") >= 1
        assert app.source.rate > 0.2

    def test_inc_rate_reactivates_farm_manager(self):
        sim, app = self._pipeline()
        app.assign_contract(ThroughputRangeContract(0.3, 0.7))
        sim.run(until=100.0)
        # the farm manager bounced passive->active at least once
        names = app.trace.event_names("AM_F")
        assert Events.GO_PASSIVE in names
        idx = names.index(Events.GO_PASSIVE)
        assert Events.GO_ACTIVE in names[idx:]

    def test_invalid_factors_rejected(self):
        sim = Simulator()
        with pytest.raises(ManagerError):
            PipelineManager("AM_A", sim, inc_factor=1.0)
        with pytest.raises(ManagerError):
            PipelineManager("AM_A", sim, dec_factor=1.5)

    def test_end_stream_stops_inc_rate(self):
        sim, app = self._pipeline()
        app.assign_contract(ThroughputRangeContract(0.3, 0.7))
        sim.run(until=30.0)
        rate_before = app.source.rate
        app.am_a.notify_end_of_stream()
        sim.run(until=200.0)
        # violations keep coming (farm starves as the stream dries) but
        # no further incRate is issued after endStream
        inc_events = app.trace.events_of("AM_A", Events.INC_RATE)
        assert all(e.time <= 40.0 for e in inc_events)
        assert app.trace.count(Events.END_STREAM, actor="AM_A") >= 1

    def test_escalation_of_no_local_plan(self):
        sim = Simulator()
        rm = ResourceManager(make_cluster(2))  # tiny pool: growth impossible
        app = build_three_stage_pipeline(
            sim,
            rm,
            work_model=ConstantWork(30.0),
            worker_work=30.0,
            initial_rate=0.5,
            max_rate=2.0,
            total_tasks=None,
            initial_degree=2,
            control_period=10.0,
            worker_setup_time=2.0,
        )
        app.assign_contract(ThroughputRangeContract(0.3, 0.7))
        sim.run(until=150.0)
        # farm wants workers, pool is empty -> noLocalPlan escalated to
        # AM_A, which (as root) records it as unhandled
        assert any(
            v.kind == ViolationKind.NO_LOCAL_PLAN for v in app.am_a.escalated
        )


class TestWorkerManager:
    def test_monitors_worker(self):
        sim, farm, abc, mgr = farm_manager_setup(degree=1)
        worker = farm.workers[0]
        wm = WorkerManager("AM_W0", sim, worker, control_period=10.0)
        wm.assign_contract(BestEffortContract())
        for t in finite_stream(3, ConstantWork(2.0)):
            farm.submit(t)
        sim.run(until=10.0)
        assert wm.last_monitor is not None
        assert wm.last_monitor["completed"] >= 1
        assert wm.contract_satisfied() is True


class TestModelBasedInitialDeployment:
    """§3's first listed policy: 'initial parallelism degree setup' —
    the cost model sizes the farm before the first control tick."""

    def _build(self, pool=16, target=0.6, worker_work=5.0):
        from repro.core.behavioural import build_farm_bs
        from repro.sim.resources import ResourceManager, make_cluster

        sim = Simulator()
        rm = ResourceManager(make_cluster(pool))
        bs = build_farm_bs(
            sim, rm, worker_work=worker_work, initial_degree=0,
            worker_setup_time=5.0, rate_window=20.0,
            constants_kwargs={"add_burst": 1, "max_workers": pool},
            spawn_worker_managers=False,
        )
        return sim, rm, bs

    def test_contract_triggers_optimal_deployment(self):
        sim, rm, bs = self._build()
        assert bs.farm.workers == []
        bs.assign_contract(MinThroughputContract(0.6))
        # 0.6 t/s at 0.2 t/s per worker -> exactly 3 workers immediately
        assert len(bs.farm.workers) == 3
        ev = bs.trace.first("addWorker")
        assert ev.detail.get("initial") is True
        assert ev.detail["count"] == 3

    def test_beats_ramp_up_to_contract(self):
        """Model-based deployment reaches the contract sooner than the
        ramp-from-one used in FIG3."""
        from repro.sim.workload import ConstantWork as CW, TaskSource as TS

        def time_to_contract(initial_degree):
            from repro.core.behavioural import build_farm_bs
            from repro.sim.resources import ResourceManager, make_cluster

            sim = Simulator()
            rm = ResourceManager(make_cluster(16))
            bs = build_farm_bs(
                sim, rm, worker_work=5.0, initial_degree=initial_degree,
                worker_setup_time=5.0, rate_window=20.0,
                constants_kwargs={"add_burst": 1, "max_workers": 16},
                spawn_worker_managers=False,
            )
            TS(sim, bs.farm.input, rate=0.8, work_model=CW(5.0))
            bs.assign_contract(MinThroughputContract(0.6))
            hit = []

            def probe():
                if not hit and bs.farm.force_snapshot().departure_rate >= 0.6:
                    hit.append(sim.now)

            sim.periodic(5.0, probe)
            sim.run(until=400.0)
            return hit[0] if hit else float("inf")

        assert time_to_contract(0) < time_to_contract(1)

    def test_pool_too_small_reports_violation(self):
        sim, rm, bs = self._build(pool=2, target=0.6)
        bs.assign_contract(MinThroughputContract(0.6))  # needs 3, pool has 2
        kinds = [v.kind for v in bs.manager.violations_raised]
        assert ViolationKind.NO_LOCAL_PLAN in kinds

    def test_no_redeployment_when_workers_exist(self):
        sim, rm, bs = self._build()
        bs.assign_contract(MinThroughputContract(0.6))
        assert len(bs.farm.workers) == 3
        # re-contracting must not stack another initial deployment
        bs.assign_contract(MinThroughputContract(0.6))
        assert len(bs.farm.workers) == 3

    def test_best_effort_contract_deploys_nothing(self):
        sim, rm, bs = self._build()
        bs.assign_contract(BestEffortContract())
        assert bs.farm.workers == []
