"""Tests for the AutonomicManager base: MAPE loop, roles, violations."""

import pytest

from repro.core.contracts import BestEffortContract, MinThroughputContract
from repro.core.events import Events, ViolationKind
from repro.core.manager import AutonomicManager, ManagerError, ManagerState
from repro.rules.beans import DepartureRateBean, ManagerOperation
from repro.rules.dsl import rule, value_lt
from repro.sim.engine import Simulator


class RecordingManager(AutonomicManager):
    """Manager exposing hooks' call history for assertions."""

    def __init__(self, *args, monitor_data=None, **kwargs):
        self.observed = []
        self.passive_steps = 0
        self.monitor_data = monitor_data if monitor_data is not None else {}
        super().__init__(*args, **kwargs)

    def monitor(self):
        return self.monitor_data

    def observe(self, data):
        self.observed.append(data)

    def passive_step(self, data):
        self.passive_steps += 1


class TestLifecycle:
    def test_invalid_control_period(self):
        with pytest.raises(ManagerError):
            AutonomicManager("m", Simulator(), control_period=0.0)

    def test_control_loop_runs_periodically(self):
        sim = Simulator()
        m = RecordingManager("m", sim, control_period=10.0)
        sim.run(until=35.0)
        assert len(m.observed) == 3

    def test_stop_halts_loop(self):
        sim = Simulator()
        m = RecordingManager("m", sim, control_period=10.0)
        sim.schedule(15.0, m.stop)
        sim.run(until=100.0)
        assert len(m.observed) == 1

    def test_start_is_idempotent(self):
        sim = Simulator()
        m = RecordingManager("m", sim, control_period=10.0)
        m.start()
        m.start()
        sim.run(until=10.0)
        assert len(m.observed) == 1

    def test_no_autostart(self):
        sim = Simulator()
        m = RecordingManager("m", sim, control_period=10.0, autostart=False)
        sim.run(until=50.0)
        assert m.observed == []
        m.start()
        sim.run(until=100.0)
        assert len(m.observed) == 5

    def test_blackout_skips_cycle(self):
        sim = Simulator()
        m = RecordingManager("m", sim, control_period=10.0, monitor_data={})
        m.monitor_data = None  # simulate blackout
        sim.run(until=30.0)
        assert m.observed == []
        assert m.last_monitor is None


class TestStates:
    def test_starts_passive(self):
        m = RecordingManager("m", Simulator())
        assert m.state is ManagerState.PASSIVE
        assert not m.active

    def test_contract_activates(self):
        sim = Simulator()
        m = RecordingManager("m", sim)
        m.assign_contract(BestEffortContract())
        assert m.active
        assert m.trace.count(Events.GO_ACTIVE) == 1
        assert m.trace.count(Events.NEW_CONTRACT) == 1

    def test_fatal_violation_goes_passive_with_parent(self):
        sim = Simulator()
        parent = RecordingManager("p", sim)
        m = RecordingManager("m", sim)
        parent.add_child(m)
        m.assign_contract(BestEffortContract())
        m.raise_violation(ViolationKind.NOT_ENOUGH_TASKS)
        assert m.state is ManagerState.PASSIVE
        assert m.trace.count(Events.GO_PASSIVE) == 1

    def test_fatal_violation_on_root_stays_active(self):
        """A root manager has nobody to re-contract it: it reports to the
        user and keeps trying rather than deadlocking passive."""
        sim = Simulator()
        m = RecordingManager("m", sim)
        m.assign_contract(BestEffortContract())
        m.raise_violation(ViolationKind.NOT_ENOUGH_TASKS)
        assert m.state is ManagerState.ACTIVE
        assert m.unhandled_violations

    def test_warning_violation_stays_active(self):
        sim = Simulator()
        m = RecordingManager("m", sim)
        m.assign_contract(BestEffortContract())
        v = m.raise_violation(ViolationKind.TOO_MUCH_TASKS, severity="warning")
        assert m.active
        assert v.is_warning

    def test_passive_step_runs_only_when_passive(self):
        sim = Simulator()
        parent = RecordingManager("p", sim, control_period=10.0)
        m = RecordingManager("m", sim, control_period=10.0)
        parent.add_child(m)
        m.assign_contract(BestEffortContract())
        sim.run(until=20.0)
        assert m.passive_steps == 0
        m.raise_violation("x")
        sim.run(until=40.0)
        assert m.passive_steps == 2

    def test_reassigning_contract_reactivates(self):
        sim = Simulator()
        parent = RecordingManager("p", sim)
        m = RecordingManager("m", sim)
        parent.add_child(m)
        m.assign_contract(BestEffortContract())
        m.raise_violation("x")
        assert not m.active
        m.assign_contract(BestEffortContract())
        assert m.active


class TestHierarchyWiring:
    def test_add_child(self):
        sim = Simulator()
        parent = RecordingManager("p", sim)
        child = RecordingManager("c", sim)
        parent.add_child(child)
        assert child.parent is parent
        assert parent.children == [child]
        assert parent.is_root and not child.is_root

    def test_child_cannot_have_two_parents(self):
        sim = Simulator()
        p1, p2 = RecordingManager("p1", sim), RecordingManager("p2", sim)
        c = RecordingManager("c", sim)
        p1.add_child(c)
        with pytest.raises(ManagerError):
            p2.add_child(c)

    def test_self_child_rejected(self):
        m = RecordingManager("m", Simulator())
        with pytest.raises(ManagerError):
            m.add_child(m)

    def test_descendants(self):
        sim = Simulator()
        root = RecordingManager("r", sim)
        a = RecordingManager("a", sim)
        b = RecordingManager("b", sim)
        leaf = RecordingManager("leaf", sim)
        root.add_child(a)
        root.add_child(b)
        a.add_child(leaf)
        assert [m.name for m in root.descendants()] == ["a", "leaf", "b"]


class TestViolationRouting:
    def test_violation_reaches_parent_after_delay(self):
        sim = Simulator()
        parent = RecordingManager("p", sim, violation_delay=2.0)
        child = RecordingManager("c", sim, violation_delay=2.0)
        parent.add_child(child)
        received = []
        parent.child_violation = lambda ch, v: received.append((sim.now, v.kind))
        sim.schedule(5.0, lambda: child.raise_violation("starved"))
        sim.run(until=20.0)
        assert received == [(7.0, "starved")]

    def test_root_violation_recorded_unhandled(self):
        sim = Simulator()
        m = RecordingManager("m", sim)
        m.raise_violation("nobody-listens")
        sim.run(until=1.0)
        assert len(m.unhandled_violations) == 1
        assert m.violations_raised[0].kind == "nobody-listens"

    def test_default_child_violation_records(self):
        sim = Simulator()
        parent = RecordingManager("p", sim)
        child = RecordingManager("c", sim)
        parent.add_child(child)
        child.raise_violation("x")
        sim.run(until=5.0)
        assert len(parent.unhandled_violations) == 1

    def test_raise_marks_trace(self):
        sim = Simulator()
        m = RecordingManager("m", sim)
        m.raise_violation("kind-x", extra=1)
        ev = m.trace.first(Events.RAISE_VIOL)
        assert ev is not None
        assert ev.detail["kind"] == "kind-x"


class TestRuleOperationFlow:
    def test_rule_fires_operation_into_manager(self):
        """End-to-end: monitor -> bean -> rule -> operation -> violation."""
        sim = Simulator()

        class M(RecordingManager):
            def observe(self, data):
                super().observe(data)
                bean = self.make_bean(DepartureRateBean(data["departure_rate"]))
                self.engine.memory.replace(bean)

        m = M("m", sim, control_period=10.0, monitor_data={"departure_rate": 0.1})
        parent = RecordingManager("p", sim, control_period=10.0)
        parent.add_child(m)

        def starved(act):
            act["d"].set_data("starved")
            act["d"].fire_operation(ManagerOperation.RAISE_VIOLATION)

        m.engine.add_rule(
            rule("Starved").when(DepartureRateBean, value_lt(0.5), bind="d").then(starved)
        )
        m.assign_contract(MinThroughputContract(0.5))
        sim.run(until=10.0)
        assert m.violations_raised[0].kind == "starved"
        assert m.state is ManagerState.PASSIVE

    def test_operation_without_abc_rejected(self):
        sim = Simulator()
        m = RecordingManager("m", sim)
        with pytest.raises(ManagerError):
            m.on_operation(ManagerOperation.ADD_EXECUTOR, None)


class TestContractSatisfaction:
    def test_none_without_contract_or_data(self):
        sim = Simulator()
        m = RecordingManager("m", sim)
        assert m.contract_satisfied() is None
        m.assign_contract(MinThroughputContract(0.5))
        assert m.contract_satisfied() is None

    def test_judged_against_last_monitor(self):
        sim = Simulator()
        m = RecordingManager(
            "m", sim, control_period=10.0, monitor_data={"departure_rate": 0.7}
        )
        m.assign_contract(MinThroughputContract(0.5))
        sim.run(until=10.0)
        assert m.contract_satisfied() is True
        m.monitor_data = {"departure_rate": 0.2}
        sim.run(until=20.0)
        assert m.contract_satisfied() is False
