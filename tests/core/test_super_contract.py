"""Tests for the §3.2 linear-combination super-contract (c̄)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.contracts import (
    BestEffortContract,
    ContractError,
    MinThroughputContract,
    SecurityContract,
    ThroughputRangeContract,
    WeightedCompositeContract,
    derive_super_contract,
)

PERF = MinThroughputContract(0.6)
SEC = SecurityContract()

GOOD = {"departure_rate": 0.8, "leak_count": 0, "insecure_untrusted_workers": 0}
SLOW = {"departure_rate": 0.3, "leak_count": 0, "insecure_untrusted_workers": 0}
LEAKY = {"departure_rate": 0.8, "leak_count": 2, "insecure_untrusted_workers": 0}


class TestSatisfactionDegrees:
    def test_min_throughput_smooth(self):
        c = MinThroughputContract(0.6)
        assert c.satisfaction({"departure_rate": 0.6}) == pytest.approx(1.0)
        assert c.satisfaction({"departure_rate": 0.3}) == pytest.approx(0.5)
        assert c.satisfaction({"departure_rate": 1.2}) == pytest.approx(1.0)
        assert c.satisfaction({"departure_rate": 0.0}) == 0.0
        assert c.satisfaction({}) is None

    def test_range_smooth(self):
        c = ThroughputRangeContract(0.4, 0.8)
        assert c.satisfaction({"departure_rate": 0.6}) == pytest.approx(1.0)
        assert c.satisfaction({"departure_rate": 0.2}) == pytest.approx(0.5)
        assert c.satisfaction({"departure_rate": 1.6}) == pytest.approx(0.5)

    def test_boolean_contracts_are_step_functions(self):
        assert SEC.satisfaction(GOOD) == 1.0
        assert SEC.satisfaction(LEAKY) == 0.0
        assert BestEffortContract().satisfaction({}) == 1.0

    @given(st.floats(min_value=0.0, max_value=5.0))
    @settings(max_examples=60, deadline=None)
    def test_satisfaction_in_unit_interval(self, rate):
        for c in (MinThroughputContract(0.6), ThroughputRangeContract(0.3, 0.7)):
            s = c.satisfaction({"departure_rate": rate})
            assert 0.0 <= s <= 1.0
            # satisfaction 1.0 <=> check True
            assert (s == 1.0) == c.check({"departure_rate": rate})


class TestWeightedComposite:
    def test_validation(self):
        with pytest.raises(ContractError):
            WeightedCompositeContract([PERF], weights=[1.0, 2.0])
        with pytest.raises(ContractError):
            WeightedCompositeContract([PERF], weights=[-1.0])
        with pytest.raises(ContractError):
            WeightedCompositeContract([PERF], threshold=0.0)

    def test_weights_normalised(self):
        c = WeightedCompositeContract([PERF, SEC], weights=[3.0, 1.0])
        assert sum(c.weights) == pytest.approx(1.0)
        assert c.weights[0] == pytest.approx(0.75)

    def test_all_satisfied_scores_one(self):
        c = derive_super_contract([PERF, SEC])
        assert c.score(GOOD) == pytest.approx(1.0)
        assert c.check(GOOD) is True

    def test_boolean_violation_zeroes_score(self):
        """'c_sec must have priority over c_perf' (§3.2): a security
        breach cannot be compensated by great performance."""
        c = derive_super_contract([PERF, SEC])
        assert c.score(LEAKY) == 0.0
        assert c.check(LEAKY) is False

    def test_quantitative_degradation_is_linear(self):
        c = WeightedCompositeContract([PERF, SEC], weights=[1.0, 1.0])
        # perf at 50% satisfaction, security fine: 0.5*0.5 + 0.5*1.0
        assert c.score(SLOW) == pytest.approx(0.75)
        assert c.check(SLOW) is False

    def test_unjudgeable_sample(self):
        c = derive_super_contract([PERF, SEC])
        assert c.score({}) is None
        assert c.check({}) is None

    def test_partial_sample_uses_available_parts(self):
        c = WeightedCompositeContract([PERF, SEC], weights=[1.0, 1.0])
        # only performance judgeable: security contributes nothing
        assert c.score({"departure_rate": 1.0}) == pytest.approx(0.5)

    def test_describe(self):
        c = derive_super_contract([PERF, SEC])
        text = c.describe()
        assert "linear[" in text
        assert "0.50" in text

    def test_threshold_controls_check(self):
        strict = WeightedCompositeContract([PERF, SEC], threshold=0.99)
        lax = WeightedCompositeContract([PERF, SEC], threshold=0.7)
        assert strict.check(SLOW) is False
        assert lax.check(SLOW) is True

    @given(
        st.floats(min_value=0.0, max_value=3.0),
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_score_bounded_and_monotone_in_rate(self, rate, w_perf, w_sec):
        c = WeightedCompositeContract([PERF, SEC], weights=[w_perf, w_sec])
        sample = dict(GOOD, departure_rate=rate)
        s = c.score(sample)
        assert 0.0 <= s <= 1.0
        better = c.score(dict(sample, departure_rate=rate + 0.1))
        assert better >= s - 1e-12
