"""Tests for contracts and the P_spl splitting heuristics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.contracts import (
    BestEffortContract,
    CompositeContract,
    ContractError,
    MinThroughputContract,
    ParallelismDegreeContract,
    RateContract,
    SecurityContract,
    ThroughputRangeContract,
    split_contract,
)
from repro.skeletons.ast import Farm, Pipe, Seq
from repro.skeletons.cost import throughput


class TestThroughputRange:
    def test_validation(self):
        with pytest.raises(ContractError):
            ThroughputRangeContract(0.0, 0.5)
        with pytest.raises(ContractError):
            ThroughputRangeContract(0.7, 0.3)

    def test_check(self):
        c = ThroughputRangeContract(0.3, 0.7)
        assert c.check({"departure_rate": 0.5}) is True
        assert c.check({"departure_rate": 0.2}) is False
        assert c.check({"departure_rate": 0.8}) is False
        assert c.check({"other": 1}) is None

    def test_boundaries_inclusive(self):
        c = ThroughputRangeContract(0.3, 0.7)
        assert c.check({"departure_rate": 0.3}) is True
        assert c.check({"departure_rate": 0.7}) is True

    def test_midpoint_and_describe(self):
        c = ThroughputRangeContract(0.3, 0.7)
        assert c.midpoint == pytest.approx(0.5)
        assert "0.3" in c.describe() and "0.7" in c.describe()


class TestMinThroughput:
    def test_validation(self):
        with pytest.raises(ContractError):
            MinThroughputContract(0.0)

    def test_check(self):
        c = MinThroughputContract(0.6)
        assert c.check({"departure_rate": 0.61}) is True
        assert c.check({"departure_rate": 0.59}) is False
        assert c.check({}) is None


class TestBestEffort:
    def test_always_satisfied(self):
        c = BestEffortContract()
        assert c.check({}) is True
        assert c.check({"departure_rate": 0.0}) is True
        assert c.concern == "performance"


class TestRateContract:
    def test_validation(self):
        with pytest.raises(ContractError):
            RateContract(0.0)

    def test_check_against_configured_rate(self):
        c = RateContract(0.5)
        assert c.check({"rate": 0.5}) is True
        assert c.check({"rate": 0.4}) is False
        assert c.check({}) is None


class TestParallelismDegree:
    def test_validation(self):
        with pytest.raises(ContractError):
            ParallelismDegreeContract(min_degree=0)
        with pytest.raises(ContractError):
            ParallelismDegreeContract(min_degree=5, max_degree=2)

    def test_check(self):
        c = ParallelismDegreeContract(2, 8)
        assert c.check({"num_workers": 4}) is True
        assert c.check({"num_workers": 1}) is False
        assert c.check({"num_workers": 9}) is False
        assert c.check({}) is None


class TestSecurityContract:
    def test_concern_is_security(self):
        assert SecurityContract().concern == "security"

    def test_check(self):
        c = SecurityContract()
        assert c.check({"leak_count": 0, "insecure_untrusted_workers": 0}) is True
        assert c.check({"leak_count": 1, "insecure_untrusted_workers": 0}) is False
        assert c.check({"leak_count": 0, "insecure_untrusted_workers": 2}) is False
        assert c.check({"departure_rate": 0.5}) is None


class TestComposite:
    def test_needs_parts(self):
        with pytest.raises(ContractError):
            CompositeContract([])

    def test_conjunction(self):
        c = CompositeContract(
            [MinThroughputContract(0.5), SecurityContract()]
        )
        ok = {"departure_rate": 0.6, "leak_count": 0, "insecure_untrusted_workers": 0}
        assert c.check(ok) is True
        assert c.check({**ok, "departure_rate": 0.4}) is False
        assert c.check({**ok, "leak_count": 3}) is False
        # partial data: can't fully judge
        assert c.check({"departure_rate": 0.6}) is None

    def test_of_concern(self):
        perf = MinThroughputContract(0.5)
        sec = SecurityContract()
        c = CompositeContract([perf, sec])
        assert c.of_concern("security") == [sec]
        assert c.of_concern("performance") == [perf]

    def test_describe_joins(self):
        c = CompositeContract([MinThroughputContract(0.5), SecurityContract()])
        assert " AND " in c.describe()


class TestSplitting:
    def test_seq_has_no_children(self):
        assert split_contract(MinThroughputContract(0.5), Seq()) == []

    def test_pipeline_throughput_forwarded_identically(self):
        """§3.1: 'a throughput SLA for the pipeline may be split into
        identical SLAs for the pipeline stage AMs'."""
        pipe = Pipe(Seq(1.0), Seq(2.0), Seq(3.0))
        c = ThroughputRangeContract(0.3, 0.7)
        subs = split_contract(c, pipe)
        assert subs == [c, c, c]

    def test_farm_gives_best_effort(self):
        """§4.2: worker managers receive c_bestEffort."""
        farm = Farm(Seq(5.0), degree=4)
        subs = split_contract(MinThroughputContract(0.6), farm)
        assert subs == [BestEffortContract()]

    def test_security_forwarded_everywhere(self):
        pipe = Pipe(Seq(), Farm(Seq()), Seq())
        sec = SecurityContract()
        assert split_contract(sec, pipe) == [sec, sec, sec]
        assert split_contract(sec, Farm(Seq())) == [sec]

    def test_degree_split_proportional(self):
        """§3.1 footnote: proportional to stage computational weight."""
        pipe = Pipe(Seq(1.0), Seq(3.0))
        c = ParallelismDegreeContract(min_degree=1, max_degree=8)
        subs = split_contract(c, pipe)
        maxima = [s.max_degree for s in subs]
        assert sum(maxima) == 8
        assert maxima == [2, 6]  # 25% / 75%

    def test_degree_split_budget_too_small(self):
        pipe = Pipe(Seq(), Seq(), Seq())
        with pytest.raises(ContractError):
            split_contract(ParallelismDegreeContract(max_degree=2), pipe)

    def test_composite_split_recombines_per_child(self):
        pipe = Pipe(Seq(1.0), Seq(1.0))
        c = CompositeContract([ThroughputRangeContract(0.3, 0.7), SecurityContract()])
        subs = split_contract(c, pipe)
        assert len(subs) == 2
        for sub in subs:
            assert isinstance(sub, CompositeContract)
            assert len(sub.parts) == 2

    def test_farm_converts_any_perf_contract_to_best_effort(self):
        assert split_contract(RateContract(1.0), Farm(Seq())) == [BestEffortContract()]

    def test_rate_contract_forwarded_over_pipe(self):
        assert len(split_contract(RateContract(1.0), Pipe(Seq(), Seq()))) == 2

    def test_unknown_combination_rejected(self):
        class OddContract(MinThroughputContract.__mro__[1]):  # bare Contract
            concern = "performance"

            def check(self, monitor):
                return True

            def describe(self):
                return "odd"

        with pytest.raises(ContractError):
            split_contract(OddContract(), Pipe(Seq(), Seq()))

    @given(
        st.lists(st.floats(min_value=0.2, max_value=10.0), min_size=2, max_size=6),
        st.integers(6, 40),
    )
    @settings(max_examples=60, deadline=None)
    def test_degree_split_sums_to_budget_and_covers_stages(self, works, budget):
        pipe = Pipe(*[Seq(w) for w in works])
        c = ParallelismDegreeContract(min_degree=1, max_degree=budget)
        subs = split_contract(c, pipe)
        maxima = [s.max_degree for s in subs]
        assert len(maxima) == len(works)
        assert all(m >= 1 for m in maxima)
        assert sum(maxima) >= budget  # floors keep >=1 even on tiny weights
        # never exceeds budget by more than the +1-per-stage floor slack
        assert sum(maxima) <= budget + len(works)

    @given(
        st.lists(st.floats(min_value=0.2, max_value=10.0), min_size=2, max_size=5),
        st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_throughput_split_soundness(self, works, target):
        """If every stage (farmed up as needed) meets the forwarded SLA,
        the pipeline meets the parent SLA — the P_spl guarantee."""
        pipe = Pipe(*[Seq(w) for w in works])
        subs = split_contract(MinThroughputContract(target), pipe)
        stages = []
        for sub, w in zip(subs, works):
            degree = 1
            while throughput(Farm(Seq(w), degree=degree)) < sub.target:
                degree += 1
            stages.append(Farm(Seq(w), degree=degree))
        farmed = Pipe(*stages)
        assert throughput(farmed) >= target - 1e-9
