"""Hypothesis properties of the P_spl contract-splitting heuristics (§3.1).

``test_contracts.py`` checks the splitting rules on the paper's worked
examples; this file states them as laws over *arbitrary* skeleton trees
and contracts, and lets Hypothesis search for the shapes that break
them:

* splitting always yields exactly one sub-contract per conceptual child
  (stages for a pipe, the one replicated worker for a farm, none for a
  leaf);
* throughput SLAs split into *identical* per-stage SLAs over pipelines
  ("a throughput SLA for the pipeline may be split into identical SLAs
  for the pipeline stage AMs");
* security is boolean and forwarded unchanged — it never weakens or
  mutates on the way down;
* composite contracts split/merge round-trip: splitting the composite
  is the per-child recombination of splitting its parts;
* degree splits conserve the parent's budget (largest-remainder) while
  keeping every stage viable (min 1 worker);
* rate splits across sibling shards conserve the parent's rate budget
  *exactly* — the float sum of child rates reproduces the parent rate
  bit-for-bit, for any shard count and any positive weights.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.contracts import (
    BestEffortContract,
    CompositeContract,
    ContractError,
    MaxLatencyContract,
    MinThroughputContract,
    ParallelismDegreeContract,
    RateContract,
    SecurityContract,
    ThroughputRangeContract,
    split_contract,
    split_rate,
    split_rate_contract,
    split_rate_weighted,
)
from repro.skeletons.ast import Farm, Pipe, Seq
from repro.skeletons.cost import stage_weights

works = st.integers(1, 1000).map(lambda i: i / 10)
seqs = st.builds(Seq, work=works)


def skeletons(max_leaves=8):
    return st.recursive(
        seqs,
        lambda children: st.one_of(
            st.builds(Farm, worker=children, degree=st.integers(1, 8)),
            st.lists(children, min_size=2, max_size=4).map(lambda xs: Pipe(*xs)),
        ),
        max_leaves=max_leaves,
    )


pipes = st.lists(skeletons(max_leaves=4), min_size=2, max_size=5).map(
    lambda xs: Pipe(*xs)
)

rates = st.integers(1, 10000).map(lambda i: i / 10)

throughput_contracts = st.one_of(
    st.builds(MinThroughputContract, target=rates),
    st.builds(
        lambda lo, span: ThroughputRangeContract(lo, lo + span), rates, rates
    ),
    st.builds(MaxLatencyContract, limit=rates),
    st.just(BestEffortContract()),
)

splittable_contracts = st.one_of(throughput_contracts, st.just(SecurityContract()))


class TestArity:
    @settings(max_examples=200, deadline=None)
    @given(skeletons(), splittable_contracts)
    def test_one_sub_contract_per_conceptual_child(self, skel, contract):
        subs = split_contract(contract, skel)
        if isinstance(skel, Seq):
            assert subs == []
        elif isinstance(skel, Farm):
            assert len(subs) == 1  # the one replicated worker
        else:
            assert len(subs) == len(skel.stages)


class TestPipelineHeuristics:
    @settings(max_examples=200, deadline=None)
    @given(pipes, throughput_contracts)
    def test_throughput_sla_splits_identically(self, pipe, contract):
        subs = split_contract(contract, pipe)
        assert all(sub == contract for sub in subs)

    @settings(max_examples=200, deadline=None)
    @given(pipes)
    def test_security_forwarded_unchanged(self, pipe):
        sec = SecurityContract()
        subs = split_contract(sec, pipe)
        assert all(sub is sec for sub in subs)


class TestFarmHeuristics:
    @settings(max_examples=200, deadline=None)
    @given(skeletons(max_leaves=4), st.integers(1, 8), throughput_contracts)
    def test_performance_becomes_best_effort_per_worker(
        self, worker, degree, contract
    ):
        farm = Farm(worker=worker, degree=degree)
        assert split_contract(contract, farm) == [BestEffortContract()]

    @settings(max_examples=200, deadline=None)
    @given(skeletons(max_leaves=4), st.integers(1, 8))
    def test_security_pierces_the_farm_unchanged(self, worker, degree):
        sec = SecurityContract()
        assert split_contract(sec, Farm(worker=worker, degree=degree)) == [sec]


class TestCompositeRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(
        skeletons(),
        st.lists(splittable_contracts, min_size=2, max_size=4),
    )
    def test_split_of_composite_is_recombination_of_part_splits(
        self, skel, parts
    ):
        """The §3.2 multi-concern law: splitting a conjunction equals
        splitting each concern and re-conjoining per child — no concern
        is lost, duplicated or reordered by the composite path."""
        composite = CompositeContract(parts)
        subs = split_contract(composite, skel)
        per_part = [split_contract(p, skel) for p in parts]
        expected = [
            [column[i] for column in per_part] for i in range(len(subs))
        ]
        assert len(subs) == (len(per_part[0]) if per_part else 0)
        for sub, exp in zip(subs, expected):
            if len(exp) == 1:
                assert sub == exp[0]
            else:
                assert isinstance(sub, CompositeContract)
                assert sub.parts == exp


class TestDegreeSplit:
    @settings(max_examples=300, deadline=None)
    @given(pipes, st.integers(0, 200))
    def test_budget_conserved_and_stages_viable(self, pipe, slack):
        n = len(pipe.stages)
        parent = ParallelismDegreeContract(min_degree=1, max_degree=n + slack)
        subs = split_contract(parent, pipe)
        assert len(subs) == n
        assert all(isinstance(s, ParallelismDegreeContract) for s in subs)
        assert all(s.min_degree == 1 for s in subs)  # every stage stays viable
        assert all(s.max_degree >= 1 for s in subs)
        total = sum(s.max_degree for s in subs)
        weights = stage_weights(pipe)
        floors = [max(1, int(w * parent.max_degree)) for w in weights]
        if sum(floors) <= parent.max_degree:
            # feasible split: largest-remainder conserves the budget exactly
            assert total == parent.max_degree
        else:
            # infeasible only because min-1-per-stage overshoots the
            # budget; the overshoot is bounded by the clamping itself
            assert parent.max_degree < total <= sum(floors)

    @settings(max_examples=200, deadline=None)
    @given(pipes)
    def test_budget_below_stage_count_is_rejected(self, pipe):
        n = len(pipe.stages)
        if n < 2:
            return
        import pytest

        parent = ParallelismDegreeContract(min_degree=1, max_degree=n - 1)
        with pytest.raises(ContractError):
            split_contract(parent, pipe)


# arbitrary finite positive floats, not just a decimal grid: the
# conservation law below is *exact*, so it must survive ulp-hostile rates
any_rates = st.floats(
    min_value=1e-12, max_value=1e15, allow_nan=False, allow_infinity=False
)
shard_counts = st.integers(1, 64)
positive_weights = st.lists(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=16,
)


class TestRateSplitConservation:
    """The shard-tree budget law: no ulp of rate leaks on the way down."""

    @settings(max_examples=500, deadline=None)
    @given(any_rates, shard_counts)
    def test_equal_split_conserves_exactly(self, total, n):
        parts = split_rate(total, n)
        assert len(parts) == n
        assert all(p > 0 for p in parts)
        # plain left-to-right float summation, not math.fsum: the law
        # holds for the arithmetic shards actually perform
        assert sum(parts) == total

    @settings(max_examples=500, deadline=None)
    @given(any_rates, positive_weights)
    def test_weighted_split_conserves_exactly(self, total, weights):
        try:
            parts = split_rate_weighted(total, weights)
        except ContractError:
            return  # infeasibly skewed weights are rejected, never fudged
        assert len(parts) == len(weights)
        assert all(p > 0 for p in parts)
        assert sum(parts) == total

    @settings(max_examples=300, deadline=None)
    @given(any_rates, positive_weights)
    def test_weighted_split_tracks_weights(self, total, weights):
        try:
            parts = split_rate_weighted(total, weights)
        except ContractError:
            return
        wsum = sum(weights)
        for part, weight in zip(parts, weights):
            ideal = total * (weight / wsum)
            # largest-remainder rounding moves a share by at most one
            # unit of the integer grid (~total * 2**-52): proportional
            # to weight up to that quantum
            assert abs(part - ideal) <= max(1e-9 * total, 4 * abs(total) * 2**-52)

    @settings(max_examples=300, deadline=None)
    @given(rates, shard_counts)
    def test_min_throughput_contract_split_conserves(self, target, n):
        subs = split_rate_contract(MinThroughputContract(target), n)
        assert all(isinstance(s, MinThroughputContract) for s in subs)
        assert sum(s.target for s in subs) == target

    @settings(max_examples=300, deadline=None)
    @given(rates, shard_counts)
    def test_rate_contract_split_conserves(self, rate, n):
        subs = split_rate_contract(RateContract(rate), n)
        assert sum(s.rate for s in subs) == rate

    @settings(max_examples=300, deadline=None)
    @given(rates, rates, shard_counts)
    def test_range_contract_split_conserves_both_edges(self, lo, span, n):
        parent = ThroughputRangeContract(lo, lo + span)
        try:
            subs = split_rate_contract(parent, n)
        except ContractError:
            return  # an inconsistent per-shard band is rejected, not emitted
        assert sum(s.low for s in subs) == parent.low
        assert sum(s.high for s in subs) == parent.high
        assert all(s.low <= s.high for s in subs)

    @settings(max_examples=200, deadline=None)
    @given(rates, shard_counts)
    def test_composite_splits_rate_parts_and_forwards_booleans(self, rate, n):
        parent = CompositeContract([MinThroughputContract(rate), SecurityContract()])
        subs = split_rate_contract(parent, n)
        assert len(subs) == n
        for sub in subs:
            assert isinstance(sub, CompositeContract)
            assert isinstance(sub.parts[1], SecurityContract)
        assert sum(sub.parts[0].target for sub in subs) == rate
