"""Integration tests: the FIG4 scenario reproduces Figure 4's phases."""

import pytest

from repro.core.events import Events
from repro.experiments.fig4 import Fig4Config, run_fig4
from repro.experiments.report import render_fig4


@pytest.fixture(scope="module")
def result():
    return run_fig4()


class TestPhase1Starvation:
    def test_farm_sees_contr_low_and_not_enough(self, result):
        f_events = result.am_f_events()
        assert Events.CONTR_LOW in f_events
        assert Events.NOT_ENOUGH in f_events

    def test_farm_raises_violations_and_goes_passive(self, result):
        assert result.first_violation_time is not None
        assert Events.GO_PASSIVE in result.am_f_events()

    def test_multiple_inc_rates(self, result):
        """'because of the multiple incRate actions in AM_A, the first
        stage produces tasks more and more frequently'"""
        assert len(result.inc_rate_times) >= 2

    def test_inc_rates_are_increasing(self, result):
        rates = [
            e.detail["rate"]
            for e in result.trace.events_of("AM_A", Events.INC_RATE)
        ]
        assert rates == sorted(rates)

    def test_violation_reaches_am_a_with_delay(self, result):
        """'a little bit after time … because of the network and run time
        support overheads'"""
        first_viol = result.first_violation_time
        first_inc = min(result.inc_rate_times)
        assert first_inc > first_viol


class TestPhase2Growth:
    def test_workers_added_in_batches_of_two(self, result):
        adds = result.trace.events_of("AM_F", Events.ADD_WORKER)
        assert len(adds) >= 2
        assert all(e.detail["count"] == 2 for e in adds)

    def test_adds_happen_after_rate_recovery_started(self, result):
        assert min(result.add_worker_times) > min(result.inc_rate_times)

    def test_cores_step_5_7_9(self, result):
        steps = result.cores_step_values()
        assert steps[0] == 5
        assert 7 in steps
        assert 9 in steps

    def test_blackout_during_reconfiguration(self, result):
        """No AM_F sensor-driven marks inside the reconfiguration window."""
        add_t = result.add_worker_times[0]
        setup = result.config.worker_setup_time
        # contrLow marks require a monitor sample; none can land strictly
        # inside (add_t, add_t + setup)
        marks = [
            e.time
            for e in result.trace.events_of("AM_F", Events.CONTR_LOW)
            if add_t < e.time < add_t + setup
        ]
        assert marks == []


class TestPhase3Overshoot:
    def test_too_much_warning_then_dec_rate(self, result):
        assert Events.TOO_MUCH in result.am_f_events()
        assert len(result.dec_rate_times) >= 1

    def test_dec_rate_after_inc_rates(self, result):
        assert min(result.dec_rate_times) > min(result.inc_rate_times)

    def test_too_much_does_not_passivate_farm(self, result):
        """tooMuchTasks is a warning: it never flips AM_F to passive."""
        too_much_viols = [
            e.time
            for e in result.trace.events_of("AM_F", Events.RAISE_VIOL)
            if e.detail.get("kind") == "tooMuchTasks"
        ]
        assert too_much_viols
        passive_times = {
            e.time for e in result.trace.events_of("AM_F", Events.GO_PASSIVE)
        }
        assert not passive_times.intersection(too_much_viols)


class TestPhase4Drain:
    def test_end_stream_marked(self, result):
        assert result.end_stream_time is not None

    def test_no_inc_rate_after_end_stream(self, result):
        end = result.end_stream_time
        assert all(t <= end for t in result.inc_rate_times)

    def test_not_enough_persists_after_end_stream(self, result):
        """'the event notEnough will persist in time in the event line'"""
        end = result.end_stream_time
        late = [
            e
            for e in result.trace.events_of("AM_F", Events.NOT_ENOUGH)
            if e.time > end
        ]
        assert late

    def test_all_tasks_delivered(self, result):
        assert result.app.delivered == result.config.total_tasks


class TestFigureLevel:
    def test_phase_order(self, result):
        assert result.phase_order_holds()

    def test_throughput_reaches_stripe(self, result):
        assert result.in_stripe_at_end()

    def test_input_rate_enters_stripe(self, result):
        cfg = result.config
        in_stripe = [
            v
            for t, v in result.input_rate_series
            if cfg.contract_low <= v <= cfg.contract_high
        ]
        assert in_stripe

    def test_render_contains_four_graphs(self, result):
        text = render_fig4(result)
        for marker in ("graph 1", "graph 2", "graph 3", "graph 4"):
            assert marker in text
        assert "incRate" in text
        assert "addWorker" in text

    def test_deterministic(self):
        a = run_fig4(Fig4Config(duration=300.0, total_tasks=100))
        b = run_fig4(Fig4Config(duration=300.0, total_tasks=100))
        assert a.trace.event_names() == b.trace.event_names()
        assert a.cores_series == b.cores_series


class TestFig4Robustness:
    """The phase structure is a property of the design, not of one tuning."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(control_period=5.0, duration=600.0, total_tasks=200),
            dict(contract_low=0.2, contract_high=0.5, initial_rate=0.12,
                 duration=900.0, total_tasks=200),
            dict(worker_setup_time=20.0, duration=1000.0, total_tasks=250),
            dict(seed=7, duration=900.0),
        ],
    )
    def test_phase_structure_holds(self, kwargs):
        r = run_fig4(Fig4Config(**kwargs))
        # starvation phase then rate corrections then growth
        assert r.first_violation_time is not None
        assert len(r.inc_rate_times) >= 1
        assert len(r.add_worker_times) >= 1
        assert r.trace.assert_order(
            [Events.RAISE_VIOL, Events.INC_RATE, Events.ADD_WORKER]
        )
        # the stream always drains completely
        assert r.app.delivered == r.config.total_tasks


class TestElasticity:
    def test_farm_shrinks_when_pressure_drops(self):
        """The full elastic cycle: grow under load, shrink when the input
        rate falls (CheckRateHigh + REMOVE_EXECUTOR)."""
        from repro.core import ThroughputRangeContract, build_farm_bs
        from repro.sim import ResourceManager, Simulator, TraceRecorder, make_cluster
        from repro.sim.workload import ConstantWork, TaskSource

        sim = Simulator()
        trace = TraceRecorder()
        rm = ResourceManager(make_cluster(24))
        bs = build_farm_bs(
            sim, rm, worker_work=2.0, initial_degree=6,
            trace=trace, control_period=10.0, worker_setup_time=2.0,
            rate_window=20.0,
            constants_kwargs={"add_burst": 1, "max_workers": 24},
            spawn_worker_managers=False,
        )
        src = TaskSource(sim, bs.farm.input, rate=1.2, work_model=ConstantWork(2.0))
        bs.assign_contract(ThroughputRangeContract(0.3, 0.8))
        sim.run(until=300.0)
        workers_loaded = bs.farm.num_workers
        # demand collapses: departure tracks the new 0.4/s input, inside
        # the stripe, but the farm is now over-provisioned relative to it
        src.set_rate(0.4)
        sim.run(until=900.0)
        # the farm kept the contract but never grew after the drop
        post_drop_adds = [
            e for e in trace.events_of(name="addWorker") if e.time > 320.0
        ]
        assert post_drop_adds == []
        snap = bs.farm.force_snapshot()
        assert 0.3 * 0.8 <= snap.departure_rate <= 0.8 * 1.2
