"""Integration tests: MIGRATE (migration vs growth recovery, §3)."""

import pytest

from repro.experiments.migration import run_migration
from repro.experiments.report import render_migration
from repro.gcm.abc_controller import FarmABC
from repro.rules.beans import ManagerOperation
from repro.sim.engine import Simulator
from repro.sim.farm import SimFarm
from repro.sim.resources import Node, ResourceManager, make_cluster
from repro.sim.workload import ConstantWork, finite_stream


@pytest.fixture(scope="module")
def result():
    return run_migration()


class TestMigrationExperiment:
    def test_both_policies_recover(self, result):
        assert result.both_recover

    def test_migration_first_actually_migrates(self, result):
        assert result.migration_first.migrations > 0

    def test_standard_never_migrates(self, result):
        assert result.standard.migrations == 0
        assert result.standard.additions > 0

    def test_migration_uses_fewer_nodes(self, result):
        assert result.migration_uses_fewer_nodes

    def test_migration_keeps_degree_lower(self, result):
        assert result.migration_first.final_workers <= result.standard.final_workers

    def test_render(self, result):
        text = render_migration(result)
        assert "MIGRATE" in text
        assert "migration-first" in text


class TestMigrateMechanism:
    def _farm(self, setup=0.0):
        sim = Simulator()
        farm = SimFarm(sim, emitter_node=Node("e"), worker_setup_time=setup)
        return sim, farm

    def test_migrate_moves_queue_and_retires_victim(self):
        sim, farm = self._farm()
        slow = Node("slow", speed=0.5)
        fast = Node("fast", speed=2.0)
        victim = farm.add_worker(slow)
        for t in finite_stream(6, ConstantWork(100.0)):
            victim.queue.put_nowait(t)
        replacement = farm.migrate_worker(victim, fast)
        assert len(replacement.queue) == 6
        assert victim._stopped
        assert replacement.node is fast
        assert farm.num_workers == 1

    def test_migrate_with_setup_delay_hands_over_later(self):
        sim, farm = self._farm(setup=5.0)
        victim = farm.add_worker(Node("old"))
        sim.run(until=6.0)  # victim active
        for t in finite_stream(4, ConstantWork(100.0)):
            victim.queue.put_nowait(t)
        replacement = farm.migrate_worker(victim, Node("new"))
        assert not victim.active          # no new dispatches
        assert len(replacement.queue) == 0  # handover not yet
        sim.run(until=12.0)
        assert len(replacement.queue) + (1 if replacement.current_task else 0) >= 3

    def test_migrate_inactive_worker_rejected(self):
        sim, farm = self._farm()
        w = farm.add_worker(Node("n"))
        farm.fail_worker(w)
        with pytest.raises(ValueError):
            farm.migrate_worker(w, Node("other"))

    def test_tasks_survive_migration(self):
        sim, farm = self._farm()
        victim = farm.add_worker(Node("slow", speed=0.2))
        for t in finite_stream(5, ConstantWork(1.0)):
            farm.submit(t)
        sim.run(until=2.0)
        farm.migrate_worker(victim, Node("fast", speed=5.0))
        sim.run(until=100.0)
        assert farm.completed == 5


class TestMigrateActuator:
    def _setup(self):
        sim = Simulator()
        slow = Node("slow", speed=1.0)
        slow.load_schedule.set_load(0.0, 0.8)  # effective 0.2
        fresh = Node("fresh", speed=1.0)
        rm = ResourceManager([slow, fresh])
        farm = SimFarm(sim, emitter_node=Node("e"), worker_setup_time=0.0)
        abc = FarmABC(farm, rm)
        return sim, farm, rm, abc, slow, fresh

    def test_migrates_slowest_to_fastest(self):
        sim, farm, rm, abc, slow, fresh = self._setup()
        rm.recruit(1, lambda n: n is slow)
        farm.add_worker(slow)
        abc._worker_nodes[farm.workers[0].worker_id] = [slow]
        assert abc.execute(ManagerOperation.MIGRATE)
        live = [w for w in farm.workers if not w._stopped]
        assert [w.node.name for w in live] == ["fresh"]
        assert not slow.allocated  # victim node released
        assert fresh.allocated

    def test_no_faster_node_returns_false(self):
        sim = Simulator()
        n1, n2 = Node("a"), Node("b")  # identical speeds
        rm = ResourceManager([n1, n2])
        farm = SimFarm(sim, emitter_node=Node("e"), worker_setup_time=0.0)
        abc = FarmABC(farm, rm)
        abc.bootstrap(1)
        assert not abc.execute(ManagerOperation.MIGRATE)

    def test_no_workers_returns_false(self):
        sim = Simulator()
        rm = ResourceManager(make_cluster(2))
        farm = SimFarm(sim, emitter_node=Node("e"), worker_setup_time=0.0)
        abc = FarmABC(farm, rm)
        assert not abc.execute(ManagerOperation.MIGRATE)
