"""FIG4 on the live backends: same rules, measured instead of simulated.

The acceptance bar for the process substrate: the run completes with the
unmodified Figure 5 rule set, a SIGKILL-injected crash loses zero tasks,
and throughput returns to contract via ``CheckRateLow``.
"""

import pytest

from repro.experiments.fig4 import main as fig4_main
from repro.experiments.fig4_live import (
    Fig4LiveConfig,
    make_backend,
    render_fig4_live,
    run_fig4_live,
)


def quick_config(backend: str, **overrides) -> Fig4LiveConfig:
    """A trimmed scenario: same phases, a couple of wall-clock seconds."""
    defaults = dict(
        backend=backend,
        contract_low=30.0,
        contract_high=90.0,
        task_work=0.03,
        starve_rate=15.0,
        feed_rate=70.0,
        starve_duration=0.4,
        total_tasks=120,
        crash_after=40,
        control_period=0.15,
    )
    defaults.update(overrides)
    return Fig4LiveConfig(**defaults)


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            make_backend(Fig4LiveConfig(backend="quantum"))

    def test_make_backend_shapes(self):
        for backend in ("thread", "process"):
            farm = make_backend(Fig4LiveConfig(backend=backend))
            try:
                assert farm.num_workers == 1
            finally:
                farm.shutdown()


class TestThreadBackend:
    def test_thread_run_completes_under_the_rules(self):
        r = run_fig4_live(quick_config("thread"))
        assert r.backend == "thread"
        assert r.zero_loss()
        assert r.completed == r.config.total_tasks
        assert r.grew(), "CheckRateLow must have added workers"
        assert r.starved_first(), "phase 1 starvation precedes growth"
        assert r.crashes == 0  # crash injection is a process-only concept


class TestProcessBackend:
    def test_process_run_survives_sigkill(self):
        """fig4 --backend=process: crash mid-stream, zero loss, recovery
        through the same rule set."""
        r = run_fig4_live(quick_config("process"))
        assert r.backend == "process"
        assert r.crashes >= 1, "the SIGKILL must actually have landed"
        assert r.zero_loss(), "at-least-once replay lost a task"
        assert r.completed == r.config.total_tasks
        assert r.grew(), "CheckRateLow must have restored/grown capacity"
        assert r.dead_letters == 0

    def test_process_run_without_crash(self):
        r = run_fig4_live(quick_config("process", inject_crash=False))
        assert r.crashes == 0
        assert r.zero_loss()
        assert r.grew()


class TestRendering:
    def test_render_mentions_fault_columns_for_process(self):
        r = run_fig4_live(quick_config("process", total_tasks=60, crash_after=20))
        text = render_fig4_live(r)
        assert "process backend" in text
        assert "task dispatches replayed" in text
        assert "zero loss" in text

    def test_cli_flag_runs_thread_backend(self, capsys):
        # the full CLI path, but on the quicker thread substrate
        assert fig4_main(["--backend", "thread"]) == 0
        out = capsys.readouterr().out
        assert "FIG4-LIVE" in out and "thread backend" in out
