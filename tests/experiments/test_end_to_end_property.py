"""End-to-end property: the farm manager meets every feasible contract.

For random (target, pool, worker-speed) configurations, after enough
simulated time one of exactly two outcomes must hold:

* the pool could sustain the target → the measured throughput satisfies
  the contract (within the windowed estimator's tolerance), or
* it could not → the manager has raised a ``noLocalPlan`` violation
  (reported to the user, §3.1's unrecoverable case).

This is the paper's core promise quantified over the configuration
space rather than at the two published operating points.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MinThroughputContract, ViolationKind, build_farm_bs
from repro.sim import ResourceManager, Simulator, make_cluster
from repro.sim.workload import ConstantWork, TaskSource


@given(
    target=st.floats(min_value=0.2, max_value=1.2),
    pool_size=st.integers(min_value=2, max_value=12),
    worker_rate=st.sampled_from([0.1, 0.2, 0.25, 0.5]),
)
@settings(max_examples=20, deadline=None)
def test_contract_met_or_exhaustion_reported(target, pool_size, worker_rate):
    sim = Simulator()
    rm = ResourceManager(make_cluster(pool_size))
    worker_work = 1.0 / worker_rate
    bs = build_farm_bs(
        sim,
        rm,
        worker_work=worker_work,
        initial_degree=1,
        control_period=10.0,
        worker_setup_time=5.0,
        rate_window=20.0,
        constants_kwargs={"add_burst": 1, "max_workers": pool_size},
        spawn_worker_managers=False,
    )
    # input pressure always exceeds the target so starvation never masks
    # the capacity question
    TaskSource(
        sim, bs.farm.input, rate=target * 1.3, work_model=ConstantWork(worker_work)
    )
    bs.assign_contract(MinThroughputContract(target))
    sim.run(until=600.0)

    capacity = pool_size * worker_rate
    snap = bs.farm.force_snapshot()
    kinds = {v.kind for v in bs.manager.violations_raised}

    if capacity >= target * 1.05:
        # feasible: the manager must have got there
        assert snap.departure_rate >= target * 0.85, (
            f"feasible target {target} (capacity {capacity}) not met: "
            f"{snap.departure_rate} with {snap.num_workers} workers"
        )
    else:
        # infeasible: the manager must have told the user
        assert ViolationKind.NO_LOCAL_PLAN in kinds, (
            f"infeasible target {target} (capacity {capacity}) raised no "
            f"noLocalPlan; got {kinds}"
        )


@given(
    low=st.floats(min_value=0.2, max_value=0.5),
    width=st.floats(min_value=0.3, max_value=0.8),
)
@settings(max_examples=10, deadline=None)
def test_range_contract_settles_inside_stripe(low, width):
    """With ample resources, a range contract settles inside the stripe
    and stops reconfiguring."""
    high = low + width
    sim = Simulator()
    rm = ResourceManager(make_cluster(24))
    bs = build_farm_bs(
        sim,
        rm,
        worker_work=5.0,
        initial_degree=1,
        control_period=10.0,
        worker_setup_time=5.0,
        rate_window=20.0,
        constants_kwargs={"add_burst": 1, "max_workers": 24},
        spawn_worker_managers=False,
    )
    from repro.core import ThroughputRangeContract

    # pressure inside the stripe so the contract is exactly satisfiable
    TaskSource(
        sim, bs.farm.input, rate=(low + high) / 2, work_model=ConstantWork(5.0)
    )
    bs.assign_contract(ThroughputRangeContract(low, high))
    sim.run(until=500.0)

    snap = bs.farm.force_snapshot()
    assert low * 0.8 <= snap.departure_rate <= high * 1.2
    # quiescence: no reconfiguration in the final stretch
    late_actions = [
        e
        for e in bs.trace.events
        if e.time > 400.0 and e.name in ("addWorker", "removeWorker")
    ]
    assert late_actions == []


def test_shrink_on_stale_window_does_not_limit_cycle():
    """Regression for a falsifying example Hypothesis found in the
    stripe property above: after the over-provisioned farm drained its
    backlog, ``CheckRateHigh`` re-fired on the still-hot departure
    window, shed a *second* worker, undershot the contract and locked
    the farm into a permanent 2↔4 worker limit cycle around the viable
    degree 3.  ``SimFarm.remove_worker`` now resets the departure
    window so the shrunk farm is measured from scratch."""
    from repro.core import ThroughputRangeContract

    low, high = 0.4375, 0.7421875
    sim = Simulator()
    rm = ResourceManager(make_cluster(24))
    bs = build_farm_bs(
        sim,
        rm,
        worker_work=5.0,
        initial_degree=1,
        control_period=10.0,
        worker_setup_time=5.0,
        rate_window=20.0,
        constants_kwargs={"add_burst": 1, "max_workers": 24},
        spawn_worker_managers=False,
    )
    TaskSource(
        sim, bs.farm.input, rate=(low + high) / 2, work_model=ConstantWork(5.0)
    )
    bs.assign_contract(ThroughputRangeContract(low, high))
    sim.run(until=500.0)

    removals = [e for e in bs.trace.events if e.name == "removeWorker"]
    assert len(removals) <= 1, "stale-window shrink must not cascade"
    late_actions = [
        e
        for e in bs.trace.events
        if e.time > 400.0 and e.name in ("addWorker", "removeWorker")
    ]
    assert late_actions == []
    snap = bs.farm.force_snapshot()
    assert low * 0.8 <= snap.departure_rate <= high * 1.2
