"""Integration tests: MC-2PC (§3.2 two-phase vs naive coordination)."""

import pytest

from repro.experiments.multiconcern import MultiConcernConfig, run_multiconcern
from repro.experiments.report import render_multiconcern


@pytest.fixture(scope="module")
def naive():
    return run_multiconcern(MultiConcernConfig(mode="naive"))


@pytest.fixture(scope="module")
def two_phase():
    return run_multiconcern(MultiConcernConfig(mode="two-phase"))


class TestNaiveMode:
    def test_leaks_plaintext(self, naive):
        """The §3.2 warning: committing before AM_sec reacts leaks data."""
        assert naive.leaks > 0

    def test_eventually_secured_reactively(self, naive):
        assert naive.exposed_at_end == 0
        assert naive.reactive_secure_actions > 0

    def test_perf_contract_still_met(self, naive):
        assert naive.perf_contract_met

    def test_growth_landed_on_untrusted_nodes(self, naive):
        assert naive.untrusted_workers > 0


class TestTwoPhaseMode:
    def test_zero_leaks(self, two_phase):
        """The protocol's whole point: not a single plaintext message."""
        assert two_phase.leaks == 0
        assert two_phase.leak_free

    def test_intents_amended_before_commit(self, two_phase):
        assert two_phase.amended_intents > 0

    def test_no_reactive_securing_needed(self, two_phase):
        assert two_phase.reactive_secure_actions == 0

    def test_perf_contract_met(self, two_phase):
        assert two_phase.perf_contract_met

    def test_all_untrusted_workers_secured(self, two_phase):
        assert two_phase.untrusted_workers > 0
        assert two_phase.secured_workers >= two_phase.untrusted_workers

    def test_security_contract_met(self, two_phase):
        assert two_phase.security_contract_met_at_end


class TestComparison:
    def test_both_modes_reach_same_capacity(self, naive, two_phase):
        assert naive.final_workers == two_phase.final_workers

    def test_only_naive_leaks(self, naive, two_phase):
        assert naive.leaks > two_phase.leaks == 0

    def test_render(self, naive, two_phase):
        text = render_multiconcern(naive, two_phase)
        assert "MC-2PC" in text
        assert "naive" in text and "two-phase" in text
