"""Integration tests: EXT-LOAD (external load adaptation, §4.2)."""

import pytest

from repro.experiments.loadspike import LoadSpikeConfig, run_loadspike
from repro.experiments.report import render_loadspike


@pytest.fixture(scope="module")
def result():
    return run_loadspike()


class TestLoadSpike:
    def test_dip_visible_after_spike(self, result):
        assert result.dip_visible
        assert result.throughput_dip < result.throughput_before

    def test_manager_adds_workers(self, result):
        assert result.workers_after > result.workers_before

    def test_contract_recovered(self, result):
        assert result.adapted
        assert result.throughput_after >= result.config.target_throughput * 0.9

    def test_add_events_after_spike_time(self, result):
        adds = [
            e.time
            for e in result.trace.events_of(name="addWorker")
            if e.time > result.config.spike_time
        ]
        assert adds

    def test_spiked_nodes_recorded(self, result):
        assert len(result.spiked_nodes) >= 1

    def test_render(self, result):
        text = render_loadspike(result)
        assert "EXT-LOAD" in text
        assert "adapted" in text

    def test_no_spike_no_adaptation(self):
        """Control: with zero load the farm never grows past warm-up."""
        r = run_loadspike(LoadSpikeConfig(spike_load=0.0, duration=400.0))
        post_spike_adds = [
            e.time
            for e in r.trace.events_of(name="addWorker")
            if e.time > r.config.spike_time + 50.0
        ]
        assert post_spike_adds == []
