"""Tests for the SPLIT and ABL-RULES experiment drivers."""

import pytest

from repro.experiments.ablation import sweep_control_period, sweep_hysteresis
from repro.experiments.fig3 import Fig3Config
from repro.experiments.report import render_ablation, render_split, table
from repro.experiments.split import (
    allocation_throughput,
    optimal_allocation,
    run_split,
    verify_throughput_split_soundness,
)


class TestSplitExperiment:
    def test_throughput_split_always_sound(self):
        checked, held = verify_throughput_split_soundness(n_cases=60)
        assert held == checked

    def test_proportional_close_to_optimal(self):
        r = run_split(n_cases=40)
        assert r.mean_efficiency >= 0.9
        assert r.min_efficiency >= 0.6

    def test_proportional_dominates_uniform_mostly(self):
        r = run_split(n_cases=40)
        assert r.beats_or_ties_uniform_fraction >= 0.8

    def test_optimal_allocation_is_water_filling(self):
        # works [4, 1]: budget 5 -> slow stage deserves 4 of 5
        assert optimal_allocation([4.0, 1.0], 5) == (4, 1)

    def test_optimal_never_worse_than_proportional(self):
        r = run_split(n_cases=30)
        for c in r.cases:
            assert c.thr_optimal >= c.thr_proportional - 1e-9

    def test_allocation_throughput(self):
        # stages 2s and 4s with degrees 1 and 2 -> both 2s -> 0.5 t/s
        assert allocation_throughput([2.0, 4.0], [1, 2]) == pytest.approx(0.5)

    def test_deterministic(self):
        a = run_split(n_cases=10, seed=3)
        b = run_split(n_cases=10, seed=3)
        assert [c.works for c in a.cases] == [c.works for c in b.cases]

    def test_render(self):
        r = run_split(n_cases=5)
        text = render_split(r, verify_throughput_split_soundness(n_cases=10))
        assert "SPLIT" in text
        assert "efficiency" in text


class TestAblation:
    def test_control_period_sweep_runs(self):
        rows = sweep_control_period(
            periods=(5.0, 20.0), base=Fig3Config(duration=300.0)
        )
        assert len(rows) == 2
        assert all(r.knob == "control_period" for r in rows)
        # both configurations still reach the contract
        assert all(r.time_to_contract is not None for r in rows)

    def test_slower_loop_is_no_faster(self):
        rows = sweep_control_period(
            periods=(5.0, 40.0), base=Fig3Config(duration=400.0)
        )
        fast, slow = rows
        assert slow.time_to_contract >= fast.time_to_contract

    def test_hysteresis_sweep_runs(self):
        rows = sweep_hysteresis(widths=(0.0, 0.4), duration=300.0)
        assert len(rows) == 2

    def test_degenerate_stripe_oscillates_more(self):
        rows = sweep_hysteresis(widths=(0.0, 0.6), duration=500.0)
        degenerate, wide = rows
        assert degenerate.reconfigurations >= wide.reconfigurations

    def test_render(self):
        rows = sweep_control_period(periods=(10.0,), base=Fig3Config(duration=200.0))
        text = render_ablation(rows, "control period sweep")
        assert "ABL-RULES" in text


class TestTableHelper:
    def test_alignment(self):
        text = table(["a", "long-header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("-")


class TestInitialDeploymentComparison:
    def test_model_initial_is_faster(self):
        from repro.experiments.ablation import compare_initial_deployment
        from repro.experiments.fig3 import Fig3Config

        ramp, model = compare_initial_deployment(Fig3Config(duration=300.0))
        assert model.time_to_contract < ramp.time_to_contract
        assert ramp.knob == "ramp-from-1"
        assert model.knob == "model-initial"
