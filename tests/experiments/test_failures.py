"""Integration tests: FAULT (worker-crash injection and recovery)."""

import pytest

from repro.experiments.failures import run_faults
from repro.experiments.report import render_faults
from repro.sim.engine import Simulator
from repro.sim.farm import SimFarm
from repro.sim.resources import make_cluster
from repro.sim.workload import ConstantWork, finite_stream


@pytest.fixture(scope="module")
def result():
    return run_faults()


class TestFaultExperiment:
    def test_crashes_injected(self, result):
        assert result.crashes == len(result.config.crash_times) * result.config.crashes_per_event

    def test_no_task_lost(self, result):
        assert result.no_task_lost
        assert result.completed == result.config.total_tasks

    def test_inflight_tasks_recovered(self, result):
        assert result.recovered_tasks >= result.crashes  # >=1 in flight each

    def test_replacements_recruited(self, result):
        assert result.replacements > 0

    def test_capacity_recovered(self, result):
        assert result.capacity_recovered

    def test_render(self, result):
        text = render_faults(result)
        assert "FAULT" in text
        assert "no task lost" in text


class TestFailWorkerMechanism:
    def _farm(self, n=3):
        sim = Simulator()
        nodes = make_cluster(n + 1)
        farm = SimFarm(sim, emitter_node=nodes[0], worker_setup_time=0.0)
        for node in nodes[1:]:
            farm.add_worker(node)
        return sim, farm

    def test_crash_mid_task_replays_task(self):
        sim, farm = self._farm(n=1)
        for t in finite_stream(2, ConstantWork(10.0)):
            farm.submit(t)
        sim.run(until=5.0)  # worker mid-task 0
        victim = farm.workers[0]
        recovered = farm.fail_worker(victim)
        assert recovered >= 1
        assert victim._stopped
        # a fresh worker finishes everything, including the replayed task
        farm.add_worker(make_cluster(1, prefix="spare")[0])
        sim.run(until=60.0)
        assert farm.completed == 2

    def test_crash_migrates_queue_to_survivors(self):
        sim, farm = self._farm(n=2)
        for t in finite_stream(10, ConstantWork(100.0)):
            farm.submit(t)
        sim.run(until=1.0)
        victim = farm.workers[0]
        queued_before = len(victim.queue)
        assert queued_before > 0
        farm.fail_worker(victim)
        assert len(victim.queue) == 0
        assert farm.num_workers == 1

    def test_crash_sole_worker_requeues_to_input(self):
        sim, farm = self._farm(n=1)
        for t in finite_stream(5, ConstantWork(100.0)):
            farm.submit(t)
        sim.run(until=1.0)
        farm.fail_worker(farm.workers[0])
        # let the emitter return the task it had in hand to the input
        sim.run(until=2.0)
        # everything is back in the input store or replayed there
        assert farm.pending == 5
        assert farm.num_workers == 0

    def test_double_crash_is_noop(self):
        sim, farm = self._farm(n=2)
        victim = farm.workers[0]
        assert farm.fail_worker(victim) == 0 or True  # first crash
        assert farm.fail_worker(victim) == 0          # second is a no-op
        assert farm.failures == 1

    def test_failures_counter(self):
        sim, farm = self._farm(n=3)
        farm.fail_worker(farm.workers[0])
        farm.fail_worker(farm.workers[1])
        assert farm.failures == 2
