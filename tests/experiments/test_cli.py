"""Tests for the ``python -m repro.experiments`` runner."""

from repro.experiments.__main__ import DEFAULT_ORDER, RUNNERS, main


class TestCLI:
    def test_every_default_key_has_a_runner(self):
        assert set(DEFAULT_ORDER) <= set(RUNNERS)

    def test_unknown_key_is_an_error(self, capsys):
        assert main(["definitely-not-an-experiment"]) == 2
        out = capsys.readouterr().out
        assert "unknown experiment" in out

    def test_single_experiment_runs(self, capsys):
        assert main(["patterns"]) == 0
        out = capsys.readouterr().out
        assert "PATTERNS" in out

    def test_alias_mc(self, capsys):
        assert main(["mc"]) == 0
        out = capsys.readouterr().out
        assert "MC-2PC" in out

    def test_subset_order_preserved(self, capsys):
        assert main(["split", "patterns"]) == 0
        out = capsys.readouterr().out
        assert out.index("SPLIT") < out.index("PATTERNS")
