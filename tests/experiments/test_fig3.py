"""Integration tests: the FIG3 scenario reproduces Figure 3's shape."""

import pytest

from repro.experiments.fig3 import Fig3Config, run_fig3
from repro.experiments.report import render_fig3


@pytest.fixture(scope="module")
def result():
    return run_fig3()


class TestFig3Shape:
    def test_contract_eventually_met(self, result):
        assert result.contract_met
        assert result.time_to_contract is not None

    def test_ramp_is_monotone_staircase(self, result):
        assert result.staircase_is_monotone()

    def test_starts_from_one_worker(self, result):
        assert result.workers_series[0][1] == 1

    def test_workers_added_stepwise(self, result):
        """At least the analytically required number of additions."""
        # 0.6 target at 0.2/worker needs >= 3 workers => >= 2 additions
        assert len(result.add_worker_times) >= 2

    def test_no_oscillation(self, result):
        assert result.remove_worker_count == 0

    def test_throughput_crosses_contract_once_and_stays(self, result):
        target = result.config.target_throughput
        crossed = False
        for t, v in result.throughput_series:
            if v >= target:
                crossed = True
            # after settling (give 60s of slack post-crossing), no dip far
            # below the contract
            if crossed and t > (result.time_to_contract or 0) + 60.0:
                assert v >= target * 0.85
        assert crossed

    def test_final_parallelism_close_to_optimal(self, result):
        """The staircase stops within a couple of workers of the analytic
        optimum (input-bound at input_rate / worker_rate)."""
        cfg = result.config
        optimal = cfg.input_rate / cfg.worker_rate
        assert result.final_workers <= optimal + 2

    def test_render_mentions_contract_and_checks(self, result):
        text = render_fig3(result)
        assert "FIG3" in text
        assert "contract met" in text
        assert "True" in text


class TestFig3Determinism:
    def test_same_config_same_trace(self):
        a = run_fig3(Fig3Config(duration=200.0))
        b = run_fig3(Fig3Config(duration=200.0))
        assert a.trace.event_names() == b.trace.event_names()
        assert a.workers_series == b.workers_series


class TestFig3Parametrisation:
    def test_higher_target_needs_more_workers(self):
        lo = run_fig3(Fig3Config(target_throughput=0.4, input_rate=0.5, duration=400.0))
        hi = run_fig3(Fig3Config(target_throughput=0.8, input_rate=1.0, duration=400.0))
        assert hi.final_workers > lo.final_workers

    def test_unreachable_target_escalates(self):
        """Target beyond the pool's capacity: manager runs out of plans."""
        r = run_fig3(
            Fig3Config(
                target_throughput=2.0, input_rate=2.5, pool_size=4, duration=300.0
            )
        )
        assert not r.contract_met
        kinds = [v.kind for v in r.bs.manager.violations_raised]
        assert "noLocalPlan" in kinds


class TestHotSpotAdaptation:
    """[10]'s claim recalled in §4.1: contract satisfaction is maintained
    'in the case of temporary hot spots in image processing'."""

    def test_manager_rides_out_hot_spot(self):
        from repro.core import MinThroughputContract, build_farm_bs
        from repro.sim import ResourceManager, Simulator, TraceRecorder, make_cluster
        from repro.sim.workload import ConstantWork, HotSpotWork, TaskSource

        sim = Simulator()
        trace = TraceRecorder()
        rm = ResourceManager(make_cluster(20))
        bs = build_farm_bs(
            sim, rm, worker_work=5.0, initial_degree=4,
            trace=trace, control_period=10.0, worker_setup_time=5.0,
            rate_window=20.0,
            constants_kwargs={"add_burst": 1, "max_workers": 20},
            spawn_worker_managers=False,
        )
        # tasks 80-120 are 3x harder: capacity halves mid-run
        work = HotSpotWork(ConstantWork(5.0), 80, 120, factor=3.0)
        TaskSource(sim, bs.farm.input, rate=0.8, work_model=work)
        bs.assign_contract(MinThroughputContract(0.6))

        def sample():
            trace.sample("thr", sim.now, bs.farm.force_snapshot().departure_rate)

        sim.periodic(5.0, sample)
        sim.run(until=600.0)

        # workers were added while the hot spot was being digested
        assert trace.count("addWorker") >= 1
        # and the contract is restored by the end of the run
        assert trace.final_value("thr") >= 0.6 * 0.9
