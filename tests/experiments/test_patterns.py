"""Tests for the PATTERNS experiment (farm vs map trade-off)."""

import pytest

from repro.experiments.patterns import run_patterns
from repro.experiments.report import render_patterns


@pytest.fixture(scope="module")
def result():
    return run_patterns(degrees=(2, 4, 8), task_work=8.0, n_tasks=60)


class TestPatternsTradeoff:
    def test_all_cells_present(self, result):
        assert len(result.points) == 6
        assert result.degrees() == [2, 4, 8]

    def test_all_tasks_complete(self, result):
        assert all(p.completed == 60 for p in result.points)

    def test_farm_wins_or_ties_throughput_everywhere(self, result):
        for d in result.degrees():
            assert result.farm_wins_throughput(d)

    def test_map_wins_latency_everywhere_at_these_overheads(self, result):
        """work/degree + 0.1 < work for every degree >= 2."""
        for d in result.degrees():
            assert result.map_wins_latency(d)

    def test_map_latency_tracks_model(self, result):
        """Unloaded map latency ~ work/degree + scatter + gather."""
        for d in result.degrees():
            p = result.point("map", d)
            assert p.mean_latency == pytest.approx(8.0 / d + 0.1, rel=0.05)

    def test_farm_latency_is_service_time(self, result):
        for d in result.degrees():
            p = result.point("farm", d)
            assert p.mean_latency == pytest.approx(8.0, rel=0.05)

    def test_throughput_scales_with_degree(self, result):
        for pattern in ("farm", "map"):
            thr = [result.point(pattern, d).throughput for d in result.degrees()]
            assert thr == sorted(thr)
            assert thr[-1] > 2.5 * thr[0]

    def test_point_lookup_error(self, result):
        with pytest.raises(KeyError):
            result.point("farm", 999)

    def test_render(self, result):
        text = render_patterns(result)
        assert "PATTERNS" in text
        assert "latency winner" in text
        assert "map" in text
