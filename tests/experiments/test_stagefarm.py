"""Integration tests: STAGE-FARM (§4.2 stage-to-farm transformation)."""

import pytest

from repro.core.adaptation import promote_stage_to_farm
from repro.core.events import Events
from repro.experiments.report import render_stagefarm
from repro.experiments.stagefarm import StageFarmConfig, run_stagefarm
from repro.sim.engine import Simulator
from repro.sim.pipeline import SeqStage
from repro.sim.queues import Store
from repro.sim.resources import Node, ResourceManager, make_cluster
from repro.sim.workload import ConstantWork, finite_stream


@pytest.fixture(scope="module")
def result():
    return run_stagefarm()


class TestStageFarmExperiment:
    def test_dip_below_contract(self, result):
        assert result.dip_visible

    def test_stage_reports_unsatisfiable(self, result):
        viols = [
            e
            for e in result.trace.events_of("AM_C", Events.RAISE_VIOL)
            if e.detail.get("kind") == "contractUnsatisfiable"
        ]
        assert viols

    def test_promotion_fires(self, result):
        assert result.promoted
        assert result.promotion_time > result.config.spike_time

    def test_farm_stage_event_names_replacement(self, result):
        ev = result.trace.first(Events.FARM_STAGE, actor="AM_A")
        assert ev.detail["stage"] == "AM_C"
        assert "farm" in ev.detail["replacement"]

    def test_contract_recovered(self, result):
        assert result.recovered
        assert result.throughput_after >= result.config.contract_low * 0.95

    def test_replacement_manager_in_hierarchy(self, result):
        names = [c.name for c in result.app.am_a.children]
        assert "AM_C" not in names
        assert any("AM_C.farm" in n for n in names)

    def test_promoter_is_one_shot(self, result):
        assert result.app.am_a.stage_promoters == {}

    def test_render(self, result):
        text = render_stagefarm(result)
        assert "STAGE-FARM" in text
        assert "promoted" in text

    def test_no_spike_no_promotion(self):
        r = run_stagefarm(StageFarmConfig(consumer_load=0.0, duration=400.0))
        assert not r.promoted


class TestPromoteMechanism:
    def _stage(self, sim, work=2.0):
        inp = Store(sim, name="in")
        done = []
        stage = SeqStage(
            sim,
            name="stage",
            node=Node("snode"),
            input_store=inp,
            output_store=None,
            service_work=work,
            on_done=lambda t: done.append(t.task_id),
        )
        return stage, inp, done

    def test_farm_takes_over_stores_and_callback(self):
        sim = Simulator()
        stage, inp, done = self._stage(sim)
        rm = ResourceManager(make_cluster(4))
        for t in finite_stream(6, ConstantWork(1.0)):
            inp.put_nowait(t)
        farm, abc = promote_stage_to_farm(
            sim, stage, rm, degree=3, worker_setup_time=0.0
        )
        sim.run(until=60.0)
        assert sorted(done) == [0, 1, 2, 3, 4, 5]
        assert farm.completed == 6
        assert farm.input is inp

    def test_workers_apply_stage_work_not_task_work(self):
        """The farmed stage's service time is the stage's, as §4.2 asks."""
        sim = Simulator()
        stage, inp, done = self._stage(sim, work=2.0)
        rm = ResourceManager(make_cluster(2))
        # the task's own work is huge; the stage override must win
        task = finite_stream(1, ConstantWork(1000.0))[0]
        inp.put_nowait(task)
        farm, abc = promote_stage_to_farm(
            sim, stage, rm, degree=1, worker_setup_time=0.0
        )
        sim.run(until=30.0)
        assert done == [0]
        assert task.completed_at < 10.0  # served in ~2s, not 1000s

    def test_promotion_scales_throughput(self):
        sim = Simulator()
        stage, inp, done = self._stage(sim, work=4.0)
        rm = ResourceManager(make_cluster(8))
        tasks = finite_stream(16, ConstantWork(1.0))
        for t in tasks:
            inp.put_nowait(t)
        promote_stage_to_farm(sim, stage, rm, degree=4, worker_setup_time=0.0)
        sim.run(until=60.0)
        # 16 tasks x 4s over 4 workers ~ 16s; sequential would be 64s
        assert len(done) == 16
        assert max(t.completed_at for t in tasks) <= 25.0

    def test_zero_work_stage_rejected(self):
        sim = Simulator()
        stage, inp, done = self._stage(sim, work=0.0)
        rm = ResourceManager(make_cluster(2))
        with pytest.raises(ValueError):
            promote_stage_to_farm(sim, stage, rm, degree=1)

    def test_bad_degree_rejected(self):
        sim = Simulator()
        stage, inp, done = self._stage(sim)
        rm = ResourceManager(make_cluster(2))
        with pytest.raises(ValueError):
            promote_stage_to_farm(sim, stage, rm, degree=0)
