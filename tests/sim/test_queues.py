"""Tests for Store channels: FIFO semantics, capacity, conservation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimulationError, Simulator
from repro.sim.queues import Store, drain, rebalance, transfer


class TestStoreBasics:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append(item)

        store.put_nowait("a")
        sim.process(consumer())
        sim.run()
        assert got == ["a"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((sim.now, item))

        sim.process(consumer())
        sim.schedule(5.0, store.put_nowait, "late")
        sim.run()
        assert got == [(5.0, "late")]

    def test_fifo_order_of_items(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(5):
            store.put_nowait(i)
        got = []

        def consumer():
            while True:
                item = yield store.get()
                got.append(item)
                if item == 4:
                    return

        sim.process(consumer())
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_fifo_order_of_getters(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer(name):
            item = yield store.get()
            got.append((name, item))

        sim.process(consumer("first"))
        sim.process(consumer("second"))
        sim.schedule(1.0, store.put_nowait, "x")
        sim.schedule(2.0, store.put_nowait, "y")
        sim.run()
        assert got == [("first", "x"), ("second", "y")]

    def test_try_get(self):
        sim = Simulator()
        store = Store(sim)
        ok, item = store.try_get()
        assert not ok and item is None
        store.put_nowait(7)
        ok, item = store.try_get()
        assert ok and item == 7

    def test_len_and_peek(self):
        sim = Simulator()
        store = Store(sim)
        store.put_nowait("a")
        store.put_nowait("b")
        assert len(store) == 2
        assert store.peek_items() == ["a", "b"]
        assert len(store) == 2  # peek is non-destructive


class TestCapacity:
    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Store(Simulator(), capacity=0)

    def test_put_nowait_raises_when_full(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        store.put_nowait("a")
        with pytest.raises(SimulationError):
            store.put_nowait("b")

    def test_try_put_respects_capacity(self):
        sim = Simulator()
        store = Store(sim, capacity=2)
        assert store.try_put(1)
        assert store.try_put(2)
        assert not store.try_put(3)
        assert store.is_full

    def test_put_blocks_until_capacity_frees(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        store.put_nowait("a")
        done = []

        def producer():
            yield store.put("b")
            done.append(sim.now)

        def consumer():
            yield sim.timeout(3.0)
            ok, item = store.try_get()
            assert ok and item == "a"

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert done == [3.0]
        assert store.peek_items() == ["b"]

    def test_blocked_put_feeds_waiting_getter(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        store.put_nowait("a")
        got = []

        def producer():
            yield store.put("b")

        def consumer():
            yield sim.timeout(1.0)
            x = yield store.get()
            got.append(x)
            y = yield store.get()
            got.append(y)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == ["a", "b"]


class TestConservation:
    @given(
        st.lists(
            st.tuples(st.floats(min_value=0.0, max_value=100.0), st.integers(0, 100)),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_put_equals_got_plus_queued(self, schedule):
        """total_put == total_got + len(items) at quiescence."""
        sim = Simulator()
        store = Store(sim)
        n_consume = len(schedule) // 2

        for t, val in schedule:
            sim.schedule(t, store.put_nowait, val)

        def consumer():
            for _ in range(n_consume):
                yield store.get()

        sim.process(consumer())
        sim.run()
        assert store.total_put == len(schedule)
        assert store.total_put == store.total_got + len(store.items)


class TestDrainTransfer:
    def _store_with(self, sim, items):
        s = Store(sim)
        for i in items:
            s.put_nowait(i)
        return s

    def test_drain_all(self):
        sim = Simulator()
        s = self._store_with(sim, [1, 2, 3])
        assert drain(s) == [1, 2, 3]
        assert len(s) == 0
        assert s.total_got == 3

    def test_drain_count(self):
        sim = Simulator()
        s = self._store_with(sim, [1, 2, 3])
        assert drain(s, 2) == [1, 2]
        assert s.peek_items() == [3]

    def test_drain_more_than_available(self):
        sim = Simulator()
        s = self._store_with(sim, [1])
        assert drain(s, 10) == [1]

    def test_transfer_preserves_order(self):
        sim = Simulator()
        a = self._store_with(sim, [1, 2, 3])
        b = self._store_with(sim, [9])
        moved = transfer(a, b, 2)
        assert moved == 2
        assert b.peek_items() == [9, 1, 2]
        assert a.peek_items() == [3]

    def test_rebalance_equalises(self):
        sim = Simulator()
        a = self._store_with(sim, list(range(10)))
        b = self._store_with(sim, [])
        c = self._store_with(sim, [])
        moved = rebalance([a, b, c])
        lengths = sorted(len(s) for s in (a, b, c))
        assert max(lengths) - min(lengths) <= 1
        assert sum(lengths) == 10
        assert moved > 0

    def test_rebalance_single_store_noop(self):
        sim = Simulator()
        a = self._store_with(sim, [1, 2])
        assert rebalance([a]) == 0

    @given(st.lists(st.integers(0, 30), min_size=2, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_rebalance_conserves_and_flattens(self, sizes):
        sim = Simulator()
        stores = []
        counter = 0
        for n in sizes:
            s = Store(sim)
            for _ in range(n):
                s.put_nowait(counter)
                counter += 1
            stores.append(s)
        total_before = sum(len(s) for s in stores)
        rebalance(stores)
        lengths = [len(s) for s in stores]
        assert sum(lengths) == total_before
        assert max(lengths) - min(lengths) <= 1
        # no duplicates or losses
        all_items = [i for s in stores for i in s.peek_items()]
        assert sorted(all_items) == list(range(total_before))


class TestOnPutObserver:
    def test_fires_on_put_nowait(self):
        sim = Simulator()
        store = Store(sim)
        seen = []
        store.on_put = seen.append
        store.put_nowait("a")
        store.try_put("b")
        assert seen == ["a", "b"]

    def test_fires_on_blocking_put(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        seen = []
        store.on_put = seen.append

        def producer():
            yield store.put("a")
            yield store.put("b")

        def consumer():
            yield sim.timeout(1.0)
            store.try_get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert seen == ["a", "b"]

    def test_not_fired_by_bulk_moves(self):
        """drain/transfer/rebalance shuffle work; they are not arrivals."""
        sim = Simulator()
        src, dst = Store(sim), Store(sim)
        seen = []
        dst.on_put = seen.append
        for i in range(4):
            src.put_nowait(i)
        transfer(src, dst, 3)
        assert seen == []
        assert len(dst) == 3
