"""Tests for monitoring probes (rate estimators, utilisation, queue stats)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.metrics import (
    EwmaRateEstimator,
    TimeWeightedMean,
    UtilizationMeter,
    WindowRateEstimator,
    queue_length_stats,
    queue_length_variance,
    stddev,
)


class TestWindowRateEstimator:
    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowRateEstimator(window=0.0)

    def test_constant_rate_stream(self):
        est = WindowRateEstimator(window=10.0)
        for i in range(1, 101):
            est.mark(i * 0.5)  # 2 events/sec
        assert est.rate(50.0) == pytest.approx(2.0, rel=0.05)

    def test_warmup_uses_elapsed_time(self):
        est = WindowRateEstimator(window=10.0)
        est.mark(1.0)
        est.mark(2.0)
        # only 2s elapsed: rate should be 2 events / 2 s = 1, not 2/10.
        assert est.rate(2.0) == pytest.approx(1.0)

    def test_rate_zero_before_any_time(self):
        est = WindowRateEstimator(window=5.0)
        assert est.rate(0.0) == 0.0

    def test_events_expire_outside_window(self):
        est = WindowRateEstimator(window=10.0)
        for t in range(1, 11):
            est.mark(float(t))
        assert est.count_in_window(10.0) == 10
        assert est.count_in_window(25.0) == 0
        assert est.rate(25.0) == 0.0

    def test_mark_count(self):
        est = WindowRateEstimator(window=10.0)
        est.mark(1.0, count=5)
        assert est.total == 5
        assert est.count_in_window(1.0) == 5

    def test_non_monotone_marks_rejected(self):
        est = WindowRateEstimator(window=10.0)
        est.mark(5.0)
        with pytest.raises(ValueError):
            est.mark(4.0)

    def test_reset(self):
        est = WindowRateEstimator(window=10.0)
        for t in range(1, 6):
            est.mark(float(t))
        est.reset(5.0)
        assert est.rate(6.0) == 0.0
        est.mark(5.5)
        assert est.rate(6.0) == pytest.approx(1.0)

    @given(
        st.integers(min_value=1, max_value=200),
        st.floats(min_value=0.05, max_value=5.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_rate_matches_exact_count(self, n, gap):
        """After warm-up, windowed rate == events-in-window / window."""
        window = 10.0
        est = WindowRateEstimator(window=window)
        times = [gap * (i + 1) for i in range(n)]
        for t in times:
            est.mark(t)
        now = times[-1]
        in_window = sum(1 for t in times if now - window < t <= now)
        effective = min(window, now)
        assert est.rate(now) == pytest.approx(in_window / effective)


class TestEwmaRateEstimator:
    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            EwmaRateEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaRateEstimator(alpha=1.5)

    def test_converges_to_constant_rate(self):
        est = EwmaRateEstimator(alpha=0.5)
        for i in range(1, 50):
            est.mark(i * 0.25)  # 4 events/sec
        assert est.rate(50 * 0.25) == pytest.approx(4.0, rel=0.05)

    def test_zero_before_two_events(self):
        est = EwmaRateEstimator()
        assert est.rate(0.0) == 0.0
        est.mark(1.0)
        assert est.rate(1.0) == 0.0

    def test_silence_decays_rate(self):
        est = EwmaRateEstimator(alpha=0.5)
        for i in range(1, 20):
            est.mark(i * 1.0)
        busy = est.rate(19.0)
        quiet = est.rate(100.0)
        assert quiet < busy

    def test_non_monotone_rejected(self):
        est = EwmaRateEstimator()
        est.mark(2.0)
        with pytest.raises(ValueError):
            est.mark(1.0)


class TestUtilizationMeter:
    def test_fully_idle(self):
        m = UtilizationMeter()
        assert m.utilization(10.0) == 0.0

    def test_fully_busy(self):
        m = UtilizationMeter()
        m.set_busy(0.0)
        assert m.utilization(10.0) == pytest.approx(1.0)

    def test_half_busy(self):
        m = UtilizationMeter()
        m.set_busy(0.0)
        m.set_idle(5.0)
        assert m.utilization(10.0) == pytest.approx(0.5)

    def test_multiple_intervals(self):
        m = UtilizationMeter()
        m.set_busy(0.0)
        m.set_idle(2.0)
        m.set_busy(4.0)
        m.set_idle(6.0)
        assert m.utilization(8.0) == pytest.approx(0.5)

    def test_double_set_busy_is_noop(self):
        m = UtilizationMeter()
        m.set_busy(0.0)
        m.set_busy(3.0)
        m.set_idle(4.0)
        assert m.utilization(4.0) == pytest.approx(1.0)

    def test_idle_without_busy_is_noop(self):
        m = UtilizationMeter()
        m.set_idle(5.0)
        assert m.utilization(10.0) == 0.0


class TestTimeWeightedMean:
    def test_constant_signal(self):
        twm = TimeWeightedMean(initial=3.0)
        assert twm.mean(10.0) == pytest.approx(3.0)

    def test_step_signal(self):
        twm = TimeWeightedMean(initial=0.0)
        twm.update(5.0, 10.0)
        # 5s at 0 then 5s at 10 -> mean 5
        assert twm.mean(10.0) == pytest.approx(5.0)

    def test_current_value(self):
        twm = TimeWeightedMean()
        twm.update(1.0, 7.0)
        assert twm.current == 7.0

    def test_out_of_order_update_rejected(self):
        twm = TimeWeightedMean()
        twm.update(5.0, 1.0)
        with pytest.raises(ValueError):
            twm.update(4.0, 2.0)


class TestQueueStats:
    def test_empty(self):
        assert queue_length_stats([]) == (0.0, 0.0, 0, 0)
        assert queue_length_variance([]) == 0.0

    def test_uniform_queues_zero_variance(self):
        assert queue_length_variance([4, 4, 4]) == 0.0

    def test_known_variance(self):
        # lengths 0 and 10: mean 5, var 25
        assert queue_length_variance([0, 10]) == pytest.approx(25.0)

    def test_stats_min_max(self):
        mean, var, lo, hi = queue_length_stats([1, 5, 3])
        assert (lo, hi) == (1, 5)
        assert mean == pytest.approx(3.0)

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_variance_non_negative_and_zero_iff_constant(self, xs):
        var = queue_length_variance(xs)
        assert var >= 0.0
        if len(set(xs)) == 1:
            assert var == 0.0
        if var == 0.0:
            assert len(set(xs)) == 1

    def test_stddev(self):
        assert stddev([]) == 0.0
        assert stddev([5.0]) == 0.0
        assert stddev([2.0, 4.0]) == pytest.approx(1.0)
        assert stddev([1.0, 1.0, 1.0]) == pytest.approx(0.0)
