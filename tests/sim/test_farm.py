"""Tests for the simulated task farm: dispatch, actuators, monitoring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.farm import DispatchPolicy, SimFarm
from repro.sim.network import Network
from repro.sim.resources import Domain, Node, make_cluster
from repro.sim.workload import ConstantWork, TaskSource, finite_stream


def build_farm(sim, n_workers=2, *, work=1.0, setup=0.0, dispatch=DispatchPolicy.ROUND_ROBIN, network=None):
    nodes = make_cluster(n_workers + 1)
    farm = SimFarm(
        sim,
        name="farm",
        emitter_node=nodes[0],
        network=network,
        dispatch=dispatch,
        worker_setup_time=setup,
    )
    for n in nodes[1:]:
        farm.add_worker(n)
    return farm


class TestBasicFlow:
    def test_all_tasks_complete(self):
        sim = Simulator()
        farm = build_farm(sim, n_workers=3)
        for t in finite_stream(30, ConstantWork(1.0)):
            farm.submit(t)
        sim.run()
        assert farm.completed == 30
        assert farm.pending == 0
        assert len(farm.output) == 30

    def test_results_carry_timing(self):
        sim = Simulator()
        farm = build_farm(sim, n_workers=1)
        for t in finite_stream(3, ConstantWork(2.0)):
            farm.submit(t)
        sim.run()
        done = farm.output.peek_items()
        assert all(t.completed_at is not None for t in done)
        assert all(t.started_at is not None for t in done)

    def test_throughput_scales_with_workers(self):
        """Twice the workers -> roughly half the makespan (farm model)."""
        def makespan(n):
            sim = Simulator()
            farm = build_farm(sim, n_workers=n)
            for t in finite_stream(40, ConstantWork(1.0)):
                farm.submit(t)
            sim.run()
            return sim.now

        t2, t4 = makespan(2), makespan(4)
        assert t4 < t2
        assert t2 / t4 == pytest.approx(2.0, rel=0.25)

    def test_on_result_callback(self):
        sim = Simulator()
        nodes = make_cluster(2)
        seen = []
        farm = SimFarm(
            sim,
            emitter_node=nodes[0],
            worker_setup_time=0.0,
            on_result=lambda t: seen.append(t.task_id),
        )
        farm.add_worker(nodes[1])
        for t in finite_stream(5, ConstantWork(0.5)):
            farm.submit(t)
        sim.run()
        assert sorted(seen) == [0, 1, 2, 3, 4]

    def test_invalid_dispatch_policy(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            SimFarm(sim, emitter_node=Node("e"), dispatch="random-guess")


class TestDispatchPolicies:
    def test_round_robin_spreads_tasks(self):
        sim = Simulator()
        farm = build_farm(sim, n_workers=3, work=100.0)
        for t in finite_stream(9, ConstantWork(100.0)):
            farm.submit(t)
        sim.run(until=1.0)
        counts = [len(w.queue) + (1 if w.current_task else 0) for w in farm.workers]
        assert counts == [3, 3, 3]

    def test_shortest_queue_balances(self):
        sim = Simulator()
        farm = build_farm(sim, n_workers=2, dispatch=DispatchPolicy.SHORTEST_QUEUE)
        for t in finite_stream(10, ConstantWork(50.0)):
            farm.submit(t)
        sim.run(until=1.0)
        lens = [len(w.queue) + (1 if w.current_task else 0) for w in farm.workers]
        assert abs(lens[0] - lens[1]) <= 1


class TestWorkerLifecycle:
    def test_setup_delay_defers_processing(self):
        sim = Simulator()
        nodes = make_cluster(2)
        farm = SimFarm(sim, emitter_node=nodes[0], worker_setup_time=5.0)
        farm.add_worker(nodes[1])
        for t in finite_stream(1, ConstantWork(1.0)):
            farm.submit(t)
        sim.run(until=4.0)
        assert farm.completed == 0
        sim.run()
        assert farm.completed == 1
        assert sim.now >= 5.0

    def test_add_worker_increases_parallelism(self):
        sim = Simulator()
        farm = build_farm(sim, n_workers=1)
        assert farm.num_workers == 1
        farm.add_worker(Node("extra"))
        sim.run(until=0.1)
        assert farm.num_workers == 2

    def test_remove_worker_migrates_queue(self):
        sim = Simulator()
        farm = build_farm(sim, n_workers=3, work=100.0)
        for t in finite_stream(12, ConstantWork(100.0)):
            farm.submit(t)
        sim.run(until=1.0)
        total_before = farm.pending
        removed = farm.remove_worker()
        assert removed is not None
        assert not removed.active
        assert farm.pending == total_before  # nothing lost
        assert len(removed.queue) == 0

    def test_remove_worker_never_below_one(self):
        sim = Simulator()
        farm = build_farm(sim, n_workers=1)
        assert farm.remove_worker() is None
        assert farm.num_workers == 1

    def test_removed_worker_finishes_current_task(self):
        sim = Simulator()
        farm = build_farm(sim, n_workers=2)
        for t in finite_stream(2, ConstantWork(10.0)):
            farm.submit(t)
        sim.run(until=1.0)  # both workers busy
        farm.remove_worker()
        sim.run()
        assert farm.completed == 2


class TestBlackout:
    def test_add_worker_causes_blackout(self):
        sim = Simulator()
        nodes = make_cluster(3)
        farm = SimFarm(sim, emitter_node=nodes[0], worker_setup_time=5.0)
        farm.add_worker(nodes[1])
        assert farm.in_blackout
        assert farm.snapshot() is None
        sim.run(until=5.1)
        assert not farm.in_blackout
        assert farm.snapshot() is not None

    def test_force_snapshot_ignores_blackout(self):
        sim = Simulator()
        nodes = make_cluster(2)
        farm = SimFarm(sim, emitter_node=nodes[0], worker_setup_time=5.0)
        farm.add_worker(nodes[1])
        assert farm.in_blackout
        assert farm.force_snapshot() is not None

    def test_reconfiguration_counter(self):
        sim = Simulator()
        farm = build_farm(sim, n_workers=2)
        n0 = farm.reconfigurations
        farm.add_worker(Node("x"))
        farm.remove_worker()
        assert farm.reconfigurations == n0 + 2


class TestMonitoring:
    def test_snapshot_rates_reflect_traffic(self):
        sim = Simulator()
        farm = build_farm(sim, n_workers=4)
        TaskSource(sim, farm.input, rate=2.0, work_model=ConstantWork(1.0), total=60)
        sim.run(until=25.0)
        snap = farm.snapshot()
        assert snap is not None
        assert snap.arrival_rate == pytest.approx(2.0, rel=0.2)
        assert snap.departure_rate == pytest.approx(2.0, rel=0.2)
        assert snap.num_workers == 4

    def test_snapshot_queue_variance_zero_when_balanced(self):
        sim = Simulator()
        farm = build_farm(sim, n_workers=2, work=100.0)
        for t in finite_stream(8, ConstantWork(100.0)):
            farm.submit(t)
        sim.run(until=1.0)
        snap = farm.snapshot()
        assert snap.queue_variance == pytest.approx(0.0)

    def test_balance_load_reduces_variance(self):
        sim = Simulator()
        farm = build_farm(sim, n_workers=2, work=100.0)
        sim.run(until=0.1)
        # stuff one queue directly to create imbalance
        for t in finite_stream(10, ConstantWork(100.0)):
            farm.workers[0].queue.put_nowait(t)
        var_before = farm.force_snapshot().queue_variance
        moved = farm.balance_load()
        var_after = farm.force_snapshot().queue_variance
        assert moved > 0
        assert var_after < var_before

    def test_pending_accounting(self):
        sim = Simulator()
        farm = build_farm(sim, n_workers=2, work=10.0)
        for t in finite_stream(6, ConstantWork(10.0)):
            farm.submit(t)
        sim.run(until=1.0)
        # 2 in service, 4 queued
        assert farm.pending == 6
        sim.run()
        assert farm.pending == 0

    def test_drained_requires_end_of_stream(self):
        sim = Simulator()
        farm = build_farm(sim, n_workers=1)
        farm.submit(finite_stream(1, ConstantWork(1.0))[0])
        sim.run()
        assert not farm.drained
        farm.notify_end_of_stream()
        assert farm.drained


class TestNetworkIntegration:
    def test_transfers_logged(self):
        sim = Simulator()
        net = Network()
        lan = Domain("lan")
        nodes = [Node(f"n{i}", domain=lan) for i in range(3)]
        farm = SimFarm(sim, emitter_node=nodes[0], network=net, worker_setup_time=0.0)
        farm.add_worker(nodes[1])
        farm.add_worker(nodes[2])
        for t in finite_stream(4, ConstantWork(0.5)):
            farm.submit(t)
        sim.run()
        kinds = {r.kind for r in net.log}
        assert kinds == {"task", "result"}
        assert len(net.log) == 8  # 4 tasks + 4 results

    def test_unsecured_untrusted_worker_leaks(self):
        sim = Simulator()
        net = Network()
        lan = Domain("lan")
        wan = Domain("wan", trusted=False)
        farm = SimFarm(sim, emitter_node=Node("e", domain=lan), network=net, worker_setup_time=0.0)
        farm.add_worker(Node("u", domain=wan), secured=False)
        for t in finite_stream(3, ConstantWork(0.5)):
            farm.submit(t)
        sim.run()
        assert net.leak_count == 6  # each task and each result leaks

    def test_secured_worker_does_not_leak(self):
        sim = Simulator()
        net = Network()
        lan = Domain("lan")
        wan = Domain("wan", trusted=False)
        farm = SimFarm(sim, emitter_node=Node("e", domain=lan), network=net, worker_setup_time=0.0)
        farm.add_worker(Node("u", domain=wan), secured=True)
        for t in finite_stream(3, ConstantWork(0.5)):
            farm.submit(t)
        sim.run()
        assert net.leak_count == 0
        assert net.secured_count == 6

    def test_secure_worker_actuator(self):
        sim = Simulator()
        farm = build_farm(sim, n_workers=2)
        w = farm.workers[0]
        assert not w.secured
        farm.secure_worker(w)
        assert w.secured
        farm.secure_all()
        assert all(w.secured for w in farm.workers)


class TestConservationProperty:
    @given(st.integers(1, 5), st.integers(1, 40))
    @settings(max_examples=30, deadline=None)
    def test_no_task_lost_or_duplicated(self, n_workers, n_tasks):
        sim = Simulator()
        farm = build_farm(sim, n_workers=n_workers)
        for t in finite_stream(n_tasks, ConstantWork(0.7)):
            farm.submit(t)
        sim.run()
        assert farm.completed == n_tasks
        out_ids = sorted(t.task_id for t in farm.output.peek_items())
        assert out_ids == list(range(n_tasks))
