"""Tests for nodes, domains, load schedules and the resource manager."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.resources import (
    Domain,
    LoadSchedule,
    Node,
    NoResourceAvailable,
    ResourceManager,
    any_node,
    make_cluster,
    trusted_only,
)


class TestDomain:
    def test_trusted_flag(self):
        assert Domain("lan").trusted
        assert not Domain("wan", trusted=False).trusted

    def test_str(self):
        assert "UNTRUSTED" in str(Domain("wan", trusted=False))
        assert "trusted" in str(Domain("lan"))


class TestLoadSchedule:
    def test_default_zero(self):
        assert LoadSchedule().load_at(100.0) == 0.0

    def test_step(self):
        ls = LoadSchedule()
        ls.set_load(10.0, 0.5)
        assert ls.load_at(5.0) == 0.0
        assert ls.load_at(10.0) == 0.5
        assert ls.load_at(50.0) == 0.5

    def test_multiple_steps(self):
        ls = LoadSchedule([(10.0, 0.5), (20.0, 0.1)])
        assert ls.load_at(15.0) == 0.5
        assert ls.load_at(25.0) == pytest.approx(0.1)

    def test_replace_breakpoint(self):
        ls = LoadSchedule()
        ls.set_load(10.0, 0.5)
        ls.set_load(10.0, 0.2)
        assert ls.load_at(11.0) == pytest.approx(0.2)

    def test_clipping(self):
        ls = LoadSchedule()
        ls.set_load(0.0, 5.0)
        assert ls.load_at(1.0) == LoadSchedule.MAX_LOAD
        ls.set_load(2.0, -1.0)
        assert ls.load_at(3.0) == 0.0


class TestNode:
    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            Node("n", speed=0.0)

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            Node("n", cores=0)

    def test_service_time_unit_speed(self):
        n = Node("n", speed=1.0)
        assert n.service_time(3.0, 0.0) == pytest.approx(3.0)

    def test_service_time_scales_with_speed(self):
        n = Node("n", speed=2.0)
        assert n.service_time(3.0, 0.0) == pytest.approx(1.5)

    def test_external_load_slows_node(self):
        n = Node("n", speed=1.0)
        n.load_schedule.set_load(10.0, 0.5)
        assert n.service_time(1.0, 5.0) == pytest.approx(1.0)
        assert n.service_time(1.0, 15.0) == pytest.approx(2.0)

    def test_trusted_proxy(self):
        n = Node("n", domain=Domain("wan", trusted=False))
        assert not n.trusted

    @given(
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.01, max_value=100.0),
        st.floats(min_value=0.0, max_value=0.9),
    )
    @settings(max_examples=50, deadline=None)
    def test_service_time_formula(self, speed, work, load):
        n = Node("n", speed=speed)
        n.load_schedule.set_load(0.0, load)
        expected = work / (speed * (1 - load))
        assert n.service_time(work, 1.0) == pytest.approx(expected)


class TestResourceManager:
    def _rm(self):
        trusted = Domain("lan", trusted=True)
        untrusted = Domain("wan", trusted=False)
        nodes = [
            Node("t1", speed=1.0, domain=trusted),
            Node("t2", speed=2.0, domain=trusted),
            Node("u1", speed=3.0, domain=untrusted),
        ]
        return ResourceManager(nodes), nodes

    def test_duplicate_name_rejected(self):
        rm = ResourceManager([Node("a")])
        with pytest.raises(ValueError):
            rm.add_node(Node("a"))

    def test_available_prefers_trusted_then_fast(self):
        rm, _ = self._rm()
        names = [n.name for n in rm.available()]
        assert names == ["t2", "t1", "u1"]

    def test_recruit_marks_allocated(self):
        rm, _ = self._rm()
        got = rm.recruit(2)
        assert all(n.allocated for n in got)
        assert rm.allocated_count == 2

    def test_recruit_all_or_nothing(self):
        rm, _ = self._rm()
        with pytest.raises(NoResourceAvailable):
            rm.recruit(5)
        assert rm.allocated_count == 0

    def test_recruit_with_predicate(self):
        rm, _ = self._rm()
        got = rm.recruit(2, trusted_only)
        assert all(n.trusted for n in got)
        with pytest.raises(NoResourceAvailable):
            rm.recruit(1, trusted_only)
        # untrusted node still available without the predicate
        assert rm.recruit(1, any_node)[0].name == "u1"

    def test_try_recruit_returns_empty(self):
        rm, _ = self._rm()
        assert rm.try_recruit(10) == []
        assert len(rm.try_recruit(1)) == 1

    def test_release_returns_node_to_pool(self):
        rm, _ = self._rm()
        node = rm.recruit(1)[0]
        rm.release(node)
        assert not node.allocated
        assert node in rm.available()

    def test_release_unknown_node_rejected(self):
        rm, _ = self._rm()
        with pytest.raises(ValueError):
            rm.release(Node("stranger"))

    def test_release_all(self):
        rm, _ = self._rm()
        nodes = rm.recruit(3)
        rm.release_all(nodes)
        assert rm.allocated_count == 0

    def test_invalid_recruit_count(self):
        rm, _ = self._rm()
        with pytest.raises(ValueError):
            rm.recruit(0)

    def test_get_by_name(self):
        rm, nodes = self._rm()
        assert rm.get("t1") is nodes[0]

    @given(st.integers(1, 20), st.integers(0, 20))
    @settings(max_examples=40, deadline=None)
    def test_recruit_release_roundtrip(self, pool_size, want):
        rm = ResourceManager(make_cluster(pool_size))
        if want == 0 or want > pool_size:
            if want > pool_size:
                assert rm.try_recruit(want) == []
            return
        got = rm.recruit(want)
        assert len(got) == want
        assert rm.allocated_count == want
        rm.release_all(got)
        assert rm.allocated_count == 0


class TestMakeCluster:
    def test_names_and_count(self):
        nodes = make_cluster(3, prefix="w")
        assert [n.name for n in nodes] == ["w-0", "w-1", "w-2"]

    def test_domain_and_speed(self):
        d = Domain("x", trusted=False)
        nodes = make_cluster(2, speed=2.5, domain=d)
        assert all(n.speed == 2.5 and n.domain is d for n in nodes)
