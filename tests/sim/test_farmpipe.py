"""Tests for the farm-of-pipelines composition (§3.1's nested tree)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.contracts import MinThroughputContract
from repro.core.skeleton_manager import FarmManager
from repro.gcm.abc_controller import FarmABC
from repro.rules.beans import ManagerOperation
from repro.sim.engine import Simulator
from repro.sim.farmpipe import SimFarmOfPipelines
from repro.sim.resources import ResourceManager, make_cluster
from repro.sim.workload import ConstantWork, TaskSource, finite_stream
from repro.skeletons.ast import Farm, Pipe, Seq
from repro.skeletons.cost import throughput as model_throughput


def build(sim, n_replicas=2, stage_works=(1.0, 2.0), setup=0.0):
    fp = SimFarmOfPipelines(
        sim, stage_works=list(stage_works), replica_setup_time=setup
    )
    nodes = make_cluster(n_replicas * len(stage_works), prefix="rp")
    k = len(stage_works)
    for i in range(n_replicas):
        fp.add_worker(nodes[i * k : (i + 1) * k])
    return fp


class TestConstruction:
    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            SimFarmOfPipelines(sim, stage_works=[])
        with pytest.raises(ValueError):
            SimFarmOfPipelines(sim, stage_works=[1.0, -1.0])

    def test_replica_needs_node_per_stage(self):
        sim = Simulator()
        fp = SimFarmOfPipelines(sim, stage_works=[1.0, 1.0], replica_setup_time=0.0)
        with pytest.raises(ValueError):
            fp.add_worker(make_cluster(1))

    def test_replica_structure(self):
        sim = Simulator()
        fp = build(sim, n_replicas=1, stage_works=(1.0, 2.0, 3.0))
        replica = fp.workers[0]
        assert len(replica.stages) == 3
        assert replica.stages[0].output is replica.stages[1].input


class TestFlow:
    def test_all_tasks_complete(self):
        sim = Simulator()
        fp = build(sim, n_replicas=2)
        for t in finite_stream(20, ConstantWork(1.0)):
            fp.submit(t)
        sim.run()
        assert fp.completed == 20
        assert fp.pending == 0
        assert len(fp.output) == 20

    def test_round_robin_across_replicas(self):
        sim = Simulator()
        fp = build(sim, n_replicas=2, stage_works=(100.0,))
        for t in finite_stream(6, ConstantWork(1.0)):
            fp.submit(t)
        sim.run(until=1.0)
        loads = [r.queued_total() for r in fp.workers]
        assert loads == [3, 3]

    def test_throughput_scales_with_replicas(self):
        def makespan(n):
            sim = Simulator()
            fp = build(sim, n_replicas=n, stage_works=(2.0, 2.0))
            for t in finite_stream(24, ConstantWork(1.0)):
                fp.submit(t)
            sim.run()
            return sim.now

        assert makespan(1) / makespan(3) == pytest.approx(3.0, rel=0.25)

    @given(st.integers(1, 4), st.integers(1, 15))
    @settings(max_examples=25, deadline=None)
    def test_conservation(self, n_replicas, n_tasks):
        sim = Simulator()
        fp = build(sim, n_replicas=n_replicas)
        for t in finite_stream(n_tasks, ConstantWork(0.5)):
            fp.submit(t)
        sim.run()
        assert fp.completed == n_tasks


class TestCostModelCorrespondence:
    def test_matches_nested_skeleton_model(self):
        """Measured steady throughput ≈ cost model of farm(pipe(...))."""
        works = (2.0, 4.0, 1.0)
        n = 3
        sim = Simulator()
        fp = build(sim, n_replicas=n, stage_works=works)
        n_tasks = 60
        for t in finite_stream(n_tasks, ConstantWork(1.0)):
            fp.submit(t)
        sim.run()
        measured = n_tasks / sim.now
        tree = Farm(Pipe(*[Seq(w) for w in works]), degree=n)
        predicted = model_throughput(tree)
        # pipeline fill/drain makes the measured rate slightly lower
        assert measured == pytest.approx(predicted, rel=0.15)


class TestActuators:
    def test_add_replica_increases_capacity(self):
        sim = Simulator()
        fp = build(sim, n_replicas=1)
        fp.add_worker(make_cluster(2, prefix="extra"))
        assert fp.num_workers == 2

    def test_setup_blackout(self):
        sim = Simulator()
        fp = SimFarmOfPipelines(sim, stage_works=[1.0], replica_setup_time=5.0)
        fp.add_worker(make_cluster(1))
        assert fp.in_blackout
        assert fp.snapshot() is None
        sim.run(until=6.0)
        assert fp.num_workers == 1

    def test_remove_replica_migrates_head_queue(self):
        sim = Simulator()
        fp = build(sim, n_replicas=2, stage_works=(100.0,))
        for t in finite_stream(8, ConstantWork(1.0)):
            fp.submit(t)
        sim.run(until=1.0)
        pending_before = fp.pending
        removed = fp.remove_worker()
        assert removed is not None
        assert fp.pending == pending_before
        sim.run(until=1000.0)
        assert fp.completed == 8  # nothing lost, survivor finishes all

    def test_remove_never_below_one(self):
        sim = Simulator()
        fp = build(sim, n_replicas=1)
        assert fp.remove_worker() is None

    def test_balance_load(self):
        sim = Simulator()
        fp = build(sim, n_replicas=2, stage_works=(100.0,))
        for t in finite_stream(10, ConstantWork(1.0)):
            fp.workers[0].head.put_nowait(t)
        moved = fp.balance_load()
        assert moved > 0

    def test_secure_all(self):
        sim = Simulator()
        fp = build(sim, n_replicas=2)
        fp.secure_all()
        assert all(r.secured for r in fp.workers)
        assert all(s.secured for r in fp.workers for s in r.stages)


class TestManagerIntegration:
    """The unchanged FarmABC + FarmManager drive the nested pattern."""

    def test_abc_with_nodes_per_executor(self):
        sim = Simulator()
        rm = ResourceManager(make_cluster(12))
        fp = SimFarmOfPipelines(sim, stage_works=[1.0, 2.0], replica_setup_time=0.0)
        abc = FarmABC(fp, rm, nodes_per_executor=2)  # type: ignore[arg-type]
        abc.bootstrap(2)
        assert fp.num_workers == 2
        assert rm.allocated_count == 4
        assert abc.execute(ManagerOperation.ADD_EXECUTOR)
        assert fp.num_workers == 3
        assert rm.allocated_count == 6
        assert abc.execute(ManagerOperation.REMOVE_EXECUTOR)
        assert rm.allocated_count == 4

    def test_manager_grows_nested_farm_to_contract(self):
        """End-to-end: Figure 5 rules scale a farm of pipelines."""
        sim = Simulator()
        rm = ResourceManager(make_cluster(24))
        fp = SimFarmOfPipelines(
            sim, stage_works=[2.0, 5.0], replica_setup_time=2.0, rate_window=20.0
        )
        abc = FarmABC(fp, rm, nodes_per_executor=2)  # type: ignore[arg-type]
        abc.bootstrap(1)  # one replica: 0.2 tasks/s (slowest stage 5s)
        mgr = FarmManager(
            "AM_fp", sim, abc, control_period=10.0, manage_workers=False
        )
        TaskSource(sim, fp.input, rate=0.9, work_model=ConstantWork(1.0))
        mgr.assign_contract(MinThroughputContract(0.6))
        sim.run(until=400.0)
        snap = fp.force_snapshot()
        assert snap.num_workers >= 3  # needs >=3 replicas for 0.6 t/s
        assert snap.departure_rate >= 0.55
