"""Tests for the network model: transfer times, security, leak audit."""

import pytest

from repro.sim.network import Link, Message, Network
from repro.sim.resources import Domain, Node

LAN = Domain("lan", trusted=True)
LAN2 = Domain("lan2", trusted=True)
WAN = Domain("wan", trusted=False)


def nodes():
    return Node("a", domain=LAN), Node("b", domain=LAN2), Node("u", domain=WAN)


class TestLink:
    def test_validation(self):
        with pytest.raises(ValueError):
            Link(LAN, WAN, latency=-1.0)
        with pytest.raises(ValueError):
            Link(LAN, WAN, bandwidth=0.0)

    def test_private_iff_both_trusted(self):
        assert Link(LAN, LAN2).private
        assert not Link(LAN, WAN).private

    def test_plain_time(self):
        link = Link(LAN, LAN2, latency=0.01, bandwidth=1000.0)
        msg = Message(size_kb=10.0)
        assert link.plain_time(msg) == pytest.approx(0.01 + 10.0 / 1000.0)


class TestNetwork:
    def test_secure_factor_validation(self):
        with pytest.raises(ValueError):
            Network(secure_factor=0.5)

    def test_same_node_transfer_is_free(self):
        net = Network()
        a, _, _ = nodes()
        assert net.transfer_time(a, a, Message(), secured=False) == 0.0

    def test_default_link_when_unregistered(self):
        net = Network()
        a, b, _ = nodes()
        t = net.transfer_time(a, b, Message(size_kb=1.0), secured=False)
        assert t > 0.0

    def test_registered_link_used(self):
        net = Network()
        net.add_link(Link(LAN, LAN2, latency=0.5, bandwidth=10.0))
        a, b, _ = nodes()
        t = net.transfer_time(a, b, Message(size_kb=5.0), secured=False)
        assert t == pytest.approx(0.5 + 0.5)

    def test_link_is_bidirectional(self):
        net = Network()
        net.add_link(Link(LAN, LAN2, latency=0.5, bandwidth=10.0))
        a, b, _ = nodes()
        assert net.transfer_time(a, b, Message(), secured=False) == pytest.approx(
            net.transfer_time(b, a, Message(), secured=False)
        )

    def test_secured_transfer_costs_more(self):
        net = Network(secure_factor=2.0, handshake=0.01)
        a, _, u = nodes()
        plain = net.transfer_time(a, u, Message(size_kb=10.0), secured=False)
        secure = net.transfer_time(a, u, Message(size_kb=10.0), secured=True)
        assert secure == pytest.approx(plain * 2.0 + 0.01)

    def test_intra_domain_loopback(self):
        net = Network()
        a = Node("a", domain=LAN)
        a2 = Node("a2", domain=LAN)
        t = net.transfer_time(a, a2, Message(size_kb=1.0), secured=False)
        assert t < net.transfer_time(a, Node("b", domain=LAN2), Message(size_kb=1.0), secured=False) * 10


class TestLeakAccounting:
    def test_plaintext_to_untrusted_is_leak(self):
        net = Network()
        a, _, u = nodes()
        rec = net.record_transfer(1.0, a, u, Message(), secured=False)
        assert rec.leaked
        assert net.leak_count == 1
        assert net.leaks() == [rec]

    def test_secured_to_untrusted_is_not_leak(self):
        net = Network()
        a, _, u = nodes()
        rec = net.record_transfer(1.0, a, u, Message(), secured=True)
        assert not rec.leaked
        assert net.leak_count == 0
        assert net.secured_count == 1

    def test_plaintext_between_trusted_is_not_leak(self):
        net = Network()
        a, b, _ = nodes()
        rec = net.record_transfer(1.0, a, b, Message(), secured=False)
        assert not rec.leaked
        assert net.leak_count == 0

    def test_same_node_never_leaks(self):
        net = Network()
        u = Node("u", domain=WAN)
        rec = net.record_transfer(1.0, u, u, Message(), secured=False)
        assert not rec.leaked

    def test_total_transfer_time_accumulates(self):
        net = Network()
        a, b, _ = nodes()
        net.record_transfer(1.0, a, b, Message(size_kb=10.0), secured=False)
        net.record_transfer(2.0, a, b, Message(size_kb=10.0), secured=False)
        assert net.total_transfer_time() > 0.0
        assert len(net.log) == 2
