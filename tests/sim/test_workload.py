"""Tests for task streams and the rate-controllable source."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.queues import Store
from repro.sim.workload import (
    ConstantWork,
    HotSpotWork,
    Task,
    TaskSource,
    UniformWork,
    finite_stream,
)


class TestWorkModels:
    def test_constant(self):
        wm = ConstantWork(2.5)
        assert wm.work_for(0) == 2.5
        assert wm(99) == 2.5

    def test_constant_validation(self):
        with pytest.raises(ValueError):
            ConstantWork(0.0)

    def test_uniform_in_bounds_and_deterministic(self):
        wm1 = UniformWork(1.0, 2.0, seed=7)
        wm2 = UniformWork(1.0, 2.0, seed=7)
        vals1 = [wm1.work_for(i) for i in range(20)]
        vals2 = [wm2.work_for(i) for i in range(20)]
        assert vals1 == vals2
        assert all(1.0 <= v <= 2.0 for v in vals1)

    def test_uniform_repeat_query_consistent(self):
        wm = UniformWork(1.0, 2.0, seed=3)
        a = wm.work_for(5)
        _ = wm.work_for(10)
        assert wm.work_for(5) == a

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            UniformWork(2.0, 1.0)
        with pytest.raises(ValueError):
            UniformWork(0.0, 1.0)

    def test_hotspot_applies_factor_in_range(self):
        wm = HotSpotWork(ConstantWork(1.0), start=5, end=10, factor=3.0)
        assert wm.work_for(4) == 1.0
        assert wm.work_for(5) == 3.0
        assert wm.work_for(9) == 3.0
        assert wm.work_for(10) == 1.0

    def test_hotspot_validation(self):
        with pytest.raises(ValueError):
            HotSpotWork(ConstantWork(1.0), 5, 4, 2.0)
        with pytest.raises(ValueError):
            HotSpotWork(ConstantWork(1.0), 0, 1, 0.0)


class TestTask:
    def test_latency_none_until_complete(self):
        t = Task(0, 1.0, created_at=2.0)
        assert t.latency is None
        t.completed_at = 7.0
        assert t.latency == pytest.approx(5.0)


class TestFiniteStream:
    def test_count_and_ids(self):
        tasks = finite_stream(5, ConstantWork(1.0))
        assert [t.task_id for t in tasks] == [0, 1, 2, 3, 4]

    def test_secure_flag(self):
        tasks = finite_stream(2, ConstantWork(1.0), secure_required=True)
        assert all(t.secure_required for t in tasks)


class TestTaskSource:
    def test_emits_at_rate(self):
        sim = Simulator()
        out = Store(sim)
        src = TaskSource(sim, out, rate=2.0, work_model=ConstantWork(1.0), total=10)
        sim.run()
        assert src.emitted == 10
        assert src.finished
        # 10 tasks at 2/s -> last emission at t=5
        assert sim.now == pytest.approx(5.0)
        assert len(out) == 10

    def test_rate_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            TaskSource(sim, Store(sim), rate=0.0, work_model=ConstantWork(1.0))

    def test_set_rate_takes_effect_immediately(self):
        sim = Simulator()
        out = Store(sim)
        src = TaskSource(sim, out, rate=0.1, work_model=ConstantWork(1.0), total=5)
        # speed up at t=1: remaining tasks arrive at 1/s, not 10s gaps
        sim.schedule(1.0, src.set_rate, 1.0)
        sim.run()
        assert src.emitted == 5
        assert sim.now < 10.0

    def test_set_rate_clamped_to_max(self):
        sim = Simulator()
        src = TaskSource(
            sim, Store(sim), rate=1.0, work_model=ConstantWork(1.0), max_rate=2.0, total=1
        )
        applied = src.set_rate(100.0)
        assert applied == 2.0
        assert src.rate == 2.0

    def test_scale_rate(self):
        sim = Simulator()
        src = TaskSource(sim, Store(sim), rate=1.0, work_model=ConstantWork(1.0), total=1)
        assert src.scale_rate(1.5) == pytest.approx(1.5)
        with pytest.raises(ValueError):
            src.scale_rate(0.0)

    def test_end_of_stream_callback(self):
        sim = Simulator()
        out = Store(sim)
        fired = []
        TaskSource(
            sim,
            out,
            rate=1.0,
            work_model=ConstantWork(1.0),
            total=3,
            on_end_of_stream=lambda: fired.append(sim.now),
        )
        sim.run()
        assert fired == [pytest.approx(3.0)]

    def test_on_emit_callback_sees_each_task(self):
        sim = Simulator()
        out = Store(sim)
        seen = []
        TaskSource(
            sim,
            out,
            rate=1.0,
            work_model=ConstantWork(1.0),
            total=4,
            on_emit=lambda t: seen.append(t.task_id),
        )
        sim.run()
        assert seen == [0, 1, 2, 3]

    def test_created_at_stamps(self):
        sim = Simulator()
        out = Store(sim)
        TaskSource(sim, out, rate=2.0, work_model=ConstantWork(1.0), total=2)
        sim.run()
        tasks = out.peek_items()
        assert tasks[0].created_at == pytest.approx(0.5)
        assert tasks[1].created_at == pytest.approx(1.0)

    @given(st.floats(min_value=0.2, max_value=10.0), st.integers(1, 30))
    @settings(max_examples=30, deadline=None)
    def test_emission_times_match_rate(self, rate, total):
        sim = Simulator()
        out = Store(sim)
        times = []
        TaskSource(
            sim,
            out,
            rate=rate,
            work_model=ConstantWork(1.0),
            total=total,
            on_emit=lambda t: times.append(sim.now),
        )
        sim.run()
        assert len(times) == total
        for i, t in enumerate(times):
            assert t == pytest.approx((i + 1) / rate, rel=1e-6)
