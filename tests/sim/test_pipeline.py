"""Tests for sequential stages, forwarders and pipeline assembly."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.farm import SimFarm
from repro.sim.pipeline import Forwarder, SeqStage, SimPipeline
from repro.sim.queues import Store
from repro.sim.resources import Node, make_cluster
from repro.sim.workload import ConstantWork, TaskSource, finite_stream


class TestSeqStage:
    def _stage(self, sim, work=1.0, speed=1.0):
        inp, out = Store(sim, name="in"), Store(sim, name="out")
        stage = SeqStage(
            sim,
            name="s",
            node=Node("n", speed=speed),
            input_store=inp,
            output_store=out,
            service_work=work,
        )
        return stage, inp, out

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            SeqStage(
                sim,
                name="s",
                node=Node("n"),
                input_store=Store(sim),
                output_store=None,
                service_work=-1.0,
            )

    def test_processes_in_order(self):
        sim = Simulator()
        stage, inp, out = self._stage(sim, work=1.0)
        for t in finite_stream(3, ConstantWork(1.0)):
            inp.put_nowait(t)
        sim.run()
        assert [t.task_id for t in out.peek_items()] == [0, 1, 2]
        assert stage.completed == 3
        assert sim.now == pytest.approx(3.0)

    def test_speed_scales_service(self):
        sim = Simulator()
        stage, inp, out = self._stage(sim, work=2.0, speed=2.0)
        inp.put_nowait(finite_stream(1, ConstantWork(1.0))[0])
        sim.run()
        assert sim.now == pytest.approx(1.0)

    def test_zero_work_stage_is_instant(self):
        sim = Simulator()
        stage, inp, out = self._stage(sim, work=0.0)
        for t in finite_stream(5, ConstantWork(1.0)):
            inp.put_nowait(t)
        sim.run()
        assert sim.now == pytest.approx(0.0)
        assert stage.completed == 5

    def test_stop_halts_processing(self):
        sim = Simulator()
        stage, inp, out = self._stage(sim, work=1.0)
        for t in finite_stream(5, ConstantWork(1.0)):
            inp.put_nowait(t)
        sim.schedule(2.5, stage.stop)
        sim.run()
        assert stage.completed <= 3

    def test_snapshot_rates(self):
        sim = Simulator()
        stage, inp, out = self._stage(sim, work=0.1)
        TaskSource(sim, inp, rate=2.0, work_model=ConstantWork(1.0), total=40)
        sim.run(until=19.0)
        snap = stage.snapshot()
        assert snap.arrival_rate == pytest.approx(2.0, rel=0.2)
        assert snap.departure_rate == pytest.approx(2.0, rel=0.2)
        # 2/s for 19s; the final task's 0.1s service may straddle the cutoff
        assert snap.completed in (37, 38)

    def test_on_done_callback(self):
        sim = Simulator()
        inp = Store(sim)
        seen = []
        SeqStage(
            sim,
            name="s",
            node=Node("n"),
            input_store=inp,
            output_store=None,
            service_work=0.5,
            on_done=lambda t: seen.append(t.task_id),
        )
        for t in finite_stream(3, ConstantWork(1.0)):
            inp.put_nowait(t)
        sim.run()
        assert seen == [0, 1, 2]

    def test_external_load_slows_stage(self):
        sim = Simulator()
        node = Node("n", speed=1.0)
        node.load_schedule.set_load(0.0, 0.5)
        inp, out = Store(sim), Store(sim)
        SeqStage(
            sim, name="s", node=node, input_store=inp, output_store=out, service_work=1.0
        )
        inp.put_nowait(finite_stream(1, ConstantWork(1.0))[0])
        sim.run()
        assert sim.now == pytest.approx(2.0)


class TestForwarder:
    def test_moves_everything(self):
        sim = Simulator()
        a, b = Store(sim), Store(sim)
        fwd = Forwarder(sim, a, b)
        for i in range(5):
            a.put_nowait(i)
        sim.run()
        assert b.peek_items() == [0, 1, 2, 3, 4]
        assert fwd.moved == 5

    def test_respects_destination_capacity(self):
        sim = Simulator()
        a, b = Store(sim), Store(sim, capacity=2)
        Forwarder(sim, a, b)
        for i in range(5):
            a.put_nowait(i)
        sim.run()
        # forwarder blocked with dst full: 2 in dst, 1 "in hand", 2 still in src
        assert len(b) == 2
        ok, item = b.try_get()
        assert ok and item == 0


class TestSimPipeline:
    def test_requires_stages(self):
        with pytest.raises(ValueError):
            SimPipeline(Simulator(), [])

    def test_three_stage_end_to_end(self):
        """producer -> seq -> farm -> seq -> sink, everything flows through."""
        sim = Simulator()
        nodes = make_cluster(6)
        s1_in = Store(sim, name="s1in")
        s1 = SeqStage(
            sim, name="s1", node=nodes[0], input_store=s1_in,
            output_store=None, service_work=0.1,
        )
        farm = SimFarm(sim, name="farm", emitter_node=nodes[1], worker_setup_time=0.0)
        farm.add_worker(nodes[2])
        farm.add_worker(nodes[3])
        s1.output = farm.input
        s3_in = Store(sim, name="s3in")
        Forwarder(sim, farm.output, s3_in)
        pipe = SimPipeline(sim, [s1, farm], name="p")
        s3 = SeqStage(
            sim, name="s3", node=nodes[4], input_store=s3_in,
            output_store=None, service_work=0.05,
            on_done=pipe.record_delivery,
        )
        pipe.stages.append(s3)
        TaskSource(sim, s1_in, rate=1.0, work_model=ConstantWork(1.0), total=20)
        sim.run()
        assert pipe.delivered == 20
        assert len(pipe.sink) == 20
        assert len(pipe) == 3
        assert pipe.stage(1) is farm

    def test_throughput_measure(self):
        sim = Simulator()
        inp = Store(sim)
        pipe = SimPipeline(sim, ["dummy"], name="p")
        SeqStage(
            sim, name="s", node=Node("n"), input_store=inp,
            output_store=None, service_work=0.01,
            on_done=pipe.record_delivery,
        )
        TaskSource(sim, inp, rate=2.0, work_model=ConstantWork(1.0), total=60)
        sim.run(until=29.0)
        assert pipe.throughput() == pytest.approx(2.0, rel=0.2)
