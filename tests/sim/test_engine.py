"""Unit and property tests for the DES engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import (
    Interrupt,
    PeriodicTask,
    SimEvent,
    SimulationError,
    Simulator,
    Timeout,
    wait_all,
)


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_runs_callback_at_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_schedule_with_args(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "x")
        sim.run()
        assert seen == ["x"]

    def test_schedule_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(3.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.0]

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_fifo_order_for_simultaneous_events(self):
        sim = Simulator()
        seen = []
        for i in range(10):
            sim.schedule(1.0, seen.append, i)
        sim.run()
        assert seen == list(range(10))

    def test_cancel_prevents_execution(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule(1.0, seen.append, "no")
        handle.cancel()
        sim.run()
        assert seen == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_run_until_stops_clock_at_until(self):
        sim = Simulator()
        sim.schedule(100.0, lambda: None)
        end = sim.run(until=10.0)
        assert end == 10.0
        assert sim.now == 10.0

    def test_run_until_advances_clock_even_if_queue_empty(self):
        sim = Simulator()
        assert sim.run(until=42.0) == 42.0

    def test_events_beyond_until_survive(self):
        sim = Simulator()
        seen = []
        sim.schedule(100.0, seen.append, "late")
        sim.run(until=10.0)
        assert seen == []
        sim.run()
        assert seen == ["late"]

    def test_peek_returns_next_time(self):
        sim = Simulator()
        sim.schedule(7.0, lambda: None)
        sim.schedule(3.0, lambda: None)
        assert sim.peek() == 3.0

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        h = sim.schedule(3.0, lambda: None)
        sim.schedule(7.0, lambda: None)
        h.cancel()
        assert sim.peek() == 7.0

    def test_peek_empty_queue(self):
        assert Simulator().peek() is None

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError, match="re-entrant"):
            sim.run()

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_execution_order_is_time_sorted(self, delays):
        sim = Simulator()
        order = []
        for d in delays:
            sim.schedule(d, order.append, d)
        sim.run()
        assert order == sorted(delays)
        # same-time entries keep submission order
        for a, b in zip(order, order[1:]):
            assert a <= b

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_clock_is_monotone(self, delays):
        sim = Simulator()
        times = []
        for d in delays:
            sim.schedule(d, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)


class TestSimEvent:
    def test_succeed_delivers_value_to_callback(self):
        sim = Simulator()
        ev = sim.event("e")
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        ev.succeed(42)
        sim.run()
        assert got == [42]

    def test_callback_after_trigger_still_fires(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("v")
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        sim.run()
        assert got == ["v"]

    def test_double_succeed_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self):
        sim = Simulator()
        ev = sim.event()
        with pytest.raises(SimulationError):
            ev.fail("not an exception")

    def test_fail_marks_error(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(ValueError("boom"))
        assert ev.is_error
        assert isinstance(ev.value, ValueError)

    def test_wait_all_collects_values_in_order(self):
        sim = Simulator()
        evs = [sim.event(str(i)) for i in range(3)]
        combined = wait_all(sim, evs)
        got = []
        combined.add_callback(lambda e: got.append(e.value))
        evs[2].succeed("c")
        evs[0].succeed("a")
        evs[1].succeed("b")
        sim.run()
        assert got == [["a", "b", "c"]]

    def test_wait_all_empty(self):
        sim = Simulator()
        combined = wait_all(sim, [])
        assert combined.triggered
        assert combined.value == []

    def test_wait_all_propagates_failure(self):
        sim = Simulator()
        evs = [sim.event(), sim.event()]
        combined = wait_all(sim, evs)
        got = []
        combined.add_callback(lambda e: got.append(e.is_error))
        evs[0].fail(RuntimeError("x"))
        sim.run()
        assert got == [True]


class TestProcess:
    def test_timeout_advances_process(self):
        sim = Simulator()
        log = []

        def proc():
            yield sim.timeout(2.0)
            log.append(sim.now)
            yield sim.timeout(3.0)
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [2.0, 5.0]

    def test_process_return_value_in_done_event(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            return "result"

        p = sim.process(proc())
        sim.run()
        assert p.done_event.triggered
        assert p.done_event.value == "result"
        assert not p.alive

    def test_process_waits_on_event(self):
        sim = Simulator()
        ev = sim.event()
        log = []

        def proc():
            v = yield ev
            log.append((sim.now, v))

        sim.process(proc())
        sim.schedule(4.0, lambda: ev.succeed("go"))
        sim.run()
        assert log == [(4.0, "go")]

    def test_process_waits_on_other_process(self):
        sim = Simulator()
        log = []

        def child():
            yield sim.timeout(3.0)
            return "child-val"

        def parent():
            c = sim.process(child())
            v = yield c
            log.append((sim.now, v))

        sim.process(parent())
        sim.run()
        assert log == [(3.0, "child-val")]

    def test_failed_event_raises_in_process(self):
        sim = Simulator()
        ev = sim.event()
        caught = []

        def proc():
            try:
                yield ev
            except ValueError as e:
                caught.append(str(e))

        sim.process(proc())
        sim.schedule(1.0, lambda: ev.fail(ValueError("bad")))
        sim.run()
        assert caught == ["bad"]

    def test_interrupt_during_timeout(self):
        sim = Simulator()
        log = []

        def proc():
            try:
                yield sim.timeout(100.0)
            except Interrupt as i:
                log.append((sim.now, i.cause))

        p = sim.process(proc())
        sim.schedule(5.0, p.interrupt, "wakeup")
        sim.run()
        assert log == [(5.0, "wakeup")]

    def test_interrupt_dead_process_is_noop(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)

        p = sim.process(proc())
        sim.run()
        p.interrupt()  # must not raise
        sim.run()

    def test_uncaught_interrupt_terminates_process(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(100.0)

        p = sim.process(proc())
        sim.schedule(1.0, p.interrupt)
        sim.run()
        assert not p.alive

    def test_yield_non_waitable_fails(self):
        sim = Simulator()

        def proc():
            yield 42

        sim.process(proc())
        with pytest.raises(SimulationError, match="non-waitable"):
            sim.run()

    def test_requires_generator(self):
        with pytest.raises(SimulationError):
            Simulator().process(lambda: None)  # type: ignore[arg-type]

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-0.1)


class TestPeriodicTask:
    def test_fires_every_period(self):
        sim = Simulator()
        ticks = []
        sim.periodic(2.0, lambda: ticks.append(sim.now))
        sim.run(until=10.0)
        assert ticks == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_start_delay(self):
        sim = Simulator()
        ticks = []
        sim.periodic(2.0, lambda: ticks.append(sim.now), start_delay=0.5)
        sim.run(until=5.0)
        assert ticks == [0.5, 2.5, 4.5]

    def test_cancel_stops_future_ticks(self):
        sim = Simulator()
        ticks = []
        task = sim.periodic(1.0, lambda: ticks.append(sim.now))
        sim.schedule(3.5, task.cancel)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]
        assert task.cancelled

    def test_truthy_return_stops_task(self):
        sim = Simulator()
        ticks = []

        def fn():
            ticks.append(sim.now)
            return len(ticks) >= 3

        task = sim.periodic(1.0, fn)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]
        assert task.cancelled
        assert task.ticks == 3

    def test_zero_period_rejected(self):
        with pytest.raises(SimulationError):
            PeriodicTask(Simulator(), 0.0, lambda: None)


class TestWaitAllWithProcesses:
    def test_fan_out_fan_in(self):
        """A coordinator waits for N child processes via wait_all."""
        sim = Simulator()
        results = []

        def child(delay, value):
            yield sim.timeout(delay)
            return value

        def coordinator():
            children = [sim.process(child(d, d)) for d in (3.0, 1.0, 2.0)]
            values = yield wait_all(sim, [c.done_event for c in children])
            results.append((sim.now, values))

        sim.process(coordinator())
        sim.run()
        # completes when the slowest child does, values in launch order
        assert results == [(3.0, [3.0, 1.0, 2.0])]

    @given(st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_completion_time_is_max_delay(self, delays):
        sim = Simulator()
        done_at = []

        def child(d):
            yield sim.timeout(d)

        def coordinator():
            procs = [sim.process(child(d)) for d in delays]
            yield wait_all(sim, [p.done_event for p in procs])
            done_at.append(sim.now)

        sim.process(coordinator())
        sim.run()
        assert done_at[0] == pytest.approx(max(delays))

    def test_nested_process_waits(self):
        """Grandparent waits for parent which waits for child."""
        sim = Simulator()
        order = []

        def child():
            yield sim.timeout(1.0)
            order.append("child")
            return "c"

        def parent():
            v = yield sim.process(child())
            order.append("parent")
            return v + "p"

        def grandparent():
            v = yield sim.process(parent())
            order.append("grandparent")
            return v + "g"

        g = sim.process(grandparent())
        sim.run()
        assert order == ["child", "parent", "grandparent"]
        assert g.done_event.value == "cpg"
