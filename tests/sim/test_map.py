"""Tests for the data-parallel map mechanism (scatter/reduce)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gcm.abc_controller import FarmABC
from repro.rules.beans import ManagerOperation
from repro.sim.engine import Simulator
from repro.sim.map import SimMap
from repro.sim.network import Network
from repro.sim.resources import Domain, Node, ResourceManager, make_cluster
from repro.sim.workload import ConstantWork, finite_stream
from repro.skeletons.ast import Farm, Seq
from repro.skeletons.cost import throughput as model_throughput


def build_map(sim, n_workers=4, *, setup=0.0, scatter=0.0, gather=0.0, network=None):
    nodes = make_cluster(n_workers + 1)
    smap = SimMap(
        sim,
        name="map",
        emitter_node=nodes[0],
        network=network,
        scatter_overhead=scatter,
        gather_overhead=gather,
        worker_setup_time=setup,
    )
    for n in nodes[1:]:
        smap.add_worker(n)
    return smap


class TestBasicFlow:
    def test_all_tasks_complete_in_order(self):
        sim = Simulator()
        smap = build_map(sim, n_workers=3)
        for t in finite_stream(10, ConstantWork(3.0)):
            smap.submit(t)
        sim.run()
        assert smap.completed == 10
        out_ids = [t.task_id for t in smap.output.peek_items()]
        assert out_ids == list(range(10))  # reduce preserves stream order

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            SimMap(sim, emitter_node=Node("e"), scatter_overhead=-1.0)

    def test_service_time_divided_by_degree(self):
        """One task of work W over n workers completes in ~W/n."""
        sim = Simulator()
        smap = build_map(sim, n_workers=4)
        task = finite_stream(1, ConstantWork(8.0))[0]
        smap.submit(task)
        sim.run()
        assert task.completed_at == pytest.approx(2.0)

    def test_overheads_add_to_service_time(self):
        sim = Simulator()
        smap = build_map(sim, n_workers=2, scatter=0.5, gather=0.25)
        task = finite_stream(1, ConstantWork(4.0))[0]
        smap.submit(task)
        sim.run()
        assert task.completed_at == pytest.approx(0.5 + 2.0 + 0.25)

    def test_slowest_worker_bounds_task(self):
        """Heterogeneous nodes: the reduce waits for the slowest chunk."""
        sim = Simulator()
        fast = Node("fast", speed=4.0)
        slow = Node("slow", speed=1.0)
        smap = SimMap(
            sim,
            emitter_node=Node("e"),
            worker_setup_time=0.0,
            scatter_overhead=0.0,
            gather_overhead=0.0,
        )
        smap.add_worker(fast)
        smap.add_worker(slow)
        task = finite_stream(1, ConstantWork(8.0))[0]
        smap.submit(task)
        sim.run()
        # chunks of 4.0 each: fast takes 1s, slow takes 4s
        assert task.completed_at == pytest.approx(4.0)

    @given(st.integers(1, 6), st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_conservation(self, n_workers, n_tasks):
        sim = Simulator()
        smap = build_map(sim, n_workers=n_workers)
        for t in finite_stream(n_tasks, ConstantWork(1.0)):
            smap.submit(t)
        sim.run()
        assert smap.completed == n_tasks
        assert smap.pending == 0


class TestCostModelCorrespondence:
    @given(st.integers(1, 8), st.integers(1, 10).map(float))
    @settings(max_examples=25, deadline=None)
    def test_matches_farm_model_without_overheads(self, degree, work):
        """Zero-overhead map throughput == the analytic Farm model."""
        sim = Simulator()
        smap = build_map(sim, n_workers=degree)
        n_tasks = 20
        for t in finite_stream(n_tasks, ConstantWork(work)):
            smap.submit(t)
        sim.run()
        measured = n_tasks / sim.now
        predicted = model_throughput(Farm(Seq(work), degree=degree))
        assert measured == pytest.approx(predicted, rel=0.01)


class TestActuators:
    def test_add_worker_widens_future_scatters(self):
        sim = Simulator()
        smap = build_map(sim, n_workers=2)
        t1 = finite_stream(1, ConstantWork(8.0))[0]
        smap.submit(t1)
        sim.run()
        assert t1.completed_at == pytest.approx(4.0)
        smap.add_worker(Node("extra1"))
        smap.add_worker(Node("extra2"))
        t2 = finite_stream(1, ConstantWork(8.0), created_at=sim.now)[0]
        smap.submit(t2)
        sim.run()
        assert t2.completed_at - t1.completed_at == pytest.approx(2.0)

    def test_setup_delay_and_blackout(self):
        sim = Simulator()
        nodes = make_cluster(2)
        smap = SimMap(sim, emitter_node=nodes[0], worker_setup_time=5.0)
        smap.add_worker(nodes[1])
        assert smap.in_blackout
        assert smap.snapshot() is None
        sim.run(until=6.0)
        assert smap.snapshot() is not None

    def test_remove_worker_never_below_one(self):
        sim = Simulator()
        smap = build_map(sim, n_workers=1)
        assert smap.remove_worker() is None

    def test_remove_worker_narrows_future_scatters(self):
        sim = Simulator()
        smap = build_map(sim, n_workers=4)
        smap.remove_worker()
        sim.run(until=1.0)
        task = finite_stream(1, ConstantWork(6.0), created_at=sim.now)[0]
        smap.submit(task)
        sim.run(until=100.0)
        assert task.completed_at - task.started_at == pytest.approx(2.0)

    def test_balance_load_is_noop(self):
        sim = Simulator()
        smap = build_map(sim, n_workers=2)
        assert smap.balance_load() == 0

    def test_fail_worker_rescatters_and_task_completes(self):
        sim = Simulator()
        smap = build_map(sim, n_workers=3)
        task = finite_stream(1, ConstantWork(30.0))[0]
        smap.submit(task)
        sim.run(until=2.0)  # chunks of 10s each, all in service
        victim = smap.workers[0]
        recovered = smap.fail_worker(victim)
        assert recovered == 1  # the in-service chunk
        sim.run(until=100.0)
        assert smap.completed == 1
        assert smap.failures == 1

    def test_secure_all(self):
        sim = Simulator()
        smap = build_map(sim, n_workers=2)
        smap.secure_all()
        assert all(w.secured for w in smap.workers)


class TestFarmABCCompatibility:
    """The same ABC/manager stack drives a map (duck-typed mechanism)."""

    def _setup(self):
        sim = Simulator()
        rm = ResourceManager(make_cluster(8))
        smap = SimMap(sim, emitter_node=Node("e"), worker_setup_time=0.0)
        abc = FarmABC(smap, rm)  # type: ignore[arg-type]
        return sim, smap, rm, abc

    def test_bootstrap_and_monitor(self):
        sim, smap, rm, abc = self._setup()
        abc.bootstrap(3)
        data = abc.monitor()
        assert data["num_workers"] == 3

    def test_add_and_remove_executor(self):
        sim, smap, rm, abc = self._setup()
        abc.bootstrap(2)
        assert abc.execute(ManagerOperation.ADD_EXECUTOR)
        assert smap.num_workers == 3
        assert abc.execute(ManagerOperation.REMOVE_EXECUTOR)
        assert smap.num_workers == 2
        assert rm.allocated_count == 2

    def test_network_leak_accounting(self):
        sim = Simulator()
        net = Network()
        wan = Domain("wan", trusted=False)
        smap = SimMap(
            sim, emitter_node=Node("e"), network=net, worker_setup_time=0.0
        )
        smap.add_worker(Node("u", domain=wan), secured=False)
        smap.submit(finite_stream(1, ConstantWork(1.0))[0])
        sim.run()
        assert net.leak_count == 1  # the scattered chunk
