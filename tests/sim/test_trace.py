"""Tests for trace recording and text rendering."""

import pytest

from repro.sim.trace import EventMark, TraceRecorder, ascii_series, ascii_timeline


class TestTraceRecorder:
    def _tr(self):
        tr = TraceRecorder()
        tr.mark(1.0, "AM_F", "contrLow")
        tr.mark(2.0, "AM_F", "notEnough")
        tr.mark(3.0, "AM_F", "raiseViol")
        tr.mark(4.0, "AM_A", "incRate", delta=0.1)
        tr.mark(5.0, "AM_F", "contrLow")
        return tr

    def test_events_in_order(self):
        tr = self._tr()
        assert tr.event_names() == [
            "contrLow", "notEnough", "raiseViol", "incRate", "contrLow",
        ]

    def test_filter_by_actor(self):
        tr = self._tr()
        assert tr.event_names("AM_A") == ["incRate"]

    def test_filter_by_name(self):
        tr = self._tr()
        assert len(tr.events_of(name="contrLow")) == 2

    def test_first_and_count(self):
        tr = self._tr()
        assert tr.first("contrLow").time == 1.0
        assert tr.first("missing") is None
        assert tr.count("contrLow") == 2
        assert tr.count("contrLow", actor="AM_A") == 0

    def test_detail_preserved(self):
        tr = self._tr()
        ev = tr.first("incRate")
        assert ev.detail == {"delta": 0.1}

    def test_assert_order_subsequence(self):
        tr = self._tr()
        assert tr.assert_order(["contrLow", "raiseViol", "incRate"])
        assert tr.assert_order(["notEnough", "contrLow"])
        assert not tr.assert_order(["incRate", "raiseViol"])

    def test_series_sampling_and_query(self):
        tr = TraceRecorder()
        for t in range(10):
            tr.sample("throughput", float(t), t * 0.1)
        assert tr.final_value("throughput") == pytest.approx(0.9)
        assert tr.value_at("throughput", 4.5) == pytest.approx(0.4)
        assert tr.value_at("throughput", -1.0) is None
        assert tr.final_value("missing") is None
        assert len(tr.series_values("throughput")) == 10

    def test_csv_export(self):
        tr = self._tr()
        tr.sample("x", 1.0, 2.0)
        csv = tr.to_csv("x")
        assert csv.startswith("time,value\n")
        assert "1.000000,2.000000" in csv
        ecsv = tr.events_csv()
        assert "AM_F,contrLow" in ecsv
        assert "delta=0.1" in ecsv

    def test_event_mark_str(self):
        ev = EventMark(1.5, "AM", "go", {"k": 1})
        s = str(ev)
        assert "AM" in s and "go" in s


class TestAsciiRendering:
    def test_timeline_empty(self):
        assert "no events" in ascii_timeline([])

    def test_timeline_has_row_per_event_name(self):
        events = [
            EventMark(0.0, "a", "alpha"),
            EventMark(5.0, "a", "beta"),
            EventMark(10.0, "a", "alpha"),
        ]
        out = ascii_timeline(events, width=40)
        lines = out.splitlines()
        assert any("alpha" in ln for ln in lines)
        assert any("beta" in ln for ln in lines)
        alpha_row = next(ln for ln in lines if "alpha" in ln)
        assert alpha_row.count("*") == 2

    def test_series_empty(self):
        assert "no data" in ascii_series([], title="t")

    def test_series_renders_points_and_hlines(self):
        pts = [(float(t), 0.5) for t in range(10)]
        out = ascii_series(pts, hlines=[0.3, 0.7], height=8, width=40, title="thr")
        assert "thr" in out
        assert "o" in out
        assert "-" in out

    def test_series_constant_value_does_not_crash(self):
        pts = [(0.0, 1.0), (1.0, 1.0)]
        out = ascii_series(pts, lo=1.0, hi=1.0)
        assert "o" in out
