"""EventMark fixed-width formatting: columns align for any actor/time."""

from repro.obs.events import EventMark
from repro.sim.trace import EventMark as ShimEventMark


def _colon_column(line: str) -> int:
    return line.index(": ")


class TestEventMarkStr:
    def test_basic_shape(self):
        s = str(EventMark(12.5, "AM_F", "addWorker"))
        assert s == "[       12.50]         AM_F: addWorker"

    def test_detail_appended(self):
        s = str(EventMark(1.0, "AM_F", "addWorker", {"count": 2}))
        assert s.endswith("addWorker {'count': 2}")

    def test_columns_align_for_large_times_and_long_actors(self):
        marks = [
            EventMark(0.0, "AM_F", "a"),
            EventMark(123456.78, "AM_F", "b"),          # ≥ 6 digit time
            EventMark(999999999.99, "AM_app.filter.W10", "c"),  # 12-char actor at 9 digits
            EventMark(5.0, "GM", "d"),
        ]
        columns = {_colon_column(str(m)) for m in marks}
        assert len(columns) == 1, [str(m) for m in marks]

    def test_overlong_actor_is_tail_truncated(self):
        mark = EventMark(1.0, "AM_verylongname.filter.W10", "x")
        s = str(mark)
        actor_field = s[s.index("]") + 2 : s.index(": ")]
        assert len(actor_field) == EventMark.ACTOR_WIDTH
        assert actor_field.startswith("~")
        # the distinguishing suffix survives truncation
        assert actor_field.endswith(".W10")
        assert _colon_column(s) == _colon_column(str(EventMark(1.0, "GM", "x")))

    def test_shim_reexports_same_class(self):
        assert ShimEventMark is EventMark
