"""The live telemetry surface: /metrics, /traces, /trace/<id>, /healthz.

All through a real ``urllib`` client against a real listening socket —
the server is stdlib ``http.server`` in a daemon thread, so the tests
exercise exactly what ``fig4 --serve-telemetry`` exposes.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import NullTelemetry, Telemetry
from repro.obs.live import TelemetryServer


def _get_json(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return json.load(resp)


@pytest.fixture()
def telemetry():
    tel = Telemetry()
    with tel.span("mape.cycle", actor="AM_F"):
        with tel.span("mape.plan", actor="AM_F") as plan:
            plan.set_attribute("matched", [("CheckRateLow", 10)])
        tel.event("intent.plan", count=1, ok=True)
    tel.metrics.counter("repro_test_total", "a counter").labels(kind="x").inc(3)
    return tel


@pytest.fixture()
def server(telemetry):
    with telemetry.serve(port=0) as srv:
        yield srv


class TestRoutes:
    def test_healthz(self, server):
        body = _get_json(server.url("/healthz"))
        assert body["status"] == "ok"
        assert body["spans"] >= 2
        assert body["open_spans"] == 0
        assert body["traces"] >= 1

    def test_metrics_is_prometheus_text(self, server):
        with urllib.request.urlopen(server.url("/metrics"), timeout=5) as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode()
        assert 'repro_test_total{kind="x"} 3' in text
        assert "# TYPE repro_test_total counter" in text

    def test_traces_lists_the_store(self, server, telemetry):
        body = _get_json(server.url("/traces"))
        cycle = telemetry.spans.spans[0]
        listed = {t["trace_id"] for t in body["traces"]}
        assert cycle.trace_id in listed

    def test_trace_returns_the_tree(self, server, telemetry):
        cycle = telemetry.spans.spans[0]
        body = _get_json(server.url(f"/trace/{cycle.trace_id}"))
        assert body["trace_id"] == cycle.trace_id
        tree = body["tree"]
        assert len(tree) == 1 and tree[0]["name"] == "mape.cycle"
        assert [kid["name"] for kid in tree[0]["children"]] == ["mape.plan"]

    def test_unknown_trace_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.url("/trace/" + "f" * 32), timeout=5)
        assert err.value.code == 404

    def test_unknown_route_is_404_with_route_map(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.url("/nope"), timeout=5)
        assert err.value.code == 404
        body = json.load(err.value)
        assert "/metrics" in body["routes"]

    def test_store_updates_are_visible_live(self, server, telemetry):
        """No restart, no snapshot step: a span recorded after the
        server started shows up on the very next poll."""
        before = _get_json(server.url("/healthz"))["spans"]
        with telemetry.span("rules.evaluate", actor="AM_F"):
            pass
        after = _get_json(server.url("/healthz"))["spans"]
        assert after == before + 1


class TestLifecycle:
    def test_port_zero_picks_a_free_port(self, telemetry):
        a = telemetry.serve(port=0)
        b = telemetry.serve(port=0)
        try:
            assert a.port != 0 and b.port != 0 and a.port != b.port
        finally:
            a.close()
            b.close()

    def test_close_is_idempotent_and_releases_the_port(self, telemetry):
        srv = telemetry.serve(port=0)
        url = srv.url("/healthz")
        _get_json(url)
        srv.close()
        srv.close()  # second close must be a no-op
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            urllib.request.urlopen(url, timeout=0.5)

    def test_describe_names_every_route(self, telemetry):
        with telemetry.serve(port=0) as srv:
            described = srv.describe()
            for key in ("metrics", "traces", "healthz"):
                assert described[key].startswith("http://")

    def test_null_telemetry_refuses_to_serve(self):
        with pytest.raises(RuntimeError, match="Telemetry"):
            NullTelemetry().serve(port=0)

    def test_server_requires_real_telemetry_type(self, telemetry):
        srv = TelemetryServer(telemetry, host="127.0.0.1", port=0)
        try:
            assert _get_json(srv.url("/healthz"))["status"] == "ok"
        finally:
            srv.close()
