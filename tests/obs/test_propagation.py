"""Trace-context propagation: stable ids, traceparent wire format, trees.

The contract under test is what lets one task read as one causal tree
across a process or TCP boundary: identifiers are *derived*, never
random, so a deterministic scenario always produces the same trace; the
traceparent rendering survives the wire byte-for-byte; and the tree
builder turns any bag of spans — including damaged ones — into a
navigable forest without ever looping.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.propagation import (
    TraceContext,
    build_trace_tree,
    list_traces,
    make_span_record,
    stable_span_id,
    stable_trace_id,
    task_context,
)
from repro.obs.spans import Span


class TestStableIds:
    def test_ids_are_deterministic(self):
        assert stable_trace_id("farm/task/7") == stable_trace_id("farm/task/7")
        assert stable_span_id("farm/task/7") == stable_span_id("farm/task/7")

    def test_ids_are_seed_sensitive(self):
        assert stable_trace_id("farm/task/7") != stable_trace_id("farm/task/8")
        assert stable_span_id("a") != stable_span_id("b")

    def test_trace_and_span_namespaces_differ(self):
        """The same seed must not yield a span id that prefixes the
        trace id — the two hash namespaces are distinct."""
        seed = "farm/task/7"
        assert not stable_trace_id(seed).startswith(stable_span_id(seed))

    @given(st.text(min_size=1, max_size=64))
    def test_id_shapes(self, seed):
        trace_id, span_id = stable_trace_id(seed), stable_span_id(seed)
        assert len(trace_id) == 32 and int(trace_id, 16) >= 0
        assert len(span_id) == 16 and int(span_id, 16) >= 0


class TestTraceparent:
    def test_round_trip(self):
        ctx = task_context("farm", 7)
        parsed = TraceContext.from_traceparent(ctx.traceparent())
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        # the parsed context names the sender: receivers derive children
        assert parsed.span_id == ctx.span_id
        assert parsed.child("exec").parent_id == ctx.span_id

    def test_format(self):
        header = task_context("farm", 7).traceparent()
        version, trace_id, span_id, flags = header.split("-")
        assert (version, flags) == ("00", "01")
        assert len(trace_id) == 32 and len(span_id) == 16

    @pytest.mark.parametrize(
        "garbage",
        [
            None,
            "",
            "nonsense",
            "00-zz-zz-01",
            "00-" + "0" * 32 + "-" + "0" * 15 + "-01",  # short span id
            "ff-" + "0" * 32 + "-" + "0" * 16 + "-01",  # unknown version
            "00-" + "0" * 32 + "-" + "0" * 16,  # missing flags
        ],
    )
    def test_garbage_parses_to_none(self, garbage):
        assert TraceContext.from_traceparent(garbage) is None

    def test_child_joins_the_trace(self):
        root = task_context("farm", 7)
        child = root.child("dispatch/1")
        grandchild = child.child("exec:2")
        assert child.trace_id == root.trace_id == grandchild.trace_id
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        # derivation is deterministic and collision-free across seeds
        assert child.span_id == root.child("dispatch/1").span_id
        assert child.span_id != root.child("dispatch/2").span_id


class TestSpanRecord:
    def test_record_is_json_shaped(self):
        ctx = task_context("farm", 7).child("exec:1")
        rec = make_span_record(
            ctx, "task.exec", actor="w1", start=1.0, end=2.5,
            attributes={"worker": 1},
        )
        assert rec["trace_id"] == ctx.trace_id
        assert rec["span_id"] == ctx.span_id
        assert rec["parent_id"] == ctx.parent_id
        assert rec["name"] == "task.exec" and rec["actor"] == "w1"
        assert rec["start"] == 1.0 and rec["end"] == 2.5
        assert rec["attributes"] == {"worker": 1}
        import json

        json.dumps(rec)  # must cross a JSON wire as-is


def _span(span_id, parent_id, name="s", trace_id="t" * 32, start=0.0, end=1.0):
    return Span(
        span_id=span_id, parent_id=parent_id, name=name, actor="a",
        start=start, end=end, trace_id=trace_id,
    )


class TestBuildTraceTree:
    def test_nests_children_sorted_by_start(self):
        spans = [
            _span("a", None, name="root"),
            _span("c", "a", name="late", start=2.0),
            _span("b", "a", name="early", start=1.0),
        ]
        tree = build_trace_tree(spans, "t" * 32)
        assert len(tree) == 1
        assert [kid["name"] for kid in tree[0]["children"]] == ["early", "late"]

    def test_unknown_trace_is_empty(self):
        assert build_trace_tree([_span("a", None)], "f" * 32) == []

    def test_orphan_becomes_root(self):
        """A span whose parent never reached the store still renders."""
        tree = build_trace_tree([_span("b", "missing")], "t" * 32)
        assert len(tree) == 1 and tree[0]["id"] == "b"

    def test_cycle_cannot_hang_the_builder(self):
        spans = [_span("a", "b"), _span("b", "a")]
        tree = build_trace_tree(spans, "t" * 32)
        # both members surface; nothing loops forever
        surfaced = set()

        def walk(nodes):
            for node in nodes:
                surfaced.add(node["id"])
                walk(node["children"])

        walk(tree)
        assert surfaced == {"a", "b"}


class TestListTraces:
    def test_summarises_each_trace_once(self):
        spans = [
            _span("a", None, name="task", trace_id="1" * 32, start=5.0),
            _span("b", "a", name="task.dispatch", trace_id="1" * 32, start=6.0),
            _span("c", None, name="mape.cycle", trace_id="2" * 32, start=1.0),
        ]
        summaries = {s["trace_id"]: s for s in list_traces(spans)}
        assert summaries["1" * 32]["spans"] == 2
        assert summaries["1" * 32]["root"] == "task"
        assert summaries["2" * 32]["root"] == "mape.cycle"
