"""The embedded TSDB: scraping, ring retention, range queries, streaming.

Every test drives :meth:`TimeSeriesStore.scrape_once` by hand with a
:class:`ManualClock`, so time is exact and nothing sleeps.
"""

import math
import threading

import pytest

from repro.obs.clock import ManualClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    HistogramSnapshot,
    MetricsDeltaPublisher,
    StreamBroker,
    TimeSeriesStore,
)


@pytest.fixture()
def clock():
    return ManualClock()


@pytest.fixture()
def registry():
    return MetricsRegistry()


@pytest.fixture()
def store(registry, clock):
    return TimeSeriesStore(registry, clock, interval=1.0, retention=10.0)


class TestHistogramSnapshot:
    def _hist(self, registry, values):
        h = registry.histogram("repro_lat_seconds", "latency").labels()
        for v in values:
            h.observe(v)
        return h

    def test_of_copies_the_live_state(self, registry):
        h = self._hist(registry, [0.001, 0.1, 2.0])
        snap = HistogramSnapshot.of(h)
        h.observe(5.0)
        assert snap.count == 3
        assert HistogramSnapshot.of(h).count == 4

    def test_delta_is_the_interval_distribution(self, registry):
        h = self._hist(registry, [0.001, 0.001])
        early = HistogramSnapshot.of(h)
        h.observe(1.0)
        h.observe(1.0)
        window = HistogramSnapshot.of(h).delta(early)
        assert window.count == 2
        assert window.quantile(0.5) >= 1.0

    def test_delta_of_none_is_identity(self, registry):
        snap = HistogramSnapshot.of(self._hist(registry, [0.5]))
        assert snap.delta(None) is snap

    def test_merge_adds_counts_and_sums(self, registry):
        a = HistogramSnapshot.of(self._hist(registry, [0.001]))
        b = HistogramSnapshot.of(self._hist(MetricsRegistry(), [1.0]))
        merged = a.merge(b)
        assert merged.count == 2
        assert merged.sum == pytest.approx(1.001)

    def test_quantile_empty_is_zero(self):
        snap = HistogramSnapshot((0.1, math.inf), (0, 0), 0.0, 0)
        assert snap.quantile(0.95) == 0.0
        assert snap.mean == 0.0

    def test_quantile_validates_range(self, registry):
        snap = HistogramSnapshot.of(self._hist(registry, [0.5]))
        with pytest.raises(ValueError):
            snap.quantile(1.5)

    def test_to_dict_carries_the_summary(self, registry):
        d = HistogramSnapshot.of(self._hist(registry, [0.001, 0.002])).to_dict()
        assert d["count"] == 2
        assert set(d) == {"count", "sum", "mean", "p50", "p95", "p99"}


class TestScrapeAndRetention:
    def test_scrape_samples_every_kind(self, registry, store, clock):
        registry.gauge("repro_g", "g").labels(x="a").set(3.0)
        registry.counter("repro_c", "c").labels().inc(2)
        registry.histogram("repro_h", "h").labels().observe(0.01)
        clock.advance(1.0)
        store.scrape_once()
        assert sorted(store.metric_names()) == ["repro_c", "repro_g", "repro_h"]
        assert store.kind_of("repro_g") == "gauge"
        assert store.latest("repro_g", {"x": "a"}) == 3.0
        assert store.latest("repro_c") == 2.0
        assert store.latest("repro_h").count == 1

    def test_retention_bounds_the_ring(self, registry, store, clock):
        g = registry.gauge("repro_g", "g").labels()
        for i in range(50):
            g.set(float(i))
            clock.advance(1.0)
            store.scrape_once()
        body = store.query("repro_g", since=clock.now() - 1000.0)
        # capacity = retention/interval + 2 = 12
        assert len(body["series"][0]["points"]) <= 12
        assert store.latest("repro_g") == 49.0

    def test_listeners_fire_after_each_scrape(self, registry, store, clock):
        seen = []
        store.add_listener(lambda t, s: seen.append(t))
        clock.advance(1.0)
        store.scrape_once()
        clock.advance(1.0)
        store.scrape_once()
        assert seen == [1.0, 2.0]

    def test_interval_and_retention_validated(self, registry, clock):
        with pytest.raises(ValueError):
            TimeSeriesStore(registry, clock, interval=0.0)
        with pytest.raises(ValueError):
            TimeSeriesStore(registry, clock, interval=5.0, retention=1.0)

    def test_window_rate_over_a_counter(self, registry, store, clock):
        c = registry.counter("repro_c", "c").labels()
        for _ in range(5):
            c.inc(10)
            clock.advance(1.0)
            store.scrape_once()
        assert store.window_rate("repro_c", 3.0) == pytest.approx(10.0)
        assert store.window_rate("repro_missing", 3.0) is None

    def test_window_histogram_subtracts_the_base(self, registry, store, clock):
        h = registry.histogram("repro_h", "h").labels()
        h.observe(0.001)
        clock.advance(1.0)
        store.scrape_once()
        clock.advance(5.0)
        h.observe(1.0)
        store.scrape_once()
        window = store.window_histogram("repro_h", 3.0)
        assert window.count == 1
        assert window.quantile(0.5) >= 1.0


class TestQuery:
    def test_unknown_metric_raises_keyerror(self, store):
        with pytest.raises(KeyError):
            store.query("repro_nope")

    def test_bad_field_and_step_raise_valueerror(self, registry, store, clock):
        registry.gauge("repro_g", "g").labels().set(1.0)
        clock.advance(1.0)
        store.scrape_once()
        with pytest.raises(ValueError):
            store.query("repro_g", field="rate")
        with pytest.raises(ValueError):
            store.query("repro_g", step=0.0)

    def test_gauge_raw_and_bucketed(self, registry, store, clock):
        g = registry.gauge("repro_g", "g").labels()
        for v in (1.0, 2.0, 3.0, 4.0):
            g.set(v)
            clock.advance(1.0)
            store.scrape_once()
        raw = store.query("repro_g")
        assert [p[1] for p in raw["series"][0]["points"]] == [1.0, 2.0, 3.0, 4.0]
        avg = store.query("repro_g", since=0.5, step=2.0, field="avg")
        values = [p[1] for p in avg["series"][0]["points"]]
        assert values == [pytest.approx(1.5), pytest.approx(3.5)]

    def test_counter_rate_vs_total(self, registry, store, clock):
        c = registry.counter("repro_c", "c").labels()
        for _ in range(4):
            c.inc(5)
            clock.advance(1.0)
            store.scrape_once()
        rate = store.query("repro_c", field="rate", step=1.0, since=0.5)
        points = rate["series"][0]["points"]
        assert len(points) == 3  # rate needs a previous sample; first gap has none
        assert all(v == pytest.approx(5.0) for _, v in points)
        total = store.query("repro_c", field="total")
        assert [p[1] for p in total["series"][0]["points"]] == [5.0, 10.0, 15.0, 20.0]

    def test_histogram_windowed_quantiles(self, registry, store, clock):
        h = registry.histogram("repro_h", "h").labels()
        # slow interval first, fast interval second: the windowed p95
        # must follow, which the lifetime distribution cannot do
        for _ in range(10):
            h.observe(1.0)
        clock.advance(1.0)
        store.scrape_once()
        for _ in range(10):
            h.observe(0.001)
        clock.advance(1.0)
        store.scrape_once()
        body = store.query("repro_h", field="p95", step=1.0, since=0.5)
        points = body["series"][0]["points"]
        assert points[0][1] >= 1.0
        assert points[-1][1] < 1.0

    def test_relative_since_is_anchored_at_now(self, registry, store, clock):
        g = registry.gauge("repro_g", "g").labels()
        for v in range(10):
            g.set(float(v))
            clock.advance(1.0)
            store.scrape_once()
        # since=-3 anchors at now (t=10): samples at t=7..10 inclusive
        body = store.query("repro_g", since=-3.0)
        assert len(body["series"][0]["points"]) == 4
        assert body["series"][0]["points"][0][0] == 7.0

    def test_label_filter_selects_series(self, registry, store, clock):
        g = registry.gauge("repro_g", "g")
        g.labels(farm="a").set(1.0)
        g.labels(farm="b").set(2.0)
        clock.advance(1.0)
        store.scrape_once()
        body = store.query("repro_g", labels={"farm": "b"})
        assert len(body["series"]) == 1
        assert body["series"][0]["labels"] == {"farm": "b"}

    def test_default_fields_per_kind(self, registry, store, clock):
        registry.gauge("repro_g", "g").labels().set(1.0)
        registry.counter("repro_c", "c").labels().inc()
        registry.histogram("repro_h", "h").labels().observe(0.5)
        clock.advance(1.0)
        store.scrape_once()
        assert store.query("repro_g")["field"] == "last"
        assert store.query("repro_c")["field"] == "rate"
        assert store.query("repro_h")["field"] == "p95"


class TestScraperThread:
    def test_start_is_idempotent_and_stop_joins(self, registry, clock):
        store = TimeSeriesStore(registry, clock, interval=0.01, retention=1.0)
        registry.gauge("repro_g", "g").labels().set(1.0)
        store.start()
        thread = store._thread
        assert store.start()._thread is thread
        deadline = threading.Event()
        deadline.wait(0.1)
        store.stop()
        assert store._thread is None
        assert store.scrapes >= 1


class TestStreamBroker:
    def test_fan_out_to_every_subscriber(self):
        broker = StreamBroker()
        a, b = broker.subscribe(), broker.subscribe()
        broker.publish({"type": "x"})
        assert a.get_nowait() == {"type": "x"}
        assert b.get_nowait() == {"type": "x"}
        assert broker.published == 1

    def test_full_queue_drops_oldest_not_newest(self):
        broker = StreamBroker(max_queue=2)
        q = broker.subscribe()
        for i in range(5):
            broker.publish({"i": i})
        drained = []
        while not q.empty():
            drained.append(q.get_nowait()["i"])
        assert drained == [3, 4]

    def test_unsubscribe_is_idempotent(self):
        broker = StreamBroker()
        q = broker.subscribe()
        broker.unsubscribe(q)
        broker.unsubscribe(q)
        assert broker.subscribers == 0


class TestMetricsDeltaPublisher:
    def test_only_changed_values_stream(self, registry, store, clock):
        broker = StreamBroker()
        store.add_listener(MetricsDeltaPublisher(broker))
        q = broker.subscribe()
        g = registry.gauge("repro_g", "g").labels()
        g.set(1.0)
        clock.advance(1.0)
        store.scrape_once()
        first = q.get_nowait()
        assert first["type"] == "metrics"
        assert [c["metric"] for c in first["changed"]] == ["repro_g"]
        # no change: the next event is an empty heartbeat
        clock.advance(1.0)
        store.scrape_once()
        assert q.get_nowait()["changed"] == []
        g.set(2.0)
        clock.advance(1.0)
        store.scrape_once()
        assert q.get_nowait()["changed"][0]["value"] == 2.0
