"""The longitudinal HTTP surface: /query, /slo, /stream — and its races.

Endpoint tests run against a scripted store (ManualClock, hand scrapes);
the race tier hammers the surface from client threads while a
SupervisedFarm crashes, fails over and flushes underneath it — the
invariant is *no 500s and no torn state*, ever.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.contracts import MinThroughputContract
from repro.obs.clock import ManualClock
from repro.obs.slo import SLO, BurnWindows, SLOEngine
from repro.obs.telemetry import Telemetry
from repro.runtime.supervision import SupervisedFarm

from ..runtime.waiting import wait_until


def race_task(payload):
    """Module-level so the tagged runner can resolve it by name."""
    work, value = payload
    if work:
        time.sleep(work)
    return value * value


def _get_json(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return json.load(resp)


def _http_error(url):
    try:
        urllib.request.urlopen(url, timeout=5)
    except urllib.error.HTTPError as err:
        return err.code, json.load(err)
    raise AssertionError(f"{url} unexpectedly succeeded")


@pytest.fixture()
def telemetry():
    clock = ManualClock()
    tel = Telemetry(clock)
    tel.start_timeseries(interval=0.5, scraper_thread=False)
    g = tel.metrics.gauge("repro_farm_departure_rate", "r").labels(manager="AM_x")
    for v in (40.0, 50.0, 60.0):
        g.set(v)
        clock.advance(0.5)
        tel.timeseries.scrape_once()
    return tel


@pytest.fixture()
def server(telemetry):
    with telemetry.serve(port=0) as srv:
        yield srv


class TestQueryEndpoint:
    def test_query_returns_the_series(self, server):
        body = _get_json(
            server.url("/query?metric=repro_farm_departure_rate&since=-10")
        )
        assert body["kind"] == "gauge" and body["field"] == "last"
        (series,) = body["series"]
        assert series["labels"] == {"manager": "AM_x"}
        assert [p[1] for p in series["points"]] == [40.0, 50.0, 60.0]

    def test_label_params_filter_series(self, server, telemetry):
        telemetry.metrics.gauge("repro_farm_departure_rate", "r").labels(
            manager="AM_y"
        ).set(1.0)
        telemetry.timeseries.scrape_once()
        body = _get_json(
            server.url("/query?metric=repro_farm_departure_rate&manager=AM_y")
        )
        (series,) = body["series"]
        assert series["labels"] == {"manager": "AM_y"}

    def test_missing_metric_param_is_400_with_catalogue(self, server):
        code, body = _http_error(server.url("/query"))
        assert code == 400
        assert "repro_farm_departure_rate" in body["metrics"]

    def test_unknown_metric_is_404_with_catalogue(self, server):
        code, body = _http_error(server.url("/query?metric=repro_nope"))
        assert code == 404
        assert "repro_farm_departure_rate" in body["metrics"]

    def test_bad_field_is_400(self, server):
        code, body = _http_error(
            server.url("/query?metric=repro_farm_departure_rate&field=p95")
        )
        assert code == 400
        assert "field" in body["error"] or "field" in str(body)

    def test_no_store_is_404(self):
        tel = Telemetry()
        with tel.serve(port=0) as srv:
            code, body = _http_error(srv.url("/query?metric=x"))
        assert code == 404
        assert "timeseries" in str(body).lower()


class TestSloEndpoint:
    def test_without_engine_404(self, server):
        code, body = _http_error(server.url("/slo"))
        assert code == 404

    def test_with_engine_describes_objectives(self, telemetry, server):
        def sample(store, now):
            v = store.latest("repro_farm_departure_rate", {"manager": "AM_x"})
            return {} if v is None else {"departure_rate": v}

        SLOEngine(
            telemetry,
            telemetry.timeseries,
            [SLO("x", MinThroughputContract(40.0), sample)],
            windows=BurnWindows().scaled(1.0 / 150.0),
        )
        telemetry.timeseries.scrape_once()
        body = _get_json(server.url("/slo"))
        assert body["objectives"][0]["name"] == "x"
        assert body["objectives"][0]["level"] == "ok"
        health = _get_json(server.url("/healthz"))
        assert health["slo"]["objectives"] == 1

    def test_healthz_reports_the_store(self, server):
        health = _get_json(server.url("/healthz"))
        assert health["timeseries"]["scrapes"] == 3
        assert health["timeseries"]["interval"] == 0.5


class TestStreamEndpoint:
    def test_without_broker_404(self):
        tel = Telemetry()
        with tel.serve(port=0) as srv:
            code, _ = _http_error(srv.url("/stream"))
        assert code == 404

    def test_limit_bounds_the_stream(self, telemetry, server):
        url = server.url("/stream?limit=2")
        got = []

        def reader():
            req = urllib.request.urlopen(url, timeout=10)
            for raw in req:
                line = raw.decode().rstrip("\n")
                if line.startswith("data: "):
                    got.append(json.loads(line[len("data: "):]))

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        wait_until(lambda: telemetry.stream.subscribers == 1, timeout=5)
        telemetry.stream.publish({"type": "slo", "level": "page"})
        telemetry.stream.publish({"type": "slo", "level": "ok"})
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert [e["level"] for e in got] == ["page", "ok"]
        wait_until(lambda: telemetry.stream.subscribers == 0, timeout=5)

    def test_event_type_names_the_frame(self, telemetry, server):
        url = server.url("/stream?limit=1")
        lines = []

        def reader():
            req = urllib.request.urlopen(url, timeout=10)
            for raw in req:
                lines.append(raw.decode().rstrip("\n"))

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        wait_until(lambda: telemetry.stream.subscribers == 1, timeout=5)
        telemetry.stream.publish({"type": "metrics", "changed": []})
        thread.join(timeout=10)
        assert "event: metrics" in lines


class TestSurfaceRaces:
    """/metrics, /query and /stream concurrent with failover and flush."""

    def test_no_500s_across_failover_and_flush(self, tmp_path):
        tel = Telemetry()
        gauge = tel.metrics.gauge("repro_race_gauge", "spin").labels()
        gauge.set(0.0)
        tel.start_timeseries(interval=0.01, retention=5.0, scraper_thread=True)
        tel.timeseries.scrape_once()  # the gauge is queryable before any poll
        farm = SupervisedFarm(
            race_task,
            backend="thread",
            journal_path=str(tmp_path / "j.jsonl"),
            initial_workers=2,
            telemetry=tel,
        )
        srv = tel.serve(port=0)
        stop = threading.Event()
        bad: list = []

        def poll(path):
            while not stop.is_set():
                try:
                    with urllib.request.urlopen(srv.url(path), timeout=5) as resp:
                        resp.read()
                except urllib.error.HTTPError as err:
                    bad.append((path, err.code))
                except OSError:
                    # connection-level noise (reset mid-teardown) is not
                    # a server error; the invariant is "never a 500"
                    pass

        def stream():
            while not stop.is_set():
                try:
                    with urllib.request.urlopen(
                        srv.url("/stream?limit=3"), timeout=5
                    ) as resp:
                        for _ in resp:
                            if stop.is_set():
                                break
                except urllib.error.HTTPError as err:
                    bad.append(("/stream", err.code))
                except OSError:
                    pass

        threads = [
            threading.Thread(target=poll, args=("/metrics",), daemon=True),
            threading.Thread(
                target=poll, args=("/query?metric=repro_race_gauge&since=-2",),
                daemon=True,
            ),
            threading.Thread(target=poll, args=("/healthz",), daemon=True),
            threading.Thread(target=stream, daemon=True),
        ]
        for t in threads:
            t.start()
        try:
            total = 40
            for i in range(total):
                gauge.set(float(i))
                farm.submit((0.002, i))
            wait_until(lambda: farm.completed >= 5, message="stream in flight")
            farm.crash_coordinator()
            farm.failover()
            results = farm.drain_results(total, timeout=60.0)
            assert sorted(results) == [i * i for i in range(total)]
        finally:
            farm.shutdown()
            tel.flush()
            stop.set()
            for t in threads:
                t.join(timeout=10)
            tel.stop_timeseries()
            final = _get_json(srv.url("/healthz"))
            srv.close()
        assert bad == []
        assert final["open_spans"] == 0
        assert final["status"] == "ok"
