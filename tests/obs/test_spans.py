"""Span recorder + Telemetry facade tests: nesting, detachment, clocks."""

import pytest

from repro.obs.clock import ManualClock, SimClock, WallClock
from repro.obs.spans import SpanRecorder
from repro.obs.telemetry import NOOP, NullTelemetry, Telemetry


class TestSpanRecorder:
    def test_sequential_ids_and_parentage(self):
        rec = SpanRecorder()
        outer = rec.open("mape.cycle", 0.0, actor="AM_F")
        inner = rec.open("mape.monitor", 0.0, actor="AM_F")
        # local ids stay sequential (deterministic), rendered as hex
        assert (outer.span_id, inner.span_id) == (f"{0:016x}", f"{1:016x}")
        assert inner.parent_id == outer.span_id
        # a root starts its own trace; children inherit it
        assert outer.trace_id and inner.trace_id == outer.trace_id
        rec.close(inner, 1.0)
        rec.close(outer, 2.0)
        assert inner.duration == 1.0 and outer.duration == 2.0
        assert rec.children_of(outer) == [inner]
        assert rec.trace(outer.trace_id) == [outer, inner]

    def test_detached_span_does_not_join_stack(self):
        rec = SpanRecorder()
        outer = rec.open("mape.cycle", 0.0)
        flight = rec.open("violation.propagate", 0.0, attach=False)
        assert rec.current is outer
        assert flight.parent_id == outer.span_id
        rec.close(outer, 1.0)
        assert not flight.finished
        rec.close(flight, 5.0)
        assert flight.duration == 5.0

    def test_closing_parent_closes_leaked_children(self):
        rec = SpanRecorder()
        outer = rec.open("outer", 0.0)
        leaked = rec.open("leaked", 0.0)
        rec.close(outer, 3.0)
        assert leaked.end == 3.0
        assert rec.current is None

    def test_close_is_idempotent(self):
        rec = SpanRecorder()
        s = rec.open("s", 0.0)
        rec.close(s, 1.0)
        rec.close(s, 9.0)
        assert s.end == 1.0

    def test_named_and_actors_queries(self):
        rec = SpanRecorder()
        rec.open("mape.cycle", 0.0, actor="AM_F")
        rec.open("mape.cycle", 0.0, actor="AM_A")
        assert len(rec.named("mape.cycle")) == 2
        assert [s.actor for s in rec.named("mape.cycle", "AM_A")] == ["AM_A"]
        assert rec.actors() == ["AM_F", "AM_A"]


class TestTelemetrySpans:
    def test_with_block_times_on_injected_clock(self):
        clock = ManualClock(10.0)
        tel = Telemetry(clock)
        with tel.span("mape.cycle", actor="AM_F", tick=3) as span:
            clock.advance(2.5)
        assert span.start == 10.0 and span.end == 12.5
        assert span.attributes["tick"] == 3
        assert span.perf_elapsed == 2.5  # ManualClock: perf == now

    def test_exception_recorded_and_propagated(self):
        tel = Telemetry(ManualClock())
        with pytest.raises(RuntimeError):
            with tel.span("mape.execute") as span:
                raise RuntimeError("boom")
        assert span.finished
        assert "boom" in span.attributes["error"]

    def test_events_attach_to_innermost_span(self):
        clock = ManualClock()
        tel = Telemetry(clock)
        with tel.span("outer"):
            with tel.span("inner") as inner:
                clock.advance(1.0)
                tel.event("fired", rule="AddWorker")
        assert [e.name for e in inner.events] == ["fired"]
        assert inner.events[0].time == 1.0

    def test_detached_span_lifecycle(self):
        clock = ManualClock()
        tel = Telemetry(clock)
        span = tel.start_span("violation.propagate", actor="AM_F", kind="contrLow")
        clock.advance(1.0)
        tel.end_span(span, delivered=True)
        assert span.duration == 1.0
        assert span.attributes["delivered"] is True
        tel.end_span(None)  # None-safe

    def test_sim_clock_reads_property_sources(self):
        class FakeSim:
            now = 42.0

        tel = Telemetry(SimClock(FakeSim()))
        with tel.span("s") as span:
            pass
        assert span.start == span.end == 42.0
        with pytest.raises(TypeError):
            SimClock(object())

    def test_default_clock_is_wall(self):
        assert isinstance(Telemetry().clock, WallClock)


class TestNullTelemetry:
    def test_noop_is_shared_and_disabled(self):
        assert isinstance(NOOP, NullTelemetry)
        assert NOOP.enabled is False

    def test_full_api_surface_is_inert(self):
        with NOOP.span("x", actor="y", k=1) as span:
            span.set_attribute("a", 2)
            span.add_event("e")
        NOOP.event("e", k=1)
        NOOP.end_span(NOOP.start_span("d"))
        NOOP.metrics.counter("repro_c_total").labels(a="b").inc()
        NOOP.metrics.gauge("repro_g").set(1)
        NOOP.metrics.histogram("repro_h").observe(0.5)
        assert NOOP.metrics.families() == []
