"""The ASCII dashboard: pure-function frames from scripted snapshots.

``render_frame`` is exercised without any HTTP server — exactly how the
CI smoke job runs it — plus one end-to-end fetch against a live
:class:`TelemetryServer` to prove the wire shape matches.
"""

import re

from repro.obs.telemetry import Telemetry
from repro.obs.top import fetch_snapshot, main, render_frame, sparkline

_ANSI_RE = re.compile(r"\x1b\[[0-9;]*[A-Za-z]")


def _snapshot(**overrides):
    base = {
        "url": "http://127.0.0.1:9177",
        "healthz": {
            "status": "ok",
            "spans": 12,
            "open_spans": 0,
            "traces": 3,
            "timeseries": {"scrapes": 40, "metrics": 6},
        },
        "slo": {
            "objectives": [
                {
                    "name": "fig4.thread",
                    "objective": "throughput >= 40/s",
                    "level": "page",
                    "burn_fast": 20.0,
                    "burn_slow": 4.4,
                    "budget_remaining": 0.62,
                    "violation_seconds": 1.86,
                },
                {
                    "name": "tenant.acme",
                    "objective": "rate >= 20/s",
                    "level": "ok",
                    "burn_fast": 0.0,
                    "burn_slow": 0.0,
                    "budget_remaining": 1.0,
                    "violation_seconds": 0.0,
                },
            ],
            "open_alerts": 1,
        },
        "series": {
            "farm_rate": {
                "series": [
                    {
                        "labels": {"manager": "AM_thread"},
                        "points": [[t, 40.0 + t] for t in range(10)],
                    }
                ]
            },
            "farm_workers": {
                "series": [
                    {"labels": {"manager": "AM_thread"}, "points": [[9.0, 4.0]]}
                ]
            },
            "tenant_backlog": {
                "series": [
                    {"labels": {"tenant": "acme"}, "points": [[9.0, 17.0]]}
                ]
            },
        },
    }
    base.update(overrides)
    return base


class TestSparkline:
    def test_fixed_width_and_monotone_ramp(self):
        line = sparkline([[t, float(t)] for t in range(16)], width=8)
        assert len(line) == 8
        assert line[0] == " " and line[-1] == "@"

    def test_empty_points_render_blank(self):
        assert sparkline([], width=5) == "     "

    def test_flat_series_sits_mid_ramp(self):
        line = sparkline([[0, 3.0], [1, 3.0]], width=2)
        assert len(set(line)) == 1


class TestRenderFrame:
    def test_frame_carries_every_section(self):
        frame = render_frame(_snapshot())
        assert "FARMS" in frame and "TENANTS" in frame and "SLOs" in frame
        assert "AM_thread" in frame and "workers=4" in frame
        assert "backlog=17" in frame
        assert "[page]" in frame and "[ ok ]" in frame
        assert "open_alerts=1" in frame

    def test_no_color_frame_is_ansi_clean(self):
        frame = render_frame(_snapshot(), color=False)
        assert frame
        assert not _ANSI_RE.search(frame)

    def test_color_frame_paints_the_page(self):
        frame = render_frame(_snapshot(), color=True)
        assert "\x1b[31m" in frame  # the page tag is red
        # stripping the escapes gives back the plain frame
        assert _ANSI_RE.sub("", frame) == render_frame(_snapshot(), color=False)

    def test_unreachable_endpoint_is_one_clear_line(self):
        frame = render_frame(_snapshot(healthz=None))
        assert "unreachable" in frame
        assert "FARMS" not in frame

    def test_missing_slo_engine_is_not_an_error(self):
        frame = render_frame(_snapshot(slo=None))
        assert "(no slo engine attached)" in frame

    def test_empty_series_render_placeholders(self):
        frame = render_frame(_snapshot(series={}))
        assert "(no farm gauges yet)" in frame
        assert "TENANTS" not in frame


class TestAgainstLiveServer:
    def test_fetch_snapshot_matches_the_wire(self):
        tel = Telemetry()
        tel.metrics.gauge("repro_farm_departure_rate", "r").labels(
            manager="AM_x"
        ).set(42.0)
        tel.start_timeseries(interval=0.5, scraper_thread=False)
        tel.timeseries.scrape_once()
        with tel.serve(port=0) as srv:
            snap = fetch_snapshot(srv.url(""), timeout=5)
        assert snap["healthz"]["status"] == "ok"
        assert snap["slo"] is None  # no engine attached: /slo is 404
        frame = render_frame(snap)
        assert "AM_x" in frame
        tel.stop_timeseries()

    def test_main_once_writes_one_frame(self, capsys, monkeypatch):
        monkeypatch.setenv("NO_COLOR", "1")
        tel = Telemetry()
        tel.metrics.gauge("repro_farm_departure_rate", "r").labels(
            manager="AM_x"
        ).set(7.0)
        tel.start_timeseries(interval=0.5, scraper_thread=False)
        tel.timeseries.scrape_once()
        with tel.serve(port=0) as srv:
            rc = main(["--once", "--url", srv.url("")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "repro.obs.top" in out and "AM_x" in out
        assert not _ANSI_RE.search(out)
        tel.stop_timeseries()

    def test_main_against_a_dead_port_still_renders(self, capsys, monkeypatch):
        monkeypatch.setenv("NO_COLOR", "1")
        rc = main(["--once", "--url", "http://127.0.0.1:9"])
        assert rc == 0
        assert "unreachable" in capsys.readouterr().out
