"""Exporter tests: Prometheus text rendering and JSONL decision audits."""

import io
import json

from repro.obs.clock import ManualClock
from repro.obs.events import TraceRecorder
from repro.obs.export import (
    prometheus_text,
    span_to_dict,
    trace_jsonl,
    write_trace_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import Telemetry


class TestPrometheusText:
    def test_counter_and_gauge_rendering(self):
        reg = MetricsRegistry()
        reg.counter("repro_ticks_total", "ticks").labels(manager="AM_F").inc(3)
        reg.gauge("repro_workers", "workers").labels(manager="AM_F").set(5)
        text = prometheus_text(reg)
        assert "# HELP repro_ticks_total ticks" in text
        assert "# TYPE repro_ticks_total counter" in text
        assert 'repro_ticks_total{manager="AM_F"} 3' in text
        assert "# TYPE repro_workers gauge" in text
        assert 'repro_workers{manager="AM_F"} 5' in text

    def test_histogram_renders_cumulative_le_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat_seconds", "latency", buckets=(0.1, 0.5))
        h.labels(m="x").observe(0.05)
        h.labels(m="x").observe(0.3)
        h.labels(m="x").observe(2.0)
        text = prometheus_text(reg)
        assert '# TYPE repro_lat_seconds histogram' in text
        assert 'repro_lat_seconds_bucket{m="x",le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{m="x",le="0.5"} 2' in text
        assert 'repro_lat_seconds_bucket{m="x",le="+Inf"} 3' in text
        assert 'repro_lat_seconds_sum{m="x"} 2.35' in text
        assert 'repro_lat_seconds_count{m="x"} 3' in text

    def test_unlabelled_instruments_have_no_brace_block(self):
        reg = MetricsRegistry()
        reg.counter("repro_plain_total").inc()
        assert "repro_plain_total 1\n" in prometheus_text(reg)

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.gauge("repro_g").labels(k='say "hi"\\now').set(1)
        text = prometheus_text(reg)
        assert r'k="say \"hi\"\\now"' in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestTraceJsonl:
    def _make_telemetry(self):
        clock = ManualClock()
        trace = TraceRecorder()
        tel = Telemetry(clock, trace=trace)
        trace.mark(0.0, "AM_F", "contrLow", level=0.2)
        with tel.span("mape.cycle", actor="AM_F"):
            clock.advance(1.0)
            tel.event("checkpoint", phase="analyse")
        trace.sample("throughput", 1.0, 0.4)
        return tel, trace

    def test_every_line_is_self_describing_json(self):
        tel, trace = self._make_telemetry()
        lines = trace_jsonl(tel, include_series=True).splitlines()
        records = [json.loads(line) for line in lines]
        assert {r["type"] for r in records} == {"event", "span", "sample"}
        span = next(r for r in records if r["type"] == "span")
        assert span["name"] == "mape.cycle"
        assert span["actor"] == "AM_F"
        assert span["duration"] == 1.0
        assert span["events"][0]["name"] == "checkpoint"
        mark = next(r for r in records if r["type"] == "event")
        assert mark["name"] == "contrLow" and mark["detail"] == {"level": 0.2}

    def test_span_to_dict_round_trips_through_json(self):
        tel, _ = self._make_telemetry()
        d = span_to_dict(tel.spans.spans[0])
        assert json.loads(json.dumps(d, default=str)) == json.loads(
            json.dumps(d, default=str)
        )

    def test_write_to_file_object_and_path(self, tmp_path):
        tel, trace = self._make_telemetry()
        buf = io.StringIO()
        n1 = write_trace_jsonl(buf, tel, include_series=True)
        path = tmp_path / "audit.jsonl"
        n2 = write_trace_jsonl(str(path), tel, include_series=True)
        assert n1 == n2 == len(buf.getvalue().splitlines())
        assert path.read_text() == buf.getvalue()

    def test_orphan_span_events_are_exported(self):
        tel = Telemetry(ManualClock())
        tel.event("lonely", why="no open span")
        records = [json.loads(x) for x in trace_jsonl(tel).splitlines()]
        assert records == [
            {
                "type": "span_event",
                "time": 0.0,
                "name": "lonely",
                "attributes": {"why": "no open span"},
            }
        ]
