"""Acceptance tests: a FIG4 run with telemetry attached.

The three promises the observability subsystem makes, checked end to
end on the paper's hierarchical-manager scenario:

(a) attaching telemetry never changes the dynamics — the event sequence
    is bit-identical to a detached run;
(b) the JSONL decision audit contains spans for all four MAPE phases of
    at least two managers, at least one violation-propagation span and
    at least one two-phase intent-round span;
(c) the Prometheus dump carries the control-loop latency histograms.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.fig4 import Fig4Config, run_fig4
from repro.obs.export import prometheus_text, trace_jsonl
from repro.obs.telemetry import Telemetry

MAPE_PHASES = ("mape.monitor", "mape.analyse", "mape.plan", "mape.execute")


def _cfg(**overrides):
    base = dict(duration=400.0, with_coordinator=True)
    base.update(overrides)
    return Fig4Config(**base)


def _event_tuples(result):
    return [
        (e.time, e.actor, e.name, tuple(sorted((k, str(v)) for k, v in e.detail.items())))
        for e in result.trace.events
    ]


def _run_instrumented(cfg):
    tel = Telemetry()
    result = run_fig4(cfg, telemetry=tel)
    return tel, result


class TestFig4Acceptance:
    def test_event_sequence_bit_identical_with_and_without_telemetry(self):
        cfg = _cfg()
        _, instrumented = _run_instrumented(cfg)
        detached = run_fig4(_cfg())
        assert _event_tuples(instrumented) == _event_tuples(detached)
        assert instrumented.cores_series == detached.cores_series
        assert instrumented.throughput_series == detached.throughput_series

    def test_jsonl_audit_has_required_spans(self):
        tel, result = _run_instrumented(_cfg())
        records = [
            json.loads(line)
            for line in trace_jsonl(tel, result.trace, include_series=True).splitlines()
        ]
        spans = [r for r in records if r["type"] == "span"]

        # (b1) all four MAPE phases for at least two managers
        managers_with_full_mape = {
            actor
            for actor in {s["actor"] for s in spans}
            if all(
                any(s["actor"] == actor and s["name"] == phase for s in spans)
                for phase in MAPE_PHASES
            )
        }
        assert len(managers_with_full_mape) >= 2, managers_with_full_mape

        # (b2) at least one violation propagation hop, closed at delivery
        violations = [s for s in spans if s["name"] == "violation.propagate"]
        assert violations
        assert all(s["end"] is not None and s["duration"] > 0 for s in violations)
        assert all(s["attributes"]["target"] for s in violations)

        # (b3) at least one two-phase intent round with its phase events
        intents = [s for s in spans if s["name"] == "intent.round"]
        assert intents
        committed = [s for s in intents if s["attributes"]["outcome"] == "committed"]
        assert committed
        event_names = {e["name"] for s in committed for e in s["events"]}
        assert {"intent.plan", "intent.commit"} <= event_names

        # spans nest: every mape phase span has a mape.cycle parent
        by_id = {s["id"]: s for s in spans}
        for s in spans:
            if s["name"] in MAPE_PHASES:
                assert by_id[s["parent"]]["name"] == "mape.cycle"

    def test_prometheus_dump_has_latency_histograms(self):
        tel, _ = _run_instrumented(_cfg())
        text = prometheus_text(tel.metrics)
        assert "# TYPE repro_control_loop_latency_seconds histogram" in text
        for manager in ("AM_A", "AM_F"):
            assert (
                f'repro_control_loop_latency_seconds_bucket{{manager="{manager}",le="+Inf"}}'
                in text
            )
        assert "repro_reconfiguration_blackout_seconds_bucket" in text
        assert "repro_mape_ticks_total" in text

    def test_rule_decisions_recorded_on_plan_spans(self):
        tel, _ = _run_instrumented(_cfg())
        plans = tel.spans.named("mape.plan", "AM_F")
        matched = [m for s in plans for m in s.attributes.get("matched", [])]
        assert any(name == "AddWorkers" for name, _ in matched) or matched

    def test_span_ids_are_deterministic_across_runs(self):
        tel1, _ = _run_instrumented(_cfg())
        tel2, _ = _run_instrumented(_cfg())
        sig1 = [(s.span_id, s.parent_id, s.name, s.actor, s.start, s.end) for s in tel1.spans.spans]
        sig2 = [(s.span_id, s.parent_id, s.name, s.actor, s.start, s.end) for s in tel2.spans.spans]
        assert sig1 == sig2


@given(
    initial_rate=st.sampled_from([0.15, 0.2, 0.3]),
    control_period=st.sampled_from([8.0, 10.0, 12.0]),
    with_coordinator=st.booleans(),
)
@settings(max_examples=8, deadline=None)
def test_telemetry_never_perturbs_dynamics(initial_rate, control_period, with_coordinator):
    """Property: any fig4-style scenario runs identically with telemetry."""
    def cfg():
        return Fig4Config(
            duration=250.0,
            initial_rate=initial_rate,
            control_period=control_period,
            with_coordinator=with_coordinator,
            total_tasks=120,
        )

    instrumented = run_fig4(cfg(), telemetry=Telemetry())
    detached = run_fig4(cfg())
    assert _event_tuples(instrumented) == _event_tuples(detached)
    assert instrumented.cores_series == detached.cores_series
