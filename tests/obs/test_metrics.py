"""Unit tests for the metrics registry: instruments, families, buckets."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increments(self):
        c = Counter()
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(4)
        g.inc()
        g.dec(2.5)
        assert g.value == 2.5


class TestHistogram:
    def test_bucketing_boundaries_are_inclusive_upper(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 100.0):
            h.observe(v)
        # (≤1): 0.5, 1.0 | (1,2]: 1.5, 2.0 | (2,4]: 3.0, 4.0 | +Inf: 100.0
        assert h.counts == [2, 2, 2, 1]
        assert h.count == 7
        assert h.sum == pytest.approx(112.0)

    def test_cumulative_view_ends_with_inf_total(self):
        h = Histogram(bounds=(1.0, 2.0))
        for v in (0.5, 1.5, 9.0):
            h.observe(v)
        assert h.cumulative() == [(1.0, 1), (2.0, 2), (math.inf, 3)]

    def test_quantile_is_bucket_resolution(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 0.5, 0.5, 3.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 4.0
        assert Histogram(bounds=(1.0,)).quantile(0.9) == 0.0  # empty

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))

    def test_default_bounds_cover_sub_ms_to_minutes(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 60.0


class TestMetricFamily:
    def test_labels_create_children_once(self):
        fam = MetricFamily("repro_x_total", "counter")
        a = fam.labels(manager="AM_F")
        b = fam.labels(manager="AM_F")
        c = fam.labels(manager="AM_A")
        assert a is b and a is not c
        a.inc()
        assert fam.labels(manager="AM_F").value == 1.0

    def test_label_order_does_not_matter(self):
        fam = MetricFamily("repro_x_total", "counter")
        assert fam.labels(a="1", b="2") is fam.labels(b="2", a="1")

    def test_zero_label_delegation(self):
        fam = MetricFamily("repro_x_total", "counter")
        fam.inc(3)
        assert fam.value == 3.0

    def test_rejects_invalid_names(self):
        with pytest.raises(ValueError):
            MetricFamily("1bad", "counter")
        with pytest.raises(ValueError):
            MetricFamily("ok_name", "timer")
        with pytest.raises(ValueError):
            MetricFamily("ok_name", "gauge").labels(**{"bad-label": "x"})


class TestMetricsRegistry:
    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("repro_a_total") is reg.counter("repro_a_total")
        assert len(reg) == 1
        assert "repro_a_total" in reg

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_a_total")
        with pytest.raises(ValueError):
            reg.gauge("repro_a_total")

    def test_histogram_custom_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_h", buckets=(1.0, 2.0)).labels(k="v")
        h.observe(1.5)
        assert h.counts == [0, 1, 0]

    def test_families_in_registration_order(self):
        reg = MetricsRegistry()
        reg.gauge("repro_b")
        reg.counter("repro_a_total")
        assert [f.name for f in reg.families()] == ["repro_b", "repro_a_total"]
