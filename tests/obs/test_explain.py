"""The ``python -m repro.obs.explain`` causal-chain CLI.

Drives ``main()`` against JSONL exports produced by a *real* crash
scenario on the process farm and a *real* two-phase intent round, so
the narrated chain (which rule fired, what the security manager
amended, quarantine → secure → admit) comes from spans the system
actually recorded — not fixtures shaped to please the parser.
"""

import io
import subprocess
import sys

import pytest

from repro.core.multiconcern import CoordinationMode
from repro.obs import Telemetry
from repro.obs.explain import find_actuations, load, main
from repro.obs.export import write_trace_jsonl
from repro.rules.beans import ManagerOperation
from repro.runtime.farm_runtime import ThreadFarm
from repro.runtime.multiconcern import LiveGeneralManager, WorkerPlacement
from repro.security.manager import LiveSecurityManager
from repro.sim.resources import Domain, ResourceManager, make_cluster

from ..runtime.test_backend_conformance import inject_fault, make_farm
from ..runtime.waiting import wait_until


def _run(path, *argv):
    out = io.StringIO()
    code = main([str(path), *argv], out=out)
    return code, out.getvalue()


@pytest.fixture(scope="module")
def crash_trace(tmp_path_factory):
    """A process-farm run with one injected crash, exported to JSONL."""
    tel = Telemetry()
    farm = make_farm("process", initial_workers=3, telemetry=tel)
    try:
        total = 60
        for i in range(total):
            farm.submit((0.01, i))
        wait_until(
            lambda: farm.snapshot().completed >= 5,
            message="stream in flight before the fault",
        )
        assert inject_fault(farm) is not None
        assert len(farm.drain_results(total, timeout=120.0)) == total
    finally:
        farm.shutdown()
    path = tmp_path_factory.mktemp("explain") / "crash.jsonl"
    write_trace_jsonl(str(path), tel)
    # a task that was dispatched more than once must exist
    spans = tel.spans.spans
    replayed = None
    for span in spans:
        if span.name != "task":
            continue
        dispatches = [
            s
            for s in spans
            if s.trace_id == span.trace_id and s.name == "task.dispatch"
        ]
        if len(dispatches) >= 2:
            replayed = span
            break
    assert replayed is not None
    return path, replayed


@pytest.fixture(scope="module")
def intent_trace(tmp_path_factory):
    """A two-phase grow over untrusted nodes, exported to JSONL."""

    class Originator:
        name = "AM_perf"

    tel = Telemetry()
    farm = ThreadFarm(
        lambda x: x, initial_workers=1, max_workers=8, telemetry=tel
    )
    try:
        farm.secure_all()
        pool = make_cluster(4, prefix="u", domain=Domain("edge", trusted=False))
        placement = WorkerPlacement(ResourceManager(pool))
        security = LiveSecurityManager(farm, placement, telemetry=tel)
        gm = LiveGeneralManager(
            farm, placement, mode=CoordinationMode.TWO_PHASE, telemetry=tel
        )
        gm.register(security)
        assert gm.execute_intent(
            Originator(), ManagerOperation.ADD_EXECUTOR, {"count": 2}
        )
    finally:
        farm.shutdown()
    path = tmp_path_factory.mktemp("explain") / "intent.jsonl"
    write_trace_jsonl(str(path), tel)
    return path


class TestOverviewAndIndexes:
    def test_overview_counts(self, crash_trace):
        path, _ = crash_trace
        code, text = _run(path)
        assert code == 0
        assert "trace(s)" in text and "task(s)" in text

    def test_list_traces(self, crash_trace):
        path, replayed = crash_trace
        code, text = _run(path, "--list-traces")
        assert code == 0
        assert replayed.trace_id in text

    def test_actuation_index(self, intent_trace):
        code, text = _run(intent_trace, "--actuations")
        assert code == 0
        assert "#1" in text and "mc.intent" in text
        assert "add_executor" in text


class TestTaskChain:
    def test_replayed_task_narrates_both_attempts(self, crash_trace):
        path, replayed = crash_trace
        task_id = replayed.attributes["task_id"]
        code, text = _run(path, "--task", str(task_id))
        assert code == 0
        assert "attempt 1" in text and "attempt 2" in text
        assert "crashed" in text and "replayed" in text
        assert "result: ok" in text
        # the worker-side execution span made it into the narrative
        assert "executed on" in text

    def test_trace_tree_by_prefix(self, crash_trace):
        path, replayed = crash_trace
        code, text = _run(path, "--trace", replayed.trace_id[:12])
        assert code == 0
        assert "task.dispatch" in text and "task.exec" in text

    def test_unknown_task_exits_2(self, crash_trace):
        path, _ = crash_trace
        code, text = _run(path, "--task", "99999")
        assert code == 2
        assert "no 'task' span" in text


class TestActuationChain:
    def test_intent_narrative_names_the_amendment(self, intent_trace):
        code, text = _run(intent_trace, "--actuation", "1")
        assert code == 0
        assert "AM_perf asked for add_executor" in text
        assert "committed" in text
        # what the security manager amended...
        assert "security manager amended nodes" in text
        assert "amended by reviewer" in text
        # ...and the §3.2 admission path per worker
        assert "quarantined on arrival" in text
        assert "channel secured" in text
        assert "admitted to the dispatch pool" in text

    def test_actuations_found_without_mape_cycle(self, intent_trace):
        spans = load(str(intent_trace))
        acts = find_actuations(spans)
        assert len(acts) == 1 and acts[0].name == "mc.intent"

    def test_unknown_actuation_exits_2(self, intent_trace):
        code, text = _run(intent_trace, "--actuation", "7")
        assert code == 2
        assert "no actuation #7" in text


class TestSloNarrative:
    @pytest.fixture(scope="class")
    def slo_trace(self, tmp_path_factory):
        """A scripted SLO alert episode with one adaptation cycle."""
        from repro.core.contracts import MinThroughputContract
        from repro.obs.clock import ManualClock
        from repro.obs.slo import SLO, BurnWindows, SLOEngine
        from repro.obs.timeseries import TimeSeriesStore

        clock = ManualClock()
        tel = Telemetry(clock)
        g = tel.metrics.gauge("repro_farm_departure_rate", "r").labels(manager="AM_t")
        store = TimeSeriesStore(tel.metrics, clock, interval=0.5)

        def sample(s, now):
            v = s.latest("repro_farm_departure_rate", {"manager": "AM_t"})
            return {} if v is None else {"departure_rate": v}

        engine = SLOEngine(
            tel,
            store,
            [SLO("t", MinThroughputContract(40.0), sample)],
            windows=BurnWindows().scaled(1.0 / 150.0),
        )
        g.set(50.0)
        for _ in range(8):
            clock.advance(0.5)
            store.scrape_once()
        g.set(5.0)
        for i in range(10):
            clock.advance(0.5)
            store.scrape_once()
            if i == 3:
                tel.adaptation.plan_committed("addWorker", manager="AM_t")
        g.set(50.0)
        for _ in range(120):
            clock.advance(0.5)
            store.scrape_once()
        engine.close()
        path = tmp_path_factory.mktemp("slo") / "trace.jsonl"
        write_trace_jsonl(str(path), tel)
        return path

    def test_alert_episode_narrated_end_to_end(self, slo_trace):
        code, text = _run(slo_trace, "--slo")
        assert code == 0
        assert "SLO 't'" in text
        assert "burn" in text and "budget" in text
        assert "plan committed: addWorker" in text
        assert "effect visible" in text
        assert "resolved after" in text
        assert "budget burned" in text

    def test_overview_advertises_the_flag(self, slo_trace):
        code, text = _run(slo_trace)
        assert code == 0
        assert "SLO alert episode(s) — see --slo" in text

    def test_no_alerts_exits_2(self, intent_trace):
        code, text = _run(intent_trace, "--slo")
        assert code == 2
        assert "no 'slo.alert' span" in text


class TestModuleEntryPoint:
    def test_python_dash_m_runs(self, crash_trace):
        """The documented invocation works end to end as a subprocess."""
        path, replayed = crash_trace
        task_id = replayed.attributes["task_id"]
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.obs.explain",
                str(path),
                "--task",
                str(task_id),
            ],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "attempt 2" in proc.stdout

    def test_missing_file_exits_1(self):
        code = main(["/nonexistent/trace.jsonl"], out=io.StringIO())
        assert code == 1
