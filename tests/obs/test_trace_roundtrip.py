"""Satellite invariant: a JSONL trace survives export → re-import intact.

Two layers of evidence:

* a Hypothesis property over randomly *shaped* span trees recorded
  through the real ``SpanRecorder`` — the re-imported store is
  dict-for-dict identical to the original, every parent resolves, no
  cycles, and child intervals nest inside their parents';
* the same well-formedness checks over *real* traces produced by the
  thread, process and dist farm backends (including a crash-replay on
  the process farm), where worker-side spans crossed a queue or TCP
  boundary before landing in the store.
"""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Telemetry
from repro.obs.export import read_trace_jsonl, span_to_dict, write_trace_jsonl

from ..runtime.test_backend_conformance import inject_fault, make_farm
from ..runtime.waiting import wait_until


def _assert_well_formed(spans, *, nesting_slack=0.0):
    """Every parent resolves in-trace, no cycles, intervals nest."""
    by_id = {s.span_id: s for s in spans}
    for span in spans:
        if span.parent_id is None:
            continue
        assert span.parent_id in by_id, (
            f"{span.name} {span.span_id}: dangling parent {span.parent_id}"
        )
        parent = by_id[span.parent_id]
        assert parent.trace_id == span.trace_id, "parent in a different trace"
        # interval nesting (slack absorbs cross-process clock reads) —
        # except dispatch→dispatch links, which are *follows-from*
        # chains by design: a replay attempt starts after the attempt it
        # supersedes has already been closed, so only causal ordering
        # (never containment) holds there
        follows_from = span.name == "task.dispatch" and parent.name == "task.dispatch"
        assert span.start >= parent.start - nesting_slack
        if not follows_from and span.end is not None and parent.end is not None:
            assert span.end <= parent.end + nesting_slack
        # walking up the lineage must terminate (no cycles)
        seen = set()
        cursor = span
        while cursor.parent_id is not None:
            assert cursor.span_id not in seen, "cycle in span lineage"
            seen.add(cursor.span_id)
            cursor = by_id[cursor.parent_id]


def _roundtrip(telemetry):
    """Export the store to JSONL text and read it back."""
    buffer = io.StringIO()
    write_trace_jsonl(buffer, telemetry)
    return read_trace_jsonl(io.StringIO(buffer.getvalue()))


# ----------------------------------------------------------------------
# property layer: arbitrary tree shapes through the real recorder
# ----------------------------------------------------------------------

# each entry grows the tree at a cursor: push a child, pop to the
# parent, or annotate the open span with an event
_STEPS = st.lists(
    st.sampled_from(["push", "pop", "event"]), min_size=1, max_size=40
)


class TestRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(steps=_STEPS)
    def test_export_reimport_is_identity(self, steps):
        tel = Telemetry()
        depth = 0
        counter = 0
        for step in steps:
            if step == "push":
                tel.start_span(f"span-{counter}", actor="prop", n=counter)
                counter += 1
                depth += 1
            elif step == "pop" and depth > 0:
                tel.end_span(tel.spans.current, outcome="ok")
                depth -= 1
            elif step == "event" and depth > 0:
                tel.event(f"ev-{counter}", n=counter)
        tel.flush()

        original = tel.spans.spans
        reimported = _roundtrip(tel)
        assert [span_to_dict(s) for s in reimported] == [
            span_to_dict(s) for s in original
        ]
        _assert_well_formed(reimported)


# ----------------------------------------------------------------------
# real-backend layer: spans that crossed queue/TCP boundaries
# ----------------------------------------------------------------------


class TestRoundTripAcrossBackends:
    @pytest.mark.parametrize("backend", ["thread", "process", "dist"])
    def test_backend_trace_roundtrips_well_formed(self, backend):
        tel = Telemetry()
        farm = make_farm(backend, initial_workers=2, telemetry=tel)
        try:
            total = 30
            for i in range(total):
                farm.submit((0.002, i))
            results = farm.drain_results(total, timeout=60.0)
            assert len(results) == total
        finally:
            farm.shutdown()

        original = tel.spans.spans
        reimported = _roundtrip(tel)
        assert [span_to_dict(s) for s in reimported] == [
            span_to_dict(s) for s in original
        ]
        # worker exec spans carry timestamps read in another process;
        # allow a small cross-process clock slack for the nesting check
        _assert_well_formed(reimported, nesting_slack=0.05)
        assert any(s.name == "task.exec" for s in reimported), (
            "no worker-side span crossed the boundary"
        )

    def test_crash_replay_trace_roundtrips_well_formed(self):
        tel = Telemetry()
        farm = make_farm("process", initial_workers=3, telemetry=tel)
        try:
            total = 60
            for i in range(total):
                farm.submit((0.01, i))
            wait_until(
                lambda: farm.snapshot().completed >= 5,
                message="stream in flight before the fault",
            )
            assert inject_fault(farm) is not None
            results = farm.drain_results(total, timeout=120.0)
            assert len(results) == total
        finally:
            farm.shutdown()

        reimported = _roundtrip(tel)
        _assert_well_formed(reimported, nesting_slack=0.05)
        # the replay chain survives the round trip: some trace still
        # holds two dispatch attempts after re-import
        by_trace = {}
        for span in reimported:
            by_trace.setdefault(span.trace_id, []).append(span)
        assert any(
            sum(1 for s in spans if s.name == "task.dispatch") >= 2
            for spans in by_trace.values()
        )
