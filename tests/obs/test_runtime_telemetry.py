"""The live (wall-clock) controller feeds the same telemetry sink."""

from repro.core.contracts import MinThroughputContract
from repro.obs.export import prometheus_text
from repro.obs.telemetry import Telemetry
from repro.runtime.controller import ThreadFarmController
from repro.runtime.farm_runtime import ThreadFarm

MAPE_PHASES = ("mape.monitor", "mape.analyse", "mape.plan", "mape.execute")


def square(x):
    return x * x


class TestControllerTelemetry:
    def _run_steps(self, telemetry, steps=3):
        farm = ThreadFarm(square, initial_workers=2)
        try:
            ctl = ThreadFarmController(
                farm,
                MinThroughputContract(0.1),
                control_period=0.05,
                telemetry=telemetry,
            )
            for i in range(steps):
                farm.submit(i)
            for _ in range(steps):
                ctl.control_step()
            farm.drain_results(steps, timeout=10.0)
            return ctl
        finally:
            farm.shutdown()

    def test_mape_spans_on_wall_clock(self):
        tel = Telemetry()
        self._run_steps(tel, steps=3)
        cycles = tel.spans.named("mape.cycle", "AM_live")
        assert len(cycles) == 3
        for phase in MAPE_PHASES:
            assert len(tel.spans.named(phase, "AM_live")) == 3
        # wall-clock spans: real elapsed time recorded
        assert all(c.duration is not None and c.duration >= 0 for c in cycles)
        assert all(c.perf_elapsed is not None and c.perf_elapsed > 0 for c in cycles)

    def test_latency_histogram_shared_with_sim_namespace(self):
        tel = Telemetry()
        self._run_steps(tel, steps=2)
        text = prometheus_text(tel.metrics)
        assert 'repro_control_loop_latency_seconds_count{manager="AM_live"} 2' in text
        assert 'repro_mape_ticks_total{manager="AM_live"} 2' in text
        assert 'repro_farm_workers{manager="AM_live"}' in text

    def test_default_is_noop_and_harmless(self):
        ctl = self._run_steps(None, steps=2)
        assert ctl.telemetry.enabled is False
