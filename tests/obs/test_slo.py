"""The SLO engine: contract compilation, burn-rate alerting, budgets.

Everything runs on a :class:`ManualClock` with hand-driven scrapes —
the same engine the live fig4 run attaches, but with exact time.
"""

import pytest

from repro.core.contracts import (
    BestEffortContract,
    CompositeContract,
    MaxLatencyContract,
    MinThroughputContract,
    RateContract,
    SecurityContract,
    ThroughputRangeContract,
)
from repro.obs.clock import ManualClock
from repro.obs.slo import (
    LEVEL_OK,
    LEVEL_PAGE,
    SLO,
    AdaptationTracker,
    BurnWindows,
    SLOEngine,
    slo_from_contract,
    slos_for_sharded,
)
from repro.obs.telemetry import Telemetry
from repro.obs.timeseries import StreamBroker, TimeSeriesStore


@pytest.fixture()
def clock():
    return ManualClock()


@pytest.fixture()
def telemetry(clock):
    return Telemetry(clock)


@pytest.fixture()
def store(telemetry, clock):
    return TimeSeriesStore(telemetry.metrics, clock, interval=0.5, retention=600.0)


def _throughput_slo(contract=None):
    contract = contract or MinThroughputContract(40.0)

    def sample(store, now):
        v = store.latest("repro_farm_departure_rate", {"manager": "AM_t"})
        return {} if v is None else {"departure_rate": v}

    return SLO(name="t", contract=contract, sample=sample)


def _engine(telemetry, store, slo, **kwargs):
    kwargs.setdefault("windows", BurnWindows().scaled(1.0 / 150.0))
    return SLOEngine(telemetry, store, [slo], **kwargs)


def _tick(clock, store, n=1, dt=0.5):
    for _ in range(n):
        clock.advance(dt)
        store.scrape_once()


class TestBurnWindows:
    def test_scaled_shrinks_windows_not_thresholds(self):
        w = BurnWindows().scaled(1.0 / 150.0)
        assert w.fast_short == pytest.approx(0.4)
        assert w.slow_long == pytest.approx(48.0)
        assert w.page_burn == 14.4 and w.warn_burn == 3.0

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            BurnWindows().scaled(0.0)

    def test_horizon_is_the_widest_window(self):
        assert BurnWindows().horizon == 7200.0


class TestSLOValidation:
    def test_budget_fraction_must_be_a_fraction(self):
        with pytest.raises(ValueError):
            SLO("x", MinThroughputContract(1.0), lambda s, t: {}, budget_fraction=1.5)

    def test_budget_window_must_be_positive(self):
        with pytest.raises(ValueError):
            SLO("x", MinThroughputContract(1.0), lambda s, t: {}, budget_window=0.0)

    def test_description_defaults_to_the_contract(self):
        slo = SLO("x", MinThroughputContract(40.0), lambda s, t: {})
        assert slo.description == MinThroughputContract(40.0).describe()

    def test_duplicate_names_rejected(self, telemetry, store):
        engine = _engine(telemetry, store, _throughput_slo())
        with pytest.raises(ValueError):
            engine.add(_throughput_slo())


class TestSLOEngine:
    def test_installs_itself_on_telemetry(self, telemetry, store):
        engine = _engine(telemetry, store, _throughput_slo())
        assert telemetry.slo is engine
        assert isinstance(telemetry.adaptation, AdaptationTracker)

    def test_healthy_farm_stays_ok(self, telemetry, store, clock):
        engine = _engine(telemetry, store, _throughput_slo())
        telemetry.metrics.gauge("repro_farm_departure_rate", "r").labels(
            manager="AM_t"
        ).set(50.0)
        _tick(clock, store, 20)
        assert engine.transitions() == {}
        assert engine.violation_seconds()["t"] == 0.0
        body = engine.describe()
        assert body["open_alerts"] == 0
        assert body["objectives"][0]["level"] == LEVEL_OK

    def test_violation_pages_then_recovers(self, telemetry, store, clock):
        engine = _engine(telemetry, store, _throughput_slo())
        g = telemetry.metrics.gauge("repro_farm_departure_rate", "r").labels(
            manager="AM_t"
        )
        g.set(50.0)
        _tick(clock, store, 8)
        g.set(5.0)
        _tick(clock, store, 10)
        levels = [t["to"] for t in engine.transitions()["t"]]
        assert LEVEL_PAGE in levels
        assert engine.violation_seconds()["t"] > 0
        # recovery drains the fast window back below every threshold
        g.set(50.0)
        _tick(clock, store, 120)
        assert engine.transitions()["t"][-1]["to"] == LEVEL_OK

    def test_alert_episode_opens_and_closes_a_span(self, telemetry, store, clock):
        _engine(telemetry, store, _throughput_slo())
        g = telemetry.metrics.gauge("repro_farm_departure_rate", "r").labels(
            manager="AM_t"
        )
        g.set(50.0)
        _tick(clock, store, 8)
        g.set(5.0)
        _tick(clock, store, 10)
        alerts = [s for s in telemetry.spans.spans if s.name == "slo.alert"]
        assert len(alerts) == 1 and alerts[0].end is None
        g.set(50.0)
        _tick(clock, store, 120)
        alerts = [s for s in telemetry.spans.spans if s.name == "slo.alert"]
        assert alerts[0].end is not None
        assert alerts[0].attributes["resolved"] is True
        assert alerts[0].attributes["violation_seconds"] > 0

    def test_transitions_publish_to_the_broker(self, telemetry, store, clock):
        broker = StreamBroker()
        q = broker.subscribe()
        _engine(telemetry, store, _throughput_slo(), broker=broker)
        g = telemetry.metrics.gauge("repro_farm_departure_rate", "r").labels(
            manager="AM_t"
        )
        g.set(50.0)
        _tick(clock, store, 8)
        g.set(5.0)
        _tick(clock, store, 10)
        events = []
        while not q.empty():
            events.append(q.get_nowait())
        assert any(e["type"] == "slo" and e["level"] == LEVEL_PAGE for e in events)

    def test_budget_gauge_tracks_overspend(self, telemetry, store, clock):
        slo = _throughput_slo()
        slo.budget_window = 30.0
        engine = _engine(telemetry, store, slo)
        g = telemetry.metrics.gauge("repro_farm_departure_rate", "r").labels(
            manager="AM_t"
        )
        g.set(5.0)  # violating from the very first judged sample
        _tick(clock, store, 20)
        remaining = (
            telemetry.metrics.gauge("repro_slo_budget_remaining", "x")
            .labels(slo="t")
            .value
        )
        # 9.5 violating seconds against a 1.5s budget: deep overspend
        assert remaining < 0
        assert engine.describe()["objectives"][0]["budget_remaining"] < 0

    def test_unjudgeable_samples_are_not_violations(self, telemetry, store, clock):
        engine = _engine(telemetry, store, _throughput_slo())
        _tick(clock, store, 20)  # the gauge never appears: sample() is empty
        assert engine.transitions() == {}
        assert engine.violation_seconds()["t"] == 0.0

    def test_a_raising_sample_does_not_kill_the_loop(self, telemetry, store, clock):
        def bad_sample(store, now):
            raise RuntimeError("boom")

        engine = _engine(
            telemetry,
            store,
            SLO("bad", MinThroughputContract(1.0), bad_sample),
        )
        _tick(clock, store, 3)
        assert engine.evaluations == 3

    def test_close_flushes_open_alert_spans(self, telemetry, store, clock):
        engine = _engine(telemetry, store, _throughput_slo())
        g = telemetry.metrics.gauge("repro_farm_departure_rate", "r").labels(
            manager="AM_t"
        )
        g.set(50.0)
        _tick(clock, store, 8)
        g.set(5.0)
        _tick(clock, store, 10)
        engine.close()
        alerts = [s for s in telemetry.spans.spans if s.name == "slo.alert"]
        assert alerts[0].end is not None
        assert alerts[0].attributes["resolved"] is False


class TestAdaptationTracker:
    def test_full_cycle_records_three_legs(self, telemetry):
        tracker = AdaptationTracker(telemetry)
        tracker.violation_observed("rate-low", now=1.0)
        tracker.plan_committed("addWorker", now=3.0)
        tracker.effect_visible(now=6.0)
        (cycle,) = tracker.cycles
        assert cycle["total"] == pytest.approx(5.0)
        assert cycle["committed_at"] == 3.0
        assert cycle["self_resolved"] is False
        span = next(s for s in telemetry.spans.spans if s.name == "slo.adaptation")
        assert span.attributes["action"] == "addWorker"
        assert span.attributes["effect_at"] == 6.0
        assert span.end is not None

    def test_first_observation_wins(self, telemetry):
        tracker = AdaptationTracker(telemetry)
        tracker.violation_observed("rate-low", now=1.0)
        tracker.violation_observed("rate-low", now=2.0)  # coalesced
        tracker.effect_visible(now=4.0)
        (cycle,) = tracker.cycles
        assert cycle["observed_at"] == 1.0
        span = next(s for s in telemetry.spans.spans if s.name == "slo.adaptation")
        assert any(e.name == "adaptation.observed-again" for e in span.events)

    def test_self_resolved_cycle(self, telemetry):
        tracker = AdaptationTracker(telemetry)
        tracker.violation_observed("rate-low", now=1.0)
        tracker.effect_visible(now=2.0)
        assert tracker.cycles[0]["self_resolved"] is True

    def test_commit_and_effect_without_observation_are_noops(self, telemetry):
        tracker = AdaptationTracker(telemetry)
        tracker.plan_committed("addWorker", now=1.0)
        tracker.effect_visible(now=2.0)
        assert tracker.cycles == []

    def test_latency_histogram_has_all_stages(self, telemetry):
        tracker = AdaptationTracker(telemetry)
        tracker.violation_observed("x", now=0.0)
        tracker.plan_committed("addWorker", now=1.0)
        tracker.effect_visible(now=3.0)
        family = telemetry.metrics.get("repro_adaptation_latency_seconds")
        stages = {dict(ls)["stage"] for ls, _ in family.samples()}
        assert stages == {"observe_to_commit", "commit_to_effect", "total"}


class TestSLOFromContract:
    def test_throughput_contract_compiles(self, store, clock, telemetry):
        (slo,) = slo_from_contract(
            ThroughputRangeContract(40.0, 60.0), name="f", manager="AM_t"
        )
        telemetry.metrics.gauge("repro_farm_departure_rate", "r").labels(
            manager="AM_t"
        ).set(50.0)
        _tick(clock, store, 1)
        assert slo.sample(store, clock.now()) == {"departure_rate": 50.0}
        assert slo.contract.check(slo.sample(store, clock.now())) is True

    def test_latency_contract_compiles(self, store, clock, telemetry):
        (slo,) = slo_from_contract(MaxLatencyContract(0.1), name="f", manager="AM_t")
        telemetry.metrics.gauge("repro_farm_latency_seconds", "l").labels(
            manager="AM_t"
        ).set(0.5)
        _tick(clock, store, 1)
        assert slo.contract.check(slo.sample(store, clock.now())) is False

    def test_missing_series_is_unjudgeable(self, store, clock):
        (slo,) = slo_from_contract(MinThroughputContract(1.0), name="f", manager="AM_t")
        assert slo.sample(store, clock.now()) == {}

    def test_composite_flattens_and_besteffort_vanishes(self):
        composite = CompositeContract(
            [MinThroughputContract(1.0), BestEffortContract(), MaxLatencyContract(0.1)]
        )
        slos = slo_from_contract(composite, name="f", manager="AM_t")
        assert [s.name for s in slos] == ["f.0", "f.2"]
        assert slo_from_contract(BestEffortContract(), name="f") == []

    def test_tenant_rate_contract_is_demand_aware(self, store, clock, telemetry):
        (slo,) = slo_from_contract(
            RateContract(20.0), name="sla", tenant="acme", rate_window=5.0
        )
        dispatched = telemetry.metrics.counter("repro_tenant_dispatched_total", "d")
        backlog = telemetry.metrics.gauge("repro_tenant_backlog", "b")
        backlog.labels(tenant="acme").set(0.0)
        for _ in range(6):
            dispatched.labels(tenant="acme").inc(5)  # 10/s: under the SLA
            _tick(clock, store, 1)
        # nothing queued behind the shortfall: demand-limited, compliant
        assert slo.contract.check(slo.sample(store, clock.now())) is True
        backlog.labels(tenant="acme").set(40.0)
        _tick(clock, store, 1)
        # same shortfall with a backlog: now it is a real violation
        assert slo.contract.check(slo.sample(store, clock.now())) is False

    def test_security_contract_counts_leaks(self, store, clock, telemetry):
        (slo,) = slo_from_contract(SecurityContract(), name="sec", rate_window=5.0)
        leaks = telemetry.metrics.counter("repro_mc_insecure_dispatch_total", "l")
        leaks.labels(farm="F").inc(0)
        _tick(clock, store, 2)
        assert slo.contract.check(slo.sample(store, clock.now())) is True
        leaks.labels(farm="F").inc(3)
        _tick(clock, store, 1)
        assert slo.contract.check(slo.sample(store, clock.now())) is False

    def test_labels_carry_scope(self):
        (slo,) = slo_from_contract(
            MinThroughputContract(1.0), name="f", manager="AM_t"
        )
        assert slo.labels == {"manager": "AM_t"}


class TestSlosForSharded:
    class _FakeSharded:
        name = "S"
        shards = [object(), object()]
        contract = RateContract(100.0)
        sub_contracts = [RateContract(50.0), RateContract(50.0)]
        registry = None

    def test_root_sums_the_shard_gauges(self, store, clock, telemetry):
        slos = slos_for_sharded(self._FakeSharded())
        root = next(s for s in slos if s.name == "S.root")
        g = telemetry.metrics.gauge("repro_farm_departure_rate", "r")
        g.labels(manager="AM_S-s0").set(30.0)
        g.labels(manager="AM_S-s1").set(80.0)
        _tick(clock, store, 1)
        monitor = root.sample(store, clock.now())
        assert monitor["rate"] == pytest.approx(110.0)
        assert root.contract.check(monitor) is True

    def test_per_shard_objectives_exist(self):
        slos = slos_for_sharded(self._FakeSharded())
        assert {s.name for s in slos} == {"S.root", "S.s0", "S.s1"}
