"""Smoke tests: every example script runs to completion and reports success.

The examples are the library's front door; each must execute its
``main()`` without raising and print the outcome markers a reader would
look for.  (``live_threads`` is exercised with reduced volume through
its building blocks in ``tests/runtime`` instead — wall-clock sleeps
make the full script too slow for the unit suite.)
"""

import importlib.util
import pathlib
import sys

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "satisfied    : True" in out
        assert "addWorker" in out

    def test_medical_imaging(self, capsys):
        load_example("medical_imaging").main()
        out = capsys.readouterr().out
        assert "images/s processed" in out
        assert "final:" in out

    def test_pipeline_hierarchy(self, capsys):
        load_example("pipeline_hierarchy").main()
        out = capsys.readouterr().out
        assert "FIG4" in out
        assert "incRate" in out
        assert "addWorker" in out
        assert "endStream" in out

    def test_multiconcern_security(self, capsys):
        load_example("multiconcern_security").main()
        out = capsys.readouterr().out
        assert "MC-2PC" in out
        assert "plaintext over a non-private link" in out
        assert "amendment" in out

    def test_multiconcern_live(self, capsys):
        load_example("multiconcern_live").main()
        out = capsys.readouterr().out
        assert "MC-LIVE" in out
        assert "two-phase leak window: 0 tasks" in out
        assert "vetoed" in out
        assert "no task ever reached an unsecured worker" in out

    def test_dataparallel_map(self, capsys):
        load_example("dataparallel_map").main()
        out = capsys.readouterr().out
        assert "contract met    : True" in out
        assert "addWorker" in out

    def test_nested_skeletons(self, capsys):
        load_example("nested_skeletons").main()
        out = capsys.readouterr().out
        assert "contract met    : True" in out
        assert "replicas" in out

    def test_live_threads_importable(self):
        """Import only: the full run sleeps for real seconds."""
        module = load_example("live_threads")
        assert callable(module.main)

    def test_process_farm_crashes_importable(self):
        """Import only: the full run feeds a live stream for seconds; the
        crash-recovery paths themselves are covered in tests/runtime."""
        module = load_example("process_farm_crashes")
        assert callable(module.main)

    def test_dist_farm_importable(self):
        """Import only: the full run feeds a live stream for seconds; the
        wire-level recovery paths are covered in tests/runtime."""
        module = load_example("dist_farm")
        assert callable(module.main)
