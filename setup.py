"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` also works on offline machines whose pip cannot
fetch the ``wheel`` build dependency (legacy ``setup.py develop`` path).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Behavioural skeletons with autonomic management of non-functional "
        "concerns (reproduction of Aldinucci, Danelutto & Kilpatrick, IPDPS 2009)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
