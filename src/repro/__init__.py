"""repro — behavioural skeletons with autonomic management.

A from-scratch Python reproduction of *"Autonomic management of
non-functional concerns in distributed & parallel application
programming"* (Aldinucci, Danelutto, Kilpatrick — IPDPS 2009): the
behavioural-skeleton framework (⟨pattern, autonomic manager⟩ pairs), a
GCM-style component model, a JBoss-style rule engine, hierarchical and
multi-concern contract management, a deterministic discrete-event grid
substrate, and a live thread-based runtime.

Quickstart::

    from repro.core import build_farm_bs, MinThroughputContract
    from repro.sim import Simulator, ResourceManager, make_cluster
    from repro.sim.workload import TaskSource, ConstantWork

    sim = Simulator()
    pool = ResourceManager(make_cluster(16))
    bs = build_farm_bs(sim, pool, worker_work=5.0, initial_degree=1)
    TaskSource(sim, bs.farm.input, rate=0.8, work_model=ConstantWork(5.0))
    bs.assign_contract(MinThroughputContract(0.6))
    sim.run(until=600)                 # the manager grows the farm to 0.6 t/s

Sub-packages: :mod:`repro.core` (the contribution), :mod:`repro.sim`
(DES substrate), :mod:`repro.rules` (rule engine), :mod:`repro.
skeletons` (pattern algebra + cost models), :mod:`repro.gcm` (component
model), :mod:`repro.security` (the security concern), :mod:`repro.
runtime` (threads), :mod:`repro.experiments` (figure regeneration).
"""

__version__ = "0.1.0"

__all__ = ["core", "sim", "rules", "skeletons", "gcm", "security", "runtime", "experiments"]
