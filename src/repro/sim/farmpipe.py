"""Farm of pipeline replicas: the paper's nested-pattern composition.

Section 3.1's canonical example tree is
``farm(pipeline(sequential, farm(sequential), sequential))``: a farm
whose *workers are themselves pipelines*.  :class:`SimFarmOfPipelines`
provides that composition on the DES substrate: each "executor" is a
:class:`PipelineReplica` — a chain of :class:`~repro.sim.pipeline.
SeqStage`s on its own nodes — and the dispatcher round-robins whole
tasks across replica heads.

The monitoring/actuator surface mirrors :class:`~repro.sim.farm.
SimFarm` exactly (``snapshot``, ``add_worker``, ``remove_worker``,
``balance_load``, blackout, ``num_workers``), so the standard
:class:`~repro.gcm.abc_controller.FarmABC` (with ``nodes_per_executor =
number of stages``) and :class:`~repro.core.skeleton_manager.
FarmManager` drive it unchanged — the nested tree needs no new policy
code, exactly as behavioural-skeleton composition promises.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence

from .engine import Simulator
from .farm import FarmSnapshot
from .metrics import WindowRateEstimator, queue_length_stats
from .pipeline import SeqStage
from .queues import Store, transfer
from .resources import Node
from .workload import Task

__all__ = ["PipelineReplica", "SimFarmOfPipelines"]


class PipelineReplica:
    """One farm executor: a pipeline instance over its own nodes."""

    def __init__(
        self,
        sim: Simulator,
        owner: "SimFarmOfPipelines",
        replica_id: int,
        nodes: Sequence[Node],
        stage_works: Sequence[float],
        *,
        secured: bool = False,
        rate_window: float = 10.0,
    ) -> None:
        if len(nodes) != len(stage_works):
            raise ValueError(
                f"replica needs one node per stage "
                f"({len(stage_works)} stages, {len(nodes)} nodes)"
            )
        self.sim = sim
        self.owner = owner
        # `worker_id` (not replica_id) so FarmABC bookkeeping matches.
        self.worker_id = replica_id
        self.nodes = list(nodes)
        self.secured = secured
        self.active = True
        self._stopped = False
        self.completed = 0
        self.current_task: Optional[Task] = None  # FarmSnapshot compat

        self.stages: List[SeqStage] = []
        store = Store(sim, name=f"{owner.name}.r{replica_id}.s0")
        self.head = store
        for i, (node, work) in enumerate(zip(nodes, stage_works)):
            is_last = i == len(stage_works) - 1
            out = None if is_last else Store(sim, name=f"{owner.name}.r{replica_id}.s{i + 1}")
            stage = SeqStage(
                sim,
                name=f"{owner.name}.r{replica_id}.stage{i}",
                node=node,
                input_store=store,
                output_store=out,
                service_work=work,
                rate_window=rate_window,
                on_done=(lambda t, self=self: self._on_done(t)) if is_last else None,
            )
            self.stages.append(stage)
            store = out  # type: ignore[assignment]

    @property
    def name(self) -> str:
        return f"{self.owner.name}.r{self.worker_id}"

    @property
    def queue(self) -> Store:
        """The replica's head queue (rebalancing moves tasks here)."""
        return self.head

    def queued_total(self) -> int:
        """Tasks anywhere inside the replica (queued or in service)."""
        q = sum(len(s.input) for s in self.stages)
        in_service = sum(1 for s in self.stages if s.util._busy_since is not None)
        return q + in_service

    def _on_done(self, task: Task) -> None:
        self.completed += 1
        task.completed_at = self.sim.now
        self.owner._on_task_done(self, task)

    def stop(self) -> None:
        self.active = False
        self._stopped = True
        for s in self.stages:
            s.stop()


class SimFarmOfPipelines:
    """Functional replication whose workers are pipeline replicas."""

    def __init__(
        self,
        sim: Simulator,
        *,
        name: str = "farmpipe",
        stage_works: Sequence[float],
        rate_window: float = 10.0,
        replica_setup_time: float = 5.0,
        on_result: Optional[Callable[[Task], None]] = None,
    ) -> None:
        if not stage_works:
            raise ValueError("need at least one stage")
        if any(w < 0 for w in stage_works):
            raise ValueError("stage works must be >= 0")
        self.sim = sim
        self.name = name
        self.stage_works = list(stage_works)
        self.rate_window = rate_window
        self.worker_setup_time = replica_setup_time  # SimFarm-compatible name
        self.on_result = on_result

        self.input = Store(sim, name=f"{name}.input")
        self.output = Store(sim, name=f"{name}.output")
        self.workers: List[PipelineReplica] = []  # SimFarm-compatible name
        self._next_id = 0
        self._rr = 0

        self.arrival_est = WindowRateEstimator(rate_window, start_time=sim.now)
        self.departure_est = WindowRateEstimator(rate_window, start_time=sim.now)
        self.completed = 0
        self.end_of_stream = False
        self._blackout_until = -1.0
        self.reconfigurations = 0
        self.failures = 0

        self._proc = sim.process(self._dispatch_loop(), name=f"{name}.dispatcher")

    @property
    def stages_per_replica(self) -> int:
        return len(self.stage_works)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> Iterator[Any]:
        while True:
            if not any(r.active for r in self.workers):
                yield self.sim.timeout(0.05)
                continue
            task = yield self.input.get()
            self.arrival_est.mark(self.sim.now)
            live = [r for r in self.workers if r.active]
            self._rr = (self._rr + 1) % len(live)
            live[self._rr].head.put_nowait(task)

    def _on_task_done(self, replica: PipelineReplica, task: Task) -> None:
        self.departure_est.mark(self.sim.now)
        self.completed += 1
        self.output.put_nowait(task)
        if self.on_result is not None:
            self.on_result(task)

    # ------------------------------------------------------------------
    # monitoring (SimFarm-shaped)
    # ------------------------------------------------------------------
    @property
    def in_blackout(self) -> bool:
        return self.sim.now < self._blackout_until

    def snapshot(self) -> Optional[FarmSnapshot]:
        if self.in_blackout:
            return None
        return self.force_snapshot()

    def force_snapshot(self) -> FarmSnapshot:
        live = [r for r in self.workers if r.active]
        lengths = tuple(r.queued_total() for r in live)
        _, var, _, _ = queue_length_stats(lengths)
        utils = [
            s.util.utilization(self.sim.now) for r in live for s in r.stages
        ]
        return FarmSnapshot(
            time=self.sim.now,
            arrival_rate=self.arrival_est.rate(self.sim.now),
            departure_rate=self.departure_est.rate(self.sim.now),
            num_workers=len(live),
            queue_lengths=lengths,
            queue_variance=var,
            utilization=sum(utils) / len(utils) if utils else 0.0,
            completed=self.completed,
            pending=self.pending,
        )

    @property
    def num_workers(self) -> int:
        return sum(1 for r in self.workers if r.active)

    @property
    def pending(self) -> int:
        inside = sum(r.queued_total() for r in self.workers if not r._stopped)
        return len(self.input) + inside

    # ------------------------------------------------------------------
    # actuators (SimFarm-shaped)
    # ------------------------------------------------------------------
    def add_worker(self, nodes: Sequence[Node], *, secured: bool = False) -> PipelineReplica:
        """Deploy a new pipeline replica over ``nodes`` (one per stage)."""
        if isinstance(nodes, Node):
            nodes = [nodes]
        rid = self._next_id
        self._next_id += 1
        replica = PipelineReplica(
            self.sim,
            self,
            rid,
            nodes,
            self.stage_works,
            secured=secured,
            rate_window=self.rate_window,
        )
        if self.worker_setup_time > 0:
            replica.active = False
            self._blackout_until = max(
                self._blackout_until, self.sim.now + self.worker_setup_time + 1e-6
            )

            def activate() -> None:
                if not replica._stopped:
                    replica.active = True

            self.sim.schedule(self.worker_setup_time, activate)
        self.workers.append(replica)
        self.reconfigurations += 1
        return replica

    def remove_worker(self) -> Optional[PipelineReplica]:
        """Retire the newest replica; its head queue migrates first."""
        live = [r for r in self.workers if r.active]
        if len(live) <= 1:
            return None
        victim = live[-1]
        victim.active = False  # no new dispatches
        survivors = [r for r in live if r is not victim]
        queued = len(victim.head)
        for i in range(queued):
            transfer(victim.head, survivors[i % len(survivors)].head, 1)

        def finalize() -> None:
            if victim.queued_total() == 0:
                victim.stop()
            else:
                self.sim.schedule(0.5, finalize)

        finalize()
        self.reconfigurations += 1
        return victim

    def balance_load(self) -> int:
        """Equalise replica *head* queues (in-pipe tasks stay put)."""
        from .queues import rebalance as rebalance_stores

        return rebalance_stores(r.head for r in self.workers if r.active)

    def secure_worker(self, replica: PipelineReplica) -> None:
        replica.secured = True
        for s in replica.stages:
            s.secured = True

    def secure_all(self) -> None:
        for r in self.workers:
            self.secure_worker(r)

    # ------------------------------------------------------------------
    # stream plumbing
    # ------------------------------------------------------------------
    def submit(self, task: Task) -> None:
        self.input.put_nowait(task)

    def notify_end_of_stream(self) -> None:
        self.end_of_stream = True

    @property
    def drained(self) -> bool:
        return self.end_of_stream and self.pending == 0
