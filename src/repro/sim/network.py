"""Network model: links between domains, secure channels, leak accounting.

Section 3.2 of the paper revolves around the cost and necessity of
securing communications that cross untrusted network segments: "the
mapping of parallel activities to processing resources should not only
take into account the network dependent communication costs, but also
the fact these costs increase when the related network links are
non-private".  This module models exactly that:

* a message's transfer time is ``latency + size / bandwidth``;
* if the channel is *secured*, both terms are inflated by the cipher's
  cost model (:mod:`repro.security.crypto` supplies the factor);
* every plaintext message whose path touches an untrusted domain is
  counted as a **leak** — the headline metric of the MC-2PC experiment
  (two-phase protocol ⇒ zero leaks; naive commit ⇒ a positive leak
  window).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .resources import Domain, Node

__all__ = ["Link", "Network", "Message", "TransferRecord"]


@dataclass(frozen=True)
class Message:
    """A unit of communication: payload size in KB plus bookkeeping."""

    size_kb: float = 1.0
    kind: str = "task"
    task_id: Optional[int] = None


@dataclass
class Link:
    """Directed-pair link parameters between two domains.

    ``latency`` in seconds, ``bandwidth`` in KB/s.  A link is *private*
    iff both endpoints are trusted domains; messages on non-private links
    must be secured or they count as leaks.
    """

    a: Domain
    b: Domain
    latency: float = 0.001
    bandwidth: float = 100_000.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("latency must be >= 0")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be > 0")

    @property
    def private(self) -> bool:
        """True if traffic on this link never crosses untrusted territory."""
        return self.a.trusted and self.b.trusted

    def plain_time(self, msg: Message) -> float:
        """Transfer time without encryption."""
        return self.latency + msg.size_kb / self.bandwidth


@dataclass(frozen=True)
class TransferRecord:
    """Audit-log entry for one message transfer."""

    time: float
    src: str
    dst: str
    secured: bool
    private: bool
    duration: float
    kind: str

    @property
    def leaked(self) -> bool:
        """True if plaintext data crossed a non-private link."""
        return (not self.secured) and (not self.private)


class Network:
    """Domain-level network with per-pair links and a transfer audit log.

    ``secure_factor`` is the multiplicative overhead of the secure
    protocol (SSL stand-in): secured transfers take ``secure_factor``
    times longer, plus a fixed ``handshake`` latency.  Defaults are
    calibrated so security costs are visible but not dominant (paper
    [31] reports 10–40% overheads for skeletal systems; we default to
    1.3x).
    """

    def __init__(self, *, secure_factor: float = 1.3, handshake: float = 0.005) -> None:
        if secure_factor < 1.0:
            raise ValueError("secure_factor must be >= 1.0")
        self._links: Dict[Tuple[str, str], Link] = {}
        self.secure_factor = secure_factor
        self.handshake = handshake
        self.log: List[TransferRecord] = []
        self.default_latency = 0.001
        self.default_bandwidth = 100_000.0

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def add_link(self, link: Link) -> None:
        """Register a (bidirectional) link between two domains."""
        self._links[(link.a.name, link.b.name)] = link
        self._links[(link.b.name, link.a.name)] = link

    def link_between(self, a: Domain, b: Domain) -> Link:
        """The link between domains ``a`` and ``b`` (default if absent).

        Intra-domain traffic gets a fast implicit loopback link.
        """
        key = (a.name, b.name)
        if key in self._links:
            return self._links[key]
        if a.name == b.name:
            return Link(a, b, latency=0.0001, bandwidth=1_000_000.0)
        return Link(a, b, latency=self.default_latency, bandwidth=self.default_bandwidth)

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def transfer_time(self, src: Node, dst: Node, msg: Message, *, secured: bool) -> float:
        """Time for ``msg`` to travel ``src -> dst``.

        Same-node transfers are free: in the paper's setting co-located
        components communicate through shared memory.
        """
        if src.name == dst.name:
            return 0.0
        link = self.link_between(src.domain, dst.domain)
        t = link.plain_time(msg)
        if secured:
            t = t * self.secure_factor + self.handshake
        return t

    def record_transfer(
        self, time: float, src: Node, dst: Node, msg: Message, *, secured: bool
    ) -> TransferRecord:
        """Compute transfer time and append an audit record."""
        duration = self.transfer_time(src, dst, msg, secured=secured)
        link = self.link_between(src.domain, dst.domain)
        private = link.private or src.name == dst.name
        rec = TransferRecord(
            time=time,
            src=src.name,
            dst=dst.name,
            secured=secured,
            private=private,
            duration=duration,
            kind=msg.kind,
        )
        self.log.append(rec)
        return rec

    # ------------------------------------------------------------------
    # audit queries
    # ------------------------------------------------------------------
    @property
    def leak_count(self) -> int:
        """Number of plaintext messages that crossed non-private links."""
        return sum(1 for r in self.log if r.leaked)

    def leaks(self) -> List[TransferRecord]:
        """All leaking transfer records (MC-2PC evidence)."""
        return [r for r in self.log if r.leaked]

    @property
    def secured_count(self) -> int:
        return sum(1 for r in self.log if r.secured)

    def total_transfer_time(self) -> float:
        """Sum of all recorded transfer durations (overhead accounting)."""
        return sum(r.duration for r in self.log)
