"""Simulated data-parallel map: functional replication with scatter/reduce.

"By varying the way input tasks are distributed to the available
concurrent computations, the way the results are gathered into the
output stream and the amount of data shared among the concurrent
computations, several distinct parallel patterns can be modeled,
including embarrassingly parallel computation on streams (task farm)
and data parallel computation" (§3).

:class:`SimMap` is the data-parallel variant: each incoming task is
*scattered* into one chunk per live worker (chunk work = task work /
degree), the chunks execute concurrently, and a *reduce* step gathers
them back into one result before the next task is taken.  Per-task
service time is therefore ``scatter + work/degree (slowest worker) +
gather`` — the classic data-parallel model.

The monitoring/actuator surface deliberately mirrors
:class:`~repro.sim.farm.SimFarm` (``snapshot``, ``add_worker``,
``remove_worker``, ``balance_load``, blackouts…) so the *same*
:class:`~repro.gcm.abc_controller.FarmABC` and
:class:`~repro.core.skeleton_manager.FarmManager` drive either pattern —
the paper's point that one functional-replication BS covers both.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional

from .engine import Interrupt, Process, SimEvent, Simulator, wait_all
from .farm import FarmSnapshot
from .metrics import UtilizationMeter, WindowRateEstimator, queue_length_stats
from .network import Message, Network
from .queues import Store
from .resources import Node
from .workload import Task

__all__ = ["SimMap", "MapWorker"]


class _Chunk:
    """One scattered slice of a task."""

    __slots__ = ("work", "done")

    def __init__(self, work: float, done: SimEvent) -> None:
        self.work = work
        self.done = done


class MapWorker:
    """One data-parallel worker: serves chunks from its private queue."""

    def __init__(self, sim: Simulator, owner: "SimMap", node: Node, worker_id: int, *, secured: bool = False) -> None:
        self.sim = sim
        self.owner = owner
        self.node = node
        self.worker_id = worker_id
        self.secured = secured
        self.queue = Store(sim, name=f"{owner.name}.mw{worker_id}.q")
        self.util = UtilizationMeter(start_time=sim.now)
        self.chunks_done = 0
        self.active = True
        self._stopped = False
        self.current_chunk: Optional[_Chunk] = None
        self._proc: Process = sim.process(self._run(), name=f"{owner.name}.mw{worker_id}")

    @property
    def name(self) -> str:
        return f"{self.owner.name}.mw{self.worker_id}"

    def stop(self) -> None:
        self.active = False
        self._stopped = True
        if self._proc.alive:
            self._proc.interrupt("stop")

    def _run(self) -> Iterator[Any]:
        while not self._stopped:
            try:
                chunk = yield self.queue.get()
            except Interrupt:
                break
            self.current_chunk = chunk
            self.util.set_busy(self.sim.now)
            try:
                yield self.sim.timeout(self.node.service_time(chunk.work, self.sim.now))
            except Interrupt:
                break  # crashed mid-chunk; owner re-scatters current_chunk
            self.util.set_idle(self.sim.now)
            self.chunks_done += 1
            self.current_chunk = None
            chunk.done.succeed()


class SimMap:
    """Data-parallel map over the DES substrate (scatter → compute → reduce)."""

    def __init__(
        self,
        sim: Simulator,
        *,
        name: str = "map",
        emitter_node: Node,
        network: Optional[Network] = None,
        scatter_overhead: float = 0.02,
        gather_overhead: float = 0.02,
        rate_window: float = 10.0,
        worker_setup_time: float = 5.0,
        chunk_size_kb: float = 32.0,
        on_result: Optional[Callable[[Task], None]] = None,
    ) -> None:
        if scatter_overhead < 0 or gather_overhead < 0:
            raise ValueError("overheads must be >= 0")
        self.sim = sim
        self.name = name
        self.emitter_node = emitter_node
        self.network = network
        self.scatter_overhead = scatter_overhead
        self.gather_overhead = gather_overhead
        self.worker_setup_time = worker_setup_time
        self.chunk_size_kb = chunk_size_kb
        self.on_result = on_result

        self.input = Store(sim, name=f"{name}.input")
        self.output = Store(sim, name=f"{name}.output")
        # Arrivals are measured at enqueue time: the dispatcher blocks
        # while a collection computes, so sampling at dequeue would
        # confuse input pressure with our own service rate.
        self.input.on_put = lambda _item: self.arrival_est.mark(self.sim.now)
        self.workers: List[MapWorker] = []
        self._next_worker_id = 0

        self.arrival_est = WindowRateEstimator(rate_window, start_time=sim.now)
        self.departure_est = WindowRateEstimator(rate_window, start_time=sim.now)
        self.completed = 0
        self.end_of_stream = False
        self._blackout_until = -1.0
        self.reconfigurations = 0
        self.failures = 0
        self._in_service = 0

        self._proc = sim.process(self._dispatch_loop(), name=f"{name}.dispatcher")

    # ------------------------------------------------------------------
    # the scatter/compute/reduce loop (one collection at a time)
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> Iterator[Any]:
        while True:
            if not any(w.active for w in self.workers):
                yield self.sim.timeout(0.05)
                continue
            task = yield self.input.get()
            self._in_service = 1
            task.started_at = self.sim.now

            live = [w for w in self.workers if w.active]
            if self.scatter_overhead > 0:
                yield self.sim.timeout(self.scatter_overhead)
            chunk_work = task.work / len(live)
            done_events = []
            for w in live:
                ev = self.sim.event(f"{self.name}.chunk")
                w.queue.put_nowait(_Chunk(chunk_work, ev))
                if self.network is not None:
                    self.network.record_transfer(
                        self.sim.now,
                        self.emitter_node,
                        w.node,
                        Message(self.chunk_size_kb, "chunk", task.task_id),
                        secured=w.secured,
                    )
                done_events.append(ev)
            yield wait_all(self.sim, done_events)
            if self.gather_overhead > 0:
                yield self.sim.timeout(self.gather_overhead)

            task.completed_at = self.sim.now
            self.departure_est.mark(self.sim.now)
            self.completed += 1
            self._in_service = 0
            self.output.put_nowait(task)
            if self.on_result is not None:
                self.on_result(task)

    # ------------------------------------------------------------------
    # monitoring (same shape as SimFarm's)
    # ------------------------------------------------------------------
    @property
    def in_blackout(self) -> bool:
        return self.sim.now < self._blackout_until

    def snapshot(self) -> Optional[FarmSnapshot]:
        if self.in_blackout:
            return None
        return self.force_snapshot()

    def force_snapshot(self) -> FarmSnapshot:
        live = [w for w in self.workers if w.active]
        lengths = tuple(len(w.queue) for w in live)
        _, var, _, _ = queue_length_stats(lengths)
        util = (
            sum(w.util.utilization(self.sim.now) for w in live) / len(live)
            if live
            else 0.0
        )
        return FarmSnapshot(
            time=self.sim.now,
            arrival_rate=self.arrival_est.rate(self.sim.now),
            departure_rate=self.departure_est.rate(self.sim.now),
            num_workers=len(live),
            queue_lengths=lengths,
            queue_variance=var,
            utilization=util,
            completed=self.completed,
            pending=self.pending,
        )

    @property
    def num_workers(self) -> int:
        return sum(1 for w in self.workers if w.active)

    @property
    def pending(self) -> int:
        return len(self.input) + self._in_service

    # ------------------------------------------------------------------
    # actuators (FarmABC-compatible)
    # ------------------------------------------------------------------
    def add_worker(self, node: Node, *, secured: bool = False) -> MapWorker:
        """Widen the map: future tasks scatter across one more worker."""
        wid = self._next_worker_id
        self._next_worker_id += 1
        worker = MapWorker(self.sim, self, node, wid, secured=secured)
        if self.worker_setup_time > 0:
            worker.active = False
            self._blackout_until = max(
                self._blackout_until, self.sim.now + self.worker_setup_time + 1e-6
            )

            def activate() -> None:
                if not worker._stopped:
                    worker.active = True

            self.sim.schedule(self.worker_setup_time, activate)
        self.workers.append(worker)
        self.reconfigurations += 1
        return worker

    def remove_worker(self) -> Optional[MapWorker]:
        """Narrow the map (never below one worker).

        Safe at any time: chunks already scattered to the victim finish
        first (stop is lazy), and subsequent tasks scatter across the
        survivors only.
        """
        live = [w for w in self.workers if w.active]
        if len(live) <= 1:
            return None
        victim = live[-1]
        victim.active = False  # excluded from future scatters

        def finalize() -> None:
            if not len(victim.queue):
                victim.stop()
            else:
                self.sim.schedule(0.5, finalize)

        finalize()
        self.reconfigurations += 1
        return victim

    def balance_load(self) -> int:
        """Scatter is inherently balanced; nothing to move."""
        return 0

    def secure_worker(self, worker: MapWorker) -> None:
        worker.secured = True

    def secure_all(self) -> None:
        for w in self.workers:
            w.secured = True

    def fail_worker(self, worker: MapWorker) -> int:
        """Crash a map worker; its outstanding chunks are re-scattered.

        Chunks are re-enqueued on survivors so the in-flight task still
        completes (the reduce waits for every chunk event).
        """
        if worker not in self.workers or worker._stopped:
            return 0
        worker.active = False
        worker._stopped = True
        if worker._proc.alive:
            worker._proc.interrupt("crash")
        recovered = 0
        survivors = [w for w in self.workers if w.active]
        pending_chunks = []
        if worker.current_chunk is not None:
            pending_chunks.append(worker.current_chunk)
            worker.current_chunk = None
        while True:
            ok, chunk = worker.queue.try_get()
            if not ok:
                break
            pending_chunks.append(chunk)
        for chunk in pending_chunks:
            if survivors:
                survivors[recovered % len(survivors)].queue.put_nowait(chunk)
            recovered += 1
        self.failures += 1
        return recovered

    # ------------------------------------------------------------------
    # stream plumbing
    # ------------------------------------------------------------------
    def submit(self, task: Task) -> None:
        self.input.put_nowait(task)

    def notify_end_of_stream(self) -> None:
        self.end_of_stream = True

    @property
    def drained(self) -> bool:
        return self.end_of_stream and self.pending == 0
