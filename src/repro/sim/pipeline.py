"""Simulated pipeline stages and stage plumbing.

Figure 4's application is ``pipeline(seq, farm(seq), seq)``: a Producer,
a task-farm Filter and a Consumer.  The farm mechanism lives in
:mod:`repro.sim.farm`; this module supplies the sequential stage
mechanism and the inter-stage plumbing:

* :class:`SeqStage` — one process serving tasks from an input store to
  an output store with per-task service time determined by its node.
  Its monitoring surface matches the farm's (arrival/departure rates),
  so the same manager machinery attaches to both.
* :class:`Forwarder` — zero-work connector moving items between stores,
  used to wire heterogeneous stage mechanisms into one pipeline.
* :class:`SimPipeline` — convenience container keeping stage order and
  offering aggregate measures (end-to-end throughput).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Sequence

from .engine import Interrupt, Process, Simulator
from .metrics import UtilizationMeter, WindowRateEstimator
from .network import Message, Network
from .queues import Store
from .resources import Node
from .workload import Task

__all__ = ["StageSnapshot", "SeqStage", "Forwarder", "SimPipeline"]


@dataclass(frozen=True)
class StageSnapshot:
    """One monitoring sample of a sequential stage."""

    time: float
    arrival_rate: float
    departure_rate: float
    utilization: float
    completed: int
    queue_length: int


class SeqStage:
    """A single sequential worker between two stores.

    ``service_work`` is the per-task work in seconds-at-unit-speed; the
    effective service time also reflects the node's external load, so a
    load spike on the consumer's core slows the whole pipeline — the
    §4.2 adaptation scenario for stages.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        name: str,
        node: Node,
        input_store: Store,
        output_store: Optional[Store],
        service_work: float,
        network: Optional[Network] = None,
        downstream_node: Optional[Node] = None,
        rate_window: float = 10.0,
        on_done: Optional[Callable[[Task], None]] = None,
    ) -> None:
        if service_work < 0:
            raise ValueError("service_work must be >= 0")
        self.sim = sim
        self.name = name
        self.node = node
        self.input = input_store
        self.output = output_store
        self.service_work = service_work
        self.network = network
        self.downstream_node = downstream_node
        self.on_done = on_done
        self.arrival_est = WindowRateEstimator(rate_window, start_time=sim.now)
        self.departure_est = WindowRateEstimator(rate_window, start_time=sim.now)
        self.util = UtilizationMeter(start_time=sim.now)
        self.completed = 0
        self.active = True
        self.secured = False
        self._proc: Process = sim.process(self._run(), name=name)

    def stop(self) -> None:
        self.active = False
        if self._proc.alive:
            self._proc.interrupt("stop")

    def _run(self) -> Iterator[Any]:
        while self.active:
            try:
                task = yield self.input.get()
            except Interrupt:
                break
            self.arrival_est.mark(self.sim.now)
            self.util.set_busy(self.sim.now)
            if self.service_work > 0:
                yield self.sim.timeout(self.node.service_time(self.service_work, self.sim.now))
            self.util.set_idle(self.sim.now)
            self.completed += 1
            self.departure_est.mark(self.sim.now)
            delay = 0.0
            if self.network is not None and self.downstream_node is not None:
                rec = self.network.record_transfer(
                    self.sim.now,
                    self.node,
                    self.downstream_node,
                    Message(16.0, "stage", task.task_id),
                    secured=self.secured,
                )
                delay = rec.duration
            if self.output is not None:
                if delay > 0:
                    self.sim.schedule(delay, self.output.put_nowait, task)
                else:
                    self.output.put_nowait(task)
            if self.on_done is not None:
                self.on_done(task)

    def snapshot(self) -> StageSnapshot:
        """Monitoring sample for this stage."""
        return StageSnapshot(
            time=self.sim.now,
            arrival_rate=self.arrival_est.rate(self.sim.now),
            departure_rate=self.departure_est.rate(self.sim.now),
            utilization=self.util.utilization(self.sim.now),
            completed=self.completed,
            queue_length=len(self.input),
        )


class Forwarder:
    """Moves every item from ``src`` to ``dst`` as soon as it appears."""

    def __init__(self, sim: Simulator, src: Store, dst: Store, name: str = "fwd") -> None:
        self.sim = sim
        self.src = src
        self.dst = dst
        self.moved = 0
        self._proc = sim.process(self._run(), name=name)

    def _run(self) -> Iterator[Any]:
        while True:
            item = yield self.src.get()
            self.moved += 1
            if self.dst.capacity is None:
                self.dst.put_nowait(item)
            else:
                yield self.dst.put(item)


class SimPipeline:
    """Ordered collection of stage mechanisms forming one pipeline.

    Stages are heterogeneous objects (SeqStage, SimFarm, TaskSource);
    the pipeline records the ordering and exposes end-to-end measures.
    Construction wiring (who reads whose store) is the caller's job —
    see :mod:`repro.experiments.fig4` for the canonical three-stage
    build.
    """

    def __init__(self, sim: Simulator, stages: Sequence[Any], name: str = "pipeline") -> None:
        if not stages:
            raise ValueError("pipeline needs at least one stage")
        self.sim = sim
        self.name = name
        self.stages = list(stages)
        self.sink = Store(sim, name=f"{name}.sink")
        self.delivered = 0
        self.departure_est = WindowRateEstimator(10.0, start_time=sim.now)

    def record_delivery(self, task: Task) -> None:
        """Call when a task leaves the last stage (end-to-end accounting)."""
        self.delivered += 1
        self.departure_est.mark(self.sim.now)
        self.sink.put_nowait(task)

    def throughput(self) -> float:
        """End-to-end delivery rate (tasks/second, windowed)."""
        return self.departure_est.rate(self.sim.now)

    def stage(self, index: int) -> Any:
        return self.stages[index]

    def __len__(self) -> int:
        return len(self.stages)
