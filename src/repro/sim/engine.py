"""Deterministic discrete-event simulation engine.

This module is the execution substrate standing in for the paper's
GCM/ProActive middleware running on an 8-core SMP.  All quantitative
experiments (Figures 3 and 4, the load-spike and multi-concern scenarios)
run on this engine, which makes the autonomic-manager dynamics exactly
reproducible: the same scenario always yields the same event trace.

The design is a small process-based DES in the style of SimPy:

* :class:`Simulator` owns the virtual clock and a priority queue of
  scheduled events.  Ties are broken by a monotonically increasing
  sequence number, so execution order is fully deterministic.
* :class:`Process` wraps a Python generator.  The generator *yields*
  waitable objects — :class:`Timeout`, :class:`SimEvent`, store get/put
  requests from :mod:`repro.sim.queues` — and is resumed when the thing
  it waited on completes.
* :class:`PeriodicTask` is a convenience for fixed-period callbacks and
  is what autonomic managers use for their MAPE control loop.

Only ``repro`` packages depend on this module; it has no dependencies
outside the standard library.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "SimEvent",
    "Timeout",
    "Process",
    "PeriodicTask",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class Interrupt(Exception):
    """Thrown into a :class:`Process` generator by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class SimEvent:
    """A one-shot event that processes may wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    schedules all waiting callbacks at the current simulation time.
    Succeeding an already-triggered event raises :class:`SimulationError`.
    """

    __slots__ = ("sim", "_callbacks", "_triggered", "_value", "_is_error", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._callbacks: list[Callable[["SimEvent"], None]] = []
        self._triggered = False
        self._value: Any = None
        self._is_error = False

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._triggered

    @property
    def value(self) -> Any:
        """The value the event was succeeded (or failed) with."""
        return self._value

    @property
    def is_error(self) -> bool:
        """True if the event was triggered via :meth:`fail`."""
        return self._is_error

    def add_callback(self, fn: Callable[["SimEvent"], None]) -> None:
        """Register ``fn`` to run when the event triggers.

        If the event already triggered, ``fn`` is scheduled immediately
        (still through the event queue, preserving determinism).
        """
        if self._triggered:
            self.sim.schedule(0.0, fn, self)
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None) -> "SimEvent":
        """Trigger the event successfully with ``value``."""
        self._trigger(value, is_error=False)
        return self

    def fail(self, exception: BaseException) -> "SimEvent":
        """Trigger the event as failed; waiting processes see the exception."""
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._trigger(exception, is_error=True)
        return self

    def _trigger(self, value: Any, is_error: bool) -> None:
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._triggered = True
        self._value = value
        self._is_error = is_error
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self.sim.schedule(0.0, fn, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<SimEvent {self.name!r} {state}>"


class Timeout:
    """Waitable returned by :meth:`Simulator.timeout`.

    Yielding a ``Timeout`` from a process generator suspends the process
    for ``delay`` units of simulated time.
    """

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.delay = float(delay)
        self.value = value


@dataclass(order=True)
class _QueueEntry:
    time: float
    seq: int
    fn: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class ScheduledCall:
    """Handle to a scheduled callback; supports :meth:`cancel`."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _QueueEntry) -> None:
        self._entry = entry

    @property
    def time(self) -> float:
        """Simulated time at which the call will run."""
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self._entry.cancelled = True


class Simulator:
    """The event loop: a virtual clock plus a deterministic event queue.

    ``telemetry`` (a :class:`repro.obs.Telemetry`, optional) makes each
    :meth:`run` an observable span on the *simulated* timeline and
    counts processed events.  It is purely passive: attaching telemetry
    never schedules anything, so traces are bit-identical with or
    without it.
    """

    def __init__(self, telemetry: Any = None) -> None:
        self._now = 0.0
        self._queue: list[_QueueEntry] = []
        self._seq = itertools.count()
        self._processes: list[Process] = []
        self._running = False
        self.telemetry = telemetry

    # ------------------------------------------------------------------
    # clock & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` after ``delay`` simulated time units."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        entry = _QueueEntry(self._now + delay, next(self._seq), fn, args)
        heapq.heappush(self._queue, entry)
        return ScheduledCall(entry)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past (t={time} < now={self._now})"
            )
        return self.schedule(time - self._now, fn, *args)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` waitable for use inside processes."""
        return Timeout(delay, value)

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh one-shot :class:`SimEvent`."""
        return SimEvent(self, name)

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def process(self, gen: Generator, name: str = "") -> "Process":
        """Start a generator as a simulated process (runs from now)."""
        proc = Process(self, gen, name=name)
        self._processes.append(proc)
        return proc

    def periodic(
        self,
        period: float,
        fn: Callable[[], Any],
        *,
        start_delay: Optional[float] = None,
        name: str = "",
    ) -> "PeriodicTask":
        """Invoke ``fn`` every ``period`` time units until cancelled."""
        return PeriodicTask(self, period, fn, start_delay=start_delay, name=name)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event; return False if queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            if entry.time < self._now - 1e-12:
                raise SimulationError("event queue time went backwards")
            self._now = entry.time
            entry.fn(*entry.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run until the queue drains or the clock passes ``until``.

        Returns the simulation time at which the run stopped.  When
        ``until`` is given the clock is advanced to exactly ``until`` even
        if the queue drained earlier, mirroring SimPy semantics.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        tel = self.telemetry
        run_span = None
        if tel is not None and tel.enabled:
            run_span = tel.start_span("sim.run", actor="sim", until=until)
        try:
            count = 0
            while self._queue:
                entry = self._queue[0]
                if entry.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and entry.time > until:
                    break
                self.step()
                count += 1
                if count > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a runaway loop"
                    )
            if until is not None and self._now < until:
                self._now = until
            return self._now
        finally:
            self._running = False
            if run_span is not None:
                tel.metrics.counter(
                    "repro_sim_events_total", "simulation queue entries executed"
                ).inc(count)
                tel.end_span(run_span, events=count)

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None


class _TimeoutWait:
    """Cancellable handle for a process blocked on a Timeout."""

    __slots__ = ("handle",)

    def __init__(self, handle: ScheduledCall) -> None:
        self.handle = handle

    def __sim_cancel__(self, proc: "Process") -> None:
        self.handle.cancel()


class Process:
    """A generator-driven simulated activity.

    The generator may yield:

    * :class:`Timeout` — sleep for a duration;
    * :class:`SimEvent` — wait until the event triggers (receives its
      value; a failed event re-raises inside the generator);
    * another :class:`Process` — wait for it to finish;
    * objects exposing ``__sim_wait__(process)`` — the extension hook used
      by store get/put requests in :mod:`repro.sim.queues`.

    A process is itself waitable: other processes may yield it, and its
    :attr:`done_event` triggers with the generator's return value.
    """

    __slots__ = ("sim", "name", "_gen", "done_event", "_alive", "_waiting_on", "_epoch")

    def __init__(self, sim: Simulator, gen: Generator, name: str = "") -> None:
        if not hasattr(gen, "send"):
            raise SimulationError("Process requires a generator")
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self.done_event = sim.event(f"{self.name}.done")
        self._alive = True
        self._waiting_on: Any = None
        # Wait epoch: every resume invalidates callbacks registered for
        # earlier waits, so an interrupted timeout can never double-resume
        # the generator when its stale callback eventually fires.
        self._epoch = 0
        sim.schedule(0.0, self._resume, None, None)

    # -- waitable protocol -------------------------------------------------
    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self._alive:
            return
        waiting = self._waiting_on
        if waiting is not None and hasattr(waiting, "__sim_cancel__"):
            waiting.__sim_cancel__(self)
        self._waiting_on = None
        self.sim.schedule(0.0, self._resume, None, Interrupt(cause))

    # -- internal ----------------------------------------------------------
    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if not self._alive:
            return
        self._epoch += 1
        self._waiting_on = None
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self._alive = False
            self.done_event.succeed(stop.value)
            return
        except Interrupt:
            # Interrupt escaped the generator: treat as normal termination.
            self._alive = False
            self.done_event.succeed(None)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        epoch = self._epoch
        if isinstance(target, Timeout):
            handle = self.sim.schedule(
                target.delay, self._resume_epoch, epoch, target.value, None
            )
            self._waiting_on = _TimeoutWait(handle)
        elif isinstance(target, SimEvent):
            self._waiting_on = target
            target.add_callback(lambda ev: self._on_event(epoch, ev))
        elif isinstance(target, Process):
            self._waiting_on = target.done_event
            target.done_event.add_callback(lambda ev: self._on_event(epoch, ev))
        elif hasattr(target, "__sim_wait__"):
            self._waiting_on = target
            target.__sim_wait__(self)
        else:
            self._alive = False
            err = SimulationError(
                f"process {self.name!r} yielded non-waitable {target!r}"
            )
            self.done_event.fail(err)
            raise err

    def _resume_epoch(self, epoch: int, value: Any, exc: Optional[BaseException]) -> None:
        if epoch != self._epoch:
            return  # stale wake-up from a wait that was interrupted
        self._resume(value, exc)

    def _on_event(self, epoch: int, event: SimEvent) -> None:
        if not self._alive or epoch != self._epoch:
            return
        if event.is_error:
            self._resume(None, event.value)
        else:
            self._resume(event.value, None)

    # called by stores when a get/put request completes
    def _deliver(self, value: Any) -> None:
        self._resume(value, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "done"
        return f"<Process {self.name!r} {state}>"


class PeriodicTask:
    """Fixed-period callback driver (used for manager control loops).

    ``fn`` is called every ``period`` units.  If ``fn`` returns a truthy
    value the task stops (convenience for self-terminating loops); it can
    also be stopped externally via :meth:`cancel`.
    """

    __slots__ = ("sim", "period", "fn", "name", "_cancelled", "_handle", "ticks")

    def __init__(
        self,
        sim: Simulator,
        period: float,
        fn: Callable[[], Any],
        *,
        start_delay: Optional[float] = None,
        name: str = "",
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self.sim = sim
        self.period = float(period)
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "periodic")
        self._cancelled = False
        self.ticks = 0
        first = self.period if start_delay is None else start_delay
        self._handle = sim.schedule(first, self._tick)

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Stop future invocations (idempotent)."""
        self._cancelled = True
        if self._handle is not None:
            self._handle.cancel()

    def _tick(self) -> None:
        if self._cancelled:
            return
        self.ticks += 1
        stop = self.fn()
        if stop or self._cancelled:
            self._cancelled = True
            return
        self._handle = self.sim.schedule(self.period, self._tick)


def wait_all(sim: Simulator, events: Iterable[SimEvent]) -> SimEvent:
    """Return an event that succeeds when every event in ``events`` has.

    The combined event's value is the list of individual values in the
    order given.  Failed constituents propagate the first failure.
    """
    events = list(events)
    combined = sim.event("all")
    remaining = len(events)
    values: list[Any] = [None] * len(events)
    if remaining == 0:
        combined.succeed([])
        return combined

    state = {"left": remaining, "failed": False}

    def make_cb(i: int) -> Callable[[SimEvent], None]:
        def cb(ev: SimEvent) -> None:
            if state["failed"]:
                return
            if ev.is_error:
                state["failed"] = True
                combined.fail(ev.value)
                return
            values[i] = ev.value
            state["left"] -= 1
            if state["left"] == 0:
                combined.succeed(values)

        return cb

    for i, ev in enumerate(events):
        ev.add_callback(make_cb(i))
    return combined
