"""Processing resources: nodes, domains, external load, recruitment.

The paper's farm manager "recruits a new resource (possibly interacting
with some kind of external resource manager) and instantiates a new
worker on the resource" (§3.2).  This module provides that external
resource manager for the simulated grid:

* :class:`Domain` — an administrative/network domain with a trust flag.
  Section 3.2's ``untrusted_ip_domain_A`` is simply a domain with
  ``trusted=False``; the security manager consults it.
* :class:`Node` — a processing element with a relative ``speed`` and a
  time-varying *external load* (other tenants stealing cycles).  The
  effective speed at time *t* is ``speed * (1 - load(t))``; injecting a
  load step mid-run is how the EXT-LOAD experiment perturbs workers.
* :class:`ResourceManager` — recruit/release with pluggable selection
  predicates, so the performance manager can express "any node" while
  the security-amended plan expresses "trusted nodes only".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Domain", "Node", "ResourceManager", "LoadSchedule", "NoResourceAvailable"]


class NoResourceAvailable(RuntimeError):
    """Raised when recruitment cannot be satisfied."""


@dataclass(frozen=True)
class Domain:
    """Administrative domain; ``trusted`` drives the security concern."""

    name: str
    trusted: bool = True

    def __str__(self) -> str:
        flag = "trusted" if self.trusted else "UNTRUSTED"
        return f"{self.name}({flag})"


TRUSTED_DEFAULT = Domain("local", trusted=True)


class LoadSchedule:
    """Piecewise-constant external load profile for a node.

    A list of ``(time, load)`` breakpoints; the load in effect at time
    *t* is the value of the latest breakpoint ≤ *t*.  Loads are clipped
    to [0, 0.99] — a node never becomes infinitely slow, matching the
    paper's "overload" (slower, not dead) scenario.
    """

    MAX_LOAD = 0.99

    def __init__(self, breakpoints: Optional[Sequence[Tuple[float, float]]] = None) -> None:
        self._points: List[Tuple[float, float]] = [(0.0, 0.0)]
        if breakpoints:
            for t, load in breakpoints:
                self.set_load(t, load)

    def set_load(self, time: float, load: float) -> None:
        """Add/replace a breakpoint: from ``time`` on, external load is ``load``."""
        load = min(max(load, 0.0), self.MAX_LOAD)
        self._points = [(t, l) for (t, l) in self._points if t != time]
        self._points.append((time, load))
        self._points.sort()

    def load_at(self, time: float) -> float:
        """External load in effect at ``time`` (0 before first breakpoint)."""
        current = 0.0
        for t, l in self._points:
            if t <= time:
                current = l
            else:
                break
        return current


@dataclass
class Node:
    """A processing element of the simulated platform."""

    name: str
    speed: float = 1.0
    domain: Domain = TRUSTED_DEFAULT
    cores: int = 1
    load_schedule: LoadSchedule = field(default_factory=LoadSchedule)
    allocated: bool = False

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError(f"node speed must be positive, got {self.speed}")
        if self.cores < 1:
            raise ValueError(f"node must have >=1 core, got {self.cores}")

    def effective_speed(self, time: float) -> float:
        """Speed available to our application at ``time``."""
        return self.speed * (1.0 - self.load_schedule.load_at(time))

    def service_time(self, work: float, time: float) -> float:
        """Time to execute ``work`` units starting at ``time``.

        Uses the load in effect at start time — adequate for the
        piecewise-constant schedules used in experiments, and it keeps
        service times analytically checkable in tests.
        """
        eff = self.effective_speed(time)
        if eff <= 0:
            raise ValueError(f"node {self.name} has no capacity at t={time}")
        return work / eff

    @property
    def trusted(self) -> bool:
        return self.domain.trusted

    def __str__(self) -> str:
        return f"{self.name}@{self.domain.name}"


NodePredicate = Callable[[Node], bool]


def any_node(_: Node) -> bool:
    """Selection predicate accepting every node."""
    return True


def trusted_only(node: Node) -> bool:
    """Selection predicate accepting only trusted-domain nodes."""
    return node.trusted


class ResourceManager:
    """External resource manager: a pool of nodes with recruit/release.

    Recruitment prefers trusted and faster nodes by default (stable
    deterministic ordering), which mirrors a sensible grid broker and
    makes the multi-concern scenario interesting only when trusted
    capacity is exhausted — exactly the §3.2 setup.
    """

    def __init__(self, nodes: Iterable[Node] = ()) -> None:
        self._nodes: Dict[str, Node] = {}
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------
    # pool management
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add a node to the pool (name must be unique)."""
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        for n in nodes:
            self.add_node(n)

    def get(self, name: str) -> Node:
        """Look up a node by name."""
        return self._nodes[name]

    @property
    def nodes(self) -> List[Node]:
        """All nodes, deterministic order (insertion)."""
        return list(self._nodes.values())

    def available(self, predicate: NodePredicate = any_node) -> List[Node]:
        """Free nodes matching ``predicate``, best-first."""
        free = [n for n in self._nodes.values() if not n.allocated and predicate(n)]
        # Prefer trusted, then faster, then stable by name.
        free.sort(key=lambda n: (not n.trusted, -n.speed, n.name))
        return free

    def allocated_nodes(self) -> List[Node]:
        return [n for n in self._nodes.values() if n.allocated]

    @property
    def allocated_count(self) -> int:
        return sum(1 for n in self._nodes.values() if n.allocated)

    # ------------------------------------------------------------------
    # recruit / release
    # ------------------------------------------------------------------
    def recruit(self, count: int = 1, predicate: NodePredicate = any_node) -> List[Node]:
        """Allocate ``count`` nodes matching ``predicate``.

        Raises :class:`NoResourceAvailable` if fewer than ``count`` match;
        in that case nothing is allocated (all-or-nothing semantics, so a
        partially provisioned reconfiguration never leaks resources).
        """
        if count < 1:
            raise ValueError(f"recruit count must be >=1, got {count}")
        candidates = self.available(predicate)
        if len(candidates) < count:
            raise NoResourceAvailable(
                f"requested {count} node(s), only {len(candidates)} available"
            )
        chosen = candidates[:count]
        for node in chosen:
            node.allocated = True
        return chosen

    def try_recruit(self, count: int = 1, predicate: NodePredicate = any_node) -> List[Node]:
        """Like :meth:`recruit` but returns [] instead of raising."""
        try:
            return self.recruit(count, predicate)
        except NoResourceAvailable:
            return []

    def release(self, node: Node) -> None:
        """Return a node to the pool (idempotent)."""
        if node.name not in self._nodes:
            raise ValueError(f"unknown node {node.name!r}")
        node.allocated = False

    def release_all(self, nodes: Iterable[Node]) -> None:
        for n in nodes:
            self.release(n)


def make_cluster(
    n: int,
    *,
    prefix: str = "node",
    speed: float = 1.0,
    domain: Domain = TRUSTED_DEFAULT,
) -> List[Node]:
    """Convenience: build ``n`` identical nodes named ``prefix-i``."""
    return [Node(f"{prefix}-{i}", speed=speed, domain=domain) for i in range(n)]
