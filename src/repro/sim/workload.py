"""Workload generation: task streams for the reproduced experiments.

The paper's evaluation workload is a stream-parallel one: a medical
image processing application in Figure 3 (a stream of images, contract
"0.6 images per second") and a generic producer/filter/consumer pipeline
in Figure 4.  We have no access to the original images or filters, so we
substitute synthetic streams with configurable per-task *work* (seconds
of computation on a unit-speed node).  This preserves what the
experiments actually exercise — arrival pressure vs. service capacity —
while remaining fully deterministic.

Generators provided:

* :class:`ConstantWork` / :class:`UniformWork` / :class:`HotSpotWork` —
  per-task work distributions ("temporary hot spots in image
  processing", §4.1, are work spikes over a task-index range).
* :class:`TaskSource` — a simulated producer process emitting tasks at a
  controllable rate into a store.  The rate is an *actuator target*:
  Figure 4's ``incRate``/``decRate`` contracts take effect by changing
  it mid-run.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional

from .engine import Interrupt, Process, Simulator
from .queues import Store

__all__ = [
    "Task",
    "WorkModel",
    "ConstantWork",
    "UniformWork",
    "HotSpotWork",
    "TaskSource",
    "finite_stream",
]


@dataclass
class Task:
    """One unit of stream work.

    ``work`` is in seconds-at-unit-speed; timing fields are filled in as
    the task flows through the system, enabling latency accounting.
    """

    task_id: int
    work: float
    created_at: float = 0.0
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    payload: Any = None
    secure_required: bool = False

    @property
    def latency(self) -> Optional[float]:
        """Completion latency (None until the task finishes)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.created_at

    def __repr__(self) -> str:
        return f"Task({self.task_id}, work={self.work:.3f})"


class WorkModel:
    """Base class: maps a task index to its work amount."""

    def work_for(self, index: int) -> float:
        raise NotImplementedError

    def __call__(self, index: int) -> float:
        return self.work_for(index)


class ConstantWork(WorkModel):
    """Every task needs the same amount of work."""

    def __init__(self, work: float) -> None:
        if work <= 0:
            raise ValueError(f"work must be positive, got {work}")
        self.work = float(work)

    def work_for(self, index: int) -> float:
        return self.work


class UniformWork(WorkModel):
    """Work uniform in [lo, hi], from a seeded (deterministic) RNG."""

    def __init__(self, lo: float, hi: float, seed: int = 0) -> None:
        if not 0 < lo <= hi:
            raise ValueError(f"need 0 < lo <= hi, got ({lo}, {hi})")
        self.lo, self.hi = float(lo), float(hi)
        self._rng = random.Random(seed)
        self._cache: List[float] = []

    def work_for(self, index: int) -> float:
        # Cache by index so repeated queries are consistent.
        while len(self._cache) <= index:
            self._cache.append(self._rng.uniform(self.lo, self.hi))
        return self._cache[index]


class HotSpotWork(WorkModel):
    """A base work model with a multiplicative spike over an index range.

    Models §4.1's "temporary hot spots in image processing": tasks in
    ``[start, end)`` take ``factor`` times the base work.
    """

    def __init__(self, base: WorkModel, start: int, end: int, factor: float) -> None:
        if factor <= 0:
            raise ValueError("hot-spot factor must be positive")
        if end < start:
            raise ValueError("hot-spot end must be >= start")
        self.base = base
        self.start, self.end = start, end
        self.factor = factor

    def work_for(self, index: int) -> float:
        w = self.base.work_for(index)
        if self.start <= index < self.end:
            w *= self.factor
        return w


def finite_stream(
    count: int,
    work_model: WorkModel,
    *,
    created_at: float = 0.0,
    secure_required: bool = False,
) -> List[Task]:
    """Materialise ``count`` tasks up front (for direct-feed scenarios)."""
    return [
        Task(i, work_model.work_for(i), created_at=created_at, secure_required=secure_required)
        for i in range(count)
    ]


class TaskSource:
    """A producer process emitting tasks into ``out`` at a target rate.

    * ``rate`` — current emission target (tasks/second).  Mutable at run
      time via :meth:`set_rate`; this is the actuator behind the
      pipeline manager's ``incRate``/``decRate`` contracts in Figure 4.
    * ``max_rate`` — the producer's physical capability; ``set_rate`` is
      clamped to it (a producer told to speed up can only go so fast).
    * ``total`` — number of tasks to emit, or None for an endless stream.

    After the last task, the source fires ``on_end_of_stream`` so the
    application manager can observe ``endStream`` (Figure 4, last phase).
    """

    def __init__(
        self,
        sim: Simulator,
        out: Store,
        *,
        rate: float,
        work_model: WorkModel,
        total: Optional[int] = None,
        max_rate: Optional[float] = None,
        name: str = "source",
        on_emit: Optional[Callable[[Task], None]] = None,
        on_end_of_stream: Optional[Callable[[], None]] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if max_rate is not None and max_rate <= 0:
            raise ValueError("max_rate must be positive")
        self.sim = sim
        self.out = out
        self.work_model = work_model
        self.total = total
        self.max_rate = max_rate
        self.name = name
        self.on_emit = on_emit
        self.on_end_of_stream = on_end_of_stream
        self._rate = min(rate, max_rate) if max_rate else rate
        self.emitted = 0
        self.finished = False
        self._ids = itertools.count()
        self._proc: Process = sim.process(self._run(), name=name)

    # ------------------------------------------------------------------
    # actuator surface
    # ------------------------------------------------------------------
    @property
    def rate(self) -> float:
        """Current emission rate target (tasks/second)."""
        return self._rate

    def set_rate(self, rate: float) -> float:
        """Change the emission rate; returns the (clamped) applied value.

        Interrupting the emitting process makes the new inter-emission
        gap take effect immediately rather than after the current wait.
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if self.max_rate is not None:
            rate = min(rate, self.max_rate)
        self._rate = rate
        if self._proc.alive:
            self._proc.interrupt("rate-change")
        return rate

    def scale_rate(self, factor: float) -> float:
        """Multiply the current rate by ``factor`` (>0)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return self.set_rate(self._rate * factor)

    @property
    def process(self) -> Process:
        return self._proc

    # ------------------------------------------------------------------
    # the producer process
    # ------------------------------------------------------------------
    def _run(self) -> Iterator[Any]:
        while self.total is None or self.emitted < self.total:
            gap = 1.0 / self._rate
            try:
                yield self.sim.timeout(gap)
            except Interrupt:
                # Rate changed: restart the wait with the new gap.
                continue
            idx = next(self._ids)
            task = Task(
                idx,
                self.work_model.work_for(idx),
                created_at=self.sim.now,
            )
            if self.out.capacity is None:
                self.out.put_nowait(task)
            else:
                yield self.out.put(task)
            self.emitted += 1
            if self.on_emit is not None:
                self.on_emit(task)
        self.finished = True
        if self.on_end_of_stream is not None:
            self.on_end_of_stream()
