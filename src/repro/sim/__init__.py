"""Discrete-event simulation substrate (the "grid" the skeletons run on).

This package substitutes for the paper's GCM/ProActive middleware and
8-core SMP testbed: a deterministic process-based DES (:mod:`engine`),
FIFO channels (:mod:`queues`), processing resources with external load
(:mod:`resources`), a domain-aware network with secure-channel costs and
leak auditing (:mod:`network`), synthetic stream workloads
(:mod:`workload`), the farm and pipeline pattern mechanisms
(:mod:`farm`, :mod:`pipeline`), monitoring probes (:mod:`metrics`) and
figure-grade trace recording (:mod:`trace`).
"""

from .engine import (
    Interrupt,
    PeriodicTask,
    Process,
    SimEvent,
    SimulationError,
    Simulator,
    Timeout,
)
from .farm import DispatchPolicy, FarmSnapshot, FarmWorker, SimFarm
from .farmpipe import PipelineReplica, SimFarmOfPipelines
from .map import MapWorker, SimMap
from .metrics import (
    EwmaRateEstimator,
    TimeWeightedMean,
    UtilizationMeter,
    WindowRateEstimator,
    queue_length_stats,
    queue_length_variance,
)
from .network import Link, Message, Network, TransferRecord
from .pipeline import Forwarder, SeqStage, SimPipeline, StageSnapshot
from .queues import Store, drain, transfer
from .resources import (
    Domain,
    LoadSchedule,
    Node,
    NoResourceAvailable,
    ResourceManager,
    any_node,
    make_cluster,
    trusted_only,
)
from .trace import EventMark, TraceRecorder, ascii_series, ascii_timeline
from .workload import (
    ConstantWork,
    HotSpotWork,
    Task,
    TaskSource,
    UniformWork,
    WorkModel,
    finite_stream,
)

__all__ = [
    "Simulator",
    "SimEvent",
    "Timeout",
    "Process",
    "PeriodicTask",
    "Interrupt",
    "SimulationError",
    "Store",
    "drain",
    "transfer",
    "WindowRateEstimator",
    "EwmaRateEstimator",
    "UtilizationMeter",
    "TimeWeightedMean",
    "queue_length_stats",
    "queue_length_variance",
    "Domain",
    "Node",
    "LoadSchedule",
    "ResourceManager",
    "NoResourceAvailable",
    "any_node",
    "trusted_only",
    "make_cluster",
    "Link",
    "Message",
    "Network",
    "TransferRecord",
    "Task",
    "WorkModel",
    "ConstantWork",
    "UniformWork",
    "HotSpotWork",
    "TaskSource",
    "finite_stream",
    "SimFarm",
    "FarmWorker",
    "FarmSnapshot",
    "DispatchPolicy",
    "SimMap",
    "MapWorker",
    "SimFarmOfPipelines",
    "PipelineReplica",
    "SeqStage",
    "StageSnapshot",
    "Forwarder",
    "SimPipeline",
    "EventMark",
    "TraceRecorder",
    "ascii_timeline",
    "ascii_series",
]
