"""Monitoring probes: rate estimators, utilisation and queue statistics.

The paper's ABC (Autonomic Behaviour Controller) exposes *monitoring*
services that the autonomic manager samples each control-loop tick: the
task inter-arrival rate, the departure (service) rate, the number of
workers and the variance of per-worker queue lengths (Figure 5's
``ArrivalRateBean``/``DepartureRateBean``/``NumWorkerBean``/
``QuequeVarianceBean``).  This module provides the measurement machinery
behind those beans.

Two estimators are provided:

* :class:`WindowRateEstimator` — events per second over a sliding time
  window.  This matches what an implementation samples in practice and
  is the default used by farm/pipeline monitors.
* :class:`EwmaRateEstimator` — exponentially weighted inter-arrival
  estimator, useful when the window would hold too few events.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Iterable, Optional, Sequence

__all__ = [
    "WindowRateEstimator",
    "EwmaRateEstimator",
    "UtilizationMeter",
    "queue_length_variance",
    "queue_length_stats",
    "TimeWeightedMean",
]


class WindowRateEstimator:
    """Events-per-time-unit over a sliding window.

    ``mark(t)`` records an event at time ``t``; ``rate(now)`` returns the
    number of events in ``(now - window, now]`` divided by the window
    length.  Until the first event has aged past the window the effective
    window is the elapsed observation time (avoids under-reporting during
    warm-up, which would otherwise make managers overreact at start-up).
    """

    def __init__(self, window: float = 10.0, start_time: float = 0.0) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = float(window)
        self.start_time = float(start_time)
        self._events: Deque[float] = deque()
        self.total = 0
        self._last_mark: Optional[float] = None

    def mark(self, t: float, count: int = 1) -> None:
        """Record ``count`` events at time ``t`` (must be non-decreasing)."""
        if self._last_mark is not None and t < self._last_mark - 1e-12:
            raise ValueError(f"mark times must be non-decreasing ({t} < {self._last_mark})")
        self._last_mark = t
        for _ in range(count):
            self._events.append(t)
        self.total += count

    def _expire(self, now: float) -> None:
        cutoff = now - self.window
        while self._events and self._events[0] <= cutoff:
            self._events.popleft()

    def count_in_window(self, now: float) -> int:
        """Number of events recorded within the window ending at ``now``."""
        self._expire(now)
        return len(self._events)

    def rate(self, now: float) -> float:
        """Estimated events/second at time ``now``."""
        self._expire(now)
        elapsed = now - self.start_time
        if elapsed <= 0:
            return 0.0
        effective = min(self.window, elapsed)
        if effective <= 0:
            return 0.0
        return len(self._events) / effective

    def reset(self, now: float) -> None:
        """Forget history; subsequent rates measure from ``now``."""
        self._events.clear()
        self.start_time = now
        self._last_mark = None


class EwmaRateEstimator:
    """Rate from an exponentially weighted moving average of gaps.

    ``alpha`` is the smoothing factor applied to each new inter-event
    gap; rate = 1 / smoothed-gap.  Robust when events are sparse.
    """

    def __init__(self, alpha: float = 0.25) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._last_time: Optional[float] = None
        self._mean_gap: Optional[float] = None
        self.total = 0

    def mark(self, t: float) -> None:
        """Record one event at time ``t``."""
        if self._last_time is not None:
            gap = t - self._last_time
            if gap < 0:
                raise ValueError("mark times must be non-decreasing")
            if self._mean_gap is None:
                self._mean_gap = gap
            else:
                self._mean_gap = (1 - self.alpha) * self._mean_gap + self.alpha * gap
        self._last_time = t
        self.total += 1

    def rate(self, now: float) -> float:
        """Estimated events/second; decays if no event seen recently."""
        if self._mean_gap is None or self._mean_gap <= 0:
            return 0.0
        # If we've been silent longer than the mean gap, widen the estimate.
        silent = now - (self._last_time or now)
        gap = max(self._mean_gap, silent)
        return 1.0 / gap if gap > 0 else 0.0


class UtilizationMeter:
    """Fraction of time spent busy, over the full run and a window.

    Workers call ``set_busy``/``set_idle`` as they start/finish tasks.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.start_time = start_time
        self._busy_since: Optional[float] = None
        self._busy_total = 0.0
        self._last_change = start_time

    def set_busy(self, now: float) -> None:
        if self._busy_since is None:
            self._busy_since = now

    def set_idle(self, now: float) -> None:
        if self._busy_since is not None:
            self._busy_total += now - self._busy_since
            self._busy_since = None

    def utilization(self, now: float) -> float:
        """Busy fraction in [0, 1] since ``start_time``."""
        elapsed = now - self.start_time
        if elapsed <= 0:
            return 0.0
        busy = self._busy_total
        if self._busy_since is not None:
            busy += now - self._busy_since
        return min(1.0, busy / elapsed)


class TimeWeightedMean:
    """Time-weighted mean of a piecewise-constant signal.

    Used for average parallelism degree and average queue length series
    in the benchmark reports.
    """

    def __init__(self, start_time: float = 0.0, initial: float = 0.0) -> None:
        self._last_time = start_time
        self._value = initial
        self._area = 0.0
        self._t0 = start_time

    def update(self, now: float, value: float) -> None:
        """Record that the signal changed to ``value`` at time ``now``."""
        if now < self._last_time:
            raise ValueError("updates must be in time order")
        self._area += self._value * (now - self._last_time)
        self._last_time = now
        self._value = value

    def mean(self, now: float) -> float:
        """Time-weighted mean over [start, now]."""
        elapsed = now - self._t0
        if elapsed <= 0:
            return self._value
        area = self._area + self._value * (now - self._last_time)
        return area / elapsed

    @property
    def current(self) -> float:
        return self._value


def queue_length_stats(lengths: Sequence[int]) -> tuple[float, float, int, int]:
    """(mean, population variance, min, max) of queue lengths."""
    if not lengths:
        return 0.0, 0.0, 0, 0
    n = len(lengths)
    mean = sum(lengths) / n
    var = sum((x - mean) ** 2 for x in lengths) / n
    return mean, var, min(lengths), max(lengths)


def queue_length_variance(lengths: Iterable[int]) -> float:
    """Population variance of per-worker queue lengths.

    This is the quantity behind Figure 5's ``QuequeVarianceBean``: the
    ``CheckLoadBalance`` rule fires when it exceeds
    ``FARM_MAX_UNBALANCE``.
    """
    xs = list(lengths)
    return queue_length_stats(xs)[1]


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation (0 for empty/singleton input)."""
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))
