"""Simulated task-farm: the functional-replication pattern's mechanisms.

This is the *managed element* underneath a farm behavioural skeleton: an
emitter ``S`` dispatching a stream of tasks to ``n`` workers ``W`` whose
results are gathered by a collector ``C`` (Figure 2, left).  Everything
an autonomic manager can observe or do to a farm lives here:

**Monitoring** (sampled by the ABC controller each control tick):
arrival rate, departure rate, number of workers, per-worker queue
lengths and their variance, utilisation.  During a reconfiguration the
farm is in *blackout* and reports no sensor data — reproducing the gap
in Figure 4's second graph ("No sensor data is available for AM_F
during the reconfiguration").

**Actuators** (invoked by manager rules through the ABC):
``add_worker`` (with a setup delay — new workers "start processing
incoming tasks" only after instantiation), ``remove_worker``,
``balance_load`` (redistribute queued tasks — the ``rebalance`` events),
``secure_worker`` (switch a worker's bindings to the secure protocol).

Transfers emitter→worker and worker→collector go through the
:class:`~repro.sim.network.Network` when one is attached, so the
security concern's leak accounting sees every farm message.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional

from .engine import Interrupt, Process, Simulator
from .metrics import UtilizationMeter, WindowRateEstimator, queue_length_stats
from .network import Message, Network
from .queues import Store, rebalance as rebalance_stores, transfer
from .resources import Node
from .workload import Task

__all__ = ["SimFarm", "FarmWorker", "FarmSnapshot", "DispatchPolicy"]


@dataclass(frozen=True)
class FarmSnapshot:
    """One monitoring sample of a farm (the beans' raw data)."""

    time: float
    arrival_rate: float
    departure_rate: float
    num_workers: int
    queue_lengths: tuple
    queue_variance: float
    utilization: float
    completed: int
    pending: int
    #: mean completion latency over the monitoring window (0 if none)
    mean_latency: float = 0.0

    @property
    def mean_queue_length(self) -> float:
        if not self.queue_lengths:
            return 0.0
        return sum(self.queue_lengths) / len(self.queue_lengths)


class DispatchPolicy:
    """Emitter scheduling policies (the paper's S component policy)."""

    ROUND_ROBIN = "round-robin"
    SHORTEST_QUEUE = "shortest-queue"

    ALL = (ROUND_ROBIN, SHORTEST_QUEUE)


class FarmWorker:
    """One worker replica: a process pulling from its private queue."""

    def __init__(
        self,
        sim: Simulator,
        farm: "SimFarm",
        node: Node,
        worker_id: int,
        *,
        secured: bool = False,
    ) -> None:
        self.sim = sim
        self.farm = farm
        self.node = node
        self.worker_id = worker_id
        self.secured = secured
        self.queue = Store(sim, name=f"{farm.name}.w{worker_id}.q")
        self.util = UtilizationMeter(start_time=sim.now)
        self.completed = 0
        # `active` = visible to the emitter's scheduler (False during setup);
        # `_stopped` = the worker process must terminate.  They differ while
        # a freshly added worker is still deploying.
        self.active = True
        self._stopped = False
        self.current_task: Optional[Task] = None
        self._proc: Process = sim.process(self._run(), name=f"{farm.name}.w{worker_id}")

    @property
    def name(self) -> str:
        return f"{self.farm.name}.w{self.worker_id}"

    def stop(self) -> None:
        """Stop after the current task; queued tasks must be drained first."""
        self.active = False
        self._stopped = True
        if self.current_task is None and self._proc.alive:
            self._proc.interrupt("stop")

    def _run(self) -> Iterator[Any]:
        while not self._stopped:
            try:
                task = yield self.queue.get()
            except Interrupt:
                break
            self.current_task = task
            task.started_at = self.sim.now
            self.util.set_busy(self.sim.now)
            work = self.farm.work_override if self.farm.work_override is not None else task.work
            service = self.node.service_time(work, self.sim.now)
            tel = self.farm.telemetry
            if tel is not None and tel.enabled:
                tel.metrics.histogram(
                    "repro_worker_service_time",
                    "per-task service time in simulated seconds",
                    buckets=self.farm.SERVICE_TIME_BUCKETS,
                ).labels(farm=self.farm.name, worker=self.name).observe(service)
            yield self.sim.timeout(service)
            task.completed_at = self.sim.now
            self.util.set_idle(self.sim.now)
            self.completed += 1
            self.current_task = None
            self.farm._on_task_done(self, task)


class SimFarm:
    """Functional-replication farm over the DES substrate."""

    #: histogram bounds for per-task service times (simulated seconds)
    SERVICE_TIME_BUCKETS = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
    #: histogram bounds for reconfiguration blackout durations
    BLACKOUT_BUCKETS = (0.5, 1.0, 2.5, 5.0, 10.0, 20.0, 40.0)

    def __init__(
        self,
        sim: Simulator,
        *,
        name: str = "farm",
        emitter_node: Node,
        collector_node: Optional[Node] = None,
        network: Optional[Network] = None,
        dispatch: str = DispatchPolicy.ROUND_ROBIN,
        rate_window: float = 10.0,
        worker_setup_time: float = 5.0,
        task_size_kb: float = 64.0,
        result_size_kb: float = 16.0,
        on_result: Optional[Callable[[Task], None]] = None,
        input_store: Optional[Store] = None,
        output_store: Optional[Store] = None,
        work_override: Optional[float] = None,
        telemetry: Any = None,
    ) -> None:
        if dispatch not in DispatchPolicy.ALL:
            raise ValueError(f"unknown dispatch policy {dispatch!r}")
        if work_override is not None and work_override <= 0:
            raise ValueError("work_override must be positive")
        self.sim = sim
        self.name = name
        self.emitter_node = emitter_node
        self.collector_node = collector_node or emitter_node
        self.network = network
        self.dispatch = dispatch
        self.worker_setup_time = worker_setup_time
        self.task_size_kb = task_size_kb
        self.result_size_kb = result_size_kb
        self.on_result = on_result
        #: optional repro.obs.Telemetry; purely passive (never schedules)
        self.telemetry = telemetry

        # Adopting existing stores lets a farm take over a SeqStage's
        # plumbing in place — the §4.2 stage-to-farm transformation.
        self.input = input_store if input_store is not None else Store(sim, name=f"{name}.input")
        self.output = output_store if output_store is not None else Store(sim, name=f"{name}.output")
        # When set, every task costs this much work here regardless of its
        # own `work` (a farmed *stage* applies the stage's service work).
        self.work_override = work_override
        self.workers: List[FarmWorker] = []
        self._next_worker_id = 0
        self._rr_index = 0

        self.arrival_est = WindowRateEstimator(rate_window, start_time=sim.now)
        self.departure_est = WindowRateEstimator(rate_window, start_time=sim.now)
        self.rate_window = rate_window
        # (completion_time, latency) of recent results, for the latency SLA
        self._latencies: deque = deque()
        self.completed = 0
        self.end_of_stream = False

        # Reconfiguration blackout: monitoring returns None until this time.
        self._blackout_until = -1.0
        self.reconfigurations = 0
        self.failures = 0

        self._emitter_proc = sim.process(self._emit_loop(), name=f"{name}.emitter")

    # ------------------------------------------------------------------
    # emitter
    # ------------------------------------------------------------------
    def _emit_loop(self) -> Iterator[Any]:
        while True:
            # Wait until at least one worker is live before accepting a
            # task: taking-and-requeueing would double-count arrivals.
            if not any(w.active for w in self.workers):
                yield self.sim.timeout(0.05)
                continue
            task = yield self.input.get()
            self.arrival_est.mark(self.sim.now)
            worker = self._pick_worker()
            if worker is None:  # pragma: no cover - all workers stopped mid-get
                self.input.items.appendleft(task)
                self.input.total_got -= 1
                yield self.sim.timeout(0.05)
                continue
            self._dispatch_to(worker, task)

    def _pick_worker(self) -> Optional[FarmWorker]:
        live = [w for w in self.workers if w.active]
        if not live:
            return None
        if self.dispatch == DispatchPolicy.SHORTEST_QUEUE:
            return min(live, key=lambda w: (len(w.queue), w.worker_id))
        # round-robin over live workers
        self._rr_index = (self._rr_index + 1) % len(live)
        return live[self._rr_index]

    def _dispatch_to(self, worker: FarmWorker, task: Task) -> None:
        delay = 0.0
        if self.network is not None:
            rec = self.network.record_transfer(
                self.sim.now,
                self.emitter_node,
                worker.node,
                Message(self.task_size_kb, "task", task.task_id),
                secured=worker.secured,
            )
            delay = rec.duration
        if delay > 0:
            self.sim.schedule(delay, worker.queue.put_nowait, task)
        else:
            worker.queue.put_nowait(task)

    # ------------------------------------------------------------------
    # completion path
    # ------------------------------------------------------------------
    def _on_task_done(self, worker: FarmWorker, task: Task) -> None:
        delay = 0.0
        if self.network is not None:
            rec = self.network.record_transfer(
                self.sim.now,
                worker.node,
                self.collector_node,
                Message(self.result_size_kb, "result", task.task_id),
                secured=worker.secured,
            )
            delay = rec.duration

        def deliver() -> None:
            self.departure_est.mark(self.sim.now)
            self.completed += 1
            if task.latency is not None:
                self._latencies.append((self.sim.now, task.latency))
            self.output.put_nowait(task)
            if self.on_result is not None:
                self.on_result(task)

        if delay > 0:
            self.sim.schedule(delay, deliver)
        else:
            deliver()

    # ------------------------------------------------------------------
    # monitoring (ABC monitor services)
    # ------------------------------------------------------------------
    @property
    def in_blackout(self) -> bool:
        """True while a reconfiguration suppresses sensor data."""
        return self.sim.now < self._blackout_until

    def snapshot(self) -> Optional[FarmSnapshot]:
        """Monitoring sample, or None during a reconfiguration blackout."""
        if self.in_blackout:
            return None
        return self.force_snapshot()

    def mean_latency(self) -> float:
        """Mean completion latency over the monitoring window."""
        cutoff = self.sim.now - self.rate_window
        while self._latencies and self._latencies[0][0] <= cutoff:
            self._latencies.popleft()
        if not self._latencies:
            return 0.0
        return sum(lat for _, lat in self._latencies) / len(self._latencies)

    def force_snapshot(self) -> FarmSnapshot:
        """Monitoring sample ignoring blackout (for post-run analysis)."""
        lengths = tuple(len(w.queue) for w in self.workers if w.active)
        _, var, _, _ = queue_length_stats(lengths)
        live = [w for w in self.workers if w.active]
        util = (
            sum(w.util.utilization(self.sim.now) for w in live) / len(live)
            if live
            else 0.0
        )
        return FarmSnapshot(
            time=self.sim.now,
            arrival_rate=self.arrival_est.rate(self.sim.now),
            departure_rate=self.departure_est.rate(self.sim.now),
            num_workers=len(live),
            queue_lengths=lengths,
            queue_variance=var,
            utilization=util,
            completed=self.completed,
            pending=self.pending,
            mean_latency=self.mean_latency(),
        )

    @property
    def num_workers(self) -> int:
        return sum(1 for w in self.workers if w.active)

    @property
    def pending(self) -> int:
        """Tasks in the farm but not completed (input + queues + in service)."""
        in_queues = sum(len(w.queue) for w in self.workers if w.active)
        in_service = sum(1 for w in self.workers if w.current_task is not None)
        return len(self.input) + in_queues + in_service

    # ------------------------------------------------------------------
    # actuators (ABC actuator services)
    # ------------------------------------------------------------------
    def add_worker(self, node: Node, *, secured: bool = False) -> FarmWorker:
        """Instantiate a new worker on ``node``.

        The worker joins the scheduler only after ``worker_setup_time``
        (deployment + lifecycle start in GCM terms); the farm is in
        monitoring blackout until then.
        """
        wid = self._next_worker_id
        self._next_worker_id += 1
        worker = FarmWorker(self.sim, self, node, wid, secured=secured)
        if self.worker_setup_time > 0:
            # Hide it from the scheduler until setup completes.  The
            # blackout outlasts activation by an epsilon so a control tick
            # landing exactly on the activation instant cannot observe a
            # half-initialised farm.
            worker.active = False
            self._begin_blackout(self.worker_setup_time + 1e-6)

            def activate() -> None:
                if not worker._stopped:
                    worker.active = True

            self.sim.schedule(self.worker_setup_time, activate)
        self.workers.append(worker)
        self.reconfigurations += 1
        return worker

    def remove_worker(self) -> Optional[FarmWorker]:
        """Retire the most recently added active worker.

        Its queued tasks migrate to the remaining workers (never lost —
        the conservation property tests rely on this).  Returns the
        retired worker, or None if only one worker remains (a farm never
        self-destructs below parallelism degree 1).
        """
        live = [w for w in self.workers if w.active]
        if len(live) <= 1:
            return None
        victim = live[-1]
        survivors = [w for w in live if w is not victim]
        queued = len(victim.queue)
        for i in range(queued):
            transfer(victim.queue, survivors[i % len(survivors)].queue, 1)
        victim.stop()
        # The departure window now describes a capacity that no longer
        # exists; left in place it keeps CheckRateHigh fireable for up to
        # a full window after the removal, so the manager sheds a second
        # worker on stale data, undershoots the contract and limit-cycles
        # around the viable degree.  Measure the shrunk farm from scratch.
        # (The add path deliberately keeps its window: re-firing on a
        # still-low reading is Figure 4's published batched growth.)
        self.departure_est.reset(self.sim.now)
        self._begin_blackout(self.worker_setup_time / 2)
        self.reconfigurations += 1
        return victim

    def balance_load(self) -> int:
        """Equalise queued tasks across workers; returns items moved."""
        return rebalance_stores(w.queue for w in self.workers if w.active)

    def migrate_worker(
        self, worker: FarmWorker, node: Node, *, secured: Optional[bool] = None
    ) -> FarmWorker:
        """Move a worker to a different node (§3: "migration of poorly
        performing activities to faster execution resources").

        A replacement worker is deployed on ``node`` (normal setup delay
        and blackout); the victim stops accepting new work immediately,
        its queue transfers to the replacement at activation, and it
        retires after finishing its current task.  No task is lost or
        reordered within the migrated queue.
        """
        if worker not in self.workers or worker._stopped:
            raise ValueError(f"cannot migrate inactive worker {worker.worker_id}")
        replacement = self.add_worker(
            node, secured=worker.secured if secured is None else secured
        )
        worker.active = False  # no new dispatches to the victim

        def handover() -> None:
            transfer(worker.queue, replacement.queue, len(worker.queue))
            worker.stop()

        if self.worker_setup_time > 0:
            self.sim.schedule(self.worker_setup_time, handover)
        else:
            handover()
        return replacement

    def fail_worker(self, worker: FarmWorker) -> int:
        """Crash a worker (fault injection for the fault-tolerance concern).

        Unlike :meth:`remove_worker` this is abrupt: the in-flight task is
        *re-submitted* to the farm input (at-least-once semantics — the
        conservation invariant survives crashes) and queued tasks migrate
        to the survivors.  Returns the number of tasks recovered.  The
        node is not released: it crashed, it is not reusable.
        """
        if worker not in self.workers or worker._stopped:
            return 0
        recovered = 0
        inflight = worker.current_task
        worker.active = False
        worker._stopped = True
        if worker._proc.alive:
            worker._proc.interrupt("crash")
        if inflight is not None:
            # the task was lost mid-service; replay it from the start
            inflight.started_at = None
            self.input.put_nowait(inflight)
            worker.current_task = None
            recovered += 1
        survivors = [w for w in self.workers if w.active]
        queued = len(worker.queue)
        if survivors:
            for i in range(queued):
                transfer(worker.queue, survivors[i % len(survivors)].queue, 1)
        else:
            for _ in range(queued):
                ok, task = worker.queue.try_get()
                if ok:
                    self.input.put_nowait(task)
        recovered += queued
        self.failures += 1
        return recovered

    def secure_worker(self, worker: FarmWorker) -> None:
        """Switch a worker's bindings to the secure protocol."""
        worker.secured = True

    def secure_all(self) -> None:
        for w in self.workers:
            w.secured = True

    def _begin_blackout(self, duration: float) -> None:
        self._blackout_until = max(self._blackout_until, self.sim.now + duration)
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.metrics.histogram(
                "repro_reconfiguration_blackout_seconds",
                "sensor-data blackout caused by one reconfiguration",
                buckets=self.BLACKOUT_BUCKETS,
            ).labels(farm=self.name).observe(duration)
            tel.event("farm.blackout", farm=self.name, duration=duration)

    # ------------------------------------------------------------------
    # stream plumbing
    # ------------------------------------------------------------------
    def submit(self, task: Task) -> None:
        """Inject a task into the farm's input stream."""
        self.input.put_nowait(task)

    def notify_end_of_stream(self) -> None:
        """Mark that no further tasks will arrive."""
        self.end_of_stream = True

    @property
    def drained(self) -> bool:
        """True when the stream ended and all accepted tasks completed."""
        return self.end_of_stream and self.pending == 0
