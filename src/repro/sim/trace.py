"""Compatibility shim: trace recording now lives in :mod:`repro.obs`.

Historically this module owned :class:`EventMark`, :class:`TraceRecorder`
and the ASCII figure renderers.  They moved to the substrate-agnostic
observability package (``repro.obs.events`` / ``repro.obs.export``) so
the live thread runtime can share them with the simulation; this shim
re-exports them unchanged, keeping every existing import — and the
regenerated Figure 3/4 artefacts — working as before.
"""

from __future__ import annotations

from ..obs.events import EventMark, TraceRecorder
from ..obs.export import ascii_series, ascii_timeline

__all__ = ["EventMark", "TraceRecorder", "ascii_timeline", "ascii_series"]
