"""Trace recording: the data behind every reproduced figure.

Figure 3 and Figure 4 in the paper are *time-series plots of manager
activity*: event marks (``contrLow``, ``raiseViol``, ``incRate``,
``addWorker``, ``rebalance``, ``endStream``, …) on one axis and numeric
series (throughput, input rate, cores in use) on others.  The
:class:`TraceRecorder` collects both kinds of data during a run; the
benchmark harnesses then render them as aligned text timelines and CSV.

The recorder is intentionally passive — pure appends, no side effects —
so attaching it never perturbs scenario dynamics.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = ["EventMark", "TraceRecorder", "ascii_timeline", "ascii_series"]


@dataclass(frozen=True)
class EventMark:
    """One manager event: who emitted what, when, with what detail."""

    time: float
    actor: str
    name: str
    detail: Mapping[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = f" {dict(self.detail)}" if self.detail else ""
        return f"[{self.time:9.2f}] {self.actor:>8}: {self.name}{extra}"


class TraceRecorder:
    """Collects event marks and sampled numeric series for one run."""

    def __init__(self) -> None:
        self.events: List[EventMark] = []
        self.series: Dict[str, List[Tuple[float, float]]] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def mark(self, time: float, actor: str, name: str, **detail: Any) -> EventMark:
        """Record a manager/controller event."""
        ev = EventMark(time, actor, name, dict(detail))
        self.events.append(ev)
        return ev

    def sample(self, series: str, time: float, value: float) -> None:
        """Record one (time, value) point of a numeric series."""
        self.series.setdefault(series, []).append((time, float(value)))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def events_of(self, actor: Optional[str] = None, name: Optional[str] = None) -> List[EventMark]:
        """Events filtered by actor and/or event name, in time order."""
        out = self.events
        if actor is not None:
            out = [e for e in out if e.actor == actor]
        if name is not None:
            out = [e for e in out if e.name == name]
        return list(out)

    def event_names(self, actor: Optional[str] = None) -> List[str]:
        """Event names in order of occurrence (optionally one actor)."""
        return [e.name for e in self.events_of(actor)]

    def first(self, name: str, actor: Optional[str] = None) -> Optional[EventMark]:
        """First occurrence of event ``name`` (None if absent)."""
        for e in self.events:
            if e.name == name and (actor is None or e.actor == actor):
                return e
        return None

    def count(self, name: str, actor: Optional[str] = None) -> int:
        """Number of occurrences of event ``name``."""
        return len(self.events_of(actor, name))

    def series_values(self, series: str) -> List[Tuple[float, float]]:
        """The (time, value) points of a series ([] if unknown)."""
        return list(self.series.get(series, []))

    def value_at(self, series: str, time: float) -> Optional[float]:
        """Last sampled value of ``series`` at or before ``time``."""
        best: Optional[float] = None
        for t, v in self.series.get(series, []):
            if t <= time:
                best = v
            else:
                break
        return best

    def final_value(self, series: str) -> Optional[float]:
        """Most recent sample of ``series`` (None if empty)."""
        pts = self.series.get(series)
        return pts[-1][1] if pts else None

    def assert_order(self, names: Sequence[str], actor: Optional[str] = None) -> bool:
        """True if ``names`` occur in this relative order (subsequence)."""
        stream = iter(self.event_names(actor))
        return all(any(n == got for got in stream) for n in names)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_csv(self, series: str) -> str:
        """CSV text (time,value) for one series."""
        buf = io.StringIO()
        buf.write("time,value\n")
        for t, v in self.series.get(series, []):
            buf.write(f"{t:.6f},{v:.6f}\n")
        return buf.getvalue()

    def events_csv(self) -> str:
        """CSV text (time,actor,event,detail) of every event mark."""
        buf = io.StringIO()
        buf.write("time,actor,event,detail\n")
        for e in self.events:
            detail = ";".join(f"{k}={v}" for k, v in e.detail.items())
            buf.write(f"{e.time:.6f},{e.actor},{e.name},{detail}\n")
        return buf.getvalue()


def ascii_timeline(
    events: Iterable[EventMark],
    *,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
    width: int = 72,
) -> str:
    """Render event marks as per-event-name timeline rows.

    One row per distinct event name; a ``*`` wherever the event occurred.
    This is the textual analogue of the event scatter rows in Figure 4's
    first two graphs.
    """
    evs = sorted(events, key=lambda e: (e.time, e.name))
    if not evs:
        return "(no events)\n"
    lo = t0 if t0 is not None else evs[0].time
    hi = t1 if t1 is not None else evs[-1].time
    span = max(hi - lo, 1e-9)
    names: List[str] = []
    for e in evs:
        if e.name not in names:
            names.append(e.name)
    label_w = max(len(n) for n in names) + 1
    lines = []
    for name in names:
        row = [" "] * width
        for e in evs:
            if e.name != name:
                continue
            pos = int((e.time - lo) / span * (width - 1))
            row[min(max(pos, 0), width - 1)] = "*"
        lines.append(f"{name:>{label_w}} |{''.join(row)}|")
    scale = f"{'':>{label_w}}  {lo:<10.1f}{'':^{max(width - 22, 0)}}{hi:>10.1f}"
    return "\n".join(lines + [scale]) + "\n"


def ascii_series(
    points: Sequence[Tuple[float, float]],
    *,
    height: int = 10,
    width: int = 72,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    hlines: Sequence[float] = (),
    title: str = "",
) -> str:
    """Render one numeric series as a coarse ASCII chart.

    ``hlines`` draws dashed reference lines (the contract "stripe" of
    Figure 4's third graph).
    """
    if not points:
        return f"{title}: (no data)\n"
    ts = [p[0] for p in points]
    vs = [p[1] for p in points]
    vlo = lo if lo is not None else min(min(vs), *(list(hlines) or [min(vs)]))
    vhi = hi if hi is not None else max(max(vs), *(list(hlines) or [max(vs)]))
    if vhi <= vlo:
        vhi = vlo + 1.0
    t_lo, t_hi = ts[0], ts[-1]
    t_span = max(t_hi - t_lo, 1e-9)
    grid = [[" "] * width for _ in range(height)]

    def yrow(v: float) -> int:
        frac = (v - vlo) / (vhi - vlo)
        return min(height - 1, max(0, int(round((1 - frac) * (height - 1)))))

    for h in hlines:
        r = yrow(h)
        for c in range(width):
            if grid[r][c] == " ":
                grid[r][c] = "-"
    for t, v in points:
        c = min(width - 1, max(0, int((t - t_lo) / t_span * (width - 1))))
        grid[yrow(v)][c] = "o"
    out = [title] if title else []
    for i, row in enumerate(grid):
        v = vhi - (vhi - vlo) * i / (height - 1)
        out.append(f"{v:8.2f} |{''.join(row)}|")
    out.append(f"{'':8} {t_lo:<10.1f}{'':^{max(width - 20, 0)}}{t_hi:>10.1f}")
    return "\n".join(out) + "\n"
