"""Blocking FIFO stores for inter-process communication in the DES.

Workers, emitters, collectors and pipeline stages exchange tasks through
:class:`Store` objects.  A store behaves like a bounded (or unbounded)
FIFO channel:

* ``yield store.get()`` suspends the calling process until an item is
  available;
* ``yield store.put(item)`` suspends until there is capacity (no-op wait
  for unbounded stores).

Both requests complete in strict FIFO order, which keeps farm scheduling
deterministic.  Deliveries are routed through the event queue and are
*cancellation-safe*: if a process is interrupted after an item was
earmarked for it but before delivery, the item returns to the front of
the queue — the task-conservation invariant the property tests check.

The module also provides :func:`drain` / :func:`transfer` /
:func:`rebalance` helpers used by the load-balancing actuator: the
autonomic manager's ``BALANCE_LOAD`` action literally moves queued tasks
between worker stores (paper §4.2, the ``rebalance`` events in Fig. 4).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterable, List, Optional

from .engine import Process, SimulationError, Simulator

__all__ = ["Store", "StoreGet", "StorePut", "drain", "transfer", "rebalance"]


class StoreGet:
    """Pending get request; yielded by processes, completed by the store."""

    __slots__ = ("store", "proc", "cancelled")

    def __init__(self, store: "Store") -> None:
        self.store = store
        self.proc: Optional[Process] = None
        self.cancelled = False

    def __sim_wait__(self, proc: Process) -> None:
        self.proc = proc
        self.store._enqueue_get(self)

    def __sim_cancel__(self, proc: Process) -> None:
        self.cancelled = True
        self.store._discard_get(self)


class StorePut:
    """Pending put request; yielded by processes, completed by the store."""

    __slots__ = ("store", "item", "proc", "cancelled")

    def __init__(self, store: "Store", item: Any) -> None:
        self.store = store
        self.item = item
        self.proc: Optional[Process] = None
        self.cancelled = False

    def __sim_wait__(self, proc: Process) -> None:
        self.proc = proc
        self.store._enqueue_put(self)

    def __sim_cancel__(self, proc: Process) -> None:
        self.cancelled = True
        self.store._discard_put(self)


class Store:
    """FIFO channel with optional capacity.

    Statistics (`total_put`, `total_got`) support the conservation
    invariant checked by property tests: ``total_put == total_got +
    len(items)`` whenever the store is quiescent.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: Optional[int] = None,
        name: str = "store",
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"store capacity must be positive, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()
        self._putters: Deque[StorePut] = deque()
        self.total_put = 0
        self.total_got = 0
        # Observer for *new* items (blocking or non-blocking puts).  Bulk
        # moves via drain/transfer/rebalance do not fire it: they shuffle
        # existing work, they don't create arrivals.
        self.on_put: Optional[Any] = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def get(self) -> StoreGet:
        """Waitable get request (FIFO among getters)."""
        return StoreGet(self)

    def put(self, item: Any) -> StorePut:
        """Waitable put request (FIFO among putters)."""
        return StorePut(self, item)

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if the store is full."""
        if self.is_full:
            return False
        self.items.append(item)
        self.total_put += 1
        if self.on_put is not None:
            self.on_put(item)
        self._service()
        return True

    def put_nowait(self, item: Any) -> None:
        """Non-blocking put that raises if the store is full."""
        if not self.try_put(item):
            raise SimulationError(f"store {self.name!r} full (capacity={self.capacity})")

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns (ok, item)."""
        if not self.items:
            return False, None
        item = self.items.popleft()
        self.total_got += 1
        self._service()
        return True, item

    def peek_items(self) -> List[Any]:
        """Snapshot of queued items (used by rebalancing and monitors)."""
        return list(self.items)

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------
    def _enqueue_get(self, req: StoreGet) -> None:
        self._getters.append(req)
        self._service()

    def _enqueue_put(self, req: StorePut) -> None:
        self._putters.append(req)
        self._service()

    def _discard_get(self, req: StoreGet) -> None:
        try:
            self._getters.remove(req)
        except ValueError:
            pass

    def _discard_put(self, req: StorePut) -> None:
        try:
            self._putters.remove(req)
        except ValueError:
            pass

    def _service(self) -> None:
        """Match waiting putters to capacity and waiting getters to items."""
        progressed = True
        while progressed:
            progressed = False
            while self._putters and not self.is_full:
                req = self._putters.popleft()
                if req.cancelled:
                    continue
                self.items.append(req.item)
                self.total_put += 1
                if self.on_put is not None:
                    self.on_put(req.item)
                assert req.proc is not None
                self.sim.schedule(0.0, self._complete_put, req)
                progressed = True
            while self._getters and self.items:
                req = self._getters.popleft()
                if req.cancelled:
                    continue
                item = self.items.popleft()
                self.total_got += 1
                assert req.proc is not None
                self.sim.schedule(0.0, self._complete_get, req, item)
                progressed = True

    def _complete_get(self, req: StoreGet, item: Any) -> None:
        if req.cancelled or req.proc is None or not req.proc.alive:
            # The getter went away after the item was earmarked: return the
            # item to the front so no task is ever lost.
            self.items.appendleft(item)
            self.total_got -= 1
            self._service()
            return
        req.proc._deliver(item)

    def _complete_put(self, req: StorePut) -> None:
        if req.cancelled or req.proc is None or not req.proc.alive:
            # Item is already in the store (put succeeded); only the wake-up
            # is skipped.
            return
        req.proc._deliver(None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"<Store {self.name!r} {len(self.items)}/{cap}>"


def drain(store: Store, count: Optional[int] = None) -> List[Any]:
    """Remove up to ``count`` items (all if None) from ``store``.

    Bypasses waiting getters deliberately: rebalancing moves *queued*
    work, never work already promised to a worker.
    """
    out: List[Any] = []
    n = len(store.items) if count is None else min(count, len(store.items))
    for _ in range(n):
        item = store.items.popleft()
        store.total_got += 1
        out.append(item)
    store._service()
    return out


def transfer(src: Store, dst: Store, count: int) -> int:
    """Move up to ``count`` queued items from ``src`` to ``dst``.

    Returns the number actually moved.  Items are re-queued in order so a
    rebalance never reorders the tasks of a single queue.
    """
    moved = drain(src, count)
    for item in moved:
        dst.items.append(item)
        dst.total_put += 1
    dst._service()
    return len(moved)


def rebalance(stores: Iterable[Store]) -> int:
    """Equalise queue lengths across ``stores``; returns items moved.

    Implements the ``BALANCE_LOAD`` actuator: repeatedly move one item
    from the longest to the shortest queue until the spread is ≤ 1.
    """
    pool = list(stores)
    if len(pool) < 2:
        return 0
    moved = 0
    while True:
        pool.sort(key=lambda s: len(s.items))
        shortest, longest = pool[0], pool[-1]
        if len(longest.items) - len(shortest.items) <= 1:
            return moved
        transfer(longest, shortest, 1)
        moved += 1
