"""Fluent builder for rules, mirroring the JBoss source syntax.

Figure 5's rules read::

    rule "CheckRateLow"
      when
        $departureBean : DepartureRateBean( value < FARM_LOW_PERF_LEVEL )
        $arrivalBean   : ArrivalRateBean( value >= FARM_LOW_PERF_LEVEL )
        $parDegree     : NumWorkerBean( value <= FARM_MAX_NUM_WORKERS )
      then
        $departureBean.setData(FARM_ADD_WORKERS);
        $departureBean.fireOperation(ManagerOperation.ADD_EXECUTOR);
    end

With this DSL the Python transliteration keeps the same shape::

    (rule("CheckRateLow")
        .when(DepartureRateBean, value_lt(LOW), bind="departure")
        .when(ArrivalRateBean, value_ge(LOW), bind="arrival")
        .when(NumWorkerBean, value_le(MAX_W), bind="par")
        .then(add_workers_action))

``value_lt`` & friends build predicates over a bean's ``value``
attribute, covering the comparison forms used throughout the paper.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Type

from .engine import Action, Condition, NotExists, Predicate, Rule, RuleEngineError

__all__ = [
    "rule",
    "RuleBuilder",
    "value_lt",
    "value_le",
    "value_gt",
    "value_ge",
    "value_eq",
    "value_between",
    "value_is",
    "always",
]


def value_lt(threshold: float) -> Predicate:
    """Predicate: ``fact.value < threshold``."""
    return lambda fact: fact.value < threshold


def value_le(threshold: float) -> Predicate:
    """Predicate: ``fact.value <= threshold``."""
    return lambda fact: fact.value <= threshold


def value_gt(threshold: float) -> Predicate:
    """Predicate: ``fact.value > threshold``."""
    return lambda fact: fact.value > threshold


def value_ge(threshold: float) -> Predicate:
    """Predicate: ``fact.value >= threshold``."""
    return lambda fact: fact.value >= threshold


def value_eq(expected: Any) -> Predicate:
    """Predicate: ``fact.value == expected``."""
    return lambda fact: fact.value == expected


def value_between(lo: float, hi: float) -> Predicate:
    """Predicate: ``lo <= fact.value <= hi``."""
    return lambda fact: lo <= fact.value <= hi


def value_is(pred: Callable[[Any], bool]) -> Predicate:
    """Predicate over ``fact.value`` rather than the fact itself."""
    return lambda fact: pred(fact.value)


def always(fact: Any) -> bool:
    """Predicate that matches any fact of the condition's type."""
    return True


class RuleBuilder:
    """Accumulates conditions then produces an immutable :class:`Rule`."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._conditions: List[Any] = []
        self._salience = 0
        self._doc = ""

    def when(
        self,
        fact_type: Type[Any],
        predicate: Optional[Predicate] = None,
        *,
        bind: Optional[str] = None,
    ) -> "RuleBuilder":
        """Add a positive pattern (conjunctive with earlier ones)."""
        self._conditions.append(Condition(fact_type, predicate, bind))
        return self

    def when_not(
        self, fact_type: Type[Any], predicate: Optional[Predicate] = None
    ) -> "RuleBuilder":
        """Add a negative pattern: *no* such fact may exist."""
        self._conditions.append(NotExists(fact_type, predicate))
        return self

    def salience(self, value: int) -> "RuleBuilder":
        """Set the priority (higher fires first within one agenda)."""
        self._salience = value
        return self

    def doc(self, text: str) -> "RuleBuilder":
        """Attach human-readable documentation to the rule."""
        self._doc = text
        return self

    def then(self, action: Action) -> Rule:
        """Finish the rule with its action; returns the built Rule."""
        if not self._conditions:
            raise RuleEngineError(f"rule {self._name!r} has no conditions")
        return Rule(
            name=self._name,
            conditions=tuple(self._conditions),
            action=action,
            salience=self._salience,
            doc=self._doc,
        )


def rule(name: str) -> RuleBuilder:
    """Entry point of the DSL: ``rule("Name").when(...).then(action)``."""
    return RuleBuilder(name)
