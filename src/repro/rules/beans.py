"""Working-memory facts (beans) and manager operations.

The paper's autonomic managers keep monitored quantities in *beans*
inserted into the JBoss rule engine's working memory; Figure 5's rules
match on ``ArrivalRateBean``, ``DepartureRateBean``, ``NumWorkerBean``
and ``QuequeVarianceBean`` and react by calling ``setData`` /
``fireOperation`` on the matched bean.  We reproduce that interface
one-to-one: beans carry a ``value``, optional attached ``data`` and a
reference to an *operation sink* (the ABC controller / manager) that
receives fired operations.

:class:`ManagerOperation` enumerates the actuator verbs appearing in the
paper (``RAISE_VIOLATION``, ``ADD_EXECUTOR``, ``REMOVE_EXECUTOR``,
``BALANCE_LOAD``, ``MIGRATE`` — §3 lists migration among the performance
policies) plus the extra verbs needed by the pipeline and security
managers in later sections (``SET_RATE``, ``SECURE_CHANNEL``).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, List, Optional, Tuple

__all__ = [
    "ManagerOperation",
    "Bean",
    "ArrivalRateBean",
    "DepartureRateBean",
    "NumWorkerBean",
    "QueueVarianceBean",
    "UtilizationBean",
    "LatencyBean",
    "ContractBean",
    "ViolationBean",
    "EndOfStreamBean",
    "RecordingSink",
]


class ManagerOperation(enum.Enum):
    """Actuator verbs a rule action may fire (paper's ``ManagerOperation``)."""

    RAISE_VIOLATION = "raise_violation"
    ADD_EXECUTOR = "add_executor"
    REMOVE_EXECUTOR = "remove_executor"
    BALANCE_LOAD = "balance_load"
    SET_RATE = "set_rate"
    SECURE_CHANNEL = "secure_channel"
    MIGRATE = "migrate"
    NOOP = "noop"


OperationSink = Callable[[ManagerOperation, Any], None]


class Bean:
    """Base working-memory fact: a named numeric/flag observation.

    ``fire_operation`` forwards to the owning manager's operation sink,
    carrying whatever ``set_data`` attached first — exactly the calling
    convention of the rule actions in Figure 5::

        $arrivalBean.setData(ManagersConstants.notEnoughTasks_VIOL);
        $arrivalBean.fireOperation(ManagerOperation.RAISE_VIOLATION);
    """

    def __init__(self, value: Any = None, sink: Optional[OperationSink] = None) -> None:
        self.value = value
        self.data: Any = None
        self._sink = sink

    def bind_sink(self, sink: OperationSink) -> "Bean":
        """Attach the operation sink (done by the manager at insert time)."""
        self._sink = sink
        return self

    def set_data(self, data: Any) -> None:
        """Attach payload for the next fired operation."""
        self.data = data

    def fire_operation(self, op: ManagerOperation) -> None:
        """Dispatch ``op`` (with attached data) to the operation sink."""
        if self._sink is None:
            raise RuntimeError(
                f"{type(self).__name__} has no operation sink bound; "
                "insert it through a manager (or call bind_sink) first"
            )
        self._sink(op, self.data)
        self.data = None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(value={self.value!r})"


class ArrivalRateBean(Bean):
    """Input task inter-arrival rate (tasks/second)."""


class DepartureRateBean(Bean):
    """Output/served task rate (tasks/second)."""


class NumWorkerBean(Bean):
    """Current parallelism degree of the managed farm."""


class QueueVarianceBean(Bean):
    """Variance of per-worker queue lengths (the paper's QuequeVarianceBean)."""


class UtilizationBean(Bean):
    """Mean worker utilisation in [0, 1]."""


class LatencyBean(Bean):
    """Windowed mean task-completion latency (seconds)."""


class ContractBean(Bean):
    """The currently assigned contract (value = Contract instance)."""


class ViolationBean(Bean):
    """A violation reported by a child manager (value = Violation)."""


class EndOfStreamBean(Bean):
    """Flag: the input stream has terminated (value = bool)."""


class RecordingSink:
    """Test helper: an operation sink that records what was fired."""

    def __init__(self) -> None:
        self.fired: List[Tuple[ManagerOperation, Any]] = []

    def __call__(self, op: ManagerOperation, data: Any) -> None:
        self.fired.append((op, data))

    def ops(self) -> List[ManagerOperation]:
        return [op for op, _ in self.fired]

    def clear(self) -> None:
        self.fired.clear()
