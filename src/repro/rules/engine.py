"""Forward-chaining precondition→action rule engine (JBoss Rules analog).

The paper implements each autonomic manager's policy as JBoss
precondition–action rules: "Preconditions are first order formulas over
the parameters monitored by the ABC controller.  Actions are calls to
one or more of the actuator services […].  The control loop itself
invokes the JBoss rule engine periodically.  At each invocation,
'fireable' rules are selected, prioritized and executed." (§4.1)

This module reproduces those semantics:

* :class:`WorkingMemory` — typed fact storage (insert/retract/replace).
* :class:`Rule` — a name, a list of :class:`Condition` patterns
  (conjunctive), a salience (priority), and an action taking an
  :class:`Activation` context with the bound facts.
* :class:`RuleEngine.evaluate` — one engine invocation: match all rules
  against working memory, order the agenda by (salience desc, rule
  declaration order), execute each activation's action.  This single
  pass per control tick is exactly the paper's periodic invocation
  model; :meth:`RuleEngine.fire_until_quiescent` additionally offers the
  classic chaining mode with refraction for applications that update
  facts from inside actions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Type

__all__ = [
    "Condition",
    "NotExists",
    "Rule",
    "Activation",
    "WorkingMemory",
    "RuleEngine",
    "RuleEngineError",
]


class RuleEngineError(RuntimeError):
    """Raised for malformed rules or engine misuse."""


Predicate = Callable[[Any], bool]


@dataclass(frozen=True)
class Condition:
    """Pattern: "a fact of ``fact_type`` for which ``predicate`` holds".

    ``bind`` names the matched fact in the activation context, mirroring
    JBoss's ``$arrivalBean : ArrivalRateBean(value < LOW)``.
    """

    fact_type: Type[Any]
    predicate: Optional[Predicate] = None
    bind: Optional[str] = None

    def matches(self, fact: Any) -> bool:
        if not isinstance(fact, self.fact_type):
            return False
        if self.predicate is None:
            return True
        return bool(self.predicate(fact))


@dataclass(frozen=True)
class NotExists:
    """Negative pattern: no fact of ``fact_type`` satisfies ``predicate``."""

    fact_type: Type[Any]
    predicate: Optional[Predicate] = None

    def matches_none(self, facts: Iterable[Any]) -> bool:
        for fact in facts:
            if isinstance(fact, self.fact_type):
                if self.predicate is None or self.predicate(fact):
                    return False
        return True


Action = Callable[["Activation"], None]


@dataclass
class Rule:
    """One precondition→action rule."""

    name: str
    conditions: Sequence[Any]  # Condition | NotExists
    action: Action
    salience: int = 0
    enabled: bool = True
    doc: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise RuleEngineError("rule needs a non-empty name")
        if not self.conditions:
            raise RuleEngineError(f"rule {self.name!r} needs at least one condition")
        for c in self.conditions:
            if not isinstance(c, (Condition, NotExists)):
                raise RuleEngineError(
                    f"rule {self.name!r}: conditions must be Condition/NotExists, got {c!r}"
                )


class Activation:
    """A fireable (rule, bound-facts) pair on the agenda."""

    __slots__ = ("rule", "bindings", "engine")

    def __init__(self, rule: Rule, bindings: Dict[str, Any], engine: "RuleEngine") -> None:
        self.rule = rule
        self.bindings = bindings
        self.engine = engine

    def __getitem__(self, name: str) -> Any:
        return self.bindings[name]

    def __contains__(self, name: str) -> bool:
        return name in self.bindings

    @property
    def memory(self) -> "WorkingMemory":
        return self.engine.memory

    def __repr__(self) -> str:
        return f"<Activation {self.rule.name} {list(self.bindings)}>"


class WorkingMemory:
    """Fact storage: insertion-ordered, type-indexed."""

    def __init__(self) -> None:
        self._facts: List[Any] = []

    def insert(self, fact: Any) -> Any:
        """Add a fact; returns it (for chaining)."""
        self._facts.append(fact)
        return fact

    def retract(self, fact: Any) -> bool:
        """Remove a fact; returns whether it was present."""
        try:
            self._facts.remove(fact)
            return True
        except ValueError:
            return False

    def retract_type(self, fact_type: Type[Any]) -> int:
        """Remove every fact of ``fact_type``; returns count removed."""
        keep = [f for f in self._facts if not isinstance(f, fact_type)]
        removed = len(self._facts) - len(keep)
        self._facts = keep
        return removed

    def replace(self, fact: Any) -> Any:
        """Retract all facts of ``type(fact)`` then insert ``fact``.

        The idiom for refreshing a monitoring bean each control tick.
        """
        self.retract_type(type(fact))
        return self.insert(fact)

    def facts(self, fact_type: Optional[Type[Any]] = None) -> List[Any]:
        """All facts (optionally filtered by type), insertion order."""
        if fact_type is None:
            return list(self._facts)
        return [f for f in self._facts if isinstance(f, fact_type)]

    def first(self, fact_type: Type[Any]) -> Optional[Any]:
        """First fact of ``fact_type`` (None if absent)."""
        for f in self._facts:
            if isinstance(f, fact_type):
                return f
        return None

    def clear(self) -> None:
        self._facts.clear()

    def __len__(self) -> int:
        return len(self._facts)

    def __contains__(self, fact: Any) -> bool:
        return fact in self._facts


@dataclass
class FireRecord:
    """Audit entry: one rule firing during an evaluation."""

    cycle: int
    rule_name: str
    bound: Tuple[str, ...] = ()


class RuleEngine:
    """Agenda-based rule evaluation over a working memory.

    ``telemetry`` (a :class:`repro.obs.Telemetry`, no-op by default) and
    ``owner`` make each engine invocation observable: one
    ``rules.evaluate`` span per :meth:`evaluate` call, recording which
    rules matched, in what salience order, and which fired.  Callers
    that need the plan/execute split as *separate* spans (the MAPE loop)
    instead call :meth:`agenda` and :meth:`fire` themselves.
    """

    def __init__(
        self,
        rules: Iterable[Rule] = (),
        *,
        telemetry: Any = None,
        owner: str = "rules",
    ) -> None:
        from ..obs.telemetry import NOOP

        self.memory = WorkingMemory()
        self._rules: List[Rule] = []
        self.history: List[FireRecord] = []
        self._cycle = 0
        self.telemetry = telemetry if telemetry is not None else NOOP
        self.owner = owner
        for r in rules:
            self.add_rule(r)

    # ------------------------------------------------------------------
    # rule management
    # ------------------------------------------------------------------
    def add_rule(self, rule: Rule) -> None:
        if any(r.name == rule.name for r in self._rules):
            raise RuleEngineError(f"duplicate rule name {rule.name!r}")
        self._rules.append(rule)

    def add_rules(self, rules: Iterable[Rule]) -> None:
        for r in rules:
            self.add_rule(r)

    def remove_rule(self, name: str) -> bool:
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.name != name]
        return len(self._rules) < before

    def rule(self, name: str) -> Rule:
        for r in self._rules:
            if r.name == name:
                return r
        raise KeyError(name)

    @property
    def rules(self) -> List[Rule]:
        return list(self._rules)

    def enable(self, name: str, enabled: bool = True) -> None:
        self.rule(name).enabled = enabled

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def _match_rule(self, rule: Rule) -> Optional[Dict[str, Any]]:
        """First-match binding for a rule, or None if not fireable.

        Each positive condition binds the *first* (insertion-ordered)
        fact satisfying it — the deterministic analogue of JBoss's
        single-activation pattern for the bean-per-type memories the
        managers use.
        """
        bindings: Dict[str, Any] = {}
        facts = self.memory.facts()
        for cond in rule.conditions:
            if isinstance(cond, NotExists):
                if not cond.matches_none(facts):
                    return None
                continue
            matched = None
            for fact in facts:
                if cond.matches(fact):
                    matched = fact
                    break
            if matched is None:
                return None
            if cond.bind:
                bindings[cond.bind] = matched
        return bindings

    def agenda(self) -> List[Activation]:
        """Fireable activations, ordered by salience desc then rule order."""
        activations: List[Tuple[int, int, Activation]] = []
        for idx, rule in enumerate(self._rules):
            if not rule.enabled:
                continue
            bindings = self._match_rule(rule)
            if bindings is not None:
                activations.append((-rule.salience, idx, Activation(rule, bindings, self)))
        activations.sort(key=lambda t: (t[0], t[1]))
        return [a for _, _, a in activations]

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    def fire(self, activations: List[Activation]) -> List[str]:
        """Execute pre-computed activations in order; returns rules fired.

        This is the *execute* half of :meth:`evaluate`; exposing it
        separately lets the MAPE loop trace planning (agenda
        computation) and execution as distinct spans without changing
        the firing semantics.
        """
        self._cycle += 1
        fired: List[str] = []
        for activation in activations:
            activation.rule.action(activation)
            fired.append(activation.rule.name)
            self.history.append(
                FireRecord(self._cycle, activation.rule.name, tuple(activation.bindings))
            )
        return fired

    def evaluate(self) -> List[str]:
        """One engine invocation (the paper's periodic control tick).

        The agenda is computed once against the current memory, then
        every activation's action runs in priority order.  Returns the
        names of the rules fired.
        """
        tel = self.telemetry
        if not tel.enabled:
            return self.fire(self.agenda())
        with tel.span("rules.evaluate", actor=self.owner) as span:
            agenda = self.agenda()
            span.set_attribute(
                "matched", [(a.rule.name, a.rule.salience) for a in agenda]
            )
            fired = self.fire(agenda)
            span.set_attribute("fired", fired)
        return fired

    def fire_until_quiescent(self, max_cycles: int = 100) -> List[str]:
        """Classic chaining: re-evaluate until no rule fires.

        A (rule, memory-version) refraction would require full fact
        identity tracking; instead each cycle recomputes the agenda and
        the loop stops when it is empty, with ``max_cycles`` as a guard
        against non-converging rule sets.
        """
        all_fired: List[str] = []
        for _ in range(max_cycles):
            fired = self.evaluate()
            if not fired:
                return all_fired
            all_fired.extend(fired)
        raise RuleEngineError(
            f"rules did not quiesce within {max_cycles} cycles: "
            f"last fired {all_fired[-5:]}"
        )

    def fired_names(self) -> List[str]:
        """Every rule name ever fired, in order (audit trail)."""
        return [rec.rule_name for rec in self.history]
