"""Forward-chaining rule engine — the JBoss Rules (Drools) substitute.

Autonomic-manager policies are precondition→action rules evaluated
periodically against a working memory of monitoring beans; see
:mod:`repro.rules.engine` for the execution semantics, :mod:`~.beans`
for the fact types, and :mod:`~.dsl` for the fluent builder used to
transliterate Figure 5's rule file.
"""

from .beans import (
    ArrivalRateBean,
    LatencyBean,
    Bean,
    ContractBean,
    DepartureRateBean,
    EndOfStreamBean,
    ManagerOperation,
    NumWorkerBean,
    QueueVarianceBean,
    RecordingSink,
    UtilizationBean,
    ViolationBean,
)
from .dsl import (
    RuleBuilder,
    always,
    rule,
    value_between,
    value_eq,
    value_ge,
    value_gt,
    value_is,
    value_le,
    value_lt,
)
from .engine import (
    Activation,
    Condition,
    NotExists,
    Rule,
    RuleEngine,
    RuleEngineError,
    WorkingMemory,
)

__all__ = [
    "Bean",
    "ArrivalRateBean",
    "DepartureRateBean",
    "NumWorkerBean",
    "QueueVarianceBean",
    "UtilizationBean",
    "LatencyBean",
    "ContractBean",
    "ViolationBean",
    "EndOfStreamBean",
    "ManagerOperation",
    "RecordingSink",
    "Rule",
    "RuleEngine",
    "RuleEngineError",
    "WorkingMemory",
    "Condition",
    "NotExists",
    "Activation",
    "rule",
    "RuleBuilder",
    "value_lt",
    "value_le",
    "value_gt",
    "value_ge",
    "value_eq",
    "value_between",
    "value_is",
    "always",
]
