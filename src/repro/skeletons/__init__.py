"""Algorithmic skeletons: the functional structure of applications.

Skeleton trees (:mod:`~.ast`), their analytical performance models
(:mod:`~.cost` — the basis of the paper's P_spl contract-splitting
heuristics) and tree rewrites (:mod:`~.visitors`).
"""

from .ast import Farm, Pipe, Seq, Skeleton, SkeletonError, parse
from .cost import (
    bottleneck_stage,
    describe,
    optimal_degree,
    resource_count,
    scalability_limit,
    service_time,
    stage_weights,
    throughput,
)
from .visitors import (
    count_type,
    farm_out_stage,
    normalize,
    replace_node,
    scale_farms,
    transform,
)

__all__ = [
    "Skeleton",
    "Seq",
    "Farm",
    "Pipe",
    "parse",
    "SkeletonError",
    "service_time",
    "throughput",
    "optimal_degree",
    "resource_count",
    "stage_weights",
    "bottleneck_stage",
    "scalability_limit",
    "describe",
    "transform",
    "scale_farms",
    "farm_out_stage",
    "normalize",
    "replace_node",
    "count_type",
]
