"""Algorithmic-skeleton trees: the application's functional structure.

The paper treats "the *kind* of parallel patterns exploited to implement
the application" as a functional concern (§2) expressed as a tree of
skeletons — e.g. ``farm(pipeline(seq, farm(seq), seq))`` (§3.1).  This
module defines that tree:

* :class:`Seq` — a leaf: sequential code with a per-task ``work``
  requirement (seconds at unit speed).
* :class:`Farm` — functional replication over an inner skeleton with a
  parallelism degree; dispatch/collect policies name the paper's
  scatter/unicast/multicast/broadcast and gather/reduce variants.
* :class:`Pipe` — a pipeline of stages.

Trees are immutable value objects (safe to share between managers), and
:func:`parse` reads the paper's textual notation back into a tree.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

__all__ = ["Skeleton", "Seq", "Farm", "Pipe", "parse", "SkeletonError"]


class SkeletonError(ValueError):
    """Raised for malformed skeleton trees or expressions."""


class Skeleton:
    """Base class for skeleton tree nodes (immutable)."""

    name: str

    @property
    def children(self) -> Tuple["Skeleton", ...]:
        """Direct sub-skeletons (empty for leaves)."""
        return ()

    def leaves(self) -> List["Seq"]:
        """All Seq leaves, left-to-right."""
        if isinstance(self, Seq):
            return [self]
        out: List[Seq] = []
        for child in self.children:
            out.extend(child.leaves())
        return out

    def walk(self) -> Iterator["Skeleton"]:
        """Pre-order traversal of the tree."""
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def depth(self) -> int:
        """Tree height (a lone Seq has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(c.depth for c in self.children)

    @property
    def node_count(self) -> int:
        """Total number of nodes in the tree."""
        return 1 + sum(c.node_count for c in self.children)

    def to_expr(self) -> str:
        """Paper-style textual form, e.g. ``farm(pipe(seq,farm(seq),seq))``."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_expr()


@dataclass(frozen=True)
class Seq(Skeleton):
    """Sequential leaf: domain code with per-task ``work``."""

    work: float = 1.0
    label: str = "seq"

    def __post_init__(self) -> None:
        if self.work < 0:
            raise SkeletonError(f"Seq work must be >= 0, got {self.work}")

    @property
    def name(self) -> str:
        return self.label

    def to_expr(self) -> str:
        if self.work == 1.0:
            return "seq"
        return f"seq({self.work:g})"


class FarmPolicies:
    """Names for the functional-replication dispatch/collect variants.

    "By varying the way input tasks are distributed to the available
    concurrent computations, the way the results are gathered […]
    several distinct parallel patterns can be modeled" (§3).
    """

    DISPATCH = ("unicast", "scatter", "multicast", "broadcast")
    COLLECT = ("gather", "reduce")


@dataclass(frozen=True)
class Farm(Skeleton):
    """Functional replication of ``worker`` with parallelism ``degree``."""

    worker: Skeleton = field(default_factory=Seq)
    degree: int = 1
    dispatch: str = "unicast"
    collect: str = "gather"
    label: str = "farm"

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise SkeletonError(f"Farm degree must be >= 1, got {self.degree}")
        if not isinstance(self.worker, Skeleton):
            raise SkeletonError(f"Farm worker must be a Skeleton, got {self.worker!r}")
        if self.dispatch not in FarmPolicies.DISPATCH:
            raise SkeletonError(f"unknown dispatch policy {self.dispatch!r}")
        if self.collect not in FarmPolicies.COLLECT:
            raise SkeletonError(f"unknown collect policy {self.collect!r}")

    @property
    def name(self) -> str:
        return self.label

    @property
    def children(self) -> Tuple[Skeleton, ...]:
        return (self.worker,)

    def with_degree(self, degree: int) -> "Farm":
        """A copy of this farm at a different parallelism degree."""
        return Farm(self.worker, degree, self.dispatch, self.collect, self.label)

    def to_expr(self) -> str:
        if self.degree == 1:
            return f"farm({self.worker.to_expr()})"
        return f"farm({self.worker.to_expr()}, n={self.degree})"


@dataclass(frozen=True)
class Pipe(Skeleton):
    """Pipeline of two or more stages."""

    stages: Tuple[Skeleton, ...] = ()
    label: str = "pipe"

    def __init__(self, *stages: Skeleton, label: str = "pipe") -> None:
        # frozen dataclass with *args construction
        if len(stages) == 1 and isinstance(stages[0], (tuple, list)):
            stages = tuple(stages[0])
        if len(stages) < 2:
            raise SkeletonError(f"Pipe needs >= 2 stages, got {len(stages)}")
        for s in stages:
            if not isinstance(s, Skeleton):
                raise SkeletonError(f"Pipe stages must be Skeletons, got {s!r}")
        object.__setattr__(self, "stages", tuple(stages))
        object.__setattr__(self, "label", label)

    @property
    def name(self) -> str:
        return self.label

    @property
    def children(self) -> Tuple[Skeleton, ...]:
        return self.stages

    def to_expr(self) -> str:
        return f"pipe({', '.join(s.to_expr() for s in self.stages)})"


# ----------------------------------------------------------------------
# expression parser
# ----------------------------------------------------------------------

_TOKEN = re.compile(r"\s*([a-zA-Z_]+|\d+\.?\d*|[(),=])")


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    text = text.strip()
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if not m:
            raise SkeletonError(f"bad skeleton expression at position {pos}: {text[pos:]!r}")
        tokens.append(m.group(1))
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise SkeletonError("unexpected end of skeleton expression")
        self.pos += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise SkeletonError(f"expected {tok!r}, got {got!r}")

    def parse_skeleton(self) -> Skeleton:
        head = self.next()
        if head == "seq":
            work = 1.0
            if self.peek() == "(":
                self.next()
                work = float(self.next())
                self.expect(")")
            return Seq(work)
        if head in ("farm",):
            self.expect("(")
            worker = self.parse_skeleton()
            degree = 1
            if self.peek() == ",":
                self.next()
                self.expect("n")
                self.expect("=")
                degree = int(float(self.next()))
            self.expect(")")
            return Farm(worker, degree)
        if head in ("pipe", "pipeline"):
            self.expect("(")
            stages = [self.parse_skeleton()]
            while self.peek() == ",":
                self.next()
                stages.append(self.parse_skeleton())
            self.expect(")")
            return Pipe(*stages)
        raise SkeletonError(f"unknown skeleton {head!r}")


def parse(text: str) -> Skeleton:
    """Parse the paper's textual notation into a skeleton tree.

    Accepts ``seq``, ``seq(<work>)``, ``farm(<skeleton>[, n=<k>])``,
    ``pipe(...)`` / ``pipeline(...)``.  Round-trips with
    :meth:`Skeleton.to_expr`.
    """
    parser = _Parser(_tokenize(text))
    skel = parser.parse_skeleton()
    if parser.peek() is not None:
        raise SkeletonError(f"trailing tokens after skeleton: {parser.tokens[parser.pos:]}")
    return skel
