"""Performance models for skeleton trees (the analytical backbone of P_spl).

The paper's contract-splitting heuristics "exploit the well-known
performance model of a pipeline, in which the pipeline performance is
bounded by the performance of the slowest stage" and split parallelism
degrees "proportionally … depending on the relative computational
weight of the stages" (§3.1).  These are the models:

* service time  ``T(seq)   = work``
* service time  ``T(farm)  = T(worker) / degree``    (steady state)
* service time  ``T(pipe)  = max_i T(stage_i)``      (slowest stage)
* throughput    ``ρ(s)     = 1 / T(s)``

From them we derive the quantities managers need: the *optimal initial
parallelism degree* for a throughput contract (§3, "the parallelism
degree of computations implemented using a functional replication BS
can be initially set to some 'optimal' value"), resource counts, and
stage weights for proportional splitting.
"""

from __future__ import annotations

import math
from typing import Dict, List

from .ast import Farm, Pipe, Seq, Skeleton, SkeletonError

__all__ = [
    "service_time",
    "throughput",
    "optimal_degree",
    "resource_count",
    "stage_weights",
    "bottleneck_stage",
    "scalability_limit",
]


def service_time(skel: Skeleton) -> float:
    """Steady-state time between consecutive results (1/throughput).

    A farm divides its worker's service time by the parallelism degree;
    a pipeline is bounded by its slowest stage.
    """
    if isinstance(skel, Seq):
        return skel.work
    if isinstance(skel, Farm):
        return service_time(skel.worker) / skel.degree
    if isinstance(skel, Pipe):
        return max(service_time(s) for s in skel.stages)
    raise SkeletonError(f"no cost model for {type(skel).__name__}")


def throughput(skel: Skeleton) -> float:
    """Steady-state results per second under the analytical model."""
    t = service_time(skel)
    if t <= 0:
        return math.inf
    return 1.0 / t


def optimal_degree(worker: Skeleton, target_throughput: float) -> int:
    """Minimum farm degree achieving ``target_throughput``.

    ``ceil(T(worker) * ρ_target)``, at least 1.  This is the "optimal
    initial parallelism degree" computation a farm manager performs when
    it receives its first contract.
    """
    if target_throughput <= 0:
        raise SkeletonError(f"target throughput must be positive, got {target_throughput}")
    t_worker = service_time(worker)
    if t_worker == 0:
        return 1
    return max(1, math.ceil(t_worker * target_throughput - 1e-9))


def resource_count(skel: Skeleton, *, farm_overhead: int = 0) -> int:
    """Processing elements the tree needs.

    Leaves take one PE each; a farm multiplies its worker's need by the
    degree, plus ``farm_overhead`` PEs for emitter/collector if they are
    mapped to dedicated resources (0 by default — the paper's runs
    co-locate them).
    """
    if isinstance(skel, Seq):
        return 1
    if isinstance(skel, Farm):
        return skel.degree * resource_count(skel.worker, farm_overhead=farm_overhead) + farm_overhead
    if isinstance(skel, Pipe):
        return sum(resource_count(s, farm_overhead=farm_overhead) for s in skel.stages)
    raise SkeletonError(f"no resource model for {type(skel).__name__}")


def stage_weights(pipe: Pipe) -> List[float]:
    """Relative computational weight of each pipeline stage.

    Normalised service times — the proportionality factors for
    splitting a parallelism-degree SLA across stages (§3.1 footnote:
    "depending on the relative computational weight of the stages").
    """
    times = [service_time(s) for s in pipe.stages]
    total = sum(times)
    if total == 0:
        return [1.0 / len(times)] * len(times)
    return [t / total for t in times]


def bottleneck_stage(pipe: Pipe) -> int:
    """Index of the slowest stage (the pipeline's throughput bound)."""
    times = [service_time(s) for s in pipe.stages]
    return max(range(len(times)), key=lambda i: times[i])


def scalability_limit(farm: Farm, dispatch_overhead: float) -> int:
    """Degree beyond which the emitter bounds farm throughput.

    With a per-task dispatch cost ``o``, the emitter can sustain at most
    ``1/o`` tasks/s, so degrees beyond ``T(worker)/o`` add no throughput.
    Returns that saturation degree (at least 1).
    """
    if dispatch_overhead <= 0:
        raise SkeletonError("dispatch_overhead must be positive")
    t_worker = service_time(farm.worker)
    return max(1, math.floor(t_worker / dispatch_overhead))


def describe(skel: Skeleton) -> Dict[str, float]:
    """Summary of the model's predictions for a tree (for reports)."""
    return {
        "service_time": service_time(skel),
        "throughput": throughput(skel),
        "resources": float(resource_count(skel)),
        "depth": float(skel.depth),
        "nodes": float(skel.node_count),
    }
