"""Visitors and rewriting over skeleton trees.

Besides the usual structural queries, this module implements the
pattern rewrites the paper relies on:

* :func:`scale_farms` — adjust every farm's degree (the global analogue
  of the ``ADD_EXECUTOR`` actuator applied to the static tree).
* :func:`farm_out_stage` — "transform the pipeline stage into a farm
  with the workers behaving as instances of the original stage" (§4.2,
  the adaptation the authors say they are investigating for overloaded
  sequential stages).
* :func:`normalize` — flatten nested pipes (``pipe(a, pipe(b, c))`` ≡
  ``pipe(a, b, c)``) and collapse degree-1 farms of farms, giving a
  canonical form under which the cost model is invariant (property
  tested).
"""

from __future__ import annotations

from typing import Callable, List

from .ast import Farm, Pipe, Seq, Skeleton, SkeletonError

__all__ = [
    "transform",
    "scale_farms",
    "farm_out_stage",
    "normalize",
    "replace_node",
    "count_type",
]


def transform(skel: Skeleton, fn: Callable[[Skeleton], Skeleton]) -> Skeleton:
    """Bottom-up rewrite: rebuild the tree applying ``fn`` at each node.

    ``fn`` receives a node whose children have already been rewritten
    and returns its replacement (possibly itself).
    """
    if isinstance(skel, Seq):
        return fn(skel)
    if isinstance(skel, Farm):
        new_worker = transform(skel.worker, fn)
        rebuilt = (
            skel
            if new_worker is skel.worker
            else Farm(new_worker, skel.degree, skel.dispatch, skel.collect, skel.label)
        )
        return fn(rebuilt)
    if isinstance(skel, Pipe):
        new_stages = [transform(s, fn) for s in skel.stages]
        rebuilt = (
            skel
            if all(a is b for a, b in zip(new_stages, skel.stages))
            else Pipe(*new_stages, label=skel.label)
        )
        return fn(rebuilt)
    raise SkeletonError(f"cannot transform {type(skel).__name__}")


def scale_farms(skel: Skeleton, factor: float) -> Skeleton:
    """Multiply every farm's degree by ``factor`` (rounded, min 1)."""
    if factor <= 0:
        raise SkeletonError("scale factor must be positive")

    def fn(node: Skeleton) -> Skeleton:
        if isinstance(node, Farm):
            return node.with_degree(max(1, round(node.degree * factor)))
        return node

    return transform(skel, fn)


def farm_out_stage(pipe: Pipe, stage_index: int, degree: int) -> Pipe:
    """Replace one pipeline stage with a farm of that stage.

    This is the §4.2 rewrite for a sequential stage that cannot keep up
    even on an unloaded node: parallelise the stage itself.
    """
    if not 0 <= stage_index < len(pipe.stages):
        raise SkeletonError(f"stage index {stage_index} out of range")
    if degree < 1:
        raise SkeletonError("farm degree must be >= 1")
    stages: List[Skeleton] = list(pipe.stages)
    stages[stage_index] = Farm(stages[stage_index], degree)
    return Pipe(*stages, label=pipe.label)


def normalize(skel: Skeleton) -> Skeleton:
    """Canonical form: flatten nested pipes, merge farm-of-farm.

    * ``pipe(a, pipe(b, c), d)``      → ``pipe(a, b, c, d)``
    * ``farm(farm(w, n=k), n=m)``     → ``farm(w, n=m*k)``

    Both rewrites preserve the cost model's service time (see the
    property test in ``tests/skeletons/test_visitors.py``).
    """

    def fn(node: Skeleton) -> Skeleton:
        if isinstance(node, Pipe):
            flat: List[Skeleton] = []
            for s in node.stages:
                if isinstance(s, Pipe):
                    flat.extend(s.stages)
                else:
                    flat.append(s)
            if len(flat) != len(node.stages):
                return Pipe(*flat, label=node.label)
            return node
        if isinstance(node, Farm) and isinstance(node.worker, Farm):
            inner = node.worker
            return Farm(
                inner.worker,
                node.degree * inner.degree,
                node.dispatch,
                node.collect,
                node.label,
            )
        return node

    return transform(skel, fn)


def replace_node(skel: Skeleton, old: Skeleton, new: Skeleton) -> Skeleton:
    """Replace (by identity) every occurrence of ``old`` with ``new``."""

    def fn(node: Skeleton) -> Skeleton:
        return new if node is old else node

    return transform(skel, fn)


def count_type(skel: Skeleton, kind: type) -> int:
    """Number of nodes of ``kind`` in the tree."""
    return sum(1 for node in skel.walk() if isinstance(node, kind))
