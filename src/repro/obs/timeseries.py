"""An embedded fixed-retention time-series store over the metrics registry.

``/metrics`` is a snapshot; the autonomic plane decides *from history* —
burn rates, adaptation latency, "was the contract met over the last
minute" — so the registry needs a memory.  :class:`TimeSeriesStore` is
that memory: a ring-buffer TSDB that **scrapes** a
:class:`~repro.obs.metrics.MetricsRegistry` on an injectable-clock
interval and keeps a bounded window of samples per series:

* **counters** — the cumulative value is stored; :meth:`query` turns
  deltas between samples into per-second *rates* (and ``field="total"``
  returns the raw monotone series);
* **gauges** — stored verbatim; downsampling aggregates with
  ``last``/``avg``/``min``/``max`` per step bucket;
* **histograms** — a mergeable :class:`HistogramSnapshot` (bucket
  counts + sum + count) is stored per scrape, so a range query can
  *subtract* two snapshots and answer p50/p95/p99, mean and event rate
  **over any window**, not just since process start.

Retention is a hard bound: each series is a ``deque(maxlen=…)`` sized
from ``retention / interval``, so a week-long run holds the same memory
as a minute-long one.  All reads and writes take one lock per call —
scrapes concurrent with ``/query`` and shutdown flushes see a consistent
ring, never a torn one.

The store itself is passive: call :meth:`scrape_once` from a test with a
:class:`~repro.obs.clock.ManualClock`, or :meth:`start` a daemon scraper
thread against the wall clock.  Listeners registered with
:meth:`add_listener` run after every scrape — the SLO engine evaluates
its objectives there, and the SSE ``/stream`` publisher diffs the new
sample against the last one it pushed.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from .clock import Clock
from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["HistogramSnapshot", "TimeSeriesStore", "StreamBroker"]

LabelSet = Tuple[Tuple[str, str], ...]


class HistogramSnapshot:
    """A point-in-time, *mergeable* copy of a histogram's state.

    Two snapshots of the same histogram subtract into the distribution
    of the interval between them — the mechanism behind windowed
    p50/p95/p99 and per-window event rates.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(
        self,
        bounds: Tuple[float, ...],
        counts: Tuple[int, ...],
        total: float,
        count: int,
    ) -> None:
        self.bounds = bounds
        self.counts = counts
        self.sum = total
        self.count = count

    @classmethod
    def of(cls, hist: Histogram) -> "HistogramSnapshot":
        return cls(hist.bounds, tuple(hist.counts), hist.sum, hist.count)

    def delta(self, earlier: Optional["HistogramSnapshot"]) -> "HistogramSnapshot":
        """The distribution observed *between* ``earlier`` and this."""
        if earlier is None or earlier.bounds != self.bounds:
            return self
        counts = tuple(
            max(0, a - b) for a, b in zip(self.counts, earlier.counts)
        )
        return HistogramSnapshot(
            self.bounds,
            counts,
            max(0.0, self.sum - earlier.sum),
            max(0, self.count - earlier.count),
        )

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Combine two disjoint interval distributions."""
        if other.bounds != self.bounds:
            return self
        return HistogramSnapshot(
            self.bounds,
            tuple(a + b for a, b in zip(self.counts, other.counts)),
            self.sum + other.sum,
            self.count + other.count,
        )

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile (upper bucket edge), 0.0 when empty."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            if running >= rank:
                return bound
        return math.inf

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


#: fields a histogram query may ask for
_HIST_FIELDS = ("p50", "p95", "p99", "mean", "count", "rate", "sum")
_GAUGE_FIELDS = ("last", "avg", "min", "max")
_COUNTER_FIELDS = ("rate", "total")


class TimeSeriesStore:
    """Ring-buffer samples of every series in one metrics registry."""

    def __init__(
        self,
        registry: MetricsRegistry,
        clock: Clock,
        *,
        interval: float = 1.0,
        retention: float = 600.0,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"scrape interval must be positive, got {interval}")
        if retention < interval:
            raise ValueError(f"retention {retention} shorter than interval {interval}")
        self.registry = registry
        self.clock = clock
        self.interval = float(interval)
        self.retention = float(retention)
        self._capacity = max(8, int(math.ceil(retention / interval)) + 2)
        self._lock = threading.Lock()
        #: metric name -> label set -> deque[(t, value-or-snapshot)]
        self._series: Dict[str, Dict[LabelSet, deque]] = {}
        self._kinds: Dict[str, str] = {}
        self._listeners: List[Callable[[float, "TimeSeriesStore"], None]] = []
        self.scrapes = 0
        self.last_scrape: Optional[float] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- scraping --------------------------------------------------------
    def scrape_once(self, now: Optional[float] = None) -> float:
        """Sample every instrument in the registry; returns the timestamp."""
        t = self.clock.now() if now is None else float(now)
        with self._lock:
            for family in self.registry.families():
                kind = family.kind
                self._kinds[family.name] = kind
                by_labels = self._series.setdefault(family.name, {})
                for labels, instrument in family.samples():
                    ring = by_labels.get(labels)
                    if ring is None:
                        ring = deque(maxlen=self._capacity)
                        by_labels[labels] = ring
                    if isinstance(instrument, Histogram):
                        ring.append((t, HistogramSnapshot.of(instrument)))
                    elif isinstance(instrument, (Counter, Gauge)):
                        ring.append((t, float(instrument.value)))
            self.scrapes += 1
            self.last_scrape = t
        for listener in list(self._listeners):
            listener(t, self)
        return t

    def add_listener(self, fn: Callable[[float, "TimeSeriesStore"], None]) -> None:
        """Run ``fn(timestamp, store)`` after every scrape."""
        self._listeners.append(fn)

    def start(self) -> "TimeSeriesStore":
        """Scrape on ``interval`` from a daemon thread (wall-clock runs)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="tsdb-scraper", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.scrape_once()
            except Exception:  # noqa: BLE001 - the scraper must survive races
                # a registry mutating mid-iteration or a listener raising
                # must not kill the scrape loop; the next tick retries
                continue

    # -- catalogue -------------------------------------------------------
    def metric_names(self) -> List[str]:
        with self._lock:
            return sorted(self._series)

    def kind_of(self, metric: str) -> Optional[str]:
        with self._lock:
            return self._kinds.get(metric)

    def label_sets(self, metric: str) -> List[Dict[str, str]]:
        with self._lock:
            return [dict(ls) for ls in self._series.get(metric, {})]

    # -- queries ---------------------------------------------------------
    def latest(
        self, metric: str, labels: Optional[Dict[str, str]] = None
    ) -> Optional[Any]:
        """The most recent sample of one series (scalar or snapshot)."""
        with self._lock:
            ring = self._find(metric, labels)
            if not ring:
                return None
            return ring[-1][1]

    def window_rate(
        self,
        metric: str,
        window: float,
        labels: Optional[Dict[str, str]] = None,
        now: Optional[float] = None,
    ) -> Optional[float]:
        """Per-second rate of a counter over the trailing ``window``."""
        t1 = self.clock.now() if now is None else now
        t0 = t1 - window
        with self._lock:
            ring = self._find(metric, labels)
            if not ring:
                return None
            pts = [(t, v) for t, v in ring if t >= t0]
            if len(pts) < 2:
                return 0.0 if pts else None
            dv = pts[-1][1] - pts[0][1]
            dt = pts[-1][0] - pts[0][0]
            return dv / dt if dt > 0 else 0.0

    def window_histogram(
        self,
        metric: str,
        window: float,
        labels: Optional[Dict[str, str]] = None,
        now: Optional[float] = None,
    ) -> Optional[HistogramSnapshot]:
        """The distribution a histogram observed over the trailing window."""
        t1 = self.clock.now() if now is None else now
        t0 = t1 - window
        with self._lock:
            ring = self._find(metric, labels)
            if not ring:
                return None
            base: Optional[HistogramSnapshot] = None
            last: Optional[HistogramSnapshot] = None
            for t, snap in ring:
                if t < t0:
                    base = snap
                last = snap
            if last is None:
                return None
            return last.delta(base)

    def _find(self, metric: str, labels: Optional[Dict[str, str]]) -> Optional[deque]:
        """One series ring (lock held).  ``labels=None`` matches the first
        series when the metric has exactly one, mirroring the zero-label
        convenience of :class:`~repro.obs.metrics.MetricFamily`."""
        by_labels = self._series.get(metric)
        if not by_labels:
            return None
        if labels is None:
            if len(by_labels) == 1:
                return next(iter(by_labels.values()))
            return by_labels.get(())
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        return by_labels.get(key)

    def query(
        self,
        metric: str,
        *,
        since: Optional[float] = None,
        until: Optional[float] = None,
        step: Optional[float] = None,
        labels: Optional[Dict[str, str]] = None,
        field: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Range query with downsampling over one metric's series.

        ``since``/``until`` are clock timestamps; ``since <= 0`` means
        *relative to now* (``since=-60`` = the last minute).  ``step``
        buckets the range and aggregates per bucket; without it the raw
        samples return.  ``field`` selects the aggregate:

        * gauges — ``last`` (default), ``avg``, ``min``, ``max``;
        * counters — ``rate`` (default, per-second over the bucket) or
          ``total`` (the raw cumulative sample);
        * histograms — ``p50``/``p95`` (default)/``p99``, ``mean``,
          ``count``, ``sum`` or ``rate`` (events/s), each computed from
          the *windowed* snapshot delta, not the lifetime distribution.

        ``labels`` filters to series whose labels are a superset of it.
        Raises ``KeyError`` for an unknown metric and ``ValueError`` for
        a bad field/step, which the HTTP layer maps to 404/400.
        """
        with self._lock:
            by_labels = self._series.get(metric)
            kind = self._kinds.get(metric)
            if by_labels is None or kind is None:
                raise KeyError(metric)
            now = self.last_scrape if self.last_scrape is not None else self.clock.now()
            t1 = now if until is None else float(until)
            if since is None:
                t0 = t1 - self.retention
            else:
                t0 = float(since)
                if t0 <= 0:
                    t0 = t1 + t0
            if step is not None and step <= 0:
                raise ValueError(f"step must be positive, got {step}")
            field = field or {"gauge": "last", "counter": "rate", "histogram": "p95"}[kind]
            allowed = {
                "gauge": _GAUGE_FIELDS,
                "counter": _COUNTER_FIELDS,
                "histogram": _HIST_FIELDS,
            }[kind]
            if field not in allowed:
                raise ValueError(
                    f"field {field!r} not valid for a {kind} "
                    f"(choose from {', '.join(allowed)})"
                )
            out_series = []
            for label_set, ring in by_labels.items():
                label_map = dict(label_set)
                if labels is not None and any(
                    label_map.get(k) != str(v) for k, v in labels.items()
                ):
                    continue
                pts = [(t, v) for t, v in ring if t0 <= t <= t1]
                out_series.append(
                    {
                        "labels": label_map,
                        "points": self._render(kind, field, pts, ring, t0, t1, step),
                    }
                )
        return {
            "metric": metric,
            "kind": kind,
            "field": field,
            "since": t0,
            "until": t1,
            "step": step,
            "series": out_series,
        }

    # -- point rendering (lock held) ------------------------------------
    def _render(
        self,
        kind: str,
        field: str,
        pts: List[Tuple[float, Any]],
        ring: deque,
        t0: float,
        t1: float,
        step: Optional[float],
    ) -> List[List[float]]:
        if kind == "gauge":
            if step is None:
                return [[t, v] for t, v in pts]
            return self._bucket_scalar(pts, t0, t1, step, field)
        if kind == "counter":
            if field == "total":
                if step is None:
                    return [[t, v] for t, v in pts]
                return self._bucket_scalar(pts, t0, t1, step, "last")
            # rate: delta over each step (or each sample gap)
            eff_step = step if step is not None else self.interval
            return self._bucket_rate(pts, t0, t1, eff_step)
        # histogram: delta snapshots per bucket
        eff_step = step if step is not None else self.interval
        return self._bucket_histogram(pts, t0, t1, eff_step, field)

    @staticmethod
    def _bucket_scalar(
        pts: List[Tuple[float, float]], t0: float, t1: float, step: float, field: str
    ) -> List[List[float]]:
        out: List[List[float]] = []
        edge = t0
        i = 0
        while edge < t1 + 1e-12:
            hi = edge + step
            bucket = []
            while i < len(pts) and pts[i][0] < hi:
                if pts[i][0] >= edge:
                    bucket.append(pts[i][1])
                i += 1
            if bucket:
                if field == "avg":
                    value = sum(bucket) / len(bucket)
                elif field == "min":
                    value = min(bucket)
                elif field == "max":
                    value = max(bucket)
                else:
                    value = bucket[-1]
                out.append([edge + step / 2.0, value])
            edge = hi
        return out

    @staticmethod
    def _bucket_rate(
        pts: List[Tuple[float, float]], t0: float, t1: float, step: float
    ) -> List[List[float]]:
        out: List[List[float]] = []
        if not pts:
            return out
        edge = t0
        prev_t, prev_v = pts[0]
        i = 0
        while edge < t1 + 1e-12:
            hi = edge + step
            last = None
            while i < len(pts) and pts[i][0] < hi:
                last = pts[i]
                i += 1
            if last is not None and last[0] > prev_t:
                dv = last[1] - prev_v
                dt = last[0] - prev_t
                out.append([edge + step / 2.0, max(0.0, dv) / dt if dt > 0 else 0.0])
                prev_t, prev_v = last
            edge = hi
        return out

    @staticmethod
    def _bucket_histogram(
        pts: List[Tuple[float, Any]], t0: float, t1: float, step: float, field: str
    ) -> List[List[float]]:
        out: List[List[float]] = []
        if not pts:
            return out
        edge = t0
        prev: Optional[HistogramSnapshot] = None
        prev_t = pts[0][0]
        i = 0
        while edge < t1 + 1e-12:
            hi = edge + step
            last = None
            while i < len(pts) and pts[i][0] < hi:
                last = pts[i]
                i += 1
            if last is not None:
                snap: HistogramSnapshot = last[1]
                window = snap.delta(prev)
                if window.count > 0 or prev is not None:
                    if field == "rate":
                        dt = last[0] - prev_t if prev is not None else step
                        value = window.count / dt if dt > 0 else 0.0
                    elif field == "count":
                        value = float(window.count)
                    elif field == "sum":
                        value = window.sum
                    elif field == "mean":
                        value = window.mean
                    else:
                        value = window.quantile(
                            {"p50": 0.50, "p95": 0.95, "p99": 0.99}[field]
                        )
                    out.append([edge + step / 2.0, value])
                prev = snap
                prev_t = last[0]
            edge = hi
        return out


# ----------------------------------------------------------------------
# the /stream fan-out
# ----------------------------------------------------------------------


class StreamBroker:
    """Fan-out of telemetry deltas to any number of live subscribers.

    Publishers (the scrape listener, the SLO engine) push JSON-ready
    dicts; each subscriber owns a bounded queue that **drops the oldest
    event when full**, so a stalled SSE client can never backpressure
    the autonomic plane.
    """

    def __init__(self, *, max_queue: int = 1024) -> None:
        import queue as _queue

        self._queue_mod = _queue
        self._max_queue = max_queue
        self._subs: List[Any] = []
        self._lock = threading.Lock()
        self.published = 0

    def subscribe(self) -> Any:
        q = self._queue_mod.Queue(maxsize=self._max_queue)
        with self._lock:
            self._subs.append(q)
        return q

    def unsubscribe(self, q: Any) -> None:
        with self._lock:
            try:
                self._subs.remove(q)
            except ValueError:
                pass

    @property
    def subscribers(self) -> int:
        with self._lock:
            return len(self._subs)

    def publish(self, event: Dict[str, Any]) -> None:
        with self._lock:
            subs = list(self._subs)
            self.published += 1
        for q in subs:
            while True:
                try:
                    q.put_nowait(event)
                    break
                except self._queue_mod.Full:
                    try:
                        q.get_nowait()  # drop the oldest, keep the stream live
                    except self._queue_mod.Empty:
                        break


class MetricsDeltaPublisher:
    """Scrape listener that streams *changed* scalar samples.

    Registered on the store with ``store.add_listener(publisher)``; each
    scrape publishes one ``{"type": "metrics", …}`` event carrying only
    the counters/gauges whose value moved since the last publish (and
    each histogram's count), so an idle farm streams heartbeats, not
    full registry dumps.
    """

    def __init__(self, broker: StreamBroker) -> None:
        self.broker = broker
        self._last: Dict[Tuple[str, LabelSet], float] = {}

    def __call__(self, now: float, store: TimeSeriesStore) -> None:
        changed: List[Dict[str, Any]] = []
        with store._lock:
            for name, by_labels in store._series.items():
                for label_set, ring in by_labels.items():
                    if not ring:
                        continue
                    value = ring[-1][1]
                    scalar = (
                        float(value.count)
                        if isinstance(value, HistogramSnapshot)
                        else float(value)
                    )
                    key = (name, label_set)
                    if self._last.get(key) != scalar:
                        self._last[key] = scalar
                        changed.append(
                            {
                                "metric": name,
                                "labels": dict(label_set),
                                "value": scalar,
                            }
                        )
        self.broker.publish({"type": "metrics", "t": now, "changed": changed})
