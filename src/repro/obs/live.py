"""The live telemetry surface: /metrics, /trace/<id>, /traces, /healthz.

A running farm is only operable if its telemetry is reachable *while it
runs* — scraping a Prometheus endpoint, pulling one task's causal tree
mid-experiment — not just exportable after the fact.  This module puts a
stdlib-only ``http.server`` in front of a
:class:`~repro.obs.telemetry.Telemetry`:

* ``GET /metrics``  — the metrics registry in Prometheus text format;
* ``GET /trace/<trace_id>`` — one causal tree as nested JSON (404 for an
  unknown id), exactly what :func:`~repro.obs.propagation.build_trace_tree`
  builds;
* ``GET /traces``   — summaries of every trace currently in the store;
* ``GET /healthz``  — liveness plus cheap store statistics.

Start it with ``Telemetry.serve(port)`` (``port=0`` picks a free one);
it runs in a single daemon thread via :class:`ThreadingHTTPServer`, so a
wedged scrape cannot stall the farm and process exit never blocks on it.
Reads are snapshot-free: the span list is append-only and metrics are
monotone, so a scrape concurrent with recording sees a consistent prefix
rather than tearing.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Dict, Tuple

from .export import prometheus_text
from .propagation import build_trace_tree, list_traces

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .telemetry import Telemetry

__all__ = ["TelemetryServer"]


class _Handler(BaseHTTPRequestHandler):
    # set per-server via the subclass trick in TelemetryServer
    telemetry: "Telemetry"

    # BaseHTTPRequestHandler logs every request to stderr by default;
    # a scraped endpoint would drown the experiment's own output
    def log_message(self, format: str, *args: Any) -> None:
        pass

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload, default=str, indent=2).encode()
        self._send(status, body, "application/json; charset=utf-8")

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        tel = self.telemetry
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                self._send(
                    200,
                    prometheus_text(tel.metrics).encode(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/healthz":
                self._send_json(
                    200,
                    {
                        "status": "ok",
                        "spans": len(tel.spans),
                        "open_spans": len(tel.spans.open_spans()),
                        "traces": len(tel.spans.trace_ids()),
                    },
                )
            elif path == "/traces":
                self._send_json(200, {"traces": list_traces(tel.spans.spans)})
            elif path.startswith("/trace/"):
                trace_id = path[len("/trace/"):]
                tree = build_trace_tree(tel.spans.spans, trace_id)
                if not tree:
                    self._send_json(
                        404, {"error": "unknown trace", "trace_id": trace_id}
                    )
                else:
                    self._send_json(200, {"trace_id": trace_id, "tree": tree})
            else:
                self._send_json(
                    404,
                    {
                        "error": "not found",
                        "routes": ["/metrics", "/trace/<trace_id>", "/traces", "/healthz"],
                    },
                )
        except BrokenPipeError:  # client went away mid-scrape
            pass


class TelemetryServer:
    """The live endpoint over one Telemetry; closes idempotently.

    Usable as a context manager::

        with tel.serve() as srv:
            print(srv.url("/metrics"))
    """

    def __init__(self, telemetry: "Telemetry", *, host: str = "127.0.0.1", port: int = 0) -> None:
        handler = type("_BoundHandler", (_Handler,), {"telemetry": telemetry})
        self.telemetry = telemetry
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"telemetry-http-{self.port}",
            daemon=True,
        )
        self._thread.start()
        self._closed = False

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def url(self, path: str = "/") -> str:
        if not path.startswith("/"):
            path = "/" + path
        return f"http://{self.host}:{self.port}{path}"

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "TelemetryServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def describe(self) -> Dict[str, Any]:
        """The routes a human at the terminal wants to copy-paste."""
        return {
            "metrics": self.url("/metrics"),
            "traces": self.url("/traces"),
            "trace": self.url("/trace/<trace_id>"),
            "healthz": self.url("/healthz"),
        }
