"""The live telemetry surface: metrics, traces, range queries, SSE stream.

A running farm is only operable if its telemetry is reachable *while it
runs* — scraping a Prometheus endpoint, pulling one task's causal tree
mid-experiment, watching burn rates tick — not just exportable after the
fact.  This module puts a stdlib-only ``http.server`` in front of a
:class:`~repro.obs.telemetry.Telemetry`:

* ``GET /metrics``  — the metrics registry in Prometheus text format;
* ``GET /trace/<trace_id>`` — one causal tree as nested JSON (404 for an
  unknown id), exactly what :func:`~repro.obs.propagation.build_trace_tree`
  builds;
* ``GET /traces``   — trace summaries, bounded by ``?limit=`` (default
  500) so a 100k-task run cannot OOM a scrape;
* ``GET /healthz``  — liveness plus cheap store statistics;
* ``GET /query``    — range queries with downsampling over the embedded
  TSDB (``?metric=…&since=…&step=…&field=…`` plus any other key as a
  label filter), once :meth:`Telemetry.start_timeseries` has run;
* ``GET /slo``      — the SLO engine's live state (objectives, levels,
  burn rates, budget remaining);
* ``GET /stream``   — Server-Sent Events pushing metric deltas and SLO
  transitions as they happen (``?limit=N`` closes after N events, for
  scripts and tests).

Start it with ``Telemetry.serve(port)`` (``port=0`` picks a free one);
it runs in daemon threads via :class:`ThreadingHTTPServer`, so a wedged
scrape cannot stall the farm and process exit never blocks on it.  Every
error path answers JSON — unknown routes and ids are JSON 404s, bad
parameters JSON 400s, and an exception inside a handler becomes a JSON
500 instead of a torn half-response, so scrapes racing shutdowns and
failovers see well-formed answers or nothing.
"""

from __future__ import annotations

import json
import queue as queue_mod
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Dict, Tuple
from urllib.parse import parse_qsl

from .export import prometheus_text
from .propagation import build_trace_tree, list_traces

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .telemetry import Telemetry

__all__ = ["TelemetryServer"]

#: /traces responses are bounded even without an explicit ?limit=
DEFAULT_TRACES_LIMIT = 500

ROUTES = [
    "/metrics",
    "/trace/<trace_id>",
    "/traces",
    "/healthz",
    "/query",
    "/slo",
    "/stream",
]

#: /query keys that are parameters, not label filters
_QUERY_PARAMS = frozenset({"metric", "since", "until", "step", "field"})


class _Handler(BaseHTTPRequestHandler):
    # set per-server via the subclass trick in TelemetryServer
    telemetry: "Telemetry"
    closing: threading.Event

    # BaseHTTPRequestHandler logs every request to stderr by default;
    # a scraped endpoint would drown the experiment's own output
    def log_message(self, format: str, *args: Any) -> None:
        pass

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload, default=str, indent=2).encode()
        self._send(status, body, "application/json; charset=utf-8")

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path, _, query = self.path.partition("?")
        path = path.rstrip("/") or "/"
        params = dict(parse_qsl(query))
        try:
            self._route(path, params)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response
        except Exception as exc:  # noqa: BLE001 - a handler bug must not
            # tear the response: answer a well-formed JSON 500 (racing a
            # shutdown can surface transient state errors — clients must
            # see structured errors, never half-written bodies)
            try:
                self._send_json(500, {"error": "internal", "detail": repr(exc)})
            except (BrokenPipeError, ConnectionResetError, ValueError):
                pass

    def _route(self, path: str, params: Dict[str, str]) -> None:
        tel = self.telemetry
        if path == "/metrics":
            self._send(
                200,
                prometheus_text(tel.metrics).encode(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif path == "/healthz":
            store = tel.timeseries
            self._send_json(
                200,
                {
                    "status": "ok",
                    "spans": len(tel.spans),
                    "open_spans": len(tel.spans.open_spans()),
                    "traces": len(tel.spans.trace_ids()),
                    "timeseries": None
                    if store is None
                    else {
                        "scrapes": store.scrapes,
                        "metrics": len(store.metric_names()),
                        "interval": store.interval,
                        "retention": store.retention,
                    },
                    "slo": None
                    if tel.slo is None
                    else {
                        "objectives": len(tel.slo.slos),
                        "evaluations": tel.slo.evaluations,
                    },
                },
            )
        elif path == "/traces":
            try:
                limit = int(params.get("limit", DEFAULT_TRACES_LIMIT))
            except ValueError:
                self._send_json(
                    400, {"error": "bad parameter", "detail": "limit must be an int"}
                )
                return
            traces = list_traces(tel.spans.spans)
            self._send_json(
                200,
                {
                    "total": len(traces),
                    "returned": min(len(traces), max(0, limit)),
                    "traces": traces[: max(0, limit)],
                },
            )
        elif path.startswith("/trace/"):
            trace_id = path[len("/trace/"):]
            tree = build_trace_tree(tel.spans.spans, trace_id)
            if not tree:
                self._send_json(404, {"error": "unknown trace", "trace_id": trace_id})
            else:
                self._send_json(200, {"trace_id": trace_id, "tree": tree})
        elif path == "/query":
            self._query(params)
        elif path == "/slo":
            if tel.slo is None:
                self._send_json(
                    404,
                    {
                        "error": "no slo engine",
                        "detail": "attach an SLOEngine to this telemetry first",
                    },
                )
            else:
                self._send_json(200, tel.slo.describe())
        elif path == "/stream":
            self._stream(params)
        else:
            self._send_json(404, {"error": "not found", "routes": ROUTES})

    # -- /query ---------------------------------------------------------
    def _query(self, params: Dict[str, str]) -> None:
        store = self.telemetry.timeseries
        if store is None:
            self._send_json(
                404,
                {
                    "error": "no timeseries store",
                    "detail": "call Telemetry.start_timeseries() to enable /query",
                },
            )
            return
        metric = params.get("metric")
        if not metric:
            self._send_json(
                400,
                {
                    "error": "bad parameter",
                    "detail": "metric is required",
                    "metrics": store.metric_names(),
                },
            )
            return
        labels = {k: v for k, v in params.items() if k not in _QUERY_PARAMS}
        try:
            kwargs: Dict[str, Any] = {"labels": labels or None}
            for key in ("since", "until", "step"):
                if key in params:
                    kwargs[key] = float(params[key])
            if "field" in params:
                kwargs["field"] = params["field"]
            result = store.query(metric, **kwargs)
        except KeyError:
            self._send_json(
                404,
                {
                    "error": "unknown metric",
                    "metric": metric,
                    "metrics": store.metric_names(),
                },
            )
            return
        except ValueError as exc:
            self._send_json(400, {"error": "bad parameter", "detail": str(exc)})
            return
        self._send_json(200, result)

    # -- /stream (SSE) --------------------------------------------------
    def _stream(self, params: Dict[str, str]) -> None:
        broker = self.telemetry.stream
        if broker is None:
            self._send_json(
                404,
                {
                    "error": "no stream",
                    "detail": "call Telemetry.start_timeseries() to enable /stream",
                },
            )
            return
        try:
            limit = int(params["limit"]) if "limit" in params else None
        except ValueError:
            self._send_json(
                400, {"error": "bad parameter", "detail": "limit must be an int"}
            )
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        sub = broker.subscribe()
        sent = 0
        try:
            self.wfile.write(b": connected\n\n")
            self.wfile.flush()
            while not self.closing.is_set():
                try:
                    event = sub.get(timeout=0.5)
                except queue_mod.Empty:
                    # keep-alive comment: detects dead clients promptly
                    self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
                    continue
                body = json.dumps(event, default=str, separators=(",", ":"))
                self.wfile.write(
                    f"event: {event.get('type', 'message')}\ndata: {body}\n\n".encode()
                )
                self.wfile.flush()
                sent += 1
                if limit is not None and sent >= limit:
                    break
        finally:
            broker.unsubscribe(sub)


class TelemetryServer:
    """The live endpoint over one Telemetry; closes idempotently.

    Usable as a context manager::

        with tel.serve() as srv:
            print(srv.url("/metrics"))
    """

    def __init__(self, telemetry: "Telemetry", *, host: str = "127.0.0.1", port: int = 0) -> None:
        self.closing = threading.Event()
        handler = type(
            "_BoundHandler",
            (_Handler,),
            {"telemetry": telemetry, "closing": self.closing},
        )
        self.telemetry = telemetry
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"telemetry-http-{self.port}",
            daemon=True,
        )
        self._thread.start()
        self._closed = False

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def url(self, path: str = "/") -> str:
        if not path.startswith("/"):
            path = "/" + path
        return f"http://{self.host}:{self.port}{path}"

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # wake any /stream loops first so their daemon threads drain and
        # release their sockets before the listener goes down
        self.closing.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "TelemetryServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def describe(self) -> Dict[str, Any]:
        """The routes a human at the terminal wants to copy-paste."""
        return {
            "metrics": self.url("/metrics"),
            "traces": self.url("/traces"),
            "trace": self.url("/trace/<trace_id>"),
            "healthz": self.url("/healthz"),
            "query": self.url("/query?metric=<name>&since=-60&step=1"),
            "slo": self.url("/slo"),
            "stream": self.url("/stream"),
        }

