"""The Telemetry facade: one object carrying spans + metrics + a clock.

Every instrumented layer — autonomic managers, the rule engine, the
simulator, the live thread controller, the multi-concern GM — accepts an
*optional* ``Telemetry``.  The default is :data:`NOOP`, a null object
whose every operation is a cheap no-op, so instrumentation can stay
inline on hot paths without perturbing un-instrumented runs (the no-op
invariant is property-tested: a scenario produces a bit-identical event
sequence with telemetry attached or detached).

Usage::

    tel = Telemetry(SimClock(sim))
    with tel.span("mape.cycle", actor="AM_F") as cycle:
        with tel.span("mape.monitor", actor="AM_F"):
            data = abc.monitor()
        tel.event("blackout") if data is None else ...
    tel.metrics.counter("repro_ticks_total").inc()

``span`` timestamps with ``clock.now()`` (sim or wall time) and records
``clock.perf()`` cost in :attr:`Span.perf_elapsed`, so control-loop
latency is measurable even when a tick takes zero simulated seconds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Mapping, Optional

from .clock import Clock, WallClock
from .events import TraceRecorder
from .metrics import MetricsRegistry
from .propagation import TraceContext
from .spans import Span, SpanEvent, SpanRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .live import TelemetryServer

__all__ = ["Telemetry", "NullTelemetry", "NOOP"]


class _SpanContext:
    """Context manager returned by :meth:`Telemetry.span`."""

    __slots__ = ("_tel", "span", "_perf0")

    def __init__(self, tel: "Telemetry", span: Span) -> None:
        self._tel = tel
        self.span = span
        self._perf0 = 0.0

    def __enter__(self) -> Span:
        self._perf0 = self._tel.clock.perf()
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.span.perf_elapsed = self._tel.clock.perf() - self._perf0
        if exc_type is not None:
            self.span.set_attribute("error", repr(exc))
        self._tel.spans.close(self.span, self._tel.clock.now())
        return False


class Telemetry:
    """Live telemetry: a clock, a span recorder, a metrics registry.

    ``trace`` optionally links the legacy :class:`TraceRecorder` whose
    event marks belong to the same run, so exporters can emit one merged
    decision audit.
    """

    enabled = True

    def __init__(
        self,
        clock: Optional[Clock] = None,
        *,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.clock: Clock = clock if clock is not None else WallClock()
        self.spans = SpanRecorder()
        self.metrics = MetricsRegistry()
        self.trace = trace
        #: span-events recorded while no span was open
        self.orphan_events: List[SpanEvent] = []
        #: attachment points the longitudinal layer fills in lazily —
        #: kept as plain attributes so runtime hook sites can probe them
        #: with getattr and never import repro.obs.slo/timeseries
        self.timeseries = None  # TimeSeriesStore after start_timeseries()
        self.stream = None  # StreamBroker feeding /stream subscribers
        self.slo = None  # SLOEngine once objectives are installed
        self.adaptation = None  # AdaptationTracker (set by the SLOEngine)

    # -- spans -----------------------------------------------------------
    def span(
        self,
        name: str,
        *,
        actor: str = "",
        context: Optional[TraceContext] = None,
        **attributes: Any,
    ) -> _SpanContext:
        """Open a nested span for the duration of a ``with`` block."""
        span = self.spans.open(
            name, self.clock.now(), actor=actor, context=context, **attributes
        )
        return _SpanContext(self, span)

    def start_span(
        self,
        name: str,
        *,
        actor: str = "",
        context: Optional[TraceContext] = None,
        **attributes: Any,
    ) -> Span:
        """Open a *detached* span closed later by :meth:`end_span`.

        For intervals that outlive the opening frame — e.g. a violation
        report in flight between child and parent managers, or a task
        dispatch whose result arrives on another thread.  An explicit
        ``context`` pins the span into the trace the context names.
        """
        return self.spans.open(
            name,
            self.clock.now(),
            actor=actor,
            attach=False,
            context=context,
            **attributes,
        )

    def end_span(self, span: Optional[Span], **attributes: Any) -> None:
        """Close a span from :meth:`start_span` (None-safe)."""
        if span is None:
            return
        span.attributes.update(attributes)
        self.spans.close(span, self.clock.now())

    def import_span(self, record: Optional[Mapping[str, Any]]) -> Optional[Span]:
        """Re-hydrate a worker-shipped span record (None-safe)."""
        if record is None:
            return None
        return self.spans.import_span(record)

    def flush(self) -> int:
        """Close every still-open span at ``clock.now()``; returns count.

        Farm backends call this from ``shutdown()`` so abrupt stops do
        not leak open spans into exported traces.
        """
        return self.spans.flush(self.clock.now())

    # -- longitudinal surface --------------------------------------------
    def start_timeseries(
        self,
        *,
        interval: float = 1.0,
        retention: float = 600.0,
        stream: bool = True,
        scraper_thread: bool = False,
    ):
        """Attach the ring-buffer TSDB (and the ``/stream`` broker) here.

        Idempotent: a second call returns the existing store.  With
        ``scraper_thread=True`` a daemon thread scrapes on ``interval``
        wall-clock seconds; tests drive :meth:`TimeSeriesStore.scrape_once`
        themselves with a manual clock instead.
        """
        if self.timeseries is not None:
            return self.timeseries
        from .timeseries import (  # deferred: cold path, mirrors serve()
            MetricsDeltaPublisher,
            StreamBroker,
            TimeSeriesStore,
        )

        store = TimeSeriesStore(
            self.metrics, self.clock, interval=interval, retention=retention
        )
        if stream:
            self.stream = StreamBroker()
            store.add_listener(MetricsDeltaPublisher(self.stream))
        self.timeseries = store
        if scraper_thread:
            store.start()
        return store

    def stop_timeseries(self) -> None:
        """Stop the scraper thread (if any) and close open alert spans."""
        if self.slo is not None:
            self.slo.close()
        if self.timeseries is not None:
            self.timeseries.stop()

    # -- live surface ----------------------------------------------------
    def serve(self, port: int = 0, host: str = "127.0.0.1") -> "TelemetryServer":
        """Start the live HTTP surface over this telemetry.

        Serves ``/metrics`` (Prometheus text), ``/trace/<trace_id>``
        (JSON tree), ``/traces`` and ``/healthz`` from a daemon thread;
        ``port=0`` picks a free port (read it off the returned server).
        """
        from .live import TelemetryServer  # deferred: http.server is cold-path

        return TelemetryServer(self, host=host, port=port)

    # -- events ----------------------------------------------------------
    def event(self, name: str, **attributes: Any) -> None:
        """Record a point event on the innermost open span (or orphaned)."""
        current = self.spans.current
        if current is not None:
            current.add_event(name, self.clock.now(), **attributes)
        else:
            self.orphan_events.append(
                SpanEvent(self.clock.now(), name, dict(attributes))
            )


# ----------------------------------------------------------------------
# the null object
# ----------------------------------------------------------------------


class _NullSpan:
    """Inert span: absorbs attribute/event calls, reports nothing."""

    __slots__ = ()
    span_id = ""
    parent_id = None
    trace_id = ""
    name = ""
    actor = ""
    start = 0.0
    end = 0.0
    perf_elapsed = 0.0
    duration = 0.0
    finished = True
    attributes: dict = {}
    events: list = []

    def set_attribute(self, key: str, value: Any) -> "_NullSpan":
        return self

    def add_event(self, name: str, time: float = 0.0, **attributes: Any) -> None:
        return None


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class _NullInstrument:
    """Stands in for Counter/Gauge/Histogram *and* their families."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0

    def labels(self, **labels: Any) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


class _NullMetricsRegistry:
    __slots__ = ()

    def counter(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", *, buckets: Any = None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def families(self) -> list:
        return []


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()
_NULL_INSTRUMENT = _NullInstrument()
_NULL_METRICS = _NullMetricsRegistry()


class NullTelemetry:
    """The do-nothing default: every operation is O(1) and allocation-free.

    Instrumented code never needs a ``telemetry is not None`` branch —
    it can call the same API unconditionally; for the very hottest paths
    the :attr:`enabled` flag allows skipping argument construction.
    """

    enabled = False
    trace = None
    metrics = _NULL_METRICS
    orphan_events: list = []
    timeseries = None
    stream = None
    slo = None
    adaptation = None

    def span(self, name: str, *, actor: str = "", **attributes: Any) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def start_span(self, name: str, *, actor: str = "", **attributes: Any) -> None:
        return None

    def end_span(self, span: Any, **attributes: Any) -> None:
        return None

    def event(self, name: str, **attributes: Any) -> None:
        return None

    def import_span(self, record: Any) -> None:
        return None

    def flush(self) -> int:
        return 0

    def start_timeseries(self, **kwargs: Any) -> None:
        return None

    def stop_timeseries(self) -> None:
        return None

    def serve(self, port: int = 0, host: str = "127.0.0.1") -> None:
        raise RuntimeError(
            "NullTelemetry has nothing to serve; construct a Telemetry() "
            "and pass it to the farm/controller to expose live telemetry"
        )


#: module-level singleton used as the default everywhere
NOOP = NullTelemetry()
