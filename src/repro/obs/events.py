"""Event marks and series recording: the data behind every figure.

Figure 3 and Figure 4 in the paper are *time-series plots of manager
activity*: event marks (``contrLow``, ``raiseViol``, ``incRate``,
``addWorker``, ``rebalance``, ``endStream``, …) on one axis and numeric
series (throughput, input rate, cores in use) on others.  The
:class:`TraceRecorder` collects both kinds of data during a run; the
benchmark harnesses then render them as aligned text timelines and CSV.

The recorder is intentionally passive — pure appends, no side effects —
so attaching it never perturbs scenario dynamics.  It lives in the
substrate-agnostic ``repro.obs`` package because the same recorder
serves sim-time and wall-clock runs; :mod:`repro.sim.trace` re-exports
it for backward compatibility.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["EventMark", "TraceRecorder"]


@dataclass(frozen=True)
class EventMark:
    """One manager event: who emitted what, when, with what detail."""

    time: float
    actor: str
    name: str
    detail: Mapping[str, Any] = field(default_factory=dict)

    #: fixed column widths used by :meth:`__str__`; wide enough for
    #: nine-digit timestamps and twelve-character actor names so stacked
    #: marks stay aligned (longer actors are tail-truncated, keeping the
    #: distinguishing suffix of names like ``AM_app.filter.W10``)
    TIME_WIDTH = 12
    ACTOR_WIDTH = 12

    def __str__(self) -> str:
        actor = self.actor
        if len(actor) > self.ACTOR_WIDTH:
            actor = "~" + actor[-(self.ACTOR_WIDTH - 1):]
        extra = f" {dict(self.detail)}" if self.detail else ""
        return (
            f"[{self.time:{self.TIME_WIDTH}.2f}] "
            f"{actor:>{self.ACTOR_WIDTH}}: {self.name}{extra}"
        )


class TraceRecorder:
    """Collects event marks and sampled numeric series for one run."""

    def __init__(self) -> None:
        self.events: List[EventMark] = []
        self.series: Dict[str, List[Tuple[float, float]]] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def mark(self, time: float, actor: str, name: str, **detail: Any) -> EventMark:
        """Record a manager/controller event."""
        ev = EventMark(time, actor, name, dict(detail))
        self.events.append(ev)
        return ev

    def sample(self, series: str, time: float, value: float) -> None:
        """Record one (time, value) point of a numeric series."""
        self.series.setdefault(series, []).append((time, float(value)))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def events_of(self, actor: Optional[str] = None, name: Optional[str] = None) -> List[EventMark]:
        """Events filtered by actor and/or event name, in time order."""
        out = self.events
        if actor is not None:
            out = [e for e in out if e.actor == actor]
        if name is not None:
            out = [e for e in out if e.name == name]
        return list(out)

    def event_names(self, actor: Optional[str] = None) -> List[str]:
        """Event names in order of occurrence (optionally one actor)."""
        return [e.name for e in self.events_of(actor)]

    def first(self, name: str, actor: Optional[str] = None) -> Optional[EventMark]:
        """First occurrence of event ``name`` (None if absent)."""
        for e in self.events:
            if e.name == name and (actor is None or e.actor == actor):
                return e
        return None

    def count(self, name: str, actor: Optional[str] = None) -> int:
        """Number of occurrences of event ``name``."""
        return len(self.events_of(actor, name))

    def series_values(self, series: str) -> List[Tuple[float, float]]:
        """The (time, value) points of a series ([] if unknown)."""
        return list(self.series.get(series, []))

    def value_at(self, series: str, time: float) -> Optional[float]:
        """Last sampled value of ``series`` at or before ``time``."""
        best: Optional[float] = None
        for t, v in self.series.get(series, []):
            if t <= time:
                best = v
            else:
                break
        return best

    def final_value(self, series: str) -> Optional[float]:
        """Most recent sample of ``series`` (None if empty)."""
        pts = self.series.get(series)
        return pts[-1][1] if pts else None

    def assert_order(self, names: Sequence[str], actor: Optional[str] = None) -> bool:
        """True if ``names`` occur in this relative order (subsequence)."""
        stream = iter(self.event_names(actor))
        return all(any(n == got for got in stream) for n in names)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_csv(self, series: str) -> str:
        """CSV text (time,value) for one series."""
        buf = io.StringIO()
        buf.write("time,value\n")
        for t, v in self.series.get(series, []):
            buf.write(f"{t:.6f},{v:.6f}\n")
        return buf.getvalue()

    def events_csv(self) -> str:
        """CSV text (time,actor,event,detail) of every event mark."""
        buf = io.StringIO()
        buf.write("time,actor,event,detail\n")
        for e in self.events:
            detail = ";".join(f"{k}={v}" for k, v in e.detail.items())
            buf.write(f"{e.time:.6f},{e.actor},{e.name},{detail}\n")
        return buf.getvalue()
