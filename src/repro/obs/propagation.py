"""Trace-context propagation: one task, one causal tree, any substrate.

PR 1's spans stop at the process boundary: a ``ProcessFarm`` child or a
``dist_worker`` subprocess executes tasks the coordinator's
:class:`~repro.obs.spans.SpanRecorder` never sees.  This module carries
the missing link — a W3C-traceparent-style context (trace id, span id,
parent id as stable hex strings) small enough to ride inside every task
envelope, across ``multiprocessing`` queues and TCP frames alike, plus
the machinery to re-parent worker-side span records back into the
coordinator's trace store.

Identifiers are *deterministic*, never random: local spans keep the
recorder's sequential counter (rendered as fixed-width hex), while spans
that must be minted on both sides of a process boundary hash a stable
seed (``"<farm>/task/<n>"``, ``"exec:<worker>:<parent-span>"``) with
SHA-256.  A deterministic scenario therefore still produces a
bit-identical trace — the reproducibility property the DES relies on —
and the same task always lands in the same trace, however many times it
is replayed.

The wire format follows the W3C ``traceparent`` header shape::

    00-<32 hex trace-id>-<16 hex span-id>-01

so a frame dumped off the TCP socket is readable with standard tracing
eyes, even though no OpenTelemetry dependency is involved.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "TRACEPARENT_VERSION",
    "stable_trace_id",
    "stable_span_id",
    "TraceContext",
    "task_context",
    "make_span_record",
    "build_trace_tree",
    "list_traces",
]

TRACEPARENT_VERSION = "00"

_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})"
    r"-(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)


def stable_trace_id(seed: str) -> str:
    """A 32-hex-char trace id derived deterministically from ``seed``."""
    return hashlib.sha256(("trace:" + seed).encode()).hexdigest()[:32]


def stable_span_id(seed: str) -> str:
    """A 16-hex-char span id derived deterministically from ``seed``."""
    return hashlib.sha256(("span:" + seed).encode()).hexdigest()[:16]


@dataclass(frozen=True)
class TraceContext:
    """The identity of one span, plus enough lineage to nest under it.

    A context *names the span it belongs to*: ``span_id`` is that span's
    own id, ``parent_id`` its parent's (None at a trace root).  Deriving
    a child is :meth:`child`; crossing a process boundary is
    :meth:`traceparent` / :meth:`from_traceparent`.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    def child(self, seed: str) -> "TraceContext":
        """The context of a child span whose id hashes ``seed``."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=stable_span_id(seed),
            parent_id=self.span_id,
        )

    def traceparent(self) -> str:
        """This context as a W3C-style ``traceparent`` string."""
        return f"{TRACEPARENT_VERSION}-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def from_traceparent(cls, header: Optional[str]) -> Optional["TraceContext"]:
        """Parse a ``traceparent`` string; None (or garbage) -> None.

        The parsed context names the *remote parent*: a worker that
        receives it opens its own span as a child, so ``span_id`` here
        becomes the new span's ``parent_id``.
        """
        if not header:
            return None
        m = _TRACEPARENT_RE.match(header.strip().lower())
        if m is None or m.group("version") == "ff":
            # "ff" is the one version value the W3C spec forbids outright
            return None
        return cls(trace_id=m.group("trace_id"), span_id=m.group("span_id"))


def task_context(farm_name: str, task_id: int) -> TraceContext:
    """The root context of one task's trace: stable across replays.

    Every dispatch attempt, worker execution and result delivery of a
    task hangs off this one root, whichever backend carries it.
    """
    seed = f"{farm_name}/task/{task_id}"
    return TraceContext(
        trace_id=stable_trace_id(seed), span_id=stable_span_id(seed)
    )


# ----------------------------------------------------------------------
# worker-side span records
# ----------------------------------------------------------------------

def make_span_record(
    ctx: TraceContext,
    name: str,
    *,
    actor: str,
    start: float,
    end: float,
    attributes: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """A finished span as a JSON-safe dict a result frame can carry.

    The coordinator re-hydrates it with
    :meth:`~repro.obs.telemetry.Telemetry.import_span`, landing it in the
    same trace store as the locally recorded spans.
    """
    return {
        "trace_id": ctx.trace_id,
        "span_id": ctx.span_id,
        "parent_id": ctx.parent_id,
        "name": name,
        "actor": actor,
        "start": start,
        "end": end,
        "attributes": dict(attributes or {}),
    }


# ----------------------------------------------------------------------
# trace trees
# ----------------------------------------------------------------------

def build_trace_tree(spans: Iterable[Any], trace_id: str) -> List[Dict[str, Any]]:
    """The spans of one trace as a nested JSON-ready forest.

    Each node is the span's exported dict plus a ``children`` list,
    children ordered by start time.  A span whose parent is missing from
    the trace (or would form a cycle) surfaces as a root rather than
    vanishing, so a partially shipped trace still renders.
    """
    from .export import span_to_dict  # local import: export imports us

    members = [s for s in spans if getattr(s, "trace_id", "") == trace_id]
    nodes: Dict[str, Dict[str, Any]] = {}
    for span in members:
        node = span_to_dict(span)
        node["children"] = []
        nodes[span.span_id] = node
    roots: List[Dict[str, Any]] = []
    for span in members:
        node = nodes[span.span_id]
        parent = span.parent_id
        if parent is not None and parent in nodes and parent != span.span_id:
            nodes[parent]["children"].append(node)
        else:
            roots.append(node)
    # a cycle (corrupt import) leaves its members unreachable from any
    # root: promote the earliest-starting span of each orphan cycle
    reachable: set = set()

    def mark(node: Dict[str, Any]) -> None:
        if node["id"] in reachable:
            return
        reachable.add(node["id"])
        for child in node["children"]:
            mark(child)

    for root in roots:
        mark(root)
    for span in sorted(members, key=lambda s: (s.start, s.span_id)):
        if span.span_id not in reachable:
            node = nodes[span.span_id]
            if node in nodes.get(span.parent_id, {}).get("children", []):
                nodes[span.parent_id]["children"].remove(node)
            roots.append(node)
            mark(node)
    for node in nodes.values():
        node["children"].sort(key=lambda n: (n["start"], n["id"]))
    roots.sort(key=lambda n: (n["start"], n["id"]))
    return roots


def list_traces(spans: Iterable[Any]) -> List[Dict[str, Any]]:
    """Summaries of every distinct trace, in order of first appearance."""
    summaries: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        trace_id = getattr(span, "trace_id", "")
        if not trace_id:
            continue
        entry = summaries.setdefault(
            trace_id,
            {"trace_id": trace_id, "spans": 0, "root": None, "start": span.start},
        )
        entry["spans"] += 1
        entry["start"] = min(entry["start"], span.start)
        if span.parent_id is None and entry["root"] is None:
            entry["root"] = span.name
    return list(summaries.values())
