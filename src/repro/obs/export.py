"""Exporters: JSONL decision audits, Prometheus text, ASCII timelines.

Three consumers, three formats:

* :func:`trace_jsonl` — the full decision audit of a run as one JSON
  object per line: spans (with their point events), legacy event marks,
  and optionally the sampled numeric series.  This is what
  ``python -m repro.experiments.fig4 --trace-out audit.jsonl`` writes.
* :func:`prometheus_text` — a :class:`~repro.obs.metrics.MetricsRegistry`
  in the Prometheus text exposition format (``# HELP``/``# TYPE`` plus
  samples; histograms as cumulative ``_bucket{le=…}`` series).
* :func:`ascii_timeline` / :func:`ascii_series` — the textual figure
  renderers behind the regenerated Figures 3 and 4 (these moved here
  from ``repro.sim.trace``, which re-exports them unchanged).
"""

from __future__ import annotations

import io
import json
import math
from typing import IO, Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .events import EventMark, TraceRecorder
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .spans import Span
from .telemetry import Telemetry

__all__ = [
    "span_to_dict",
    "span_from_dict",
    "event_mark_to_dict",
    "trace_jsonl",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "prometheus_text",
    "ascii_timeline",
    "ascii_series",
]


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------

def span_to_dict(span: Span) -> Dict[str, Any]:
    """A span as a JSON-ready dict (schema: ``type == "span"``)."""
    return {
        "type": "span",
        "id": span.span_id,
        "parent": span.parent_id,
        "trace_id": span.trace_id,
        "name": span.name,
        "actor": span.actor,
        "start": span.start,
        "end": span.end,
        "duration": span.duration,
        "perf_elapsed": span.perf_elapsed,
        "attributes": dict(span.attributes),
        "events": [
            {"time": ev.time, "name": ev.name, "attributes": dict(ev.attributes)}
            for ev in span.events
        ],
    }


def span_from_dict(record: Dict[str, Any]) -> Span:
    """The inverse of :func:`span_to_dict`: a JSONL record back to a Span.

    The round trip is exact for everything JSON can carry — ids, trace
    membership, lineage, timestamps, attributes and events — so an
    exported audit re-imports into an identical span tree (rich Python
    attribute *values* arrive as the strings ``json.dumps(default=str)``
    rendered them to, which is the exported form's own fidelity).
    """
    span = Span(
        span_id=str(record["id"]),
        parent_id=None if record.get("parent") is None else str(record["parent"]),
        name=record.get("name", ""),
        actor=record.get("actor", ""),
        start=record.get("start", 0.0),
        end=record.get("end"),
        attributes=dict(record.get("attributes") or {}),
        perf_elapsed=record.get("perf_elapsed"),
        trace_id=str(record.get("trace_id", "")),
    )
    for ev in record.get("events") or ():
        span.add_event(
            ev.get("name", ""), ev.get("time", 0.0), **dict(ev.get("attributes") or {})
        )
    return span


def read_trace_jsonl(path_or_file: Union[str, "IO[str]"]) -> List[Span]:
    """Load the spans back out of a :func:`trace_jsonl` audit.

    Non-span records (event marks, orphan span-events, series samples)
    are skipped; spans return in file order, which is recording order.
    """
    if hasattr(path_or_file, "read"):
        text = path_or_file.read()
    else:
        with open(path_or_file) as fh:
            text = fh.read()
    spans: List[Span] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("type") == "span":
            spans.append(span_from_dict(record))
    return spans


def event_mark_to_dict(mark: EventMark) -> Dict[str, Any]:
    """A legacy event mark as a JSON-ready dict (``type == "event"``)."""
    return {
        "type": "event",
        "time": mark.time,
        "actor": mark.actor,
        "name": mark.name,
        "detail": dict(mark.detail),
    }


def _dump(record: Dict[str, Any]) -> str:
    # default=str absorbs enums, contracts and other rich detail values
    return json.dumps(record, default=str, sort_keys=False)


def trace_jsonl(
    telemetry: Optional[Telemetry] = None,
    recorder: Optional[TraceRecorder] = None,
    *,
    include_series: bool = False,
) -> str:
    """The merged decision audit of a run, one JSON object per line.

    Records appear grouped by kind — event marks (time-ordered already),
    then spans in creation order (creation order *is* start order), then
    orphan span-events, then series samples — each self-describing via
    its ``type`` field, so consumers can stream-filter.
    """
    if recorder is None and telemetry is not None:
        recorder = telemetry.trace
    lines: List[str] = []
    if recorder is not None:
        for mark in recorder.events:
            lines.append(_dump(event_mark_to_dict(mark)))
    if telemetry is not None:
        for span in telemetry.spans.spans:
            lines.append(_dump(span_to_dict(span)))
        for ev in telemetry.orphan_events:
            lines.append(
                _dump(
                    {
                        "type": "span_event",
                        "time": ev.time,
                        "name": ev.name,
                        "attributes": dict(ev.attributes),
                    }
                )
            )
    if include_series and recorder is not None:
        for series, points in recorder.series.items():
            for t, v in points:
                lines.append(
                    _dump({"type": "sample", "series": series, "time": t, "value": v})
                )
    return "\n".join(lines) + ("\n" if lines else "")


def write_trace_jsonl(
    path_or_file: Union[str, "IO[str]"],
    telemetry: Optional[Telemetry] = None,
    recorder: Optional[TraceRecorder] = None,
    *,
    include_series: bool = False,
) -> int:
    """Write :func:`trace_jsonl` output to a path or open text file.

    Returns the number of records written.
    """
    text = trace_jsonl(telemetry, recorder, include_series=include_series)
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
    else:
        with open(path_or_file, "w") as fh:
            fh.write(text)
    return text.count("\n")


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _fmt_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _fmt_labels(labels: Sequence[Tuple[str, str]], extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{k}="{str(v).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for k, v in pairs
    )
    return "{" + body + "}"


def _fmt_le(bound: float) -> str:
    return "+Inf" if bound == math.inf else f"{bound:g}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render a metrics registry in the Prometheus text format."""
    buf = io.StringIO()
    for family in registry.families():
        if family.help:
            buf.write(f"# HELP {family.name} {family.help}\n")
        buf.write(f"# TYPE {family.name} {family.kind}\n")
        for labels, instrument in family.samples():
            if isinstance(instrument, Histogram):
                for bound, cum in instrument.cumulative():
                    lbl = _fmt_labels(labels, [("le", _fmt_le(bound))])
                    buf.write(f"{family.name}_bucket{lbl} {cum}\n")
                lbl = _fmt_labels(labels)
                buf.write(f"{family.name}_sum{lbl} {_fmt_value(instrument.sum)}\n")
                buf.write(f"{family.name}_count{lbl} {instrument.count}\n")
            elif isinstance(instrument, (Counter, Gauge)):
                lbl = _fmt_labels(labels)
                buf.write(f"{family.name}{lbl} {_fmt_value(instrument.value)}\n")
    return buf.getvalue()


# ----------------------------------------------------------------------
# ASCII figure renderers (exact behaviour of the original sim.trace ones)
# ----------------------------------------------------------------------

def ascii_timeline(
    events: Iterable[EventMark],
    *,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
    width: int = 72,
) -> str:
    """Render event marks as per-event-name timeline rows.

    One row per distinct event name; a ``*`` wherever the event occurred.
    This is the textual analogue of the event scatter rows in Figure 4's
    first two graphs.
    """
    evs = sorted(events, key=lambda e: (e.time, e.name))
    if not evs:
        return "(no events)\n"
    lo = t0 if t0 is not None else evs[0].time
    hi = t1 if t1 is not None else evs[-1].time
    span = max(hi - lo, 1e-9)
    names: List[str] = []
    for e in evs:
        if e.name not in names:
            names.append(e.name)
    label_w = max(len(n) for n in names) + 1
    lines = []
    for name in names:
        row = [" "] * width
        for e in evs:
            if e.name != name:
                continue
            pos = int((e.time - lo) / span * (width - 1))
            row[min(max(pos, 0), width - 1)] = "*"
        lines.append(f"{name:>{label_w}} |{''.join(row)}|")
    scale = f"{'':>{label_w}}  {lo:<10.1f}{'':^{max(width - 22, 0)}}{hi:>10.1f}"
    return "\n".join(lines + [scale]) + "\n"


def ascii_series(
    points: Sequence[Tuple[float, float]],
    *,
    height: int = 10,
    width: int = 72,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    hlines: Sequence[float] = (),
    title: str = "",
) -> str:
    """Render one numeric series as a coarse ASCII chart.

    ``hlines`` draws dashed reference lines (the contract "stripe" of
    Figure 4's third graph).
    """
    if not points:
        return f"{title}: (no data)\n"
    ts = [p[0] for p in points]
    vs = [p[1] for p in points]
    vlo = lo if lo is not None else min(min(vs), *(list(hlines) or [min(vs)]))
    vhi = hi if hi is not None else max(max(vs), *(list(hlines) or [max(vs)]))
    if vhi <= vlo:
        vhi = vlo + 1.0
    t_lo, t_hi = ts[0], ts[-1]
    t_span = max(t_hi - t_lo, 1e-9)
    grid = [[" "] * width for _ in range(height)]

    def yrow(v: float) -> int:
        frac = (v - vlo) / (vhi - vlo)
        return min(height - 1, max(0, int(round((1 - frac) * (height - 1)))))

    for h in hlines:
        r = yrow(h)
        for c in range(width):
            if grid[r][c] == " ":
                grid[r][c] = "-"
    for t, v in points:
        c = min(width - 1, max(0, int((t - t_lo) / t_span * (width - 1))))
        grid[yrow(v)][c] = "o"
    out = [title] if title else []
    for i, row in enumerate(grid):
        v = vhi - (vhi - vlo) * i / (height - 1)
        out.append(f"{v:8.2f} |{''.join(row)}|")
    out.append(f"{'':8} {t_lo:<10.1f}{'':^{max(width - 20, 0)}}{t_hi:>10.1f}")
    return "\n".join(out) + "\n"
