"""``python -m repro.obs.top`` — a curses-free ASCII dashboard.

Points at a running :class:`~repro.obs.live.TelemetryServer` and redraws
one frame per interval: farm throughput with sparklines, worker counts,
tenant backlogs, SLO burn rates and open alerts.  Pure line-redraw (the
cursor jumps back up with one escape sequence when stdout is a TTY), so
it works over ssh, inside tmux and in CI logs alike; with ``NO_COLOR``
set or stdout redirected the frames are plain ASCII with no escape
codes at all.

Usage::

    python -m repro.experiments.fig4 --backend=dist --serve-telemetry &
    python -m repro.obs.top --url http://127.0.0.1:9177

Rendering is split from fetching so tests (and the CI smoke job) can
build a frame from a scripted snapshot without any HTTP server:
:func:`render_frame` is a pure function of the snapshot dict.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["fetch_snapshot", "render_frame", "main"]

#: sparkline ramp, lowest to highest (pure ASCII on purpose)
_RAMP = " .:-=+*#%@"

_ANSI = {
    "reset": "\x1b[0m",
    "bold": "\x1b[1m",
    "dim": "\x1b[2m",
    "red": "\x1b[31m",
    "yellow": "\x1b[33m",
    "green": "\x1b[32m",
    "cyan": "\x1b[36m",
}

_LEVEL_PAINT = {"page": "red", "warn": "yellow", "ok": "green"}

#: the metric queries one frame is built from
_FRAME_QUERIES = (
    ("farm_rate", "repro_farm_departure_rate", {"since": "-30", "field": "last"}),
    ("farm_workers", "repro_farm_workers", {"since": "-30", "field": "last"}),
    ("tenant_backlog", "repro_tenant_backlog", {"since": "-30", "field": "last"}),
)


def _get_json(url: str, timeout: float) -> Optional[Dict[str, Any]]:
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return json.loads(resp.read().decode())
    except (urllib.error.URLError, OSError, ValueError):
        return None


def fetch_snapshot(base_url: str, *, timeout: float = 2.0) -> Dict[str, Any]:
    """Assemble one dashboard snapshot from a live telemetry endpoint."""
    base = base_url.rstrip("/")
    snapshot: Dict[str, Any] = {
        "url": base,
        "healthz": _get_json(f"{base}/healthz", timeout),
        "slo": _get_json(f"{base}/slo", timeout),
        "series": {},
    }
    for key, metric, params in _FRAME_QUERIES:
        qs = "&".join([f"metric={metric}"] + [f"{k}={v}" for k, v in params.items()])
        snapshot["series"][key] = _get_json(f"{base}/query?{qs}", timeout)
    return snapshot


def sparkline(points: Sequence[Sequence[float]], width: int = 16) -> str:
    """Render ``[[t, v], …]`` as a fixed-width ASCII sparkline."""
    values = [p[1] for p in points][-width:]
    if not values:
        return " " * width
    lo, hi = min(values), max(values)
    span = hi - lo
    out = []
    for v in values:
        frac = 0.5 if span <= 0 else (v - lo) / span
        out.append(_RAMP[min(len(_RAMP) - 1, int(frac * (len(_RAMP) - 1) + 0.5))])
    return "".join(out).rjust(width)


def _paint(text: str, code: str, color: bool) -> str:
    if not color or code not in _ANSI:
        return text
    return f"{_ANSI[code]}{text}{_ANSI['reset']}"


def render_frame(
    snapshot: Dict[str, Any], *, width: int = 78, color: bool = False
) -> str:
    """One full dashboard frame (a pure function — no I/O, no clock)."""
    lines: List[str] = []
    rule = "-" * width

    health = snapshot.get("healthz")
    header = f"repro.obs.top — {snapshot.get('url', '?')}"
    lines.append(_paint(header[:width], "bold", color))
    if health is None:
        lines.append(_paint("  telemetry endpoint unreachable", "red", color))
        return "\n".join(lines) + "\n"
    ts = health.get("timeseries")
    stats = (
        f"  spans={health.get('spans', 0)}"
        f" open={health.get('open_spans', 0)}"
        f" traces={health.get('traces', 0)}"
    )
    if ts:
        stats += f" scrapes={ts.get('scrapes', 0)} metrics={ts.get('metrics', 0)}"
    lines.append(_paint(stats, "dim", color))
    lines.append(rule)

    # -- farms ----------------------------------------------------------
    rates = _series_map(snapshot, "farm_rate", "manager")
    workers = _series_map(snapshot, "farm_workers", "manager")
    lines.append(_paint("FARMS", "cyan", color))
    if not rates:
        lines.append("  (no farm gauges yet)")
    for manager in sorted(rates):
        points = rates[manager]
        last = points[-1][1] if points else 0.0
        wpoints = workers.get(manager, [])
        nworkers = int(wpoints[-1][1]) if wpoints else 0
        lines.append(
            f"  {manager:<22.22s} {sparkline(points)} "
            f"{last:8.1f} t/s  workers={nworkers}"
        )
    lines.append(rule)

    # -- tenants --------------------------------------------------------
    backlogs = _series_map(snapshot, "tenant_backlog", "tenant")
    if backlogs:
        lines.append(_paint("TENANTS", "cyan", color))
        for tenant in sorted(backlogs):
            points = backlogs[tenant]
            last = int(points[-1][1]) if points else 0
            lines.append(f"  {tenant:<22.22s} {sparkline(points)} backlog={last}")
        lines.append(rule)

    # -- SLOs -----------------------------------------------------------
    slo = snapshot.get("slo")
    lines.append(_paint("SLOs", "cyan", color))
    if not slo or "objectives" not in slo:
        lines.append("  (no slo engine attached)")
    else:
        open_alerts = slo.get("open_alerts", 0)
        summary = f"  objectives={len(slo['objectives'])} open_alerts={open_alerts}"
        lines.append(
            _paint(summary, "red" if open_alerts else "dim", color)
        )
        for obj in slo["objectives"]:
            level = obj.get("level", "ok")
            tag = _paint(f"[{level:^4s}]", _LEVEL_PAINT.get(level, "dim"), color)
            lines.append(
                f"  {tag} {obj['name']:<20.20s}"
                f" burn fast={obj.get('burn_fast', 0.0):6.2f}"
                f" slow={obj.get('burn_slow', 0.0):6.2f}"
                f" budget={obj.get('budget_remaining', 1.0):7.2%}"
                f" viol={obj.get('violation_seconds', 0.0):.2f}s"
            )
    return "\n".join(lines) + "\n"


def _series_map(
    snapshot: Dict[str, Any], key: str, label: str
) -> Dict[str, List[List[float]]]:
    payload = (snapshot.get("series") or {}).get(key)
    out: Dict[str, List[List[float]]] = {}
    if not payload:
        return out
    for series in payload.get("series", []):
        name = series.get("labels", {}).get(label, "") or "(all)"
        out[name] = series.get("points", [])
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.top", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:9177",
        help="telemetry endpoint base URL (default: %(default)s)",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0, help="seconds between frames"
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=None,
        help="stop after N frames (default: run until interrupted)",
    )
    parser.add_argument(
        "--once", action="store_true", help="render a single frame and exit"
    )
    parser.add_argument("--width", type=int, default=78)
    args = parser.parse_args(argv)

    import os

    color = sys.stdout.isatty() and not os.environ.get("NO_COLOR")
    frames = 1 if args.once else args.frames
    count = 0
    prev_lines = 0
    try:
        while frames is None or count < frames:
            frame = render_frame(
                fetch_snapshot(args.url), width=args.width, color=color
            )
            if color and prev_lines:
                # line-redraw: jump back to the top of the previous frame
                sys.stdout.write(f"\x1b[{prev_lines}F\x1b[J")
            sys.stdout.write(frame)
            sys.stdout.flush()
            prev_lines = frame.count("\n")
            count += 1
            if frames is not None and count >= frames:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via -m smoke test
    sys.exit(main())
