"""repro.obs — the unified observability subsystem.

One substrate-agnostic telemetry spine for the whole stack:

* **clocks** (:mod:`repro.obs.clock`) — the same tracer timestamps
  sim-time spans under the DES and wall-clock spans under the live
  thread runtime, by injecting a :class:`Clock`;
* **spans** (:mod:`repro.obs.spans`) — hierarchical named intervals with
  parents, attributes and point events; every MAPE phase, rule-engine
  invocation, contract split, violation propagation hop and two-phase
  intent round of the autonomic managers becomes a span or span-event;
* **event marks** (:mod:`repro.obs.events`) — the flat
  ``(time, actor, name)`` records behind the reproduced figures
  (formerly ``repro.sim.trace``, which remains as a shim);
* **metrics** (:mod:`repro.obs.metrics`) — a registry of counters,
  gauges and fixed-bucket histograms: control-loop latency, queue
  variance, per-worker service time, reconfiguration blackout duration;
* **exporters** (:mod:`repro.obs.export`) — JSONL decision audits,
  Prometheus text exposition, ASCII timeline/series figures.

Everything hangs off a :class:`Telemetry` object that instrumented
layers accept optionally; the :data:`NOOP` null telemetry is the
default, so attaching observability never perturbs dynamics.
"""

from .clock import Clock, ManualClock, SimClock, WallClock
from .events import EventMark, TraceRecorder
from .export import (
    ascii_series,
    ascii_timeline,
    prometheus_text,
    span_to_dict,
    trace_jsonl,
    write_trace_jsonl,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from .spans import Span, SpanEvent, SpanRecorder
from .telemetry import NOOP, NullTelemetry, Telemetry

__all__ = [
    # clocks
    "Clock",
    "SimClock",
    "WallClock",
    "ManualClock",
    # events
    "EventMark",
    "TraceRecorder",
    # spans
    "Span",
    "SpanEvent",
    "SpanRecorder",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    # telemetry
    "Telemetry",
    "NullTelemetry",
    "NOOP",
    # export
    "span_to_dict",
    "trace_jsonl",
    "write_trace_jsonl",
    "prometheus_text",
    "ascii_timeline",
    "ascii_series",
]
