"""repro.obs — the unified observability subsystem.

One substrate-agnostic telemetry spine for the whole stack:

* **clocks** (:mod:`repro.obs.clock`) — the same tracer timestamps
  sim-time spans under the DES and wall-clock spans under the live
  thread runtime, by injecting a :class:`Clock`;
* **spans** (:mod:`repro.obs.spans`) — hierarchical named intervals with
  parents, attributes and point events; every MAPE phase, rule-engine
  invocation, contract split, violation propagation hop and two-phase
  intent round of the autonomic managers becomes a span or span-event;
* **event marks** (:mod:`repro.obs.events`) — the flat
  ``(time, actor, name)`` records behind the reproduced figures
  (formerly ``repro.sim.trace``, which remains as a shim);
* **metrics** (:mod:`repro.obs.metrics`) — a registry of counters,
  gauges and fixed-bucket histograms: control-loop latency, queue
  variance, per-worker service time, reconfiguration blackout duration;
* **exporters** (:mod:`repro.obs.export`) — JSONL decision audits,
  Prometheus text exposition, ASCII timeline/series figures;
* **propagation** (:mod:`repro.obs.propagation`) — W3C-traceparent-style
  trace context carried inside every task envelope, across process
  queues and TCP frames, so a task's submit → dispatch → (crash →
  replay)* → exec → result is one causal tree on every backend;
* **live surface** (:mod:`repro.obs.live`) — a stdlib ``http.server``
  endpoint (``Telemetry.serve(port)``) exposing ``/metrics``,
  ``/trace/<trace_id>``, ``/traces``, ``/healthz``, ``/query``, ``/slo``
  and an SSE ``/stream`` while a farm runs;
* **time series** (:mod:`repro.obs.timeseries`) — a fixed-retention
  ring-buffer TSDB scraping the registry on an injectable-clock
  interval: counter rates, gauge history, windowed histogram quantiles;
* **SLOs** (:mod:`repro.obs.slo`) — objectives compiled straight from
  the live SLA contracts, scored with multi-window multi-burn-rate
  rules, error budgets and adaptation-latency timestamps;
* **dashboard** (:mod:`repro.obs.top`) — ``python -m repro.obs.top``
  renders a curses-free ASCII view of farms, tenants, burn rates and
  open alerts against a running endpoint;
* **explain** (:mod:`repro.obs.explain`) — ``python -m repro.obs.explain
  audit.jsonl`` reconstructs the causal chain of an actuation or task
  from an exported trace (``--slo`` narrates alert→actuation→recovery).

Everything hangs off a :class:`Telemetry` object that instrumented
layers accept optionally; the :data:`NOOP` null telemetry is the
default, so attaching observability never perturbs dynamics.
"""

from .clock import Clock, ManualClock, SimClock, WallClock
from .events import EventMark, TraceRecorder
from .export import (
    ascii_series,
    ascii_timeline,
    prometheus_text,
    read_trace_jsonl,
    span_from_dict,
    span_to_dict,
    trace_jsonl,
    write_trace_jsonl,
)
from .live import TelemetryServer
from .propagation import (
    TraceContext,
    build_trace_tree,
    list_traces,
    make_span_record,
    stable_span_id,
    stable_trace_id,
    task_context,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from .slo import (
    SLO,
    AdaptationTracker,
    BurnWindows,
    SLOEngine,
    slo_from_contract,
    slos_for_sharded,
)
from .spans import Span, SpanEvent, SpanRecorder
from .telemetry import NOOP, NullTelemetry, Telemetry
from .timeseries import HistogramSnapshot, StreamBroker, TimeSeriesStore

__all__ = [
    # clocks
    "Clock",
    "SimClock",
    "WallClock",
    "ManualClock",
    # events
    "EventMark",
    "TraceRecorder",
    # spans
    "Span",
    "SpanEvent",
    "SpanRecorder",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    # telemetry
    "Telemetry",
    "NullTelemetry",
    "NOOP",
    # export
    "span_to_dict",
    "span_from_dict",
    "trace_jsonl",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "prometheus_text",
    "ascii_timeline",
    "ascii_series",
    # propagation
    "TraceContext",
    "task_context",
    "stable_trace_id",
    "stable_span_id",
    "make_span_record",
    "build_trace_tree",
    "list_traces",
    # live surface
    "TelemetryServer",
    # time series
    "TimeSeriesStore",
    "HistogramSnapshot",
    "StreamBroker",
    # SLOs
    "SLO",
    "SLOEngine",
    "BurnWindows",
    "AdaptationTracker",
    "slo_from_contract",
    "slos_for_sharded",
]
