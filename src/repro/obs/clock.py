"""Pluggable time sources for the observability layer.

The same tracer must be able to timestamp spans in *simulated* time
(when attached to the DES substrate) and in *wall-clock* time (when
attached to the live thread runtime).  Substrate-agnosticism is achieved
by injecting a :class:`Clock` rather than letting telemetry reach into
``Simulator.now`` or ``time.time`` directly.

Every clock also exposes :meth:`Clock.perf`, a monotonic seconds counter
used to measure the *cost* of instrumented code (e.g. how long one MAPE
tick took to compute).  For :class:`SimClock` the two deliberately
differ: ``now()`` is virtual time (a control tick takes zero simulated
seconds) while ``perf()`` is real CPU-side time, which is what a
control-loop latency histogram should see.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

__all__ = ["Clock", "SimClock", "WallClock", "ManualClock"]


@runtime_checkable
class Clock(Protocol):
    """A source of timestamps for spans, events and metric samples."""

    def now(self) -> float:
        """Current time on the telemetry timeline (sim or wall)."""
        ...

    def perf(self) -> float:
        """Monotonic seconds for measuring instrumentation-side cost."""
        ...


class SimClock:
    """Reads the virtual clock of any object exposing a ``now`` attribute.

    Built for :class:`repro.sim.engine.Simulator` but duck-typed so the
    obs package keeps zero dependencies on the simulation substrate.
    """

    __slots__ = ("_source",)

    def __init__(self, source: object) -> None:
        if not hasattr(source, "now"):
            raise TypeError(f"SimClock source needs a 'now' attribute, got {source!r}")
        self._source = source

    def now(self) -> float:
        value = self._source.now
        return float(value() if callable(value) else value)

    def perf(self) -> float:
        return time.perf_counter()


class WallClock:
    """Real time: epoch seconds for timestamps, perf_counter for cost."""

    __slots__ = ()

    def now(self) -> float:
        return time.time()

    def perf(self) -> float:
        return time.perf_counter()


class ManualClock:
    """A clock advanced by hand — deterministic telemetry unit tests."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def perf(self) -> float:
        return self._now

    def advance(self, delta: float) -> None:
        if delta < 0:
            raise ValueError(f"cannot move a clock backwards (delta={delta})")
        self._now += delta

    def set(self, value: float) -> None:
        if value < self._now:
            raise ValueError(f"cannot move a clock backwards ({value} < {self._now})")
        self._now = float(value)
