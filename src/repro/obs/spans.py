"""Hierarchical span tracing: named intervals with parents and events.

A :class:`Span` is one named interval of manager activity — a MAPE
phase, a rule-engine invocation, a contract split, a violation's journey
from child to parent, one round of the two-phase intent protocol.  Spans
nest: the tracer keeps a per-thread stack of open spans, so a
``mape.monitor`` span opened inside a ``mape.cycle`` span records the
cycle as its parent, and the whole decision process of an autonomic
manager reconstructs as a tree — the "observable event sequence" view of
manager behaviour that arXiv:1002.2722 argues for.

Span identifiers are stable hex strings (never random): locally opened
spans render the recorder's sequential counter as fixed-width hex, and
spans minted across a process boundary hash a stable seed (see
:mod:`~repro.obs.propagation`) — either way a trace is bit-for-bit
reproducible across runs of a deterministic scenario.  Every span also
carries a ``trace_id`` grouping one causal tree: locally rooted spans
mint their own, children inherit their parent's, and spans opened under
an explicit :class:`~repro.obs.propagation.TraceContext` (task
envelopes crossing farm backends) join the trace the context names.
Timestamps come from the injected :class:`~repro.obs.clock.Clock`:
simulated seconds under the DES, epoch seconds under the live runtimes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from .propagation import TraceContext

__all__ = ["SpanEvent", "Span", "SpanRecorder"]


@dataclass(frozen=True)
class SpanEvent:
    """A point-in-time annotation attached to a span."""

    time: float
    name: str
    attributes: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Span:
    """One named interval, with lineage, attributes and point events."""

    span_id: str
    parent_id: Optional[str]
    name: str
    actor: str
    start: float
    end: Optional[float] = None
    attributes: Dict[str, Any] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)
    #: instrumentation-side cost in monotonic seconds (perf clock); in a
    #: simulation this is the real CPU time one zero-sim-time tick took
    perf_elapsed: Optional[float] = None
    #: the causal tree this span belongs to (32 hex chars)
    trace_id: str = ""

    @property
    def context(self) -> TraceContext:
        """This span's identity as a propagatable trace context."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
        )

    def set_attribute(self, key: str, value: Any) -> "Span":
        self.attributes[key] = value
        return self

    def add_event(self, name: str, time: float, **attributes: Any) -> SpanEvent:
        ev = SpanEvent(time, name, dict(attributes))
        self.events.append(ev)
        return ev

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        """Elapsed clock time (sim or wall); None while still open."""
        return None if self.end is None else self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end is None else f"{self.duration:.6f}s"
        return f"<Span #{self.span_id} {self.actor}:{self.name} {state}>"


class SpanRecorder:
    """Creates, nests and collects spans.

    The recorder is passive storage plus a per-thread stack of open
    spans; all policy (clocks, metrics, context management) lives in
    :class:`~repro.obs.telemetry.Telemetry`.  Thread-locality matters
    only for the live runtime, where the controller thread and worker
    threads must not interleave their stacks; under the single-threaded
    DES it is inert.
    """

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._next_id = 0
        self._stacks = threading.local()

    # -- stack ----------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span on this thread (None at top level)."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- lifecycle ------------------------------------------------------
    def open(
        self,
        name: str,
        start: float,
        *,
        actor: str = "",
        parent: Optional[Span] = None,
        attach: bool = True,
        context: Optional[TraceContext] = None,
        **attributes: Any,
    ) -> Span:
        """Open a span; with ``attach`` it joins this thread's stack.

        Detached spans (``attach=False``) serve intervals that do not
        nest lexically — e.g. a violation report travelling child →
        parent closes at delivery time, long after the raising frame
        returned.  They still record the span open at creation time as
        their parent.

        An explicit ``context`` pins the span's identity entirely — its
        trace id, its own span id and its parent — bypassing the stack.
        This is how task envelopes keep one trace across farm backends:
        the ids are minted deterministically from the task, not from
        whichever thread happens to open the span.
        """
        if context is not None:
            span = Span(
                span_id=context.span_id,
                parent_id=context.parent_id,
                name=name,
                actor=actor,
                start=start,
                attributes=dict(attributes),
                trace_id=context.trace_id,
            )
            self.spans.append(span)
            if attach:
                self._stack().append(span)
            return span
        if parent is None:
            parent = self.current
        seq = self._next_id
        self._next_id += 1
        span = Span(
            span_id=f"{seq:016x}",
            parent_id=None if parent is None else parent.span_id,
            name=name,
            actor=actor,
            start=start,
            attributes=dict(attributes),
            # a root starts its own trace; a child joins its parent's
            trace_id=f"{seq:032x}" if parent is None else parent.trace_id,
        )
        self.spans.append(span)
        if attach:
            self._stack().append(span)
        return span

    def import_span(self, record: Mapping[str, Any]) -> Span:
        """Re-hydrate a finished remote span record into this store.

        The record is the JSON-safe dict a worker shipped back on a
        result frame (see
        :func:`~repro.obs.propagation.make_span_record`); its ids are
        kept verbatim so it lands in the trace its context named.
        """
        span = Span(
            span_id=str(record["span_id"]),
            parent_id=(
                None if record.get("parent_id") is None else str(record["parent_id"])
            ),
            name=str(record.get("name", "")),
            actor=str(record.get("actor", "")),
            start=float(record.get("start", 0.0)),
            end=None if record.get("end") is None else float(record["end"]),
            attributes=dict(record.get("attributes") or {}),
            trace_id=str(record.get("trace_id", "")),
        )
        for ev in record.get("events") or ():
            span.add_event(
                str(ev.get("name", "")),
                float(ev.get("time", 0.0)),
                **dict(ev.get("attributes") or {}),
            )
        self.spans.append(span)
        return span

    def close(self, span: Span, end: float) -> Span:
        """Finish a span; pops it (and any leaked children) off the stack.

        A span another thread already finished (a shutdown
        :meth:`flush` sweeping past) still unwinds this thread's stack,
        so the opener's later spans do not nest under a dead parent.
        """
        already_closed = span.end is not None
        if not already_closed:
            span.end = end
        stack = self._stack()
        if span in stack:
            while stack and stack[-1] is not span:
                leaked = stack.pop()  # leaked child: close with the parent
                if leaked.end is None:
                    leaked.end = end
            if stack:
                stack.pop()
        return span

    # -- queries --------------------------------------------------------
    def named(self, name: str, actor: Optional[str] = None) -> List[Span]:
        """Finished-or-open spans filtered by name (and optionally actor)."""
        return [
            s
            for s in self.spans
            if s.name == name and (actor is None or s.actor == actor)
        ]

    def actors(self) -> List[str]:
        """Distinct span actors in order of first appearance."""
        seen: List[str] = []
        for s in self.spans:
            if s.actor and s.actor not in seen:
                seen.append(s.actor)
        return seen

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def trace(self, trace_id: str) -> List[Span]:
        """Every span of one causal tree, in recording order."""
        return [s for s in self.spans if s.trace_id == trace_id]

    def trace_ids(self) -> List[str]:
        """Distinct trace ids in order of first appearance."""
        seen: List[str] = []
        for s in self.spans:
            if s.trace_id and s.trace_id not in seen:
                seen.append(s.trace_id)
        return seen

    def open_spans(self) -> List[Span]:
        """Spans still open — whatever thread (or process) opened them."""
        return [s for s in self.spans if s.end is None]

    def flush(self, end: float) -> int:
        """Close every still-open span at ``end``; returns how many.

        Backends call this from ``shutdown()`` so an abrupt stop —
        poisoned workers, severed sockets — cannot leak open spans into
        the exported trace.  Flushed spans are marked
        ``flushed=True`` so a reader can tell a clean close from a
        shutdown sweep.
        """
        flushed = 0
        for span in self.spans:
            if span.end is None:
                span.set_attribute("flushed", True)
                span.end = end
                flushed += 1
        # the stacks of surviving threads may still reference the spans
        # just closed; drop this thread's, and let close() skip
        # already-finished spans from other threads' stacks harmlessly
        stack = self._stack()
        del stack[:]
        return flushed

    def __len__(self) -> int:
        return len(self.spans)
