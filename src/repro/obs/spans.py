"""Hierarchical span tracing: named intervals with parents and events.

A :class:`Span` is one named interval of manager activity — a MAPE
phase, a rule-engine invocation, a contract split, a violation's journey
from child to parent, one round of the two-phase intent protocol.  Spans
nest: the tracer keeps a per-thread stack of open spans, so a
``mape.monitor`` span opened inside a ``mape.cycle`` span records the
cycle as its parent, and the whole decision process of an autonomic
manager reconstructs as a tree — the "observable event sequence" view of
manager behaviour that arXiv:1002.2722 argues for.

Span identifiers are small sequential integers (never random), so a
trace is bit-for-bit reproducible across runs of a deterministic
scenario.  Timestamps come from the injected
:class:`~repro.obs.clock.Clock`: simulated seconds under the DES,
epoch seconds under the live thread runtime.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["SpanEvent", "Span", "SpanRecorder"]


@dataclass(frozen=True)
class SpanEvent:
    """A point-in-time annotation attached to a span."""

    time: float
    name: str
    attributes: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Span:
    """One named interval, with lineage, attributes and point events."""

    span_id: int
    parent_id: Optional[int]
    name: str
    actor: str
    start: float
    end: Optional[float] = None
    attributes: Dict[str, Any] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)
    #: instrumentation-side cost in monotonic seconds (perf clock); in a
    #: simulation this is the real CPU time one zero-sim-time tick took
    perf_elapsed: Optional[float] = None

    def set_attribute(self, key: str, value: Any) -> "Span":
        self.attributes[key] = value
        return self

    def add_event(self, name: str, time: float, **attributes: Any) -> SpanEvent:
        ev = SpanEvent(time, name, dict(attributes))
        self.events.append(ev)
        return ev

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        """Elapsed clock time (sim or wall); None while still open."""
        return None if self.end is None else self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end is None else f"{self.duration:.6f}s"
        return f"<Span #{self.span_id} {self.actor}:{self.name} {state}>"


class SpanRecorder:
    """Creates, nests and collects spans.

    The recorder is passive storage plus a per-thread stack of open
    spans; all policy (clocks, metrics, context management) lives in
    :class:`~repro.obs.telemetry.Telemetry`.  Thread-locality matters
    only for the live runtime, where the controller thread and worker
    threads must not interleave their stacks; under the single-threaded
    DES it is inert.
    """

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._next_id = 0
        self._stacks = threading.local()

    # -- stack ----------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span on this thread (None at top level)."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- lifecycle ------------------------------------------------------
    def open(
        self,
        name: str,
        start: float,
        *,
        actor: str = "",
        parent: Optional[Span] = None,
        attach: bool = True,
        **attributes: Any,
    ) -> Span:
        """Open a span; with ``attach`` it joins this thread's stack.

        Detached spans (``attach=False``) serve intervals that do not
        nest lexically — e.g. a violation report travelling child →
        parent closes at delivery time, long after the raising frame
        returned.  They still record the span open at creation time as
        their parent.
        """
        if parent is None:
            parent = self.current
        span = Span(
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            name=name,
            actor=actor,
            start=start,
            attributes=dict(attributes),
        )
        self._next_id += 1
        self.spans.append(span)
        if attach:
            self._stack().append(span)
        return span

    def close(self, span: Span, end: float) -> Span:
        """Finish a span; pops it (and any leaked children) off the stack."""
        if span.end is not None:
            return span
        span.end = end
        stack = self._stack()
        if span in stack:
            while stack and stack[-1] is not span:
                stack.pop().end = end  # leaked child: close with the parent
            stack.pop()
        return span

    # -- queries --------------------------------------------------------
    def named(self, name: str, actor: Optional[str] = None) -> List[Span]:
        """Finished-or-open spans filtered by name (and optionally actor)."""
        return [
            s
            for s in self.spans
            if s.name == name and (actor is None or s.actor == actor)
        ]

    def actors(self) -> List[str]:
        """Distinct span actors in order of first appearance."""
        seen: List[str] = []
        for s in self.spans:
            if s.actor and s.actor not in seen:
                seen.append(s.actor)
        return seen

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def __len__(self) -> int:
        return len(self.spans)
