"""Metrics registry: counters, gauges and fixed-bucket histograms.

This is the single sink the monitoring plumbing reports into — the
rate estimates sampled from :class:`~repro.sim.farm.SimFarm`, the live
:class:`~repro.runtime.farm_runtime.ThreadFarm` snapshots, control-loop
latencies, per-worker service times, queue variance and reconfiguration
blackout durations all land here under one namespace, regardless of
substrate.  The estimators themselves (:mod:`repro.sim.metrics`) remain
the *measurement* machinery; this module is where their outputs become
queryable, exportable telemetry.

Design constraints, in order:

* **deterministic** — no clocks, no randomness; an instrument is pure
  state updated by explicit calls, so attaching metrics to a
  deterministic scenario changes nothing about its dynamics;
* **fixed-bucket histograms** — bucket bounds are declared up front
  (Prometheus-style cumulative ``le`` buckets), keeping observation
  O(#buckets) with zero allocation on the hot path;
* **labelled families** — one family per metric name, child instruments
  per label set (``registry.counter("x").labels(manager="AM_F")``),
  mirroring the Prometheus client-library data model that
  :func:`repro.obs.export.prometheus_text` renders.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bounds, tuned for control-loop and service latencies:
#: sub-millisecond ticks of the DES-backed loop up to multi-second
#: reconfiguration blackouts land in distinct buckets.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

LabelSet = Tuple[Tuple[str, str], ...]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (amount={amount})")
        self.value += amount


class Gauge:
    """A value that can go up and down (rates, worker counts, exposure)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with Prometheus cumulative-``le`` semantics.

    ``bounds`` are the finite upper bucket edges in strictly increasing
    order; an implicit ``+Inf`` bucket catches the tail.  ``counts[i]``
    is the number of observations in ``(bounds[i-1], bounds[i]]`` —
    *non*-cumulative internally; :meth:`cumulative` produces the
    exposition view.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Iterable[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with (+Inf, count)."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper edge of the bucket).

        Good enough for report tables; the JSONL export carries the raw
        cumulative counts for anything finer.
        """
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        for bound, cum in self.cumulative():
            if cum >= rank:
                return bound
        return float("inf")  # pragma: no cover - defensive


class MetricFamily:
    """All instruments sharing one metric name, keyed by label set.

    The family doubles as its own zero-label child: calling ``inc`` /
    ``set`` / ``observe`` directly on the family updates the unlabelled
    instrument, so simple metrics need no ``labels()`` ceremony.
    """

    KINDS = ("counter", "gauge", "histogram")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        *,
        buckets: Optional[Iterable[float]] = None,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        if kind not in self.KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self._buckets = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        self._children: Dict[LabelSet, object] = {}

    def _make(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self._buckets)

    def labels(self, **labels: object):
        """The child instrument for this label set (created on first use)."""
        for key in labels:
            if not _LABEL_RE.match(key):
                raise ValueError(f"invalid label name {key!r}")
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        child = self._children.get(key)
        if child is None:
            child = self._make()
            self._children[key] = child
        return child

    # -- zero-label convenience delegates -------------------------------
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def value(self) -> float:
        """Value of the unlabelled child (counters/gauges)."""
        return self.labels().value

    def samples(self) -> List[Tuple[LabelSet, object]]:
        """(label_set, instrument) pairs in insertion order."""
        return list(self._children.items())


class MetricsRegistry:
    """Get-or-create registry of metric families, one per name."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        buckets: Optional[Iterable[float]] = None,
    ) -> MetricFamily:
        fam = self._families.get(name)
        if fam is None:
            fam = MetricFamily(name, kind, help, buckets=buckets)
            self._families[name] = fam
        elif fam.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {fam.kind}, not {kind}"
            )
        return fam

    def counter(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, "gauge", help)

    def histogram(
        self, name: str, help: str = "", *, buckets: Optional[Iterable[float]] = None
    ) -> MetricFamily:
        return self._family(name, "histogram", help, buckets)

    def families(self) -> List[MetricFamily]:
        """Registered families in registration order."""
        return list(self._families.values())

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families
