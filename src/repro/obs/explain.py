"""``python -m repro.obs.explain`` — causal-chain reconstruction from traces.

The span store answers "what happened"; this CLI answers "*why* did
that happen".  Given a JSONL trace export (``export_jsonl`` or the
``/trace`` endpoint's source data), it reconstructs the causal chain
behind a chosen actuation or task and pretty-prints it:

* for an **actuation** — which MAPE cycle decided it, which rules
  matched and fired on which metric window, how the intent fared under
  the two-phase protocol (what the security manager amended, who
  vetoed), and what the commit actually did to each worker
  (quarantine → secure → admit);
* for a **task** — its full dispatch history as one tree: submit, each
  dispatch attempt (and why the superseded ones ended: crashed,
  refused, redispatched, rebalanced), the worker-side execution spans
  shipped back across the process/TCP boundary, and the final outcome.

Usage::

    python -m repro.obs.explain trace.jsonl                # overview
    python -m repro.obs.explain trace.jsonl --list-traces  # trace index
    python -m repro.obs.explain trace.jsonl --trace 3f2a   # one tree (id prefix ok)
    python -m repro.obs.explain trace.jsonl --task 17      # one task's causal chain
    python -m repro.obs.explain trace.jsonl --actuations   # actuation index
    python -m repro.obs.explain trace.jsonl --actuation 2  # one actuation's chain
    python -m repro.obs.explain trace.jsonl --tenant acme  # one tenant's story
    python -m repro.obs.explain trace.jsonl --failovers    # coordinator failovers
    python -m repro.obs.explain trace.jsonl --slo          # SLO alert episodes

Everything here is read-only over a list of :class:`~repro.obs.spans.Span`
objects, so the same functions also serve tests and notebooks directly
(`load`, `find_actuations`, `explain_task`, `explain_actuation`,
`explain_tenant`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Sequence, TextIO, Tuple

from .export import read_trace_jsonl
from .propagation import list_traces
from .spans import Span

__all__ = [
    "load",
    "children_index",
    "find_actuations",
    "find_failovers",
    "find_slo_alerts",
    "explain_task",
    "explain_actuation",
    "explain_tenant",
    "explain_trace",
    "explain_failovers",
    "explain_slo",
    "main",
]

#: span names that mark a dispatch attempt ending without a result
_SUPERSEDED = (
    "crashed",
    "refused",
    "redispatched",
    "rebalanced",
    "write-failed",
    "coordinator-crashed",
)


def load(path: str) -> List[Span]:
    """Read a JSONL trace export back into Span objects."""
    return read_trace_jsonl(path)


def children_index(spans: Sequence[Span]) -> Dict[Optional[str], List[Span]]:
    """parent span id → children, each list in recording order."""
    index: Dict[Optional[str], List[Span]] = {}
    for span in spans:
        index.setdefault(span.parent_id, []).append(span)
    return index


def _fmt_duration(span: Span) -> str:
    if span.duration is None:
        return "open"
    return f"{span.duration * 1000.0:.1f} ms"


def _fmt_attrs(span: Span, skip: Sequence[str] = ()) -> str:
    parts = [
        f"{k}={v!r}"
        for k, v in span.attributes.items()
        if k not in skip and k != "flushed"
    ]
    return " ".join(parts)


# ----------------------------------------------------------------------
# trace tree rendering
# ----------------------------------------------------------------------


def explain_trace(
    spans: Sequence[Span], trace_id: str, *, out: TextIO
) -> bool:
    """Pretty-print one trace as an indented tree; False if unknown.

    ``trace_id`` may be a unique prefix of the full 32-hex id.
    """
    matches = sorted({s.trace_id for s in spans if s.trace_id.startswith(trace_id)})
    if not matches:
        print(f"no trace matches {trace_id!r}", file=out)
        return False
    if len(matches) > 1:
        print(f"ambiguous prefix {trace_id!r}; candidates:", file=out)
        for tid in matches:
            print(f"  {tid}", file=out)
        return False
    full = matches[0]
    members = [s for s in spans if s.trace_id == full]
    index = children_index(members)
    member_ids = {s.span_id for s in members}
    roots = [s for s in members if s.parent_id is None or s.parent_id not in member_ids]
    print(f"trace {full} — {len(members)} span(s)", file=out)

    def walk(span: Span, prefix: str, last: bool) -> None:
        branch = "└─ " if last else "├─ "
        attrs = _fmt_attrs(span)
        line = f"{prefix}{branch}{span.name} [{span.actor}] ({_fmt_duration(span)})"
        if attrs:
            line += f"  {attrs}"
        print(line, file=out)
        deeper = prefix + ("   " if last else "│  ")
        for event in span.events:
            eattrs = " ".join(f"{k}={v!r}" for k, v in event.attributes.items())
            print(f"{deeper}· {event.name}" + (f"  {eattrs}" if eattrs else ""), file=out)
        kids = sorted(index.get(span.span_id, []), key=lambda s: (s.start, s.span_id))
        for i, kid in enumerate(kids):
            walk(kid, deeper, i == len(kids) - 1)

    for i, root in enumerate(sorted(roots, key=lambda s: (s.start, s.span_id))):
        walk(root, "", i == len(roots) - 1)
    return True


# ----------------------------------------------------------------------
# task causal chains
# ----------------------------------------------------------------------


_SUPERSEDED_REASON = {
    "crashed": "the worker died; the supervisor replayed the task",
    "refused": "the worker refused it pre-handshake; replayed elsewhere",
    "redispatched": "the worker retired; its backlog was redispatched",
    "rebalanced": "load balancing stole the queued task",
    "write-failed": "the connection broke mid-send; replayed",
    "coordinator-crashed": (
        "the coordinator crashed; the supervisor replayed the task after failover"
    ),
}


def _walk_dispatch_chain(index, parent: Span, out: TextIO, indent: str) -> None:
    """Narrate the ``task.dispatch`` parent chain hanging off ``parent``."""
    dispatch = next(
        (s for s in index.get(parent.span_id, []) if s.name == "task.dispatch"),
        None,
    )
    while dispatch is not None:
        attempt = dispatch.attributes.get("attempt")
        worker = dispatch.attributes.get("worker")
        secured = dispatch.attributes.get("secured")
        d_outcome = dispatch.attributes.get("outcome", "open")
        line = f"{indent}attempt {attempt}: dispatched to worker {worker}"
        if secured:
            line += " (secured channel)"
        line += f" — {d_outcome} after {_fmt_duration(dispatch)}"
        print(line, file=out)
        execs = [
            s for s in index.get(dispatch.span_id, []) if s.name == "task.exec"
        ]
        for ex in execs:
            pid = ex.attributes.get("pid")
            where = f" (pid {pid})" if pid is not None else ""
            print(
                f"{indent}  executed on {ex.actor}{where} — "
                f"{ex.attributes.get('outcome', 'ok')}, {_fmt_duration(ex)}",
                file=out,
            )
        if d_outcome in _SUPERSEDED:
            reason = _SUPERSEDED_REASON.get(d_outcome, "superseded")
            print(f"{indent}  ↳ {reason}", file=out)
        dispatch = next(
            (
                s
                for s in index.get(dispatch.span_id, [])
                if s.name == "task.dispatch"
            ),
            None,
        )


def explain_task(
    spans: Sequence[Span], task_id: int, *, out: TextIO
) -> bool:
    """Narrate every trace of ``task_id`` as a dispatch chain; False if none.

    Two tree shapes are understood: a plain farm root
    (``task`` → ``task.dispatch`` chain) and a supervised root
    (``task`` → one ``task.attempt`` per coordinator incarnation →
    ``task.dispatch`` chain), so a crashed-and-replayed task reads as
    one causal story across epochs.
    """
    roots = [
        s
        for s in spans
        if s.name == "task" and s.attributes.get("task_id") == task_id
    ]
    if not roots:
        print(f"no 'task' span carries task_id={task_id}", file=out)
        return False
    index = children_index(spans)
    for root in roots:
        outcome = root.attributes.get("outcome", "open")
        print(
            f"task {task_id} on farm '{root.actor}' — trace {root.trace_id} — "
            f"{outcome}, {_fmt_duration(root)}",
            file=out,
        )
        attempts = sorted(
            (s for s in index.get(root.span_id, []) if s.name == "task.attempt"),
            key=lambda s: (s.start, s.span_id),
        )
        if attempts:
            for n, att in enumerate(attempts, start=1):
                a_outcome = att.attributes.get("outcome", "open")
                print(
                    f"  incarnation attempt {n} on '{att.actor}' — "
                    f"{a_outcome}, {_fmt_duration(att)}",
                    file=out,
                )
                _walk_dispatch_chain(index, att, out, "    ")
                if a_outcome in _SUPERSEDED:
                    reason = _SUPERSEDED_REASON.get(a_outcome, "superseded")
                    print(f"    ↳ {reason}", file=out)
        else:
            _walk_dispatch_chain(index, root, out, "  ")
        print(f"  result: {outcome}", file=out)
    return True


# ----------------------------------------------------------------------
# failover narratives
# ----------------------------------------------------------------------


def find_failovers(spans: Sequence[Span]) -> List[Span]:
    """Every ``sup.failover`` span, in start order."""
    return sorted(
        (s for s in spans if s.name == "sup.failover"),
        key=lambda s: (s.start, s.span_id),
    )


def explain_failovers(spans: Sequence[Span], *, out: TextIO) -> bool:
    """Narrate every coordinator failover in the export; False if none.

    Each ``sup.failover`` span is one supervisor recovery: the journal
    replay, the rebuild of the coordinator incarnation, the redispatch
    of in-flight tasks and the quarantine state carried across the
    crash.
    """
    failovers = find_failovers(spans)
    if not failovers:
        print("no 'sup.failover' span recorded (no coordinator crash)", file=out)
        return False
    crashed = sum(
        1 for s in spans if s.attributes.get("outcome") == "coordinator-crashed"
    )
    print(
        f"{len(failovers)} failover(s); {crashed} span(s) ended "
        f"'coordinator-crashed' across the export",
        file=out,
    )
    for i, span in enumerate(failovers, start=1):
        epoch = span.attributes.get("epoch")
        outcome = span.attributes.get("outcome", "open")
        print(
            f"#{i}  t={span.start:9.3f}  supervisor '{span.actor}' promoted "
            f"epoch {epoch} — {outcome}, {_fmt_duration(span)}",
            file=out,
        )
        for event in span.events:
            if event.name == "journal-replayed":
                print(
                    f"    replayed {event.attributes.get('events')} journal "
                    f"event(s): {event.attributes.get('pending')} task(s) still "
                    f"in flight, {event.attributes.get('completed')} already "
                    f"acknowledged (never redispatched)",
                    file=out,
                )
            elif event.name == "standby-promoted":
                print(
                    f"    standby coordinator took over the listen port; "
                    f"{event.attributes.get('adopted', '?')} surviving "
                    f"worker(s) adopted for reattach",
                    file=out,
                )
            elif event.name == "farm-rebuilt":
                print(
                    f"    farm rebuilt: {event.attributes.get('admitted', '?')} "
                    f"admitted worker(s), {event.attributes.get('quarantined', '?')} "
                    f"requarantined",
                    file=out,
                )
        redispatched = span.attributes.get("redispatched")
        quarantined = span.attributes.get("quarantined")
        if redispatched is not None:
            print(
                f"    redispatched {redispatched} in-flight task(s); "
                f"{quarantined} quarantined worker(s) stayed gated",
                file=out,
            )
    return True


# ----------------------------------------------------------------------
# SLO alert narratives
# ----------------------------------------------------------------------


def find_slo_alerts(spans: Sequence[Span]) -> List[Span]:
    """Every ``slo.alert`` episode span, in start order."""
    return sorted(
        (s for s in spans if s.name == "slo.alert"),
        key=lambda s: (s.start, s.span_id),
    )


def _pct(value: Any) -> str:
    try:
        return f"{float(value) * 100.0:.1f}%"
    except (TypeError, ValueError):
        return "?"


def explain_slo(spans: Sequence[Span], *, out: TextIO) -> bool:
    """Narrate every SLO alert episode in the export; False if none.

    Each ``slo.alert`` span is one alert episode opened by the burn-rate
    rules (fast windows page, slow windows warn).  The narration ties
    the episode to the autonomic response: the ``slo.adaptation`` spans
    that overlap it (violation observed → plan committed → effect
    visible, the ROADMAP item-4 yardstick) and any actuation spans that
    fired inside the episode window, plus the error budget burned
    between open and close.
    """
    alerts = find_slo_alerts(spans)
    if not alerts:
        print(
            "no 'slo.alert' span recorded (no SLO engine attached, or "
            "no objective left its error budget)",
            file=out,
        )
        return False
    objectives = sorted({str(s.attributes.get("slo")) for s in alerts})
    print(
        f"{len(alerts)} SLO alert episode(s) across {len(objectives)} "
        f"objective(s): {', '.join(objectives)}",
        file=out,
    )
    adaptations = sorted(
        (s for s in spans if s.name == "slo.adaptation"),
        key=lambda s: (s.start, s.span_id),
    )
    actuations = find_actuations(spans)
    for i, span in enumerate(alerts, start=1):
        # the span's level attribute tracks the *current* level, so the
        # opening level is the first escalation's previous when any
        # escalation happened inside the episode
        escalations = [e for e in span.events if e.name == "slo.escalation"]
        opened = (
            escalations[0].attributes.get("previous")
            if escalations
            else span.attributes.get("level", "?")
        )
        level = str(opened).upper()
        print(
            f"#{i}  t={span.start:9.3f}  SLO '{span.attributes.get('slo')}' "
            f"— {span.attributes.get('objective')}",
            file=out,
        )
        print(
            f"    opened at {level}: burn {span.attributes.get('burn_fast')}x "
            f"over the fast windows, {span.attributes.get('burn_slow')}x over "
            f"the slow; budget {_pct(span.attributes.get('budget_remaining_open'))} "
            f"remaining",
            file=out,
        )
        for event in span.events:
            if event.name == "slo.escalation":
                print(
                    f"    t={event.time:9.3f}  "
                    f"{event.attributes.get('previous')} → "
                    f"{event.attributes.get('level')}",
                    file=out,
                )
        window_end = span.end if span.end is not None else float("inf")
        for adapt in adaptations:
            a_end = adapt.end if adapt.end is not None else float("inf")
            if a_end < span.start or adapt.start > window_end:
                continue
            observed = adapt.attributes.get("observed_at", adapt.start)
            print(
                f"    adaptation: violation {adapt.attributes.get('kind')!r} "
                f"observed at t={observed:.3f}",
                file=out,
            )
            committed = adapt.attributes.get("committed_at")
            if committed is not None:
                print(
                    f"      plan committed: {adapt.attributes.get('action')} "
                    f"after {committed - observed:.3f}s",
                    file=out,
                )
            effect = adapt.attributes.get("effect_at")
            if effect is not None:
                legs = f"total {adapt.attributes.get('total_latency')}s"
                if adapt.attributes.get("self_resolved"):
                    legs += ", self-resolved (no actuation needed)"
                print(f"      effect visible at t={effect:.3f} ({legs})", file=out)
        fired_inside = [
            a for a in actuations if span.start <= a.start <= window_end
        ]
        if fired_inside:
            # grouped by (name, actor): a starving farm fires a rule on
            # every MAPE cycle, and twenty identical lines say less than
            # one line with a count and the episode's time bounds
            groups: Dict[Tuple[str, str], List[Span]] = {}
            for a in fired_inside:
                groups.setdefault((a.name, a.actor), []).append(a)
            parts = []
            for (name, actor), group in groups.items():
                if len(group) == 1:
                    parts.append(f"{name} by {actor} at t={group[0].start:.3f}")
                else:
                    parts.append(
                        f"{name} by {actor} x{len(group)} "
                        f"(t={group[0].start:.3f}..{group[-1].start:.3f})"
                    )
            print(
                f"    actuation(s) inside the episode: {', '.join(parts)}",
                file=out,
            )
        if span.end is None:
            print("    still open at export (alert not yet resolved)", file=out)
            continue
        burned = ""
        opened = span.attributes.get("budget_remaining_open")
        closed = span.attributes.get("budget_remaining_close")
        if opened is not None and closed is not None:
            burned = f"; budget burned {_pct(float(opened) - float(closed))}"
        closed_how = (
            "resolved"
            if span.attributes.get("resolved", True)
            else "closed unresolved at export"
        )
        print(
            f"    {closed_how} after {span.end - span.start:.3f}s — "
            f"{span.attributes.get('violation_seconds')} violation-second(s), "
            f"budget {_pct(closed)} remaining{burned}",
            file=out,
        )
    return True


# ----------------------------------------------------------------------
# tenant narratives
# ----------------------------------------------------------------------


def explain_tenant(
    spans: Sequence[Span], tenant: str, *, out: TextIO
) -> bool:
    """Narrate every task one tenant submitted; False if the tenant is
    absent from the export.

    The tenant name is stamped on each task's root span at submission
    (see ``ShardedFarm.submit``), so this view is the multi-tenant
    slice of the same dispatch trees ``--task`` narrates one by one:
    which farms/shards served the tenant, each task's worker chain, and
    how the tenant's stream ended.
    """
    roots = [
        s
        for s in spans
        if s.name == "task" and s.attributes.get("tenant") == tenant
    ]
    if not roots:
        known = sorted(
            {
                str(s.attributes["tenant"])
                for s in spans
                if s.name == "task" and s.attributes.get("tenant") is not None
            }
        )
        print(f"no 'task' span carries tenant={tenant!r}", file=out)
        if known:
            print("tenants in this export: " + ", ".join(known), file=out)
        return False
    index = children_index(spans)
    roots = sorted(roots, key=lambda s: (s.start, s.span_id))
    farms = sorted({r.actor for r in roots})
    print(
        f"tenant {tenant!r} — {len(roots)} task(s) across "
        f"{len(farms)} farm(s): {', '.join(farms)}",
        file=out,
    )
    done = 0
    for root in roots:
        outcome = root.attributes.get("outcome", "open")
        if outcome == "ok":
            done += 1
        hops: List[str] = []
        dispatch = next(
            (s for s in index.get(root.span_id, []) if s.name == "task.dispatch"),
            None,
        )
        while dispatch is not None:
            worker = dispatch.attributes.get("worker")
            d_outcome = dispatch.attributes.get("outcome", "open")
            hop = f"worker {worker}"
            if d_outcome in _SUPERSEDED:
                hop += f" ({d_outcome})"
            hops.append(hop)
            dispatch = next(
                (
                    s
                    for s in index.get(dispatch.span_id, [])
                    if s.name == "task.dispatch"
                ),
                None,
            )
        chain = " -> ".join(hops) if hops else "never dispatched"
        print(
            f"  task {root.attributes.get('task_id')} on {root.actor}: "
            f"{chain} — {outcome}, {_fmt_duration(root)}",
            file=out,
        )
    first = min(r.start for r in roots)
    last = max((r.end if r.end is not None else r.start) for r in roots)
    print(
        f"  => {done}/{len(roots)} completed over {last - first:.3f}s "
        f"of the tenant's stream",
        file=out,
    )
    return True


# ----------------------------------------------------------------------
# actuation causal chains
# ----------------------------------------------------------------------


def find_actuations(spans: Sequence[Span]) -> List[Span]:
    """Every span that *decided* something: MAPE cycles that fired at
    least one rule, plus intent rounds not already under such a cycle."""
    index = children_index(spans)

    def descendants(span: Span):
        for kid in index.get(span.span_id, []):
            yield kid
            yield from descendants(kid)

    cycles = []
    covered = set()
    for span in spans:
        if span.name != "mape.cycle":
            continue
        fired = False
        for d in descendants(span):
            if d.name == "mape.execute" and d.attributes.get("fired"):
                fired = True
            if d.name in ("mc.intent", "mc.commit"):
                fired = True
                covered.add(d.span_id)
        if fired:
            cycles.append(span)
    orphan_intents = [
        s for s in spans if s.name == "mc.intent" and s.span_id not in covered
    ]
    return sorted(cycles + orphan_intents, key=lambda s: (s.start, s.span_id))


def _explain_intent(span: Span, index, out: TextIO, indent: str) -> None:
    originator = span.attributes.get("originator", "?")
    operation = span.attributes.get("operation", "?")
    mode = span.attributes.get("mode", "?")
    outcome = span.attributes.get("outcome", "open")
    print(
        f"{indent}intent: {originator} asked for {operation} "
        f"(mode {mode}) → {outcome}",
        file=out,
    )
    for event in span.events:
        if event.name == "intent.plan":
            ok = event.attributes.get("ok")
            print(
                f"{indent}  planned {event.attributes.get('count')} node(s): "
                f"{'placement reserved' if ok else 'no capacity — no local plan'}",
                file=out,
            )
        elif event.name == "intent.amend":
            print(
                f"{indent}  amended by reviewer "
                f"{event.attributes.get('reviewer')} (plan changed before commit)",
                file=out,
            )
        elif event.name == "intent.veto":
            print(
                f"{indent}  VETOED by reviewer {event.attributes.get('reviewer')} "
                f"— plan aborted, reservation released",
                file=out,
            )
        elif event.name == "intent.commit":
            print(
                f"{indent}  commit round: {event.attributes.get('reviewers')} "
                f"reviewer(s), {event.attributes.get('amendments', 0)} amendment(s)",
                file=out,
            )
        elif event.name == "security.amend":
            print(
                f"{indent}  security manager amended nodes: "
                f"{event.attributes.get('nodes')}",
                file=out,
            )


def _explain_commit(span: Span, out: TextIO, indent: str) -> None:
    nodes = span.attributes.get("nodes")
    print(f"{indent}commit on nodes {nodes}:", file=out)
    # reconstruct each worker's admission path from the point events
    steps: Dict[Any, List[str]] = {}
    for event in span.events:
        worker = event.attributes.get("worker")
        if worker is None:
            continue
        label = {
            "mc.quarantine": "quarantined on arrival",
            "mc.secured": "channel secured",
            "mc.secure_failed": "secure handshake FAILED",
            "mc.admit": "admitted to the dispatch pool",
        }.get(event.name)
        if label is None:
            continue
        if event.name == "mc.admit" and event.attributes.get("naive"):
            label = "admitted immediately (naive mode — no gate)"
        steps.setdefault(worker, []).append(label)
    for worker, path in steps.items():
        print(f"{indent}  worker {worker}: " + " → ".join(path), file=out)
    print(
        f"{indent}  admitted={span.attributes.get('admitted')} "
        f"failures={span.attributes.get('failures')}",
        file=out,
    )


def explain_actuation(
    spans: Sequence[Span], number: int, *, out: TextIO
) -> bool:
    """Narrate actuation ``number`` (1-based, as listed); False if absent."""
    actuations = find_actuations(spans)
    if not 1 <= number <= len(actuations):
        print(
            f"no actuation #{number}; {len(actuations)} found "
            f"(list them with --actuations)",
            file=out,
        )
        return False
    span = actuations[number - 1]
    index = children_index(spans)

    def kids(parent: Span, name: str) -> List[Span]:
        return [s for s in index.get(parent.span_id, []) if s.name == name]

    print(
        f"actuation #{number} — {span.name} by {span.actor} "
        f"at t={span.start:.3f} (trace {span.trace_id})",
        file=out,
    )
    if span.name == "mc.intent":
        _explain_intent(span, index, out, "  ")
        # the commit round opens as the intent span's *sibling* (the
        # intent closes before the commit starts); narrate the first
        # commit that follows it under the same parent
        siblings = index.get(span.parent_id, [])
        commit = next(
            (
                s
                for s in sorted(siblings, key=lambda s: (s.start, s.span_id))
                if s.name == "mc.commit"
                and s.start >= span.start
                and s.attributes.get("originator") == span.attributes.get("originator")
            ),
            None,
        )
        if commit is not None:
            _explain_commit(commit, out, "  ")
        return True
    # a MAPE cycle: monitor → analyse → plan → execute, with any intent
    # protocol rounds nested under execute
    for plan in kids(span, "mape.plan"):
        matched = plan.attributes.get("matched") or []
        if matched:
            print("  plan: rules matched on this metric window:", file=out)
            for entry in matched:
                try:
                    name, salience = entry
                except (TypeError, ValueError):
                    name, salience = entry, "?"
                print(f"    {name} (salience {salience})", file=out)
        else:
            print("  plan: no rule matched", file=out)
    for execute in kids(span, "mape.execute"):
        fired = execute.attributes.get("fired") or []
        print(
            "  execute: fired " + (", ".join(map(str, fired)) if fired else "nothing"),
            file=out,
        )

        def walk(parent: Span, indent: str) -> None:
            for child in sorted(
                index.get(parent.span_id, []), key=lambda s: (s.start, s.span_id)
            ):
                if child.name == "mc.intent":
                    _explain_intent(child, index, out, indent)
                elif child.name == "mc.commit":
                    _explain_commit(child, out, indent)
                walk(child, indent)

        walk(execute, "    ")
    return True


# ----------------------------------------------------------------------
# overview + entry point
# ----------------------------------------------------------------------


def _overview(spans: Sequence[Span], out: TextIO) -> None:
    traces = list_traces(spans)
    tasks = sorted(
        {
            s.attributes.get("task_id")
            for s in spans
            if s.name == "task" and s.attributes.get("task_id") is not None
        }
    )
    actuations = find_actuations(spans)
    print(
        f"{len(spans)} span(s), {len(traces)} trace(s), "
        f"{len(tasks)} task(s), {len(actuations)} actuation(s)",
        file=out,
    )
    failovers = find_failovers(spans)
    if failovers:
        print(f"{len(failovers)} coordinator failover(s) — see --failovers", file=out)
    alerts = find_slo_alerts(spans)
    if alerts:
        print(f"{len(alerts)} SLO alert episode(s) — see --slo", file=out)
    print("explore with --list-traces, --actuations, --trace, --task, --actuation", file=out)


def _list_traces(spans: Sequence[Span], out: TextIO) -> None:
    for summary in list_traces(spans):
        print(
            f"{summary['trace_id']}  {summary['spans']:4d} span(s)  "
            f"root={summary['root']}  t={summary['start']:.3f}",
            file=out,
        )


def _list_actuations(spans: Sequence[Span], out: TextIO) -> None:
    actuations = find_actuations(spans)
    if not actuations:
        print("no actuations recorded (no rule fired, no intent raised)", file=out)
        return
    for i, span in enumerate(actuations, start=1):
        detail = ""
        if span.name == "mc.intent":
            detail = (
                f" {span.attributes.get('originator')} → "
                f"{span.attributes.get('operation')} "
                f"[{span.attributes.get('outcome', 'open')}]"
            )
        print(f"#{i}  t={span.start:9.3f}  {span.name}  by {span.actor}{detail}", file=out)


def main(argv: Optional[List[str]] = None, *, out: TextIO = None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.explain",
        description="reconstruct causal chains from a JSONL trace export",
    )
    parser.add_argument("trace_file", help="JSONL file written by export_jsonl")
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--list-traces", action="store_true", help="index of recorded traces"
    )
    group.add_argument(
        "--trace", metavar="ID", help="print one trace tree (unique id prefix ok)"
    )
    group.add_argument(
        "--task", type=int, metavar="N", help="causal chain of task N"
    )
    group.add_argument(
        "--actuations", action="store_true", help="index of recorded actuations"
    )
    group.add_argument(
        "--actuation", type=int, metavar="N", help="causal chain of actuation #N"
    )
    group.add_argument(
        "--tenant", metavar="NAME",
        help="narrate every task tenant NAME submitted (multi-tenant runs)",
    )
    group.add_argument(
        "--failovers", action="store_true",
        help="narrate coordinator failovers (journal replay, redispatch)",
    )
    group.add_argument(
        "--slo", action="store_true",
        help="narrate SLO alert episodes (burn rates, budget, adaptations)",
    )
    args = parser.parse_args(argv)

    try:
        spans = load(args.trace_file)
    except OSError as exc:
        print(f"cannot read {args.trace_file}: {exc}", file=sys.stderr)
        return 1

    if args.list_traces:
        _list_traces(spans, out)
        return 0
    if args.trace:
        return 0 if explain_trace(spans, args.trace, out=out) else 2
    if args.task is not None:
        return 0 if explain_task(spans, args.task, out=out) else 2
    if args.actuations:
        _list_actuations(spans, out)
        return 0
    if args.actuation is not None:
        return 0 if explain_actuation(spans, args.actuation, out=out) else 2
    if args.tenant is not None:
        return 0 if explain_tenant(spans, args.tenant, out=out) else 2
    if args.failovers:
        return 0 if explain_failovers(spans, out=out) else 2
    if args.slo:
        return 0 if explain_slo(spans, out=out) else 2
    _overview(spans, out)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
