"""SLOs compiled from SLA contracts, scored by multi-window burn rates.

The paper's managers *react* to contract violations; this module keeps
the longitudinal score — how well the autonomic loop is meeting its
contract over time, in SRE vocabulary:

* :func:`slo_from_contract` **compiles** the live `Contract` objects the
  managers already hold (throughput ranges, tenant `RateContract` SLAs,
  latency caps, the boolean security concern) into :class:`SLO`
  objectives whose *sample* functions read the
  :class:`~repro.obs.timeseries.TimeSeriesStore` — no hand-written
  alert config, the SLA **is** the config;
* :class:`SLOEngine` evaluates every objective after each scrape with
  **multi-window multi-burn-rate** rules (fast windows page, slow
  windows warn — the standard SRE workbook shape), keeps error-budget
  accounting in ``repro_slo_violation_seconds_total`` /
  ``repro_slo_budget_remaining``, and emits alert transitions as
  telemetry events, detached ``slo.alert`` spans and ``/stream``
  messages, so a page is causally linkable to the MAPE cycle that
  answered it;
* :class:`AdaptationTracker` stamps the three timestamps ROADMAP item 4
  asks for — *violation observed → plan committed → effect visible* —
  from hook points in the controller, the shard hierarchy and the
  supervisor, recording each leg in
  ``repro_adaptation_latency_seconds{stage=…}``.

Deliberately import-light: ``repro.core`` is imported *inside*
:func:`slo_from_contract` (the rules engine imports ``repro.obs``, so a
module-level import here would cycle).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from .spans import Span
from .timeseries import StreamBroker, TimeSeriesStore

__all__ = [
    "BurnWindows",
    "SLO",
    "SLOEngine",
    "AdaptationTracker",
    "slo_from_contract",
    "slos_for_sharded",
    "LEVEL_OK",
    "LEVEL_WARN",
    "LEVEL_PAGE",
]

LEVEL_OK = "ok"
LEVEL_WARN = "warn"
LEVEL_PAGE = "page"
_LEVEL_RANK = {LEVEL_OK: 0, LEVEL_WARN: 1, LEVEL_PAGE: 2}


@dataclass(frozen=True)
class BurnWindows:
    """Window/threshold set for multi-window multi-burn-rate alerting.

    Defaults are the SRE-workbook hour-scale numbers; live fig4 runs
    pass second-scale windows via :meth:`scaled` so the same rules fire
    inside a two-second starve phase.
    """

    fast_short: float = 60.0
    fast_long: float = 300.0
    slow_short: float = 1800.0
    slow_long: float = 7200.0
    page_burn: float = 14.4
    warn_burn: float = 3.0

    def scaled(self, factor: float) -> "BurnWindows":
        """The same rule shape with every window multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return BurnWindows(
            fast_short=self.fast_short * factor,
            fast_long=self.fast_long * factor,
            slow_short=self.slow_short * factor,
            slow_long=self.slow_long * factor,
            page_burn=self.page_burn,
            warn_burn=self.warn_burn,
        )

    @property
    def horizon(self) -> float:
        return max(self.fast_long, self.slow_long)


@dataclass
class SLO:
    """One objective: a contract judged against time-series samples.

    ``sample(store, now)`` assembles the monitor mapping the contract's
    ``check`` expects; a sample the contract cannot judge (``check``
    returns None) leaves the compliance record untouched — absence of
    data is not a violation.
    """

    name: str
    contract: Any
    sample: Callable[[TimeSeriesStore, float], Mapping[str, Any]]
    description: str = ""
    budget_fraction: float = 0.05
    budget_window: float = 3600.0
    labels: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0 < self.budget_fraction < 1:
            raise ValueError(
                f"budget fraction must be in (0, 1), got {self.budget_fraction}"
            )
        if self.budget_window <= 0:
            raise ValueError(
                f"budget window must be positive, got {self.budget_window}"
            )
        if not self.description:
            self.description = self.contract.describe()


class _SLOState:
    """Mutable per-objective record the engine keeps between scrapes."""

    __slots__ = (
        "slo",
        "samples",
        "last_eval",
        "last_verdict",
        "level",
        "violation_seconds",
        "alert_span",
        "episode_start",
        "episode_violation_seconds",
        "transitions",
    )

    def __init__(self, slo: SLO) -> None:
        self.slo = slo
        #: (t, dt_observed, dt_violating) — pruned to the widest window
        self.samples: deque = deque()
        self.last_eval: Optional[float] = None
        self.last_verdict: Optional[bool] = None
        self.level = LEVEL_OK
        self.violation_seconds = 0.0
        self.alert_span: Optional[Span] = None
        self.episode_start: Optional[float] = None
        self.episode_violation_seconds = 0.0
        self.transitions: List[Dict[str, Any]] = []

    def record(self, now: float, violating: bool, horizon: float) -> float:
        """Append one compliance sample; returns the dt it covers."""
        dt = 0.0 if self.last_eval is None else max(0.0, now - self.last_eval)
        self.samples.append((now, dt, dt if violating else 0.0))
        cutoff = now - horizon
        while self.samples and self.samples[0][0] < cutoff:
            self.samples.popleft()
        return dt

    def burn(self, window: float, now: float, budget_fraction: float) -> float:
        """Burn rate over the trailing ``window``: violating-fraction /
        budget-fraction (1.0 = spending budget exactly on schedule)."""
        t0 = now - window
        observed = violating = 0.0
        for t, dt, dv in self.samples:
            if t >= t0:
                observed += dt
                violating += dv
        if observed <= 0:
            return 0.0
        return (violating / observed) / budget_fraction

    def budget_remaining(self, now: float) -> float:
        """Fraction of the error budget left over the budget window (may
        go negative when overspent — that *is* the signal)."""
        slo = self.slo
        t0 = now - slo.budget_window
        violating = sum(dv for t, _, dv in self.samples if t >= t0)
        budget_seconds = slo.budget_fraction * slo.budget_window
        return 1.0 - violating / budget_seconds


class SLOEngine:
    """Evaluates every objective after each scrape and raises alerts.

    Registers itself as a scrape listener on ``store`` and installs
    itself as ``telemetry.slo`` (plus an :class:`AdaptationTracker` as
    ``telemetry.adaptation`` when none exists), so the HTTP surface and
    the runtime hook points find it by attribute, never by import.
    """

    def __init__(
        self,
        telemetry: Any,
        store: TimeSeriesStore,
        slos: List[SLO],
        *,
        windows: Optional[BurnWindows] = None,
        broker: Optional[StreamBroker] = None,
        name: str = "SLO",
    ) -> None:
        self.telemetry = telemetry
        self.store = store
        self.windows = windows if windows is not None else BurnWindows()
        self.broker = broker
        self.name = name
        self._lock = threading.Lock()
        self._states: Dict[str, _SLOState] = {}
        for slo in slos:
            self.add(slo)
        self.evaluations = 0
        store.add_listener(self._on_scrape)
        telemetry.slo = self
        if getattr(telemetry, "adaptation", None) is None:
            telemetry.adaptation = AdaptationTracker(telemetry)

    # -- objectives ------------------------------------------------------
    def add(self, slo: SLO) -> None:
        with self._lock:
            if slo.name in self._states:
                raise ValueError(f"duplicate SLO name {slo.name!r}")
            self._states[slo.name] = _SLOState(slo)

    @property
    def slos(self) -> List[SLO]:
        with self._lock:
            return [s.slo for s in self._states.values()]

    # -- evaluation ------------------------------------------------------
    def _on_scrape(self, now: float, store: TimeSeriesStore) -> None:
        self.evaluate(now)

    def evaluate(self, now: Optional[float] = None) -> None:
        t = self.telemetry.clock.now() if now is None else now
        with self._lock:
            states = list(self._states.values())
        for state in states:
            self._evaluate_one(state, t)
        self.evaluations += 1

    def _evaluate_one(self, state: _SLOState, now: float) -> None:
        slo = state.slo
        try:
            monitor = slo.sample(self.store, now)
        except Exception:  # noqa: BLE001 - a bad sample must not kill the loop
            monitor = {}
        verdict = slo.contract.check(monitor) if monitor else None
        if verdict is None:
            # unjudgeable: keep the clock moving so windows age out, but
            # count the gap as neither compliant nor violating
            state.last_eval = now
            return

        horizon = max(self.windows.horizon, slo.budget_window)
        dt = state.record(now, not verdict, horizon)
        state.last_eval = now
        metrics = self.telemetry.metrics
        if not verdict and dt > 0:
            metrics.counter(
                "repro_slo_violation_seconds_total",
                "seconds spent violating each SLO",
            ).labels(slo=slo.name).inc(dt)
            state.violation_seconds += dt
            state.episode_violation_seconds += dt

        w = self.windows
        burn_fast = min(
            state.burn(w.fast_short, now, slo.budget_fraction),
            state.burn(w.fast_long, now, slo.budget_fraction),
        )
        burn_slow = min(
            state.burn(w.slow_short, now, slo.budget_fraction),
            state.burn(w.slow_long, now, slo.budget_fraction),
        )
        if burn_fast >= w.page_burn:
            level = LEVEL_PAGE
        elif burn_slow >= w.warn_burn:
            level = LEVEL_WARN
        else:
            level = LEVEL_OK
        remaining = state.budget_remaining(now)

        metrics.gauge(
            "repro_slo_budget_remaining",
            "fraction of each SLO's error budget left (negative = overspent)",
        ).labels(slo=slo.name).set(remaining)
        burn_gauge = metrics.gauge(
            "repro_slo_burn_rate", "current burn rate per SLO and window pair"
        )
        burn_gauge.labels(slo=slo.name, window="fast").set(burn_fast)
        burn_gauge.labels(slo=slo.name, window="slow").set(burn_slow)
        metrics.gauge(
            "repro_slo_level", "alert level per SLO (0=ok, 1=warn, 2=page)"
        ).labels(slo=slo.name).set(float(_LEVEL_RANK[level]))

        # adaptation timestamps: the engine is itself an observer of
        # violations and of their disappearance
        adaptation = getattr(self.telemetry, "adaptation", None)
        if adaptation is not None:
            if verdict is False and state.last_verdict in (True, None):
                adaptation.violation_observed(f"slo:{slo.name}", now=now)
            elif verdict is True and state.last_verdict is False:
                adaptation.effect_visible(now=now, slo=slo.name)
        state.last_verdict = verdict

        if level != state.level:
            self._transition(state, level, now, burn_fast, burn_slow, remaining)

    def _transition(
        self,
        state: _SLOState,
        level: str,
        now: float,
        burn_fast: float,
        burn_slow: float,
        remaining: float,
    ) -> None:
        slo, prev = state.slo, state.level
        state.level = level
        state.transitions.append(
            {"t": now, "from": prev, "to": level, "burn_fast": burn_fast}
        )
        self.telemetry.metrics.counter(
            "repro_slo_transitions_total", "SLO alert-level transitions"
        ).labels(slo=slo.name, level=level).inc()
        self.telemetry.event(
            "slo.transition",
            slo=slo.name,
            level=level,
            previous=prev,
            burn_fast=round(burn_fast, 3),
            burn_slow=round(burn_slow, 3),
            budget_remaining=round(remaining, 4),
        )
        if prev == LEVEL_OK:
            # an alert episode opens: a detached span ties the page to
            # whatever MAPE activity follows it in the same trace export
            state.episode_start = now
            state.episode_violation_seconds = 0.0
            state.alert_span = self.telemetry.start_span(
                "slo.alert",
                actor=self.name,
                slo=slo.name,
                objective=slo.description,
                level=level,
                burn_fast=round(burn_fast, 3),
                burn_slow=round(burn_slow, 3),
                budget_remaining_open=round(remaining, 4),
            )
        elif level == LEVEL_OK:
            self.telemetry.end_span(
                state.alert_span,
                resolved=True,
                budget_remaining_close=round(remaining, 4),
                violation_seconds=round(state.episode_violation_seconds, 6),
            )
            state.alert_span = None
            state.episode_start = None
        else:
            # escalation / de-escalation inside an open episode
            if state.alert_span is not None:
                state.alert_span.set_attribute("level", level)
                state.alert_span.add_event(
                    "slo.escalation", now, level=level, previous=prev
                )
        if self.broker is not None:
            self.broker.publish(
                {
                    "type": "slo",
                    "t": now,
                    "slo": slo.name,
                    "level": level,
                    "previous": prev,
                    "burn_fast": round(burn_fast, 3),
                    "burn_slow": round(burn_slow, 3),
                    "budget_remaining": round(remaining, 4),
                }
            )

    # -- reporting -------------------------------------------------------
    def transitions(self) -> Dict[str, List[Dict[str, Any]]]:
        """Every alert-level transition so far, keyed by SLO name."""
        with self._lock:
            return {
                name: list(state.transitions)
                for name, state in self._states.items()
                if state.transitions
            }

    def violation_seconds(self) -> Dict[str, float]:
        """Accumulated violation seconds per SLO."""
        with self._lock:
            return {
                name: state.violation_seconds
                for name, state in self._states.items()
            }

    def describe(self, now: Optional[float] = None) -> Dict[str, Any]:
        """JSON-ready engine state (the ``/slo`` endpoint body)."""
        t = self.telemetry.clock.now() if now is None else now
        with self._lock:
            states = list(self._states.values())
        objectives = []
        for state in states:
            slo = state.slo
            objectives.append(
                {
                    "name": slo.name,
                    "objective": slo.description,
                    "level": state.level,
                    "ok": state.last_verdict,
                    "burn_fast": round(
                        state.burn(self.windows.fast_long, t, slo.budget_fraction), 3
                    ),
                    "burn_slow": round(
                        state.burn(self.windows.slow_long, t, slo.budget_fraction), 3
                    ),
                    "budget_remaining": round(state.budget_remaining(t), 4),
                    "violation_seconds": round(state.violation_seconds, 6),
                    "transitions": len(state.transitions),
                    "labels": slo.labels,
                }
            )
        open_alerts = [o for o in objectives if o["level"] != LEVEL_OK]
        return {
            "engine": self.name,
            "evaluations": self.evaluations,
            "windows": {
                "fast": [self.windows.fast_short, self.windows.fast_long],
                "slow": [self.windows.slow_short, self.windows.slow_long],
                "page_burn": self.windows.page_burn,
                "warn_burn": self.windows.warn_burn,
            },
            "objectives": objectives,
            "open_alerts": len(open_alerts),
        }

    def close(self) -> None:
        """End any open alert spans (shutdown path).

        The close carries the same accounting a recovery close does —
        budget left and the episode's violation-seconds — so an export
        cut mid-alert still narrates a complete episode, just an
        unresolved one.
        """
        now = self.telemetry.clock.now()
        with self._lock:
            states = list(self._states.values())
        for state in states:
            if state.alert_span is not None:
                self.telemetry.end_span(
                    state.alert_span,
                    resolved=False,
                    budget_remaining_close=round(state.budget_remaining(now), 4),
                    violation_seconds=round(
                        state.episode_violation_seconds, 6
                    ),
                )
                state.alert_span = None


# ----------------------------------------------------------------------
# adaptation-latency timestamps (ROADMAP item 4's yardstick)
# ----------------------------------------------------------------------


class AdaptationTracker:
    """Violation observed → plan committed → effect visible, with spans.

    First-wins per cycle: the first ``violation_observed`` after an idle
    period opens the cycle; later observations inside the same open
    cycle are coalesced (they are the same incident still hurting).  The
    three legs land in ``repro_adaptation_latency_seconds{stage=…}``:
    ``observe_to_commit``, ``commit_to_effect`` and ``total``.  A cycle
    that recovers without any committed plan closes as *self-resolved* —
    real and worth counting: it is the load going away on its own.
    """

    def __init__(self, telemetry: Any) -> None:
        self.telemetry = telemetry
        self._lock = threading.Lock()
        self._span: Optional[Span] = None
        self._observed_at: Optional[float] = None
        self._committed_at: Optional[float] = None
        self.cycles: List[Dict[str, Any]] = []

    def _now(self, override: Optional[float]) -> float:
        return self.telemetry.clock.now() if override is None else override

    def violation_observed(
        self, kind: str, *, now: Optional[float] = None, **attrs: Any
    ) -> None:
        t = self._now(now)
        with self._lock:
            if self._span is not None:
                self._span.add_event("adaptation.observed-again", t, kind=kind)
                return
            self._observed_at = t
            self._committed_at = None
            self._span = self.telemetry.start_span(
                "slo.adaptation", actor="SLO", kind=kind, observed_at=t, **attrs
            )

    def plan_committed(
        self, action: str, *, now: Optional[float] = None, **attrs: Any
    ) -> None:
        t = self._now(now)
        with self._lock:
            if self._span is None or self._observed_at is None:
                return
            first_commit = self._committed_at is None
            self._span.add_event("adaptation.committed", t, action=action, **attrs)
            if not first_commit:
                return
            self._committed_at = t
            self._span.set_attribute("action", action)
            self._span.set_attribute("committed_at", t)
        self.telemetry.metrics.histogram(
            "repro_adaptation_latency_seconds",
            "violation-observed → plan-committed → effect-visible legs",
        ).labels(stage="observe_to_commit").observe(t - self._observed_at)

    def effect_visible(self, *, now: Optional[float] = None, **attrs: Any) -> None:
        t = self._now(now)
        with self._lock:
            span, observed, committed = self._span, self._observed_at, self._committed_at
            if span is None or observed is None:
                return
            self._span = None
            self._observed_at = None
            self._committed_at = None
        hist = self.telemetry.metrics.histogram(
            "repro_adaptation_latency_seconds",
            "violation-observed → plan-committed → effect-visible legs",
        )
        hist.labels(stage="total").observe(t - observed)
        if committed is not None:
            hist.labels(stage="commit_to_effect").observe(t - committed)
        cycle = {
            "observed_at": observed,
            "committed_at": committed,
            "effect_at": t,
            "total": t - observed,
            "self_resolved": committed is None,
        }
        self.cycles.append(cycle)
        self.telemetry.end_span(
            span,
            effect_at=t,
            total_latency=round(t - observed, 6),
            self_resolved=committed is None,
            **attrs,
        )


# ----------------------------------------------------------------------
# the compiler: contracts -> objectives
# ----------------------------------------------------------------------


def slo_from_contract(
    contract: Any,
    *,
    name: str,
    manager: Optional[str] = None,
    tenant: Optional[str] = None,
    budget_fraction: float = 0.05,
    budget_window: float = 3600.0,
    rate_window: float = 10.0,
) -> List[SLO]:
    """Compile a live contract into SLO objectives — the SLA is the config.

    ``manager`` scopes throughput/latency contracts to one controller's
    gauges (the ``manager=`` label the :class:`FarmController` stamps);
    ``tenant`` scopes a :class:`RateContract` to one tenant's dispatch
    counters.  Composite contracts flatten into one objective per part;
    best-effort parts compile to nothing (they cannot be violated).
    """
    from ..core import contracts as c  # deferred: the rules engine imports obs

    kwargs = dict(budget_fraction=budget_fraction, budget_window=budget_window)
    labels = {}
    if manager:
        labels["manager"] = manager
    if tenant:
        labels["tenant"] = tenant

    if isinstance(contract, c.CompositeContract):
        out: List[SLO] = []
        for i, part in enumerate(contract.parts):
            out.extend(
                slo_from_contract(
                    part,
                    name=f"{name}.{i}",
                    manager=manager,
                    tenant=tenant,
                    budget_fraction=budget_fraction,
                    budget_window=budget_window,
                    rate_window=rate_window,
                )
            )
        return out

    if isinstance(contract, c.BestEffortContract):
        return []

    mlabels = {"manager": manager} if manager else None

    if isinstance(contract, (c.ThroughputRangeContract, c.MinThroughputContract)):

        def sample_throughput(store: TimeSeriesStore, now: float) -> Mapping[str, Any]:
            v = store.latest("repro_farm_departure_rate", mlabels)
            return {} if v is None else {"departure_rate": v}

        return [SLO(name, contract, sample_throughput, labels=labels, **kwargs)]

    if isinstance(contract, c.MaxLatencyContract):

        def sample_latency(store: TimeSeriesStore, now: float) -> Mapping[str, Any]:
            v = store.latest("repro_farm_latency_seconds", mlabels)
            return {} if v is None else {"mean_latency": v}

        return [SLO(name, contract, sample_latency, labels=labels, **kwargs)]

    if isinstance(contract, c.RateContract):
        if tenant is not None:
            tlabels = {"tenant": tenant}
            demanded = contract.rate

            def sample_tenant(store: TimeSeriesStore, now: float) -> Mapping[str, Any]:
                rate = store.window_rate(
                    "repro_tenant_dispatched_total", rate_window, tlabels, now=now
                )
                if rate is None:
                    return {}
                backlog = store.latest("repro_tenant_backlog", tlabels)
                if not backlog and rate < demanded:
                    # demand-limited: the tenant is not offering enough
                    # load to hit its SLA rate — that is compliance, not
                    # violation (nothing is queued behind the shortfall)
                    return {"rate": demanded}
                return {"rate": rate}

            return [SLO(name, contract, sample_tenant, labels=labels, **kwargs)]

        def sample_rate(store: TimeSeriesStore, now: float) -> Mapping[str, Any]:
            v = store.latest("repro_farm_departure_rate", mlabels)
            return {} if v is None else {"rate": v}

        return [SLO(name, contract, sample_rate, labels=labels, **kwargs)]

    if isinstance(contract, c.SecurityContract):

        def sample_security(store: TimeSeriesStore, now: float) -> Mapping[str, Any]:
            rate = store.window_rate(
                "repro_mc_insecure_dispatch_total", rate_window, None, now=now
            )
            if rate is None:
                return {}
            return {"leak_count": rate * rate_window}

        return [SLO(name, contract, sample_security, labels=labels, **kwargs)]

    # unknown contract kind: judge it against the controller's monitor
    # vocabulary if it can, else it stays permanently unjudgeable
    def sample_generic(store: TimeSeriesStore, now: float) -> Mapping[str, Any]:
        out: Dict[str, Any] = {}
        v = store.latest("repro_farm_departure_rate", mlabels)
        if v is not None:
            out["departure_rate"] = v
        w = store.latest("repro_farm_workers", mlabels)
        if w is not None:
            out["num_workers"] = w
        return out

    return [SLO(name, contract, sample_generic, labels=labels, **kwargs)]


def slos_for_sharded(
    sharded: Any,
    *,
    budget_fraction: float = 0.05,
    budget_window: float = 3600.0,
    rate_window: float = 10.0,
) -> List[SLO]:
    """Every objective a :class:`ShardedFarm` implies: root, shards, tenants.

    The root objective samples the *sum* of the shard controllers'
    departure gauges (the quantity the parent MAPE loop itself judges);
    per-shard objectives come from the current ``sub_contracts``; tenant
    objectives from each registered tenant's `RateContract` SLA.
    """
    kwargs = dict(
        budget_fraction=budget_fraction,
        budget_window=budget_window,
        rate_window=rate_window,
    )
    out: List[SLO] = []

    shard_managers = [f"AM_{sharded.name}-s{i}" for i in range(len(sharded.shards))]
    root_contract = sharded.contract

    def sample_root(store: TimeSeriesStore, now: float) -> Mapping[str, Any]:
        total = 0.0
        seen = False
        for mgr in shard_managers:
            v = store.latest("repro_farm_departure_rate", {"manager": mgr})
            if v is not None:
                total += v
                seen = True
        return {"departure_rate": total, "rate": total} if seen else {}

    out.append(
        SLO(
            f"{sharded.name}.root",
            root_contract,
            sample_root,
            budget_fraction=budget_fraction,
            budget_window=budget_window,
            labels={"farm": sharded.name},
        )
    )
    for i, sub in enumerate(sharded.sub_contracts):
        out.extend(
            slo_from_contract(
                sub, name=f"{sharded.name}.s{i}", manager=shard_managers[i], **kwargs
            )
        )
    registry = getattr(sharded, "registry", None)
    if registry is not None:
        for tenant in registry.tenants():
            out.extend(
                slo_from_contract(
                    tenant.sla,
                    name=f"tenant.{tenant.name}",
                    tenant=tenant.name,
                    **kwargs,
                )
            )
    return out
